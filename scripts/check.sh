#!/usr/bin/env bash
# Full tier-1 gate: formatting, build, tests, and the detlint
# determinism/safety invariants. CI and pre-push both run this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> detlint"
cargo run -q -p detlint

echo "check.sh: all gates passed"
