#!/usr/bin/env bash
# Full tier-1 gate: formatting, build, tests, and the detlint
# determinism/safety invariants. CI and pre-push both run this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

# Queue smoke: the calendar-queue engine against the reference heap —
# the differential harness replays randomized schedules through both
# and asserts identical dispatch order, plus the FIFO tie-break and
# seq-wraparound contracts. Runs first because everything below
# (every campaign, every determinism gate) sits on this queue.
echo "==> queue differential smoke"
cargo test -q -p sim-core --test queue_differential
cargo test -q -p sim-core --test fifo_replay

# The suite runs twice to prove the campaign runner's guarantee: results
# are identical whether campaigns run serially or on 8 worker threads
# (tests/parallel_determinism.rs additionally pins 1 vs 2 vs 8 in-process).
echo "==> cargo test (RUNNER_THREADS=1)"
RUNNER_THREADS=1 cargo test -q

echo "==> cargo test (RUNNER_THREADS=8)"
RUNNER_THREADS=8 cargo test -q

# The JSON report is kept as a build artifact so CI annotations and
# local tooling can consume machine-readable findings; `set -o
# pipefail` above preserves detlint's exit code (0 clean / 1 findings /
# 2 config error) through the tee.
echo "==> detlint"
cargo run -q -p detlint
echo "==> detlint (JSON report -> target/detlint.json)"
mkdir -p target
cargo run -q -p detlint -- --quiet --format json | tee target/detlint.json >/dev/null

# Shard smoke: run a small campaign across 2 worker processes and diff
# its output against the in-example serial reference — the example exits
# non-zero if the sharded bytes diverge (tests/shard_determinism.rs is
# the full tier-1 matrix; this just proves the re-exec path works in the
# checked-out tree).
echo "==> shard smoke (distributed_campaign, 2 workers)"
cargo run -q -p shard --example distributed_campaign --release -- --shard-workers 2 >/dev/null

# Campaign-server smoke: boot 2 re-exec'd socket workers and the HTTP
# campaign server, submit Table II through the client, and diff the
# served stream against the in-example serial reference — the example
# exits non-zero if the bytes diverge (tests/campaignd_determinism.rs
# is the full tier-1 matrix; this proves the socket + HTTP path works
# in the checked-out tree).
echo "==> campaign-server smoke (campaign_server, 2 workers)"
cargo run -q -p campaignd --example campaign_server --release -- --workers 2 >/dev/null

# Fault-campaign smoke: the fault class × intensity sweep with the V2X
# watchdog enabled (DESIGN.md §11). The example runs the grid serially
# and on the thread runner and exits non-zero if the two tables are not
# byte-identical, so this doubles as a determinism check on the
# fault-injection plane.
echo "==> fault-campaign smoke (fault_sweep, 2 runs/cell)"
cargo run -q -p its-testbed --example fault_sweep --release -- --runs 2 >/dev/null

# Cooperative fault-cascade smoke (DESIGN.md §15): the blind-corner CPM
# ablation must hold in the checked-out tree — the example exits
# non-zero unless the CPM-on run clears the occluded obstacle the
# CPM-off run collides with — and the platoon example must run its
# degradation cascade under full leader radio silence.
echo "==> cooperative fault-cascade smoke (blind_corner + platoon_braking)"
cargo run -q -p its-testbed --example blind_corner --release >/dev/null
cargo run -q -p its-testbed --example platoon_braking --release -- --faults leader_silence:1.0 >/dev/null

# Bench smoke: run the campaign-throughput bench in quick mode (32 runs
# per table) so the harness, its serial-vs-parallel bit-equality
# assertion, and the JSON writer all execute; then restore the tracked
# baseline (the quick pass overwrites it with throwaway numbers) and
# validate it via the bench crate's baseline test.
echo "==> bench smoke (BENCH_QUICK=1 campaign_throughput)"
cp BENCH_campaign.json BENCH_campaign.json.tracked
BENCH_QUICK=1 cargo bench -q --bench campaign_throughput
mv BENCH_campaign.json.tracked BENCH_campaign.json
cargo test -q -p bench tracked_bench_campaign_baseline_is_valid

# City-scale smoke: run the node-count bench in quick mode (small
# fleets, 1 s horizon) so the harness, its culled-vs-exhaustive
# bit-equality assertion and the BENCH_city.json writer all execute;
# then restore the tracked baseline and validate it (exact
# N=100/500/2000 rows, flat per-event cost, culling speedup bar) via
# the bench crate's baseline test.
echo "==> city bench smoke (BENCH_QUICK=1 city_scale)"
cp BENCH_city.json BENCH_city.json.tracked
BENCH_QUICK=1 cargo bench -q --bench city_scale
mv BENCH_city.json.tracked BENCH_city.json
cargo test -q -p bench tracked_bench_city_baseline_is_valid

echo "check.sh: all gates passed"
