#!/usr/bin/env bash
# Full tier-1 gate: formatting, build, tests, and the detlint
# determinism/safety invariants. CI and pre-push both run this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

# The suite runs twice to prove the campaign runner's guarantee: results
# are identical whether campaigns run serially or on 8 worker threads
# (tests/parallel_determinism.rs additionally pins 1 vs 2 vs 8 in-process).
echo "==> cargo test (RUNNER_THREADS=1)"
RUNNER_THREADS=1 cargo test -q

echo "==> cargo test (RUNNER_THREADS=8)"
RUNNER_THREADS=8 cargo test -q

echo "==> detlint"
cargo run -q -p detlint

echo "check.sh: all gates passed"
