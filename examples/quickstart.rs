//! Quickstart: run one collision-avoidance scenario and print the
//! six-step timeline, exactly the measurement the paper's testbed makes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use its_testbed::scenario::{Scenario, ScenarioConfig};

fn main() {
    let config = ScenarioConfig {
        seed: 7,
        ..ScenarioConfig::default()
    };
    println!(
        "ETSI ITS Collision Avoidance System — single run (seed {})",
        config.seed
    );
    println!(
        "vehicle starts {:.1} m from the camera at {:.1} m/s; action point at {:.2} m\n",
        config.start_distance_m, config.cruise_speed_mps, config.action_point_m
    );

    let record = Scenario::new(config).run();

    let ms = |t: Option<sim_core::SimTime>| {
        t.map(|t| format!("{:8.1} ms", t.as_nanos() as f64 / 1e6))
            .unwrap_or_else(|| "   (none)".to_owned())
    };
    println!(
        "step 1  vehicle reaches Action Point   {}",
        ms(record.step1_crossing)
    );
    println!(
        "step 2  YOLO detection output          {}",
        ms(record.step2_detection)
    );
    println!(
        "step 3  RSU sends DENM                 {}",
        ms(record.step3_rsu_send)
    );
    println!(
        "step 4  OBU receives DENM              {}",
        ms(record.step4_obu_recv)
    );
    println!(
        "step 5  power-cut command to actuators {}",
        ms(record.step5_actuation)
    );
    println!(
        "step 6  vehicle at a standstill        {}",
        ms(record.step6_halt)
    );

    println!("\nwall-clock intervals (NTP-synced hosts, ms resolution):");
    println!(
        "  #2 -> #3 : {:>4} ms",
        record.interval_2_3_ms().unwrap_or(-1)
    );
    println!(
        "  #3 -> #4 : {:>4} ms",
        record.interval_3_4_ms().unwrap_or(-1)
    );
    println!(
        "  #4 -> #5 : {:>4} ms",
        record.interval_4_5_ms().unwrap_or(-1)
    );
    println!(
        "  total    : {:>4} ms  (paper: avg 58.4 ms, always < 100 ms)",
        record.total_delay_ms().unwrap_or(-1)
    );

    println!(
        "\nbraking distance (detection to halt): {:.2} m  (paper: avg 0.36 m)",
        record.braking_distance_m().unwrap_or(f64::NAN)
    );
    println!(
        "CAMs received by the RSU during the run: {}",
        record.cams_received
    );

    println!("\nevent trace:");
    for e in record.trace.events() {
        println!("  {e}");
    }
}
