//! Channel congestion at scale: many CAM-beaconing stations with the
//! reactive DCC gatekeeper (ETSI TS 102 687) in the loop.
//!
//! ```sh
//! cargo run --example congestion --release
//! ```

use its_testbed::congestion::{run_congestion, sweep_station_count, CongestionConfig};

fn main() {
    println!("CAM beaconing under load — reactive DCC in every station\n");
    println!("Station-count sweep (20 s simulated each):");
    print!(
        "{}",
        sweep_station_count(
            &CongestionConfig::default(),
            &[2, 5, 10, 20, 40, 80, 120, 160]
        )
    );

    // Zoom into one loaded fleet.
    let record = run_congestion(&CongestionConfig {
        n_stations: 120,
        ..CongestionConfig::default()
    });
    println!("\n120-station fleet detail:");
    println!("  CAMs on the air: {}", record.cams_transmitted);
    println!("  per-station rate: {:.2} Hz", record.cam_rate_hz);
    println!("  mean CBR: {:.3}", record.mean_cbr);
    println!("  worst DCC state reached: {:?}", record.worst_dcc_state);
    println!();
    println!("The gatekeeper lets a small fleet beacon at the full dynamics-");
    println!("triggered rate and throttles a large one, so total channel load");
    println!("saturates instead of growing with the fleet — while DENMs (AC_VO)");
    println!("always bypass the gate.");
}
