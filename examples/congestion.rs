//! Channel congestion at scale: many CAM-beaconing stations with the
//! reactive DCC gatekeeper (ETSI TS 102 687) in the loop.
//!
//! The station-count sweep runs one fleet per worker on the parallel
//! campaign runner; pick the worker count with `--threads N` or
//! `RUNNER_THREADS` (the table is identical either way).
//!
//! ```sh
//! cargo run --example congestion --release -- --threads 4
//! ```

use its_testbed::congestion::{run_congestion, sweep_station_count_on, CongestionConfig};
use its_testbed::Runner;

/// Parses `--threads N`; `None` falls back to [`Runner::from_env`].
fn threads_flag() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--threads" {
            return it.next().and_then(|v| runner::parse_threads(v));
        }
        if let Some(v) = arg.strip_prefix("--threads=") {
            return runner::parse_threads(v);
        }
    }
    None
}

fn main() {
    let runner = match threads_flag() {
        Some(n) => Runner::new(n),
        None => Runner::from_env(),
    };
    println!("CAM beaconing under load — reactive DCC in every station\n");
    println!(
        "Station-count sweep (20 s simulated each, {} worker thread(s)):",
        runner.threads()
    );
    print!(
        "{}",
        sweep_station_count_on(
            &runner,
            &CongestionConfig::default(),
            &[2, 5, 10, 20, 40, 80, 120, 160]
        )
    );

    // Zoom into one loaded fleet.
    let record = run_congestion(&CongestionConfig {
        n_stations: 120,
        ..CongestionConfig::default()
    });
    println!("\n120-station fleet detail:");
    println!("  CAMs on the air: {}", record.cams_transmitted);
    println!("  per-station rate: {:.2} Hz", record.cam_rate_hz);
    println!("  mean CBR: {:.3}", record.mean_cbr);
    println!("  worst DCC state reached: {:?}", record.worst_dcc_state);
    println!();
    println!("The gatekeeper lets a small fleet beacon at the full dynamics-");
    println!("triggered rate and throttles a large one, so total channel load");
    println!("saturates instead of growing with the fleet — while DENMs (AC_VO)");
    println!("always bypass the gate.");
}
