//! Channel congestion at scale: many CAM-beaconing stations with the
//! reactive DCC gatekeeper (ETSI TS 102 687) in the loop.
//!
//! The station-count sweep runs one fleet per worker on the parallel
//! campaign runner; pick the worker count with `--threads N` or
//! `RUNNER_THREADS` (the table is identical either way).
//!
//! ```sh
//! cargo run --example congestion --release -- --threads 4
//! ```

use its_testbed::congestion::{run_congestion, sweep_station_count, CongestionConfig};
use its_testbed::Runner;

fn main() {
    // `--threads N` wins over `RUNNER_THREADS` / the machine; zero and
    // garbage are rejected by the shared parser in crate `runner`.
    let runner = match runner::threads_flag(std::env::args()) {
        Ok(Some(n)) => Runner::new(n),
        Ok(None) => Runner::from_env(),
        Err(e) => {
            eprintln!("--threads: {e}");
            std::process::exit(2);
        }
    };
    println!("CAM beaconing under load — reactive DCC in every station\n");
    println!(
        "Station-count sweep (20 s simulated each, {} worker thread(s)):",
        runner.threads()
    );
    print!(
        "{}",
        sweep_station_count(
            &runner,
            &CongestionConfig::default(),
            &[2, 5, 10, 20, 40, 80, 120, 160]
        )
    );

    // Zoom into one loaded fleet.
    let record = run_congestion(&CongestionConfig {
        n_stations: 120,
        ..CongestionConfig::default()
    });
    println!("\n120-station fleet detail:");
    println!("  CAMs on the air: {}", record.cams_transmitted);
    println!("  per-station rate: {:.2} Hz", record.cam_rate_hz);
    println!("  mean CBR: {:.3}", record.mean_cbr);
    println!("  worst DCC state reached: {:?}", record.worst_dcc_state);
    println!();
    println!("The gatekeeper lets a small fleet beacon at the full dynamics-");
    println!("triggered rate and throttles a large one, so total channel load");
    println!("saturates instead of growing with the fleet — while DENMs (AC_VO)");
    println!("always bypass the gate.");
}
