//! Full evaluation-section reproduction: regenerates Table II, Figure 11,
//! Table III and Figure 10 from batches of simulated runs, printing each
//! next to the paper's reported values.
//!
//! ```sh
//! cargo run --example collision_avoidance --release
//! ```

use its_testbed::experiments::{self, paper};
use its_testbed::metrics::{fit_normal, fit_shifted_exponential, ks_statistic, mean};
use its_testbed::scenario::ScenarioConfig;
use its_testbed::Runner;

fn main() {
    let base = ScenarioConfig {
        seed: 2023,
        ..ScenarioConfig::default()
    };
    // Campaigns run through the generic Executor API; the thread runner
    // honours RUNNER_THREADS and changes nothing but the wall-clock.
    let exec = Runner::from_env();

    println!("{}", experiments::table1());

    // --- Table II: five runs, like the paper. ---
    let t2 = experiments::table2(&exec, &base, 5);
    println!("{}", t2.render());
    println!(
        "paper averages: #2->#3 {:.1} | #3->#4 {:.1} | #4->#5 {:.1} | total {:.1} ms\n",
        mean(&paper::INTERVAL_2_3),
        mean(&paper::INTERVAL_3_4),
        mean(&paper::INTERVAL_4_5),
        mean(&paper::TOTAL),
    );

    // --- Figure 11: EDF of total delay. ---
    let f11 = experiments::fig11(&exec, &base, 5);
    println!("{}", f11.render());

    // A larger-N EDF plus the distribution fit the paper lists as future
    // work ("model it with an appropriate distribution").
    let f11_large = experiments::fig11(&exec, &base, 100);
    let normal = fit_normal(&f11_large.edf);
    let sexp = fit_shifted_exponential(&f11_large.edf);
    println!(
        "n=100 extension: mean {:.1} ms, p95 {:.1} ms, max {:.1} ms (all < 100: {})",
        f11_large.edf.mean(),
        f11_large.edf.quantile(0.95),
        f11_large.edf.max(),
        f11_large.edf.max() < 100.0
    );
    println!(
        "  normal fit: mu={:.1} sigma={:.1}  KS={:.3}",
        normal.mean,
        normal.std_dev,
        ks_statistic(&f11_large.edf, |x| normal.cdf(x))
    );
    println!(
        "  shifted-exponential fit: shift={:.1} scale={:.1}  KS={:.3}\n",
        sexp.shift,
        sexp.scale,
        ks_statistic(&f11_large.edf, |x| sexp.cdf(x))
    );

    // --- Table III: seven runs, like the paper. ---
    let t3 = experiments::table3(&exec, &base, 7);
    println!("{}", t3.render());
    println!(
        "paper: avg {:.2} m, variance 0.0022\n",
        mean(&paper::BRAKING)
    );

    // --- Figure 10: video-frame detection-to-stop. ---
    let f10 = experiments::fig10(&base);
    println!("{}", f10.render());
}
