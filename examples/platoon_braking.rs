//! Platoon extension (paper §V future work): detection-to-action delay
//! for a whole platoon, under direct GeoBroadcast delivery and under the
//! multi-technology arrangement (5G-capable leader + 802.11p intra-
//! platoon forwarding) — optionally under an injected fault.
//!
//! ```sh
//! cargo run --example platoon_braking --release
//! cargo run --example platoon_braking --release -- --faults leader_silence:1.0
//! cargo run --example platoon_braking --release -- --faults radio_silence:0.5
//! ```
//!
//! `--faults class:intensity` threads a [`its_testbed::faultsweep::plan_for`]
//! plan through every run; the per-vehicle table then shows which DENMs
//! were lost, and the degradation line how far the heartbeat starvation
//! cascaded down the string.

use faults::FaultPlan;
use its_testbed::faultsweep::plan_for;
use its_testbed::platoon::{run_platoon, PlatoonConfig, PlatoonLink};
use phy80211p::cellular::CellularProfile;
use vehicle::watchdog::WatchdogConfig;

/// Parses `--faults class:intensity` from the command line (empty plan
/// when absent). Exits with usage on a malformed argument.
fn fault_plan_from_args() -> (FaultPlan, String) {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let spec = match arg.strip_prefix("--faults=") {
            Some(rest) => rest.to_owned(),
            None if arg == "--faults" => args.next().unwrap_or_default(),
            None => continue,
        };
        let Some((class, intensity)) = spec.split_once(':') else {
            eprintln!("usage: --faults class:intensity (e.g. --faults leader_silence:1.0)");
            std::process::exit(2);
        };
        let Ok(intensity) = intensity.parse::<f64>() else {
            eprintln!("intensity must be a number in [0, 1], got {intensity:?}");
            std::process::exit(2);
        };
        return (plan_for(class, intensity), spec);
    }
    (FaultPlan::default(), "none".to_owned())
}

fn print_record(title: &str, record: &its_testbed::platoon::PlatoonRecord) {
    println!("{title}");
    println!("  vehicle  DENM rx (ms)  action (ms)  braking (m)");
    for i in 0..record.denm_rx_ms.len() {
        println!(
            "  {:>7}  {:>12.2}  {:>11.2}  {:>11.2}",
            i, record.denm_rx_ms[i], record.action_ms[i], record.braking_m[i]
        );
    }
    println!(
        "  platoon detection-to-action: {:.1} ms | min inter-vehicle gap: {:.2} m | collision: {}",
        record.platoon_action_ms,
        record.min_gap_m,
        record.collision()
    );
    println!(
        "  degradation: {} undelivered | cascade depth {} | fail-safe stops {} | heartbeats relayed {} | faults injected {}\n",
        record.undelivered,
        record.cascade_depth,
        record.failsafe_stops,
        record.heartbeats_delivered,
        record.fault.injected
    );
}

fn main() {
    let (fault_plan, fault_label) = fault_plan_from_args();
    let base = PlatoonConfig {
        seed: 11,
        n_vehicles: 4,
        gap_m: 1.2,
        fault_plan,
        watchdog: Some(WatchdogConfig::default()),
        ..PlatoonConfig::default()
    };

    println!(
        "Platoon of {} vehicles at {:.1} m/s, {:.1} m gaps (faults: {fault_label})\n",
        base.n_vehicles, base.speed_mps, base.gap_m
    );

    let direct = run_platoon(&base);
    print_record(
        "direct GeoBroadcast (all vehicles in the relevance area):",
        &direct,
    );

    let relay = run_platoon(&PlatoonConfig {
        link: PlatoonLink::LeaderCellularRelay(CellularProfile::nsa_5g()),
        ..base.clone()
    });
    print_record("5G leader + 802.11p hop-by-hop forwarding:", &relay);

    let relay_lte = run_platoon(&PlatoonConfig {
        link: PlatoonLink::LeaderCellularRelay(CellularProfile::lte_uu()),
        ..base.clone()
    });
    print_record(
        "LTE-Uu leader + 802.11p forwarding (worst case):",
        &relay_lte,
    );

    // Fail-safe emergency braking: the leader stops on its own sensors,
    // followers rely on the relayed DENM — the notification delay now
    // eats directly into the gaps. Sweep the cruise gap to find the
    // safety margin per link.
    println!("emergency-brake gap sweep (leader stops instantly, followers via DENM):");
    println!("  cruise gap   direct GBC       LTE-Uu relay");
    for gap in [0.1, 0.2, 0.3, 0.5, 0.8, 1.2] {
        let direct = run_platoon(&PlatoonConfig {
            gap_m: gap,
            leader_brakes_on_detection: true,
            ..base.clone()
        });
        let relay = run_platoon(&PlatoonConfig {
            gap_m: gap,
            leader_brakes_on_detection: true,
            link: PlatoonLink::LeaderCellularRelay(CellularProfile::lte_uu()),
            ..base.clone()
        });
        let show = |r: &its_testbed::platoon::PlatoonRecord| {
            format!(
                "min {:>5.2} m {}",
                r.min_gap_m,
                if r.collision() { "CRASH" } else { "ok   " }
            )
        };
        println!("  {gap:>7.1} m   {}   {}", show(&direct), show(&relay));
    }
}
