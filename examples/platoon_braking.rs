//! Platoon extension (paper §V future work): detection-to-action delay
//! for a whole platoon, under direct GeoBroadcast delivery and under the
//! multi-technology arrangement (5G-capable leader + 802.11p intra-
//! platoon forwarding).
//!
//! ```sh
//! cargo run --example platoon_braking --release
//! ```

use its_testbed::platoon::{run_platoon, PlatoonConfig, PlatoonLink};
use phy80211p::cellular::CellularProfile;

fn print_record(title: &str, record: &its_testbed::platoon::PlatoonRecord) {
    println!("{title}");
    println!("  vehicle  DENM rx (ms)  action (ms)  braking (m)");
    for i in 0..record.denm_rx_ms.len() {
        println!(
            "  {:>7}  {:>12.2}  {:>11.2}  {:>11.2}",
            i, record.denm_rx_ms[i], record.action_ms[i], record.braking_m[i]
        );
    }
    println!(
        "  platoon detection-to-action: {:.1} ms | min inter-vehicle gap: {:.2} m | collision: {}\n",
        record.platoon_action_ms,
        record.min_gap_m,
        record.collision()
    );
}

fn main() {
    let base = PlatoonConfig {
        seed: 11,
        n_vehicles: 4,
        gap_m: 1.2,
        ..PlatoonConfig::default()
    };

    println!(
        "Platoon of {} vehicles at {:.1} m/s, {:.1} m gaps\n",
        base.n_vehicles, base.speed_mps, base.gap_m
    );

    let direct = run_platoon(&base);
    print_record(
        "direct GeoBroadcast (all vehicles in the relevance area):",
        &direct,
    );

    let relay = run_platoon(&PlatoonConfig {
        link: PlatoonLink::LeaderCellularRelay(CellularProfile::nsa_5g()),
        ..base.clone()
    });
    print_record("5G leader + 802.11p hop-by-hop forwarding:", &relay);

    let relay_lte = run_platoon(&PlatoonConfig {
        link: PlatoonLink::LeaderCellularRelay(CellularProfile::lte_uu()),
        ..base.clone()
    });
    print_record(
        "LTE-Uu leader + 802.11p forwarding (worst case):",
        &relay_lte,
    );

    // Fail-safe emergency braking: the leader stops on its own sensors,
    // followers rely on the relayed DENM — the notification delay now
    // eats directly into the gaps. Sweep the cruise gap to find the
    // safety margin per link.
    println!("emergency-brake gap sweep (leader stops instantly, followers via DENM):");
    println!("  cruise gap   direct GBC       LTE-Uu relay");
    for gap in [0.1, 0.2, 0.3, 0.5, 0.8, 1.2] {
        let direct = run_platoon(&PlatoonConfig {
            gap_m: gap,
            leader_brakes_on_detection: true,
            ..base.clone()
        });
        let relay = run_platoon(&PlatoonConfig {
            gap_m: gap,
            leader_brakes_on_detection: true,
            link: PlatoonLink::LeaderCellularRelay(CellularProfile::lte_uu()),
            ..base.clone()
        });
        let show = |r: &its_testbed::platoon::PlatoonRecord| {
            format!(
                "min {:>5.2} m {}",
                r.min_gap_m,
                if r.collision() { "CRASH" } else { "ok   " }
            )
        };
        println!("  {gap:>7.1} m   {}   {}", show(&direct), show(&relay));
    }
}
