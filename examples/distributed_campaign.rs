//! Distributed campaign execution: the Table II campaign sharded across
//! worker *processes* instead of threads (DESIGN.md §10).
//!
//! The coordinator re-execs this very binary with a hidden
//! `--shard-worker` flag, hands each worker a contiguous seed-index
//! chunk over stdin, and merges the returned record frames in worker
//! order — producing bytes identical to a plain serial loop, which this
//! example verifies before printing anything.
//!
//! ```sh
//! cargo run -p shard --example distributed_campaign --release -- --shard-workers 4
//! ```

use its_testbed::campaign::{grid_fingerprint, CampaignSpec};
use its_testbed::experiments::table2;
use its_testbed::scenario::ScenarioConfig;
use its_testbed::Serial;
use shard::{CampaignRegistry, ShardExecutor};

const RUNS: usize = 24;

fn base() -> ScenarioConfig {
    ScenarioConfig {
        seed: 42,
        ..ScenarioConfig::default()
    }
}

// Must match what `experiments::table2` builds internally so the shard
// executor recognises the spec by fingerprint and actually shards.
fn table2_grid() -> Vec<CampaignSpec> {
    vec![CampaignSpec::new(base(), RUNS)]
}

fn shard_workers_flag() -> usize {
    let mut it = std::env::args();
    while let Some(arg) = it.next() {
        let value = if arg == "--shard-workers" {
            it.next().unwrap_or_default()
        } else if let Some(v) = arg.strip_prefix("--shard-workers=") {
            v.to_owned()
        } else {
            continue;
        };
        // Worker processes and worker threads share one count parser —
        // zero and garbage are rejected with the same error either way.
        match runner::parse_threads(&value) {
            Ok(n) => return n,
            Err(e) => {
                eprintln!("--shard-workers: {e}");
                std::process::exit(2);
            }
        }
    }
    2
}

fn main() {
    let registry = CampaignRegistry::new().register("table2", table2_grid);
    // Re-exec'd children enter worker mode here and never return.
    shard::worker_main_if_requested(&registry);

    let workers = shard_workers_flag();
    let exec = ShardExecutor::new(workers, "table2", &registry).expect("campaign is registered");
    println!(
        "Table II campaign: {RUNS} runs across {} worker process(es)",
        exec.workers()
    );
    println!(
        "campaign grid fingerprint: {:#018x}\n",
        grid_fingerprint(&table2_grid())
    );

    let sharded = table2(&exec, &base(), RUNS);
    let serial = table2(&Serial, &base(), RUNS);
    print!("{}", sharded.render());

    let identical = sharded.render() == serial.render();
    println!(
        "\nsharded output bitwise identical to serial: {identical} \
         ({} chunk(s) re-executed in-process, {} via worker timeout)",
        exec.fallback_chunks(),
        exec.timed_out_chunks()
    );
    if !identical {
        eprintln!("distributed_campaign: shard output diverged from serial");
        std::process::exit(1);
    }
}
