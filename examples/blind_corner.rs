//! The motivating blind-corner study (paper §I/§II): at an intersection
//! with an obstructed corner, vehicles have neither visual nor wireless
//! line of sight, so direct V2V warnings fail exactly when they are most
//! needed — while a road-side unit with line of sight to both legs
//! delivers reliably.
//!
//! This example sweeps the corner obstruction loss and compares V2V
//! delivery probability against V2I (via the RSU), reproducing the
//! argument for infrastructure support.
//!
//! ```sh
//! cargo run --example blind_corner --release
//! ```

use phy80211p::channel::{Channel, ChannelConfig, Obstacle, Position2D};
use phy80211p::ofdm::DataRate;
use sim_core::{SimRng, SimTime};

/// Delivery ratio of `n` frames over a link.
fn delivery_ratio(
    channel: &Channel,
    tx: Position2D,
    rx: Position2D,
    frame_bytes: usize,
    n: u32,
    rng: &mut SimRng,
) -> f64 {
    let ok = (0..n)
        .filter(|_| {
            channel
                .transmit(SimTime::ZERO, tx, rx, frame_bytes, DataRate::Mbps6, rng)
                .delivered
        })
        .count();
    f64::from(ok as u32) / f64::from(n)
}

fn main() {
    // Intersection geometry (metres): two roads meet at the origin; the
    // building occupies the inner corner. Vehicle A approaches from the
    // east, vehicle B from the north; the RSU hangs over the corner with
    // LoS down both legs.
    let vehicle_a = Position2D::new(40.0, -3.0);
    let vehicle_b = Position2D::new(-3.0, 40.0);
    let rsu = Position2D::new(-3.0, -3.0);
    let frame = 110; // DENM-sized

    println!("Blind-corner intersection: V2V vs infrastructure-aided delivery");
    println!(
        "vehicle A at ({:.0},{:.0}), B at ({:.0},{:.0}), RSU at the corner\n",
        vehicle_a.x, vehicle_a.y, vehicle_b.x, vehicle_b.y
    );
    println!("corner loss   V2V A->B   V2I A->RSU   V2I RSU->B   infra path");
    for loss_db in [0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0] {
        let mut cfg = ChannelConfig::default();
        cfg.obstacles.push(Obstacle {
            min: Position2D::new(2.0, 2.0),
            max: Position2D::new(30.0, 30.0),
            extra_loss_db: loss_db,
        });
        // NOTE: the corner building at (2..30, 2..30) blocks A↔B (the
        // diagonal) but not A↔RSU or RSU↔B (both run along the roads).
        let channel = Channel::new(cfg);
        let mut rng = SimRng::seed_from(42);
        let v2v = delivery_ratio(&channel, vehicle_a, vehicle_b, frame, 2000, &mut rng);
        let a_rsu = delivery_ratio(&channel, vehicle_a, rsu, frame, 2000, &mut rng);
        let rsu_b = delivery_ratio(&channel, rsu, vehicle_b, frame, 2000, &mut rng);
        println!(
            "  {loss_db:>5.0} dB   {v2v:>8.3}   {a_rsu:>10.3}   {rsu_b:>10.3}   {:>10.3}",
            a_rsu * rsu_b
        );
    }

    println!("\nWith a strongly obstructed corner the direct V2V link collapses while");
    println!("the two-leg infrastructure path stays reliable — the premise of the");
    println!("paper's network-aided collision avoidance use-case.");

    // Geometry check: only the A↔B diagonal crosses the building.
    let cfg = {
        let mut c = ChannelConfig::default();
        c.obstacles.push(Obstacle {
            min: Position2D::new(2.0, 2.0),
            max: Position2D::new(30.0, 30.0),
            extra_loss_db: 30.0,
        });
        c
    };
    let channel = Channel::new(cfg);
    println!(
        "\npath-loss check: A->B {:.1} dB, A->RSU {:.1} dB, RSU->B {:.1} dB",
        channel.path_loss_db(vehicle_a, vehicle_b),
        channel.path_loss_db(vehicle_a, rsu),
        channel.path_loss_db(rsu, vehicle_b),
    );
}
