//! The motivating blind-corner study (paper §I/§II), end to end: at an
//! intersection with an obstructed corner, vehicles have neither visual
//! nor wireless line of sight — while a road-side unit with line of
//! sight to both legs sees everything. The example runs the full
//! two-hazard scenario with and without collective perception (ETSI
//! TS 103 324 CPMs), then backs it with the channel-level argument.
//!
//! The road user crosses early, so the classic conflict never fires.
//! The real threat is a stalled obstacle just past the corner on the
//! protagonist's exit leg: its own forward sensor is occluded until far
//! inside braking distance, while the road-side camera sees the
//! obstacle the whole time. Only when the RSU packages its detections
//! as CPMs does the protagonist's LDM learn about the obstacle early
//! enough to stop clear.
//!
//! ```sh
//! cargo run --example blind_corner --release
//! cargo run --example blind_corner --release -- --faults rsu_silence:1.0
//! cargo run --example blind_corner --release -- --faults radio_silence:0.5
//! ```
//!
//! `--faults class:intensity` threads a [`its_testbed::faultsweep::plan_for`]
//! plan through both runs, so you can watch the cooperative-perception
//! advantage erode as the RSU's radio goes quiet.

use facilities::cpm::CpServiceConfig;
use faults::FaultPlan;
use its_testbed::faultsweep::plan_for;
use its_testbed::intersection::{
    IntersectionConfig, IntersectionRecord, IntersectionScenario, SecondHazard,
};
use phy80211p::channel::{Channel, ChannelConfig, Obstacle, Position2D};
use phy80211p::ofdm::DataRate;
use sim_core::{SimRng, SimTime};

/// Parses `--faults class:intensity` from the command line (empty plan
/// when absent). Exits with usage on a malformed argument.
fn fault_plan_from_args() -> (FaultPlan, String) {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let spec = match arg.strip_prefix("--faults=") {
            Some(rest) => rest.to_owned(),
            None if arg == "--faults" => args.next().unwrap_or_default(),
            None => continue,
        };
        let Some((class, intensity)) = spec.split_once(':') else {
            eprintln!("usage: --faults class:intensity (e.g. --faults rsu_silence:1.0)");
            std::process::exit(2);
        };
        let Ok(intensity) = intensity.parse::<f64>() else {
            eprintln!("intensity must be a number in [0, 1], got {intensity:?}");
            std::process::exit(2);
        };
        return (plan_for(class, intensity), spec);
    }
    (FaultPlan::default(), "none".to_owned())
}

/// The blind-corner geometry: road user crosses early (no classic
/// conflict), stalled obstacle 1 m past the crossing, own sensor range
/// 0.4 m — well inside the protagonist's braking distance.
fn blind_corner_config(cpm_on: bool, fault_plan: FaultPlan) -> IntersectionConfig {
    IntersectionConfig {
        seed: 1,
        protagonist_start_m: 12.0,
        road_user_start_m: 5.0,
        conflict_window_s: 0.8,
        second_hazard: Some(SecondHazard::default()),
        cpm: cpm_on.then(CpServiceConfig::default),
        fault_plan,
        ..IntersectionConfig::default()
    }
}

fn print_record(title: &str, record: &IntersectionRecord) {
    println!("{title}");
    println!(
        "  CPMs sent {} | delivered {} | LDM extended-range detections {}",
        record.cpm_sent, record.cpm_delivered, record.cpm_extended_detections
    );
    println!(
        "  braked for obstacle: {} ({}) | came to a stop: {} | collision: {}",
        record.second_hazard_braked,
        if record.second_hazard_via_cpm {
            "warned by CPM before the corner"
        } else if record.second_hazard_braked {
            "own sensor, past the corner"
        } else {
            "never saw it in time"
        },
        record.protagonist_stopped,
        record.collision
    );
    if let Some(margin) = record.halt_margin_m {
        println!("  halt margin before the conflict point: {margin:.2} m");
    }
    println!(
        "  min separation {:.2} m | faults injected {}\n",
        record.min_separation_m, record.fault.injected
    );
}

/// Delivery ratio of `n` frames over a link.
fn delivery_ratio(
    channel: &Channel,
    tx: Position2D,
    rx: Position2D,
    frame_bytes: usize,
    n: u32,
    rng: &mut SimRng,
) -> f64 {
    let ok = (0..n)
        .filter(|_| {
            channel
                .transmit(SimTime::ZERO, tx, rx, frame_bytes, DataRate::Mbps6, rng)
                .delivered
        })
        .count();
    f64::from(ok as u32) / f64::from(n)
}

fn main() {
    let (fault_plan, fault_label) = fault_plan_from_args();
    println!(
        "Blind corner: early-crossing road user + stalled obstacle 1.0 m past \
         the crossing (faults: {fault_label})\n"
    );

    let off = IntersectionScenario::new(blind_corner_config(false, fault_plan.clone())).run();
    print_record("own sensors only (no collective perception):", &off);

    let on = IntersectionScenario::new(blind_corner_config(true, fault_plan)).run();
    print_record("RSU collective perception (CPM over 802.11p):", &on);

    if on.second_hazard_via_cpm && !off.second_hazard_via_cpm {
        println!("=> the CPM feed is the only path that sees the occluded obstacle in time\n");
    } else if !on.second_hazard_via_cpm {
        println!("=> the injected fault starved the CPM feed — cooperative perception lost\n");
    }
    // Faultless runs double as a smoke gate (scripts/check.sh): the
    // ablation must hold — CPM-on clears the corner, CPM-off collides.
    if fault_label == "none" && !(on.second_hazard_via_cpm && !on.collision && off.collision) {
        eprintln!("blind_corner: CPM ablation violated on a faultless run");
        std::process::exit(1);
    }

    // The channel-level argument behind the scenario: the corner
    // building blocks the V2V diagonal, not the two road legs the
    // infrastructure path uses.
    let vehicle_a = Position2D::new(40.0, -3.0);
    let vehicle_b = Position2D::new(-3.0, 40.0);
    let rsu = Position2D::new(-3.0, -3.0);
    let frame = 110; // DENM-sized

    println!("channel view: V2V vs infrastructure-aided delivery");
    println!("corner loss   V2V A->B   V2I A->RSU   V2I RSU->B   infra path");
    for loss_db in [0.0, 10.0, 20.0, 30.0] {
        let mut cfg = ChannelConfig::default();
        cfg.obstacles.push(Obstacle {
            min: Position2D::new(2.0, 2.0),
            max: Position2D::new(30.0, 30.0),
            extra_loss_db: loss_db,
        });
        let channel = Channel::new(cfg);
        let mut rng = SimRng::seed_from(42);
        let v2v = delivery_ratio(&channel, vehicle_a, vehicle_b, frame, 2000, &mut rng);
        let a_rsu = delivery_ratio(&channel, vehicle_a, rsu, frame, 2000, &mut rng);
        let rsu_b = delivery_ratio(&channel, rsu, vehicle_b, frame, 2000, &mut rng);
        println!(
            "  {loss_db:>5.0} dB   {v2v:>8.3}   {a_rsu:>10.3}   {rsu_b:>10.3}   {:>10.3}",
            a_rsu * rsu_b
        );
    }
    println!("\nWith a strongly obstructed corner the direct V2V link collapses while");
    println!("the two-leg infrastructure path stays reliable — the premise of the");
    println!("paper's network-aided collision avoidance use-case.");
}
