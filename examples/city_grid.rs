//! City-scale beaconing on an urban Manhattan grid: vehicles CAM under
//! DCC, RSUs issue periodic DENMs, and the spatial grid culls receivers
//! beyond the channel's cutoff radius so each broadcast only evaluates
//! its street-scale neighbourhood.
//!
//! `--nodes N` sets the fleet size of the single-city detail run;
//! `--threads N` (or `RUNNER_THREADS`) picks the sweep's worker count —
//! the table is identical either way.
//!
//! ```sh
//! cargo run --example city_grid --release -- --nodes 500 --threads 4
//! ```

use its_testbed::city::{run_city, sweep_city, CityConfig};
use its_testbed::Runner;

/// Scans the arguments for `--nodes N` / `--nodes=N`, reusing the
/// strict positive-integer parser the `--threads` flag uses.
fn nodes_flag(args: impl IntoIterator<Item = String>) -> Result<Option<usize>, String> {
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--nodes" {
            let value = it.next().unwrap_or_default();
            return runner::parse_threads(&value)
                .map(Some)
                .map_err(|e| e.to_string());
        }
        if let Some(v) = arg.strip_prefix("--nodes=") {
            return runner::parse_threads(v)
                .map(Some)
                .map_err(|e| e.to_string());
        }
    }
    Ok(None)
}

fn main() {
    let runner = match runner::threads_flag(std::env::args()) {
        Ok(Some(n)) => Runner::new(n),
        Ok(None) => Runner::from_env(),
        Err(e) => {
            eprintln!("--threads: {e}");
            std::process::exit(2);
        }
    };
    let nodes = match nodes_flag(std::env::args()) {
        Ok(n) => n.unwrap_or(500),
        Err(e) => {
            eprintln!("--nodes: {e}");
            std::process::exit(2);
        }
    };

    println!("City-scale ITS beaconing — spatial-grid receiver culling\n");
    println!(
        "Node-count sweep (10 s simulated each, {} worker thread(s)):",
        runner.threads()
    );
    print!(
        "{}",
        sweep_city(&runner, &CityConfig::default(), &[100, 500, 2000])
    );

    // Zoom into one city, culled vs exhaustive.
    let config = CityConfig {
        n_stations: nodes,
        ..CityConfig::default()
    };
    let culled = run_city(&config);
    let exhaustive = run_city(&CityConfig {
        exhaustive: true,
        ..config
    });
    println!("\n{nodes}-node city detail:");
    println!("  CAMs on the air: {}", culled.cams_transmitted);
    println!(
        "  in-cutoff CAM delivery ratio: {:.4}",
        culled.cam_delivery_ratio
    );
    println!("  mean CBR: {:.4}", culled.mean_cbr);
    println!(
        "  DENM receptions: {} (mean latency {:.3} ms)",
        culled.denm_receptions, culled.mean_denm_latency_ms
    );
    println!("  worst DCC state reached: {:?}", culled.worst_dcc_state);
    println!(
        "  channel evaluations: {} culled vs {} exhaustive ({:.1}× fewer)",
        culled.events,
        exhaustive.events,
        exhaustive.events as f64 / culled.events.max(1) as f64
    );
    println!();
    println!("Culled receivers are beyond the cutoff radius, where delivery");
    println!("probability is below 2e-6 even at +4.75 sigma shadowing — and");
    println!("because per-receiver randomness is forked per (frame, receiver),");
    println!("skipping them changes no other receiver's draws: both modes");
    println!("produce the bit-identical record.");
    assert_eq!(
        culled.cams_transmitted, exhaustive.cams_transmitted,
        "culled and exhaustive runs diverged"
    );
}
