//! Fault-sweep campaign: fault class × intensity grid with the V2X
//! heartbeat watchdog enabled (DESIGN.md §11).
//!
//! Runs the sweep serially and on the thread runner, verifies the two
//! tables are byte-identical (the determinism contract of the fault
//! plane), and prints the aggregated grid plus its fingerprint.
//!
//! ```sh
//! cargo run -p its-testbed --example fault_sweep --release -- --runs 8
//! ```

use its_testbed::faultsweep::{fault_sweep, fault_sweep_specs};
use its_testbed::scenario::ScenarioConfig;
use its_testbed::{Runner, Serial};

fn runs_flag() -> usize {
    let mut it = std::env::args();
    while let Some(arg) = it.next() {
        let value = if arg == "--runs" {
            it.next().unwrap_or_default()
        } else if let Some(v) = arg.strip_prefix("--runs=") {
            v.to_owned()
        } else {
            continue;
        };
        match value.parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => {
                eprintln!("--runs: expected a positive integer, got {value:?}");
                std::process::exit(2);
            }
        }
    }
    8
}

fn main() {
    let runs = runs_flag();
    let base = ScenarioConfig {
        seed: 7000,
        ..ScenarioConfig::default()
    };
    let cells = fault_sweep_specs(&base, runs).len();
    println!("fault sweep: {cells} cells × {runs} runs, watchdog enabled\n");

    let serial = fault_sweep(&Serial, &base, runs);
    let threaded = fault_sweep(&Runner::from_env(), &base, runs);
    print!("{}", serial.render());
    println!("\nsweep fingerprint: {:#018x}", serial.fingerprint());

    let identical = serial == threaded;
    println!("threaded sweep bitwise identical to serial: {identical}");
    if !identical {
        eprintln!("fault_sweep: threaded sweep diverged from serial");
        std::process::exit(1);
    }
}
