//! Ablation sweeps over the testbed's design parameters: polling
//! period, camera frame rate, Action Point placement, approach speed,
//! NTP quality, and the hazard trigger rule (fixed Action Point vs
//! time-to-collision from the motion tracker).
//!
//! Every sweep runs on the deterministic parallel campaign runner;
//! pick the worker count with `--threads N` (or the `RUNNER_THREADS`
//! environment variable — the flag wins). The tables are bitwise
//! identical for every thread count; only the wall-clock changes, as
//! the speedup section at the end demonstrates on a ≥256-run campaign.
//!
//! ```sh
//! cargo run --example ablation_sweeps --release -- --threads 4
//! ```

use its_testbed::ablation::{
    sweep_action_point, sweep_camera_fps, sweep_ntp_quality, sweep_poll_period, sweep_shadowing,
    sweep_speed, sweep_tx_power,
};
use its_testbed::scenario::{HazardRule, Scenario, ScenarioConfig};
use its_testbed::Runner;
use std::time::Instant;

fn main() {
    // `--threads N` wins over `RUNNER_THREADS` / the machine; zero and
    // garbage are rejected by the shared parser in crate `runner`.
    let runner = match runner::threads_flag(std::env::args()) {
        Ok(Some(n)) => Runner::new(n),
        Ok(None) => Runner::from_env(),
        Err(e) => {
            eprintln!("--threads: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "campaign runner: {} worker thread(s) (override with --threads N or RUNNER_THREADS)\n",
        runner.threads()
    );

    let base = ScenarioConfig {
        seed: 7000,
        ..ScenarioConfig::default()
    };
    let runs = 12;

    println!("== polling period (the #4->#5 knob) ==");
    println!(
        "{}",
        sweep_poll_period(&runner, &base, &[10, 25, 50, 100, 200], runs).render()
    );

    println!("== camera frame rate (the #1->#2 knob) ==");
    println!(
        "{}",
        sweep_camera_fps(&runner, &base, &[2.0, 4.0, 8.0, 15.0], runs).render()
    );

    println!("== action point placement (safety margin) ==");
    println!(
        "{}",
        sweep_action_point(&runner, &base, &[1.0, 1.25, 1.52, 1.8, 2.2], runs).render()
    );

    println!("== approach speed (braking distance growth) ==");
    println!(
        "{}",
        sweep_speed(&runner, &base, &[0.75, 1.0, 1.5, 2.0, 3.0], runs).render()
    );

    println!("== NTP quality (measurement noise, not latency) ==");
    println!(
        "{}",
        sweep_ntp_quality(
            &runner,
            &base,
            &[0.0, 300.0, 1_000.0, 5_000.0, 10_000.0],
            runs
        )
        .render()
    );

    println!("== transmit power (link-budget cliff) ==");
    println!(
        "{}",
        sweep_tx_power(
            &runner,
            &base,
            &[-45.0, -40.0, -36.0, -32.0, 0.0, 23.0],
            runs
        )
        .render()
    );

    println!("== shadowing sigma at the link margin (tx −32 dBm) ==");
    println!(
        "{}",
        sweep_shadowing(&runner, &base, &[0.0, 3.0, 6.0, 12.0], runs).render()
    );

    println!("== hazard rule: fixed Action Point vs time-to-collision ==");
    println!("  rule                      detected at (m)   halt margin (m)");
    for (name, rule) in [
        ("action point 1.52 m", HazardRule::ActionPoint),
        (
            "TTC 1.2 s (3 hits)",
            HazardRule::TimeToCollision {
                ttc_s: 1.2,
                min_hits: 3,
            },
        ),
        (
            "TTC 2.0 s (3 hits)",
            HazardRule::TimeToCollision {
                ttc_s: 2.0,
                min_hits: 3,
            },
        ),
    ] {
        let rule_base = ScenarioConfig {
            hazard_rule: rule,
            ..base.clone()
        };
        let records = runner.run(runs, |i| Scenario::run_seeded(&rule_base, i as u64));
        let mut detected = Vec::new();
        let mut margin = Vec::new();
        for r in &records {
            if let (Some(d), Some(m)) = (r.detection_distance_m, r.halt_distance_to_camera_m) {
                detected.push(d);
                margin.push(m);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "  {name:<24}  {:>15.2}   {:>15.2}",
            mean(&detected),
            mean(&margin)
        );
    }

    // — Parallel speedup on a larger campaign: 2 parameter values ×
    //   128 runs = 256 seeded scenarios, timed at 1 thread and at the
    //   selected worker count (≥ 4 thread speedup exceeds 2× on
    //   multicore hardware), with the determinism guarantee checked on
    //   the rendered output.
    let speedup_threads = if runner.threads() > 1 {
        runner.threads()
    } else {
        4
    };
    let speedup_runs = 128;
    let params = [25u64, 50];
    println!(
        "\n== parallel runner speedup ({} seeded runs) ==",
        params.len() * speedup_runs
    );
    let t0 = Instant::now();
    let serial = sweep_poll_period(&Runner::new(1), &base, &params, speedup_runs);
    let serial_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let parallel = sweep_poll_period(&Runner::new(speedup_threads), &base, &params, speedup_runs);
    let parallel_s = t1.elapsed().as_secs_f64();
    println!("  1 thread : {serial_s:>7.2} s");
    println!("  {speedup_threads} threads: {parallel_s:>7.2} s");
    println!("  speedup  : {:>7.2}x", serial_s / parallel_s);
    println!(
        "  rendered tables bitwise identical: {}",
        serial.render() == parallel.render()
    );
}
