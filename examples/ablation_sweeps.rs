//! Ablation sweeps over the testbed's design parameters: polling
//! period, camera frame rate, Action Point placement, approach speed,
//! NTP quality, and the hazard trigger rule (fixed Action Point vs
//! time-to-collision from the motion tracker).
//!
//! ```sh
//! cargo run --example ablation_sweeps --release
//! ```

use its_testbed::ablation::{
    sweep_action_point, sweep_camera_fps, sweep_ntp_quality, sweep_poll_period, sweep_shadowing,
    sweep_speed, sweep_tx_power,
};
use its_testbed::scenario::{HazardRule, Scenario, ScenarioConfig};

fn main() {
    let base = ScenarioConfig {
        seed: 7000,
        ..ScenarioConfig::default()
    };
    let runs = 12;

    println!("== polling period (the #4->#5 knob) ==");
    println!(
        "{}",
        sweep_poll_period(&base, &[10, 25, 50, 100, 200], runs).render()
    );

    println!("== camera frame rate (the #1->#2 knob) ==");
    println!(
        "{}",
        sweep_camera_fps(&base, &[2.0, 4.0, 8.0, 15.0], runs).render()
    );

    println!("== action point placement (safety margin) ==");
    println!(
        "{}",
        sweep_action_point(&base, &[1.0, 1.25, 1.52, 1.8, 2.2], runs).render()
    );

    println!("== approach speed (braking distance growth) ==");
    println!(
        "{}",
        sweep_speed(&base, &[0.75, 1.0, 1.5, 2.0, 3.0], runs).render()
    );

    println!("== NTP quality (measurement noise, not latency) ==");
    println!(
        "{}",
        sweep_ntp_quality(&base, &[0.0, 300.0, 1_000.0, 5_000.0, 10_000.0], runs).render()
    );

    println!("== transmit power (link-budget cliff) ==");
    println!(
        "{}",
        sweep_tx_power(&base, &[-45.0, -40.0, -36.0, -32.0, 0.0, 23.0], runs).render()
    );

    println!("== shadowing sigma at the link margin (tx −32 dBm) ==");
    println!(
        "{}",
        sweep_shadowing(&base, &[0.0, 3.0, 6.0, 12.0], runs).render()
    );

    println!("== hazard rule: fixed Action Point vs time-to-collision ==");
    println!("  rule                      detected at (m)   halt margin (m)");
    for (name, rule) in [
        ("action point 1.52 m", HazardRule::ActionPoint),
        (
            "TTC 1.2 s (3 hits)",
            HazardRule::TimeToCollision {
                ttc_s: 1.2,
                min_hits: 3,
            },
        ),
        (
            "TTC 2.0 s (3 hits)",
            HazardRule::TimeToCollision {
                ttc_s: 2.0,
                min_hits: 3,
            },
        ),
    ] {
        let mut detected = Vec::new();
        let mut margin = Vec::new();
        for i in 0..runs {
            let r = Scenario::new(ScenarioConfig {
                seed: base.seed + i as u64,
                hazard_rule: rule,
                ..base.clone()
            })
            .run();
            if let (Some(d), Some(m)) = (r.detection_distance_m, r.halt_distance_to_camera_m) {
                detected.push(d);
                margin.push(m);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "  {name:<24}  {:>15.2}   {:>15.2}",
            mean(&detected),
            mean(&margin)
        );
    }
}
