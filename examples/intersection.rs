//! The paper's Figure 1 use-case, end to end: two vehicles meet at a
//! blind-corner intersection; only the road-side infrastructure can see
//! (and warn about) the conflict.
//!
//! ```sh
//! cargo run --example intersection --release
//! ```

use its_testbed::intersection::{IntersectionConfig, IntersectionScenario};

fn run_and_print(title: &str, config: IntersectionConfig) {
    let record = IntersectionScenario::new(config).run();
    println!("{title}");
    println!(
        "  DENM sent: {} | delivered: {} | protagonist stopped: {}",
        record.denm_sent, record.denm_delivered, record.protagonist_stopped
    );
    if let Some(m) = record.halt_margin_m {
        println!("  halt margin before the crossing: {m:.2} m");
    }
    println!(
        "  min separation: {:.2} m -> {}",
        record.min_separation_m,
        if record.collision {
            "COLLISION"
        } else {
            "no collision"
        }
    );
    println!("  trace:");
    for e in record.trace.events() {
        println!("    {e}");
    }
    println!();
}

fn main() {
    println!("Blind-corner intersection: protagonist (ETSI ITS OBU) meets a");
    println!("non-connected road user; the corner blocks vision and V2V radio.\n");

    run_and_print(
        "with road-side infrastructure (camera + edge + RSU):",
        IntersectionConfig {
            seed: 42,
            ..IntersectionConfig::default()
        },
    );

    run_and_print(
        "without infrastructure (the ablation):",
        IntersectionConfig {
            seed: 42,
            with_infrastructure: false,
            ..IntersectionConfig::default()
        },
    );

    // Sensitivity: how tight can the conflict window be before real
    // conflicts are missed, and how loose before phantom braking? The
    // road user's start is offset 0–3 m across seeds, grading the timing
    // difference from head-on conflict to a clear miss; ground truth for
    // each timing comes from the matching no-infrastructure run.
    println!("conflict-window sweep (timing offsets 0–3 m, 24 seeds each):");
    println!("  window (s)   DENMs sent   collisions w/infra   phantom stops");
    for window in [0.25, 0.5, 1.0, 1.5, 2.5] {
        let mut sent = 0;
        let mut missed = 0;
        let mut phantom = 0;
        for seed in 0..24u64 {
            let offset = (seed % 4) as f64;
            let cfg = IntersectionConfig {
                seed,
                conflict_window_s: window,
                road_user_start_m: 6.0 + offset,
                ..IntersectionConfig::default()
            };
            let baseline = IntersectionScenario::new(IntersectionConfig {
                with_infrastructure: false,
                ..cfg.clone()
            })
            .run();
            let r = IntersectionScenario::new(cfg).run();
            if r.denm_sent {
                sent += 1;
                if !baseline.collision {
                    phantom += 1; // braked although they would have missed
                }
            }
            if r.collision {
                missed += 1;
            }
        }
        println!("  {window:>9.2}   {sent:>10}   {missed:>18}   {phantom:>13}");
    }
    println!();
    println!("Narrow windows only fire on genuinely aligned timings; very wide");
    println!("windows brake for near-misses too (phantom stops) and can even park");
    println!("the protagonist right at the crossing edge while the road user");
    println!("passes — counted above as collisions in the with-infrastructure runs.");
}
