//! DENM on the wire: build the exact message of the paper's use-case
//! (cause code 97, *collision risk*, sub-cause 2, *crossing collision
//! risk*), push it through the real OpenC2X-style HTTP API over TCP and
//! through the GeoNetworking/BTP encapsulation, and show every byte
//! level of the stack.
//!
//! ```sh
//! cargo run --example denm_wire
//! ```

use std::sync::Arc;

use geonet::btp::BtpPort;
use geonet::headers::TrafficClass;
use geonet::{GeoArea, GnAddress, GnPacket, LongPositionVector};
use its_messages::cause_codes::{CauseCode, CollisionRiskSubCause};
use its_messages::common::{
    ActionId, ReferencePosition, RelevanceDistance, StationId, StationType, TimestampIts,
};
use its_messages::denm::{Denm, ManagementContainer, SituationContainer};
use openc2x::api::{ObuApi, RsuApi};
use openc2x::http::post;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Facilities layer: the DENM itself. ---
    let rsu_id = StationId::new(15)?;
    let event_position = ReferencePosition::from_degrees(41.178, -8.608);
    let mut management = ManagementContainer::new(
        ActionId::new(rsu_id, 1),
        TimestampIts::new(1_000)?,
        TimestampIts::new(1_005)?,
        event_position,
        StationType::RoadSideUnit,
    );
    management.relevance_distance = Some(RelevanceDistance::LessThan50m);
    let denm = Denm::new(rsu_id, management).with_situation(SituationContainer::new(
        7,
        CauseCode::CollisionRisk(CollisionRiskSubCause::CrossingCollisionRisk),
    )?);

    let denm_bytes = denm.to_bytes()?;
    println!("UPER-encoded DENM ({} bytes):", denm_bytes.len());
    println!("  {}\n", hex(&denm_bytes));

    // --- Transport + network: BTP-B on GeoBroadcast. ---
    let source = LongPositionVector::new(GnAddress::new(15), 1_005, 41.178, -8.608, 0.0, 0.0);
    let area = GeoArea::circle(41.178, -8.608, 100.0);
    let packet = GnPacket::geo_broadcast(
        source,
        1,
        area,
        TrafficClass::dp0(),
        BtpPort::DENM,
        denm_bytes.clone(),
    );
    let wire = packet.to_bytes();
    println!(
        "GeoNetworking GBC + BTP-B frame ({} bytes, DCC profile DP0 -> AC_VO):",
        wire.len()
    );
    println!("  {}\n", hex(&wire));

    let at = phy80211p::ofdm::airtime(wire.len(), phy80211p::ofdm::DataRate::Mbps6);
    println!("802.11p airtime at 6 Mbit/s: {at}\n");

    // --- Application API over real TCP, like the testbed's HTTP flow. ---
    let rsu_api = Arc::new(RsuApi::new());
    let rsu_server = rsu_api.serve("127.0.0.1:0")?;
    let obu_api = Arc::new(ObuApi::new());
    let obu_server = obu_api.serve("127.0.0.1:0")?;

    // Edge node -> RSU: POST /trigger_denm.
    let resp = post(rsu_server.addr(), "/trigger_denm", &denm_bytes)?;
    println!("edge -> RSU  POST /trigger_denm  -> HTTP {}", resp.status);

    // RSU stack takes the DENM off the outbox and "transmits" it; here we
    // hand it straight to the OBU's pending queue.
    for d in rsu_api.take_outbox() {
        obu_api.deliver(d);
    }

    // Vehicle -> OBU: POST /request_denm (the polling script's request).
    let empty_then_full = post(obu_server.addr(), "/request_denm", b"")?;
    println!(
        "vehicle -> OBU POST /request_denm -> HTTP {} with {} bytes",
        empty_then_full.status,
        empty_then_full.body.len()
    );
    let received = Denm::from_bytes(&empty_then_full.body)?;
    println!(
        "vehicle decoded DENM: {} (requires emergency brake: {})",
        received.event_type().expect("situation present"),
        received
            .event_type()
            .map(|c| c.requires_emergency_brake())
            .unwrap_or(false)
    );

    // A second poll finds nothing: HTTP 200, empty body (paper §III-D2).
    let empty = post(obu_server.addr(), "/request_denm", b"")?;
    println!(
        "second poll -> HTTP {} with {} bytes (no DENM pending)",
        empty.status,
        empty.body.len()
    );

    rsu_server.shutdown();
    obu_server.shutdown();
    Ok(())
}

fn hex(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect::<Vec<_>>()
        .join(" ")
}
