//! Campaign-as-a-service walkthrough (DESIGN.md §14): boot socket
//! workers, serve campaigns over HTTP, submit one, verify the stream.
//!
//! The binary plays every role in turn. Re-exec'd with `--shard-listen`
//! it becomes a socket worker; otherwise it binds a worker-registration
//! control port, spawns `--workers` worker processes, starts the
//! campaign server on `--addr`, submits the Table II campaign to itself
//! through the HTTP client (with the OBU poll path's retry policy), and
//! checks the returned result stream is byte-identical to a plain
//! serial loop before printing anything.
//!
//! ```sh
//! cargo run -p campaignd --example campaign_server --release -- --workers 2 --addr 127.0.0.1:0
//! ```

use campaignd::{client, CampaignServer, WorkerPool};
use its_testbed::campaign::{grid_fingerprint, CampaignSpec, Executor, Serial};
use its_testbed::scenario::ScenarioConfig;
use its_testbed::submission::CampaignSubmission;
use openc2x::http::RetryPolicy;
use shard::protocol::encode_results;
use std::time::Duration;

const RUNS: usize = 24;

fn base() -> ScenarioConfig {
    ScenarioConfig {
        seed: 42,
        ..ScenarioConfig::default()
    }
}

fn table2_grid() -> Vec<CampaignSpec> {
    vec![CampaignSpec::new(base(), RUNS)]
}

/// A small multi-spec sweep (cruise speed × seeds) to show a flattened
/// grid crossing the server.
fn city_sweep_grid() -> Vec<CampaignSpec> {
    [4.0f64, 6.0, 8.0]
        .iter()
        .map(|&v| {
            CampaignSpec::new(
                ScenarioConfig {
                    seed: 42,
                    cruise_speed_mps: v,
                    ..ScenarioConfig::default()
                },
                4,
            )
        })
        .collect()
}

fn registry() -> its_testbed::campaign::CampaignRegistry {
    its_testbed::campaign::CampaignRegistry::new()
        .register("table2", table2_grid)
        .register("city_sweep", city_sweep_grid)
}

fn flag(name: &str, default: &str) -> String {
    let mut it = std::env::args();
    while let Some(arg) = it.next() {
        if arg == name {
            return it.next().unwrap_or_default();
        }
        if let Some(v) = arg.strip_prefix(&format!("{name}=")) {
            return v.to_owned();
        }
    }
    default.to_owned()
}

fn main() {
    let registry = registry();
    // Re-exec'd children enter socket-worker mode here and never return.
    campaignd::socket_worker_main_if_requested(&registry);

    let workers: usize = match flag("--workers", "2").parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("--workers: expected a number");
            std::process::exit(2);
        }
    };
    let addr = flag("--addr", "127.0.0.1:0");

    let pool = WorkerPool::bind().expect("bind worker control port");
    let procs =
        campaignd::spawn_socket_workers(workers, pool.ctrl_addr()).expect("spawn socket workers");
    if !pool.wait_for(workers, Duration::from_secs(30)) {
        eprintln!("campaign_server: workers failed to register in time");
        std::process::exit(1);
    }

    let server = CampaignServer::new(registry)
        .with_workers(pool.workers())
        .serve(&addr)
        .expect("bind campaign server");
    println!(
        "campaign server on http://{} with {} socket worker(s)",
        server.addr(),
        workers
    );
    println!(
        "campaigns on offer: {}",
        client::list_campaigns(server.addr())
            .expect("list campaigns")
            .join(", ")
    );

    // Submit Table II through the HTTP front door, retrying like the
    // OBU's DENM poll does while the server warms up.
    let grid = table2_grid();
    let submission = CampaignSubmission::for_grid("table2", &grid);
    println!(
        "submitting `table2`: {} runs, grid fingerprint {:#018x}",
        submission.runs,
        grid_fingerprint(&grid)
    );
    let records =
        client::submit_with_retry(server.addr(), "table2", &grid, &RetryPolicy::default())
            .expect("submit table2");

    let serial: Vec<_> = Serial.execute_grid(&grid).into_iter().flatten().collect();
    let identical = encode_results(&records) == encode_results(&serial);
    println!(
        "served stream bitwise identical to serial: {identical} \
         ({} chunk(s) re-executed in-process)",
        server.fallback_chunks()
    );

    drop(procs);
    server.shutdown();
    if !identical {
        eprintln!("campaign_server: served stream diverged from serial");
        std::process::exit(1);
    }
}
