//! Tier-1 tests for the deterministic fault-injection plane (DESIGN.md
//! §11): arbitrary fault plans stay bitwise reproducible across
//! executors, injected corruption never panics the real decoders, the
//! empty plan is a strict no-op, and the vehicle's heartbeat watchdog
//! degrades and recovers as specified.

use faults::{FaultInjector, FaultKind, FaultPlan, FaultStats, FaultWindow};
use its_testbed::campaign::{CampaignSpec, Executor, Serial};
use its_testbed::scenario::{Scenario, ScenarioConfig};
use its_testbed::Runner;
use openc2x::node::{ItsStation, StationConfig};
use proptest::prelude::*;
use sim_core::{NodeClock, NtpModel, SimDuration, SimRng, SimTime};
use vehicle::watchdog::WatchdogConfig;

fn base(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        ..ScenarioConfig::default()
    }
}

#[test]
fn empty_plan_leaves_fault_counters_zero() {
    let record = Scenario::new(base(1)).run();
    assert!(record.completed());
    assert_eq!(record.fault, FaultStats::default());
}

#[test]
fn healthy_watchdog_run_stays_nominal_and_completes() {
    // Heartbeat CAMs flow at 100 ms over a clean 1.7 m link: the
    // watchdog must never trip, and the pipeline completes as usual.
    let record = Scenario::new(ScenarioConfig {
        watchdog: Some(WatchdogConfig::default()),
        ..base(5)
    })
    .run();
    assert!(record.completed(), "{record:?}");
    assert_eq!(record.fault.watchdog_speed_caps, 0);
    assert_eq!(record.fault.watchdog_stops, 0);
    assert!(!record.fault.failsafe_stop);
    assert!(!record.fault.overran_camera);
}

#[test]
fn total_radio_silence_after_detection_fails_safe() {
    // The hazard is detected, then the radio dies for good: the DENM
    // never arrives, the heartbeats starve, and the watchdog must stop
    // the vehicle before the camera line — a controlled fail-safe stop,
    // not a collision. Detection leaves ~1 s of travel to the camera,
    // so this demo uses a ladder tight enough to stop inside it (the
    // library default of 400 ms/1.2 s is tuned for cruising, not for a
    // hazard already this close).
    let nominal = Scenario::new(base(11)).run();
    let detect = nominal.step2_detection.expect("nominal run detects");
    let record = Scenario::new(ScenarioConfig {
        fault_plan: FaultPlan::new(vec![
            FaultKind::RadioSilence { prob: 1.0 }.during(FaultWindow::new(detect, SimTime::MAX))
        ]),
        watchdog: Some(WatchdogConfig {
            stale_after: SimDuration::from_millis(150),
            stop_after: SimDuration::from_millis(400),
            ..WatchdogConfig::default()
        }),
        ..base(11)
    })
    .run();
    assert!(!record.denm_delivered, "silent radio delivered a DENM");
    assert!(!record.completed());
    assert!(record.fault.failsafe_stop, "{record:?}");
    assert!(!record.fault.overran_camera, "vehicle hit the camera line");
    assert!(record.fault.watchdog_stops >= 1);
    let margin = record
        .halt_distance_to_camera_m
        .expect("fail-safe halt recorded");
    assert!(margin > 0.0, "stopped {margin} m past the camera");
}

#[test]
fn transient_radio_silence_recovers_to_nominal() {
    // An 800 ms outage before the hazard: the watchdog caps the speed,
    // recovers when beacons resume, and the pipeline then completes.
    let record = Scenario::new(ScenarioConfig {
        fault_plan: FaultPlan::new(vec![FaultKind::RadioSilence { prob: 1.0 }.during(
            FaultWindow::new(SimTime::from_millis(300), SimTime::from_millis(1100)),
        )]),
        watchdog: Some(WatchdogConfig::default()),
        ..base(12)
    })
    .run();
    assert!(record.fault.watchdog_speed_caps >= 1, "{record:?}");
    assert!(record.fault.watchdog_recoveries >= 1, "{record:?}");
    assert!(!record.fault.failsafe_stop);
    assert!(!record.fault.overran_camera);
    assert!(record.completed(), "{record:?}");
}

#[test]
fn transient_http_stall_latency_follows_retry_schedule() {
    // Stall every poll attempt starting within 50 ms of the DENM
    // reaching the OBU. The first attempt of the next poll stalls; the
    // retry schedule (20 ms timeout + 10 ms backoff per round) decides
    // exactly how much later the planner is notified.
    let nominal = Scenario::new(base(21)).run();
    let step4 = nominal.step4_obu_recv.expect("nominal run delivers");
    let stalled = Scenario::new(ScenarioConfig {
        fault_plan: FaultPlan::new(vec![FaultKind::HttpStall { prob: 1.0 }.during(
            FaultWindow::new(step4, step4 + SimDuration::from_millis(50)),
        )]),
        ..base(21)
    })
    .run();
    assert!(stalled.completed(), "{stalled:?}");
    assert_eq!(stalled.step4_obu_recv, nominal.step4_obu_recv);
    let stalls = stalled.fault.http_stalls;
    assert!((1..=2).contains(&stalls), "{stalls} stalls");
    // delay = timeout + backoff per stalled attempt: 30 ms after one
    // stall, 70 ms after two (20+10+20+20). The actuation shift equals
    // the retry delay up to the ECU's own sub-millisecond issue jitter
    // (the 30 ms displacement interleaves different timing-stream draws
    // into the issue latency).
    let expected = SimDuration::from_millis(if stalls == 1 { 30 } else { 70 });
    let delta = stalled
        .step5_actuation
        .unwrap()
        .saturating_duration_since(nominal.step5_actuation.unwrap());
    let jitter_ns = delta.as_nanos().abs_diff(expected.as_nanos());
    assert!(
        jitter_ns < 1_000_000,
        "actuation shifted by {delta:?}, retry schedule says {expected:?}"
    );
    assert_eq!(stalled.fault.http_giveups, 0);
}

#[test]
fn persistent_http_stall_exhausts_retries_and_never_actuates() {
    let record = Scenario::new(ScenarioConfig {
        fault_plan: FaultPlan::new(vec![
            FaultKind::HttpStall { prob: 1.0 }.during(FaultWindow::always())
        ]),
        ..base(22)
    })
    .run();
    assert!(record.denm_delivered, "DENM still reaches the OBU");
    assert!(record.fault.http_giveups > 0, "{record:?}");
    assert!(record.step5_actuation.is_none(), "{record:?}");
    // Without a watchdog the un-notified vehicle drives on and overruns.
    assert!(record.fault.overran_camera);
}

fn obu_station(seed: u64) -> ItsStation {
    let mut rng = SimRng::seed_from(seed).fork("clocks");
    let clock = NodeClock::sample(&NtpModel::default(), &mut rng, 0);
    let mut obu = ItsStation::new(
        StationConfig::obu(its_messages::common::StationId::new(7).expect("static id")),
        clock,
    );
    obu.set_motion(1.5, 270.0);
    obu
}

proptest! {
    #[test]
    fn arbitrary_fault_plan_is_bitwise_identical_across_executors(plan_seed in 0u64..1_000_000) {
        let plan = FaultPlan::sample(
            &mut SimRng::seed_from(plan_seed).fork("plan"),
            SimDuration::from_secs(5),
        );
        let spec = CampaignSpec::new(
            ScenarioConfig {
                fault_plan: plan,
                watchdog: Some(WatchdogConfig::default()),
                ..base(9000 + plan_seed)
            },
            3,
        );
        let serial = Serial.execute(&spec);
        let threaded = Runner::new(8).execute(&spec);
        prop_assert_eq!(serial.len(), threaded.len());
        for (i, (a, b)) in serial.iter().zip(&threaded).enumerate() {
            prop_assert_eq!(a, b, "run {} diverged across executors", i);
            // Bitwise identity through the versioned wire codec too.
            prop_assert_eq!(a.encode(), b.encode(), "run {} frames differ", i);
        }
    }

    #[test]
    fn injected_corruption_never_panics_any_decoder(
        seed in any::<u64>(),
        per_byte_prob in 0.01f64..1.0,
    ) {
        // Real frames off the real stack: a CAM SHB packet and a DENM.
        let mut obu = obu_station(seed);
        let cam_frame = obu
            .heartbeat_cam(SimTime::from_millis(1))
            .expect("valid CAM")
            .to_bytes();
        let wall = obu.wall(SimTime::from_millis(2));
        let (lat, lon) = openc2x::node::lab_to_geo((41.178, -8.608), phy80211p::Position2D::new(0.0, 0.0));
        obu.trigger_denm(
            SimTime::from_millis(2),
            facilities::den::DenRequest::one_shot(
                wall,
                its_messages::common::ReferencePosition::from_degrees(lat, lon),
                its_messages::cause_codes::CauseCode::CollisionRisk(
                    its_messages::cause_codes::CollisionRiskSubCause::CrossingCollisionRisk,
                ),
            ),
        );
        let denm_frame = obu
            .poll_denm(SimTime::from_millis(2))
            .expect("valid DENM")
            .pop()
            .expect("one DENM due")
            .to_bytes();

        let plan = FaultPlan::new(vec![
            FaultKind::BitCorruption { per_byte_prob }.during(FaultWindow::always()),
        ]);
        let mut injector = FaultInjector::new(plan, SimRng::seed_from(seed).fork("faults"));
        for frame in [cam_frame, denm_frame] {
            let Some(corrupted) = injector.corrupt_frame(SimTime::ZERO, &frame) else {
                continue;
            };
            // The injected-corruption path must drive the real decode
            // chain: GeoNetworking first, then the facilities payloads.
            // Any Ok/Err outcome is fine; panics are not.
            if let Ok(packet) = geonet::GnPacket::from_bytes(&corrupted) {
                let _ = its_messages::cam::Cam::from_bytes(&packet.payload);
                let _ = its_messages::denm::Denm::from_bytes(&packet.payload);
            }
        }
        prop_assert!(injector.stats().frames_corrupted <= 2);
    }
}
