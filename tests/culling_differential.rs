//! Differential test: the spatial-grid culled channel against the
//! exhaustive O(N²) reference.
//!
//! Culling is only sound if (a) every receiver the grid keeps sees the
//! *bit-identical* `TransmitOutcome` it would see in an exhaustive
//! evaluation — guaranteed because per-receiver randomness is forked on
//! the `(frame, receiver)` label, never drawn from a shared sequential
//! stream — and (b) every receiver the grid culls is beyond the cutoff
//! radius, where even a `CULL_SHADOW_SIGMAS`-sigma shadowing upswing
//! leaves the frame-error rate above `1 − CULL_EPS` (DESIGN.md §13).

use its_testbed::city::{run_city, urban_channel_config, CityConfig, CityRecord};
use phy80211p::channel::{CULL_EPS, CULL_SHADOW_SIGMAS};
use phy80211p::ofdm::DataRate;
use phy80211p::{Channel, Position2D, SpatialGrid};
use sim_core::{SimDuration, SimRng, SimTime};

const CAM_LEN: usize = 100;
const RATE: DataRate = DataRate::Mbps6;

fn random_fleet(seed: u64, n: usize, side_m: f64) -> Vec<Position2D> {
    let mut rng = SimRng::seed_from(seed);
    (0..n)
        .map(|_| Position2D::new(rng.uniform(0.0, side_m), rng.uniform(0.0, side_m)))
        .collect()
}

#[test]
fn culled_receiver_set_is_exactly_the_in_cutoff_set() {
    let channel = Channel::new(urban_channel_config());
    let cutoff = channel.cutoff_radius_m(CAM_LEN, RATE);
    assert!(
        cutoff.is_finite() && cutoff > 50.0 && cutoff < 1000.0,
        "urban cutoff should be a street-scale radius, got {cutoff}"
    );
    for seed in [3u64, 17, 99] {
        let fleet = random_fleet(seed, 250, 1500.0);
        let mut grid = SpatialGrid::new(cutoff / 2.0);
        grid.rebuild(fleet.iter().copied());
        let mut candidates = Vec::new();
        for (tx, &tx_pos) in fleet.iter().enumerate() {
            grid.candidates_within(tx_pos, cutoff, &mut candidates);
            let brute: Vec<u32> = fleet
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    let dx = p.x - tx_pos.x;
                    let dy = p.y - tx_pos.y;
                    dx * dx + dy * dy <= cutoff * cutoff
                })
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(candidates, brute, "seed {seed} tx {tx}");
        }
    }
}

#[test]
fn non_culled_outcomes_are_bit_identical_to_exhaustive() {
    // Simulate the same frame twice: once evaluating only the culled
    // candidate set, once evaluating every receiver. Per-(frame, rx)
    // forked streams mean the shared receivers' outcomes agree bitwise.
    let channel = Channel::new(urban_channel_config());
    let cutoff = channel.cutoff_radius_m(CAM_LEN, RATE);
    let fleet = random_fleet(42, 300, 1800.0);
    let mut grid = SpatialGrid::new(cutoff / 2.0);
    grid.rebuild(fleet.iter().copied());
    let root = SimRng::seed_from(7);
    let start = SimTime::from_millis(250);

    let mut candidates = Vec::new();
    let mut culled_any = false;
    for (frame_id, tx) in [(1u64, 0usize), (2, 120), (3, 299)] {
        let tx_pos = *fleet.get(tx).expect("tx index in fleet");
        grid.candidates_within(tx_pos, cutoff, &mut candidates);
        let in_cutoff: Vec<u32> = candidates
            .iter()
            .copied()
            .filter(|&r| r as usize != tx)
            .collect();
        assert!(
            in_cutoff.len() < fleet.len() - 1,
            "culling must actually drop receivers (kept {} of {})",
            in_cutoff.len(),
            fleet.len() - 1
        );
        culled_any = true;

        // Exhaustive pass: every receiver, in index order.
        let exhaustive: Vec<(u32, phy80211p::TransmitOutcome)> = (0..fleet.len() as u32)
            .filter(|&r| r as usize != tx)
            .map(|r| {
                let rx_pos = *fleet.get(r as usize).expect("rx in fleet");
                let mut rng = root.fork_u64((frame_id << 32) | u64::from(r));
                (
                    r,
                    channel.transmit(start, tx_pos, rx_pos, CAM_LEN, RATE, &mut rng),
                )
            })
            .collect();

        // Culled pass: only the grid's candidates.
        for &r in &in_cutoff {
            let rx_pos = *fleet.get(r as usize).expect("rx in fleet");
            let mut rng = root.fork_u64((frame_id << 32) | u64::from(r));
            let culled_outcome = channel.transmit(start, tx_pos, rx_pos, CAM_LEN, RATE, &mut rng);
            let (_, exhaustive_outcome) = exhaustive
                .iter()
                .find(|(er, _)| *er == r)
                .expect("receiver present in exhaustive pass");
            assert_eq!(culled_outcome.delivered, exhaustive_outcome.delivered);
            assert_eq!(
                culled_outcome.snr_db.to_bits(),
                exhaustive_outcome.snr_db.to_bits(),
                "SNR must be bit-identical"
            );
            assert_eq!(
                culled_outcome.fer.to_bits(),
                exhaustive_outcome.fer.to_bits(),
                "FER must be bit-identical"
            );
            assert_eq!(culled_outcome.arrival, exhaustive_outcome.arrival);
        }

        // Every culled receiver sits beyond the cutoff, where even a
        // CULL_SHADOW_SIGMAS shadowing upswing leaves FER ≥ 1 − ε —
        // and, with these seeds, none of them would have received the
        // frame anyway.
        let sigma = channel.config().shadowing_sigma_db;
        for (r, outcome) in &exhaustive {
            if in_cutoff.contains(r) {
                continue;
            }
            let rx_pos = *fleet.get(*r as usize).expect("rx in fleet");
            assert!(
                tx_pos.distance(rx_pos) > cutoff,
                "culled rx {r} inside cutoff"
            );
            let optimistic_snr = channel.mean_rx_power_dbm(tx_pos, rx_pos)
                + CULL_SHADOW_SIGMAS * sigma
                - channel.config().noise_floor_dbm;
            assert!(
                channel.frame_error_rate(optimistic_snr, CAM_LEN, RATE) >= 1.0 - CULL_EPS,
                "culled rx {r} would have a non-negligible delivery probability"
            );
            assert!(
                !outcome.delivered,
                "culled rx {r} was delivered in the exhaustive reference"
            );
        }
    }
    assert!(culled_any);
}

#[test]
fn city_run_is_bit_identical_with_and_without_culling() {
    let base = CityConfig {
        n_stations: 120,
        duration: SimDuration::from_secs(3),
        ..CityConfig::default()
    };
    let culled = run_city(&base);
    let exhaustive = run_city(&CityConfig {
        exhaustive: true,
        ..base
    });
    // The exhaustive reference does strictly more channel evaluations…
    assert!(
        exhaustive.events > 2 * culled.events,
        "expected a large evaluation gap: {} vs {}",
        exhaustive.events,
        culled.events
    );
    // …but every metric it produces is bit-identical.
    assert_eq!(
        culled,
        CityRecord {
            events: culled.events,
            ..exhaustive
        }
    );
}
