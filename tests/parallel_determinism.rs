//! Tier-1 regression test for the parallel campaign runner: the same
//! campaign produces **byte-identical** rendered output at 1, 2 and 8
//! worker threads (DESIGN.md §8), all through the generic
//! `Campaign`/`Executor` API. The machine running the tests may have
//! any core count — 8 workers on 1 core oversubscribes, which must
//! change scheduling only, never results.

use its_testbed::ablation::{sweep_poll_period, sweep_tx_power};
use its_testbed::campaign::Serial;
use its_testbed::experiments::{table2, table3};
use its_testbed::scenario::ScenarioConfig;
use its_testbed::Runner;

fn base() -> ScenarioConfig {
    ScenarioConfig {
        seed: 5000,
        ..ScenarioConfig::default()
    }
}

#[test]
fn sweep_table_identical_across_thread_counts() {
    let render = |threads: usize| {
        sweep_poll_period(&Runner::new(threads), &base(), &[10, 50, 150], 16).render()
    };
    let one = render(1);
    assert!(!one.is_empty());
    assert_eq!(one, render(2), "2 threads diverged from serial");
    assert_eq!(one, render(8), "8 threads diverged from serial");
}

#[test]
fn table2_identical_across_thread_counts() {
    let render = |threads: usize| table2(&Runner::new(threads), &base(), 24).render();
    let one = render(1);
    assert_eq!(one, render(2));
    assert_eq!(one, render(8));
}

#[test]
fn table3_bits_identical_across_thread_counts() {
    let braking = |threads: usize| table3(&Runner::new(threads), &base(), 24).braking_m;
    let one = braking(1);
    for threads in [2, 8] {
        let other = braking(threads);
        assert_eq!(one.len(), other.len());
        for (i, (a, b)) in one.iter().zip(&other).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "run {i} differs at {threads} threads: {a} vs {b}"
            );
        }
    }
}

#[test]
fn delivery_ratio_sweep_identical_across_thread_counts() {
    // tx-power delivery ratios exercise the counting (non-mean) path.
    let render = |threads: usize| {
        sweep_tx_power(&Runner::new(threads), &base(), &[-36.0, 23.0], 12).render()
    };
    let one = render(1);
    assert_eq!(one, render(3));
    assert_eq!(one, render(8));
}

#[test]
fn serial_executor_matches_thread_runner() {
    // The reference executor (a plain loop) and the pool agree bit for
    // bit — the base case of the determinism contract every executor
    // extends.
    let plain = sweep_poll_period(&Serial, &base(), &[25, 100], 8).render();
    let pooled = sweep_poll_period(&Runner::new(8), &base(), &[25, 100], 8).render();
    assert_eq!(plain, pooled);
}

#[test]
fn env_default_entry_point_matches_explicit_serial_runner() {
    // Whatever RUNNER_THREADS the harness set (check.sh runs the suite
    // at 1 and at 8), the env-picked runner must agree with an explicit
    // single-threaded one.
    let from_env = sweep_poll_period(&Runner::from_env(), &base(), &[25, 100], 8).render();
    let serial = sweep_poll_period(&Runner::new(1), &base(), &[25, 100], 8).render();
    assert_eq!(from_env, serial);
}
