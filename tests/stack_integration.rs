//! Cross-crate stack integration: facilities messages through the UPER
//! codec, GeoNetworking/BTP encapsulation, the 802.11p channel, and the
//! station glue — without the full scenario around them.

use geonet::btp::BtpPort;
use its_messages::cause_codes::{CauseCode, CollisionRiskSubCause};
use its_messages::common::{ReferencePosition, StationId};
use its_messages::denm::Denm;
use its_messages::ItsMessage;
use openc2x::node::{ItsStation, StationConfig};
use phy80211p::channel::{Channel, ChannelConfig};
use phy80211p::ofdm::{airtime, DataRate};
use phy80211p::Position2D;
use sim_core::{NodeClock, SimRng, SimTime};

fn obu_at(x: f64) -> ItsStation {
    let mut s = ItsStation::new(
        StationConfig::obu(StationId::new(7).unwrap()),
        NodeClock::perfect(0),
    );
    s.set_position(Position2D::new(x, 0.0));
    s.set_motion(1.5, 270.0);
    s
}

fn rsu() -> ItsStation {
    let mut s = ItsStation::new(
        StationConfig::rsu(StationId::new(15).unwrap()),
        NodeClock::perfect(0),
    );
    s.set_position(Position2D::new(0.0, 1.0));
    s
}

fn collision_request(station: &ItsStation, now: SimTime) -> facilities::den::DenRequest {
    let (lat, lon) = station.geo_position();
    facilities::den::DenRequest::one_shot(
        station.wall(now),
        ReferencePosition::from_degrees(lat, lon),
        CauseCode::CollisionRisk(CollisionRiskSubCause::CrossingCollisionRisk),
    )
}

#[test]
fn cam_travels_obu_to_rsu_over_channel() {
    let mut obu = obu_at(3.0);
    let mut rsu = rsu();
    let channel = Channel::new(ChannelConfig::default());
    let mut rng = SimRng::seed_from(1);

    let packet = obu.poll_cam(SimTime::ZERO).unwrap().expect("first CAM due");
    let bytes = packet.to_bytes();
    let outcome = channel.transmit(
        SimTime::ZERO,
        obu.position(),
        rsu.position(),
        bytes.len(),
        DataRate::Mbps6,
        &mut rng,
    );
    assert!(outcome.delivered, "lab-scale CAM must be delivered");
    // Reparse on the receiving side, as the real radio does.
    let rx_packet = geonet::GnPacket::from_bytes(&bytes).unwrap();
    let inds = rsu.on_packet(outcome.arrival, &rx_packet);
    assert_eq!(inds.len(), 1);
    assert_eq!(rsu.ldm().station_count(), 1);
    let cam = rsu.ldm().station(StationId::new(7).unwrap()).unwrap();
    assert_eq!(cam.high_frequency.speed.as_mps(), Some(1.5));
}

#[test]
fn denm_survives_full_encapsulation() {
    let mut rsu = rsu();
    let mut obu = obu_at(2.0);
    rsu.trigger_denm(SimTime::ZERO, collision_request(&rsu, SimTime::ZERO));
    let packet = rsu.poll_denm(SimTime::ZERO).unwrap().remove(0);

    // Round-trip through the real wire bytes.
    let wire = packet.to_bytes();
    let parsed = geonet::GnPacket::from_bytes(&wire).unwrap();
    assert_eq!(parsed.btp.destination_port, BtpPort::DENM);

    let inds = obu.on_packet(SimTime::from_millis(1), &parsed);
    assert_eq!(inds.len(), 1);
    match &inds[0] {
        openc2x::node::StackIndication::DenmReceived(denm) => {
            let cause = denm.event_type().unwrap();
            assert_eq!(cause.cause_code(), 97);
            assert_eq!(cause.sub_cause_code(), 2);
            assert!(cause.requires_emergency_brake());
        }
        other => panic!("unexpected indication {other:?}"),
    }
}

#[test]
fn denm_airtime_at_6mbps_is_sub_millisecond() {
    let mut rsu = rsu();
    rsu.trigger_denm(SimTime::ZERO, collision_request(&rsu, SimTime::ZERO));
    let packet = rsu.poll_denm(SimTime::ZERO).unwrap().remove(0);
    let t = airtime(packet.to_bytes().len(), DataRate::Mbps6);
    assert!(
        t.as_micros() < 400,
        "DENM frame airtime {t} — Table II's 1.6 ms hop is mostly stack overhead"
    );
}

#[test]
fn its_message_dispatch_from_wire_payload() {
    // The payload inside a BTP frame parses via the generic dispatcher.
    let mut rsu = rsu();
    rsu.trigger_denm(SimTime::ZERO, collision_request(&rsu, SimTime::ZERO));
    let packet = rsu.poll_denm(SimTime::ZERO).unwrap().remove(0);
    let msg = ItsMessage::from_bytes(&packet.payload).unwrap();
    match msg {
        ItsMessage::Denm(d) => assert_eq!(d.header.station_id.value(), 15),
        other => panic!("expected DENM, got {other:?}"),
    }
}

#[test]
fn duplicate_denm_suppressed_but_update_passes() {
    let mut rsu = rsu();
    let mut obu = obu_at(2.0);
    let action = rsu.trigger_denm(SimTime::ZERO, collision_request(&rsu, SimTime::ZERO));
    let first = rsu.poll_denm(SimTime::ZERO).unwrap().remove(0);
    assert_eq!(obu.on_packet(SimTime::from_millis(1), &first).len(), 1);
    assert!(obu.on_packet(SimTime::from_millis(2), &first).is_empty());

    // An update produces a fresh referenceTime (facilities layer) and a
    // fresh GeoNetworking sequence number (each transmission is a new GN
    // packet) — it passes both dedupe layers.
    let mut denm = Denm::from_bytes(&first.payload).unwrap();
    denm.management.reference_time =
        its_messages::common::TimestampIts::new(denm.management.reference_time.millis() + 100)
            .unwrap();
    let mut updated = first.clone();
    if let geonet::headers::ExtendedHeader::GeoBroadcast(ref mut gbc) = updated.extended {
        gbc.sequence_number += 1;
    }
    updated.payload = denm.to_bytes().unwrap().into();
    updated.common.payload_length = (updated.payload.len() + 4) as u16;
    assert_eq!(obu.on_packet(SimTime::from_millis(3), &updated).len(), 1);

    // Same GN sequence with different facilities content is still dropped
    // at the GeoNetworking layer (duplicate packet detection).
    let mut replay = updated.clone();
    let mut denm2 = Denm::from_bytes(&replay.payload).unwrap();
    denm2.management.reference_time =
        its_messages::common::TimestampIts::new(denm2.management.reference_time.millis() + 100)
            .unwrap();
    replay.payload = denm2.to_bytes().unwrap().into();
    replay.common.payload_length = (replay.payload.len() + 4) as u16;
    assert!(obu.on_packet(SimTime::from_millis(4), &replay).is_empty());
    let _ = action;
}

#[test]
fn ldm_reflects_both_cams_and_denms() {
    let mut rsu = rsu();
    let mut obu = obu_at(2.5);
    // CAM up.
    let cam_packet = obu.poll_cam(SimTime::ZERO).unwrap().unwrap();
    rsu.on_packet(SimTime::ZERO, &cam_packet);
    // DENM down.
    rsu.trigger_denm(SimTime::ZERO, collision_request(&rsu, SimTime::ZERO));
    let denm_packet = rsu.poll_denm(SimTime::ZERO).unwrap().remove(0);
    obu.on_packet(SimTime::from_millis(1), &denm_packet);

    assert_eq!(rsu.ldm().station_count(), 1);
    assert_eq!(obu.ldm().event_count(), 1);
    assert_eq!(obu.ldm().active_events(SimTime::from_millis(10)).len(), 1);
}

#[test]
fn geobroadcast_respects_relevance_area() {
    let mut rsu = rsu();
    rsu.trigger_denm(SimTime::ZERO, collision_request(&rsu, SimTime::ZERO));
    let packet = rsu.poll_denm(SimTime::ZERO).unwrap().remove(0);
    // Inside the 100 m default relevance circle.
    let mut near = obu_at(50.0);
    assert_eq!(near.on_packet(SimTime::ZERO, &packet).len(), 1);
    // Outside it.
    let mut far = obu_at(500.0);
    assert!(far.on_packet(SimTime::ZERO, &packet).is_empty());
}

#[test]
fn cam_generation_follows_dynamics_over_a_drive() {
    // Drive the OBU along the lab and let the CA service decide: the
    // stream should be bounded between 1 Hz and 10 Hz.
    let count_at = |speed_mps: f64| {
        let mut obu = obu_at(100.0);
        let mut cams = 0;
        for ms in (0..=10_000u64).step_by(20) {
            let t = SimTime::from_millis(ms);
            let x = 100.0 - speed_mps * ms as f64 / 1000.0;
            obu.set_position(Position2D::new(x, 0.0));
            obu.set_motion(speed_mps, 270.0);
            if obu.poll_cam(t).unwrap().is_some() {
                cams += 1;
            }
        }
        cams
    };
    // At 1.5 m/s the car moves only 1.5 m per max-period CAM — below the
    // 4 m position trigger, so the stream sits at the 1 Hz floor.
    let slow = count_at(1.5);
    assert!((10..=12).contains(&slow), "1 Hz floor: {slow}");
    // At 6 m/s the 4 m trigger fires between max-period CAMs and the
    // rate rises (position delta 4 m every ~0.67 s).
    let fast = count_at(6.0);
    assert!(fast > slow, "dynamics raise the CAM rate: {fast} vs {slow}");
    assert!(fast <= 101, "bounded by T_GenCamMin (10 Hz): {fast}");
}
