//! Hardware-in-the-loop flavour: the OpenC2X HTTP application API over
//! real TCP sockets, exercising the exact `trigger_denm` /
//! `request_denm` flow of paper §III-D2.

use std::sync::Arc;

use its_messages::cause_codes::{CauseCode, CollisionRiskSubCause};
use its_messages::common::{ActionId, ReferencePosition, StationId, StationType, TimestampIts};
use its_messages::denm::{Denm, ManagementContainer, SituationContainer};
use openc2x::api::{ObuApi, RsuApi};
use openc2x::http::{post, request};

fn collision_denm(seq: u16) -> Denm {
    let rsu = StationId::new(15).unwrap();
    Denm::new(
        rsu,
        ManagementContainer::new(
            ActionId::new(rsu, seq),
            TimestampIts::new(1_000).unwrap(),
            TimestampIts::new(1_005).unwrap(),
            ReferencePosition::from_degrees(41.178, -8.608),
            StationType::RoadSideUnit,
        ),
    )
    .with_situation(
        SituationContainer::new(
            7,
            CauseCode::CollisionRisk(CollisionRiskSubCause::CrossingCollisionRisk),
        )
        .unwrap(),
    )
}

#[test]
fn trigger_denm_roundtrip_over_tcp() {
    let rsu = Arc::new(RsuApi::new());
    let server = rsu.serve("127.0.0.1:0").unwrap();
    let denm = collision_denm(1);
    let resp = post(server.addr(), "/trigger_denm", &denm.to_bytes().unwrap()).unwrap();
    assert_eq!(resp.status, 200);
    let outbox = rsu.take_outbox();
    assert_eq!(outbox, vec![denm]);
    server.shutdown();
}

#[test]
fn request_denm_empty_then_delivers_in_order() {
    let obu = Arc::new(ObuApi::new());
    let server = obu.serve("127.0.0.1:0").unwrap();

    // "If no DENM is found, it only returns an HTTP 200 success status
    // code."
    let r = post(server.addr(), "/request_denm", b"").unwrap();
    assert_eq!((r.status, r.body.len()), (200, 0));

    obu.deliver(collision_denm(1));
    obu.deliver(collision_denm(2));

    let r1 = post(server.addr(), "/request_denm", b"").unwrap();
    let d1 = Denm::from_bytes(&r1.body).unwrap();
    assert_eq!(d1.management.action_id.sequence_number, 1);
    let r2 = post(server.addr(), "/request_denm", b"").unwrap();
    let d2 = Denm::from_bytes(&r2.body).unwrap();
    assert_eq!(d2.management.action_id.sequence_number, 2);
    let r3 = post(server.addr(), "/request_denm", b"").unwrap();
    assert!(r3.body.is_empty());
    server.shutdown();
}

#[test]
fn full_edge_to_vehicle_http_chain() {
    // edge --POST trigger_denm--> RSU --stack--> OBU --POST
    // request_denm--> vehicle control logic.
    let rsu = Arc::new(RsuApi::new());
    let rsu_server = rsu.serve("127.0.0.1:0").unwrap();
    let obu = Arc::new(ObuApi::new());
    let obu_server = obu.serve("127.0.0.1:0").unwrap();

    let denm = collision_denm(9);
    assert_eq!(
        post(
            rsu_server.addr(),
            "/trigger_denm",
            &denm.to_bytes().unwrap()
        )
        .unwrap()
        .status,
        200
    );
    // The "stack": RSU outbox → air → OBU pending.
    for d in rsu.take_outbox() {
        obu.deliver(d);
    }
    let resp = post(obu_server.addr(), "/request_denm", b"").unwrap();
    let received = Denm::from_bytes(&resp.body).unwrap();
    assert!(received.event_type().unwrap().requires_emergency_brake());

    // The vehicle-side reaction (paper: any DENM response → cut power).
    let mut planner =
        vehicle::planner::MotionPlanner::new(0.25, vehicle::planner::StopPolicy::AnyDenm);
    assert!(planner.on_denm(&received));
    assert_eq!(
        planner.plan(None),
        vehicle::actuators::ActuatorCommand::CutPower
    );

    rsu_server.shutdown();
    obu_server.shutdown();
}

#[test]
fn malformed_denm_rejected_with_400() {
    let rsu = Arc::new(RsuApi::new());
    let server = rsu.serve("127.0.0.1:0").unwrap();
    let resp = post(server.addr(), "/trigger_denm", &[0xDE, 0xAD]).unwrap();
    assert_eq!(resp.status, 400);
    assert!(rsu.take_outbox().is_empty());
    server.shutdown();
}

#[test]
fn wrong_method_or_path_is_404() {
    let obu = Arc::new(ObuApi::new());
    let server = obu.serve("127.0.0.1:0").unwrap();
    assert_eq!(
        request(server.addr(), "GET", "/request_denm", b"")
            .unwrap()
            .status,
        404
    );
    assert_eq!(
        post(server.addr(), "/request_denm/extra", b"")
            .unwrap()
            .status,
        404
    );
    server.shutdown();
}

#[test]
fn concurrent_polls_take_each_denm_once() {
    let obu = Arc::new(ObuApi::new());
    let server = obu.serve("127.0.0.1:0").unwrap();
    for seq in 0..16 {
        obu.deliver(collision_denm(seq));
    }
    let addr = server.addr();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    let r = post(addr, "/request_denm", b"").unwrap();
                    if r.body.is_empty() {
                        break;
                    }
                    got.push(
                        Denm::from_bytes(&r.body)
                            .unwrap()
                            .management
                            .action_id
                            .sequence_number,
                    );
                }
                got
            })
        })
        .collect();
    let mut all: Vec<u16> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    all.sort_unstable();
    assert_eq!(all, (0..16).collect::<Vec<u16>>(), "each DENM exactly once");
    server.shutdown();
}

#[test]
fn web_interface_reflects_station_ldm() {
    use openc2x::api::WebInterface;
    use openc2x::node::{ItsStation, StationConfig};
    use phy80211p::Position2D;
    use sim_core::{NodeClock, SimTime};

    let mut rsu = ItsStation::new(
        StationConfig::rsu(StationId::new(15).unwrap()),
        NodeClock::perfect(0),
    );
    rsu.set_position(Position2D::new(0.0, 1.0));
    let mut obu = ItsStation::new(
        StationConfig::obu(StationId::new(7).unwrap()),
        NodeClock::perfect(0),
    );
    obu.set_position(Position2D::new(2.0, 0.0));

    // Learn the OBU via a CAM, then publish the LDM snapshot.
    let cam = obu.poll_cam(SimTime::ZERO).unwrap().unwrap();
    rsu.on_packet(SimTime::ZERO, &cam);

    let web = std::sync::Arc::new(WebInterface::new());
    let server = web.serve("127.0.0.1:0").unwrap();
    web.publish(rsu.ldm_snapshot(SimTime::ZERO));

    let r = openc2x::http::request(server.addr(), "GET", "/ldm", b"").unwrap();
    let body = String::from_utf8(r.body).unwrap();
    assert!(body.contains("stations: 1"), "{body}");
    assert!(body.contains("station station-15"), "{body}");
    server.shutdown();
}

#[test]
fn poll_rate_sustained() {
    // The paper's script polls continuously; make sure the server
    // sustains a realistic poll rate without dropping requests.
    let obu = Arc::new(ObuApi::new());
    let server = obu.serve("127.0.0.1:0").unwrap();
    for _ in 0..200 {
        let r = post(server.addr(), "/request_denm", b"").unwrap();
        assert_eq!(r.status, 200);
    }
    server.shutdown();
}
