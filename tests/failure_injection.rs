//! Failure injection: what happens to the safety chain when components
//! degrade — lossy radio links, an unreliable detector, a starved
//! polling loop, badly-synchronised clocks.

use its_testbed::scenario::{Scenario, ScenarioConfig};
use openc2x::node::PollingModel;
use perception::camera::TargetAppearance;
use perception::detector::YoloModel;
use phy80211p::channel::{ChannelConfig, Obstacle, Position2D};
use sim_core::{NtpModel, SimDuration};

#[test]
fn heavily_obstructed_radio_can_lose_the_one_shot_denm() {
    // A brutal obstruction between RSU and vehicle makes the single
    // (unrepeated) DENM unreliable: across seeds, some runs must fail to
    // stop the car — the testbed's visual "did it stop?" feedback.
    // 60 dB of extra loss puts the ~1.7 m RSU→OBU link right in the
    // frame-error transition region (SNR ≈ 4–5 dB with 3 dB shadowing).
    let mut lost = 0;
    let mut delivered = 0;
    for seed in 0..30 {
        let mut channel = ChannelConfig::default();
        channel.obstacles.push(Obstacle {
            min: Position2D::new(-50.0, -50.0),
            max: Position2D::new(50.0, 50.0),
            extra_loss_db: 60.0,
        });
        let r = Scenario::new(ScenarioConfig {
            seed,
            channel,
            ..ScenarioConfig::default()
        })
        .run();
        if r.denm_delivered {
            delivered += 1;
        } else {
            lost += 1;
            assert!(r.step5_actuation.is_none(), "no DENM, no stop");
            assert!(r.step6_halt.is_none());
        }
    }
    assert!(lost > 0, "expected losses under 78 dB extra attenuation");
    assert!(delivered > 0, "link should not be fully dead either");
}

#[test]
fn denm_repetition_rescues_a_lossy_channel() {
    // Same obstruction as above, but the DEN service repeats the DENM
    // every 100 ms for 2 s: runs that would have lost the one-shot now
    // stop the car anyway.
    let lossy_channel = || {
        let mut channel = ChannelConfig::default();
        channel.obstacles.push(Obstacle {
            min: Position2D::new(-50.0, -50.0),
            max: Position2D::new(50.0, 50.0),
            extra_loss_db: 60.0,
        });
        channel
    };
    let mut one_shot_failures = 0;
    let mut repeated_failures = 0;
    for seed in 0..30 {
        let one_shot = Scenario::new(ScenarioConfig {
            seed,
            channel: lossy_channel(),
            ..ScenarioConfig::default()
        })
        .run();
        let repeated = Scenario::new(ScenarioConfig {
            seed,
            channel: lossy_channel(),
            denm_repetition: Some((SimDuration::from_millis(100), SimDuration::from_secs(2))),
            ..ScenarioConfig::default()
        })
        .run();
        if !one_shot.denm_delivered {
            one_shot_failures += 1;
        }
        if !repeated.denm_delivered {
            repeated_failures += 1;
        }
    }
    assert!(
        one_shot_failures > 0,
        "the channel must actually lose frames"
    );
    assert!(
        repeated_failures < one_shot_failures,
        "repetition must recover deliveries: {repeated_failures} vs {one_shot_failures}"
    );
}

#[test]
fn unreliable_detector_delays_detection() {
    // The bare scale vehicle (no stop sign) is detected in under half of
    // the frames within 2 m only — detection comes later and sometimes
    // not before the dead zone.
    let mut reliable_ms = Vec::new();
    let mut flaky_ms = Vec::new();
    for seed in 100..130 {
        let reliable = Scenario::new(ScenarioConfig {
            seed,
            appearance: TargetAppearance::WithStopSign,
            ..ScenarioConfig::default()
        })
        .run();
        let flaky = Scenario::new(ScenarioConfig {
            seed,
            appearance: TargetAppearance::BareScaleVehicle,
            ..ScenarioConfig::default()
        })
        .run();
        if let (Some(a), Some(b)) = (reliable.step2_detection, flaky.step2_detection) {
            reliable_ms.push(a.as_millis() as f64);
            flaky_ms.push(b.as_millis() as f64);
        }
    }
    assert!(!reliable_ms.is_empty());
    assert!(
        flaky_ms.len() <= reliable_ms.len(),
        "flaky detector cannot detect more often"
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    if !flaky_ms.is_empty() {
        assert!(
            mean(&flaky_ms) >= mean(&reliable_ms),
            "bare vehicle detected no earlier on average: {} vs {}",
            mean(&flaky_ms),
            mean(&reliable_ms)
        );
    }
}

#[test]
fn detector_miss_rate_reflected_in_assessments() {
    // With a detector that never fires, the hazard service never
    // triggers and the vehicle sails past.
    let r = Scenario::new(ScenarioConfig {
        seed: 5,
        yolo: YoloModel {
            stop_sign_detect_prob: 0.0,
            bare_detect_prob: 0.0,
            shell_detect_prob: 0.0,
            ..YoloModel::default()
        },
        ..ScenarioConfig::default()
    })
    .run();
    assert!(r.step2_detection.is_none());
    assert!(r.step6_halt.is_none());
    assert!(
        r.step1_crossing.is_some(),
        "the car did cross the action point"
    );
}

#[test]
fn poll_starvation_inflates_but_does_not_break() {
    // A 200 ms poll period still stops the car, just later: the mean
    // #4→#5 interval grows to ~half the poll period (the poll phase is
    // uniform, so an individual run can still get lucky).
    let mut d45s = Vec::new();
    for seed in 0..20 {
        let r = Scenario::new(ScenarioConfig {
            seed,
            polling: PollingModel {
                period: SimDuration::from_millis(200),
                ..PollingModel::default()
            },
            ..ScenarioConfig::default()
        })
        .run();
        assert!(r.completed(), "seed {seed} must still stop the car");
        d45s.push(r.interval_4_5_ms().unwrap() as f64);
        let braking = r.braking_distance_m().unwrap();
        assert!(braking > 0.25, "longer latency, longer travel: {braking} m");
    }
    let mean = d45s.iter().sum::<f64>() / d45s.len() as f64;
    assert!(
        mean > 60.0,
        "starved polling shows up in mean #4->#5: {mean} ms ({d45s:?})"
    );
}

#[test]
fn bad_ntp_sync_distorts_the_measured_intervals() {
    // With multi-millisecond clock offsets, measured intervals (cross-
    // host differences) scatter far more than the true latencies.
    let mut good = Vec::new();
    let mut bad = Vec::new();
    for seed in 200..230 {
        let g = Scenario::new(ScenarioConfig {
            seed,
            ntp: NtpModel::perfect(),
            ..ScenarioConfig::default()
        })
        .run();
        let b = Scenario::new(ScenarioConfig {
            seed,
            ntp: NtpModel {
                offset_std_us: 10_000.0,
                offset_cap_us: 30_000.0,
                drift_std_ppm: 50.0,
            },
            ..ScenarioConfig::default()
        })
        .run();
        good.push(g.interval_3_4_ms().unwrap() as f64);
        bad.push(b.interval_3_4_ms().unwrap() as f64);
    }
    let var = |v: &[f64]| {
        let m = v.iter().sum::<f64>() / v.len() as f64;
        v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64
    };
    assert!(
        var(&bad) > 4.0 * var(&good).max(0.05),
        "bad sync must scatter the radio-hop measurement: {} vs {}",
        var(&bad),
        var(&good)
    );
    // Badly-synced clocks can even show negative intervals.
    let has_weird = bad.iter().any(|&x| !(0.0..=10.0).contains(&x));
    assert!(
        has_weird,
        "expected implausible measured intervals: {bad:?}"
    );
}

#[test]
fn timeout_run_reports_incomplete_instead_of_hanging() {
    let r = Scenario::new(ScenarioConfig {
        seed: 7,
        yolo: YoloModel {
            stop_sign_detect_prob: 0.0,
            ..YoloModel::default()
        },
        timeout: SimDuration::from_secs(5),
        ..ScenarioConfig::default()
    })
    .run();
    assert!(!r.completed());
    assert!(r.total_delay_ms().is_none());
    assert!(r.braking_distance_m().is_none());
}
