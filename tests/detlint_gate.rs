//! Tier-1 gate: the workspace must satisfy every detlint invariant.
//!
//! This makes `cargo test` alone sufficient to prove the determinism
//! and safety rules hold — CI does not need a separate lint step (though
//! `scripts/check.sh` also runs the CLI for human-readable output).

use std::path::Path;

/// The workspace root, two levels up from `crates/core` where this
/// integration test is registered.
fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_no_detlint_findings() {
    let root = workspace_root();
    let cfg = detlint::Config::load(&root.join("detlint.toml")).expect("valid detlint.toml");
    let report = detlint::run(&root, &cfg).expect("scan succeeds");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — scan roots misconfigured?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        report.is_clean(),
        "detlint found {} violation(s):\n\n{}",
        report.findings.len(),
        rendered.join("\n\n")
    );
}

#[test]
fn gate_actually_detects_planted_violations() {
    // Guard against the gate rotting into a vacuous pass: plant each
    // class of violation in a synthetic tree and require a finding.
    let dir = std::env::temp_dir().join(format!("detlint-gate-{}", std::process::id()));
    let src = dir.join("crates/geonet/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(
        src.join("loctable.rs"),
        "use std::collections::HashMap;\nfn f() { let t = std::time::Instant::now(); let r = rand::thread_rng(); }\n",
    )
    .unwrap();
    let report = detlint::run(&dir, &detlint::Config::default()).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"D1"), "missing D1 in {rules:?}");
    assert!(rules.contains(&"D2"), "missing D2 in {rules:?}");
    assert!(rules.contains(&"D3"), "missing D3 in {rules:?}");
    for f in &report.findings {
        assert_eq!(f.file, "crates/geonet/src/loctable.rs");
        assert!(f.line >= 1 && f.col >= 1);
    }
}
