//! Tier-1 gate: the workspace must satisfy every detlint invariant.
//!
//! This makes `cargo test` alone sufficient to prove the determinism
//! and safety rules hold — CI does not need a separate lint step (though
//! `scripts/check.sh` also runs the CLI for human-readable output).

use std::path::Path;

/// The workspace root, two levels up from `crates/core` where this
/// integration test is registered.
fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_no_detlint_findings() {
    let root = workspace_root();
    let cfg = detlint::Config::load(&root.join("detlint.toml")).expect("valid detlint.toml");
    let report = detlint::run(&root, &cfg).expect("scan succeeds");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — scan roots misconfigured?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        report.is_clean(),
        "detlint found {} violation(s):\n\n{}",
        report.findings.len(),
        rendered.join("\n\n")
    );
}

/// The committed `detlint.toml` widens coverage; the built-in defaults
/// must hold on their own too, so a deleted or truncated config cannot
/// silently weaken the gate.
#[test]
fn workspace_is_clean_under_builtin_defaults() {
    let report =
        detlint::run(&workspace_root(), &detlint::Config::default()).expect("scan succeeds");
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        report.is_clean(),
        "default-config scan found {} violation(s):\n\n{}",
        report.findings.len(),
        rendered.join("\n\n")
    );
}

#[test]
fn gate_actually_detects_planted_violations() {
    // Guard against the gate rotting into a vacuous pass: plant each
    // class of violation in a synthetic tree and require a finding.
    let dir = std::env::temp_dir().join(format!("detlint-gate-{}", std::process::id()));
    let src = dir.join("crates/geonet/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(
        src.join("loctable.rs"),
        "use std::collections::HashMap;\nfn f() { let t = std::time::Instant::now(); let r = rand::thread_rng(); }\n",
    )
    .unwrap();
    let report = detlint::run(&dir, &detlint::Config::default()).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"D1"), "missing D1 in {rules:?}");
    assert!(rules.contains(&"D2"), "missing D2 in {rules:?}");
    assert!(rules.contains(&"D3"), "missing D3 in {rules:?}");
    for f in &report.findings {
        assert_eq!(f.file, "crates/geonet/src/loctable.rs");
        assert!(f.line >= 1 && f.col >= 1);
    }
}

/// Same rot-guard for the v2 families: plant one violation per rule in
/// a synthetic tree and require `run` to surface each, including the
/// headline W1 demonstration — reordering two fields in a copy of the
/// real `wire.rs` must fail against the committed `wire.schema`.
#[test]
fn gate_detects_planted_flow_graph_and_wire_violations() {
    let root = workspace_root();
    let dir = std::env::temp_dir().join(format!("detlint-gate-v2-{}", std::process::id()));
    let src = dir.join("crates/core/src");
    std::fs::create_dir_all(&src).unwrap();

    // W1: the live encoder with two writes swapped, against the real
    // committed snapshot.
    let wire = std::fs::read_to_string(root.join("crates/core/src/wire.rs")).unwrap();
    let a = "put_opt_time(&mut p, self.step1_crossing);";
    let b = "put_opt_time(&mut p, self.step2_detection);";
    let mutated = wire.replace(&format!("{a}\n        {b}"), &format!("{b}\n        {a}"));
    assert_ne!(mutated, wire, "wire mutation must apply");
    std::fs::write(src.join("wire.rs"), mutated).unwrap();
    std::fs::copy(root.join("wire.schema"), dir.join("wire.schema")).unwrap();

    // R1/R2/R3 and S3 (default entries include `core::handle`).
    std::fs::write(
        src.join("lib.rs"),
        r#"fn seed_streams(rng: &mut SimRng) -> (SimRng, SimRng) {
    (rng.fork("mac"), rng.fork("mac"))
}
fn cached_fer(rng: &mut SimRng, memo: &mut Memo, key: u64) -> f64 {
    if let Some(v) = memo.get(&key) {
        return *v;
    }
    let draw = rng.f64();
    memo.insert(key, draw);
    draw
}
fn jitter(links: &mut HashMap<u64, Link>, rng: &mut SimRng) {
    links.values_mut().for_each(|l| l.set(rng.f64()));
}
fn handle(frame: &[u8]) -> u8 {
    decode_kind(frame)
}
fn decode_kind(frame: &[u8]) -> u8 {
    frame[0]
}
"#,
    )
    .unwrap();

    let report = detlint::run(&dir, &detlint::Config::default()).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    for rule in ["R1", "R2", "R3", "S3", "W1"] {
        assert!(rules.contains(&rule), "missing {rule} in {rules:?}");
    }
    let w1 = report.findings.iter().find(|f| f.rule == "W1").unwrap();
    assert!(
        w1.message.contains("step1_crossing") || w1.message.contains("position 1"),
        "W1 should name the reordered field: {}",
        w1.message
    );
}
