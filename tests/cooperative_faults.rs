//! The cooperative fault sweep (platoon + intersection under
//! node-targeted fault campaigns, DESIGN.md §15) must be byte-identical
//! however it is executed: serial in-process, the deterministic thread
//! pool, the multi-process shard coordinator, and the campaign server's
//! socket-worker executor.
//!
//! Sweep jobs are not plain scenario-spec runs, so every executor
//! reaches them through [`Executor::run_indexed`]'s in-process path —
//! the same contract the city campaign pins — while the socket-backed
//! [`FanoutExecutor`] additionally proves its spec-grid path merges
//! byte-identically to [`Serial`] over live TCP workers.

use campaignd::FanoutExecutor;
use facilities::cpm::CpServiceConfig;
use its_testbed::campaign::{CampaignRegistry, CampaignSpec, Executor, Serial};
use its_testbed::coopsweep::{coop_sweep, coop_sweep_frames};
use its_testbed::faultsweep::INTENSITIES;
use its_testbed::intersection::{IntersectionConfig, IntersectionScenario, SecondHazard};
use its_testbed::{Runner, ScenarioConfig};
use shard::transport::serve_connections;
use shard::ShardExecutor;
use std::net::{SocketAddr, TcpListener};

const BASE_SEED: u64 = 4100;
const RUNS: usize = 1;

/// A registry entry so the socket-backed executors can be constructed;
/// coop-sweep jobs run through `run_indexed`, not through this grid.
fn anchor_grid() -> Vec<CampaignSpec> {
    vec![CampaignSpec::new(
        ScenarioConfig {
            seed: 4100,
            ..ScenarioConfig::default()
        },
        3,
    )]
}

/// An in-process socket worker thread serving the anchor registry.
fn spawn_worker() -> SocketAddr {
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind worker");
    let addr = listener.local_addr().expect("worker addr");
    std::thread::spawn(move || {
        let registry = CampaignRegistry::new().register("coop_anchor", anchor_grid);
        serve_connections(&listener, &registry);
    });
    addr
}

#[test]
fn coop_sweep_is_byte_identical_across_executors() {
    let serial_frames = coop_sweep_frames(&Serial, BASE_SEED, RUNS);
    let serial_fp = coop_sweep(&Serial, BASE_SEED, RUNS).fingerprint();
    assert!(!serial_frames.is_empty());

    // Deterministic thread pool.
    let runner = Runner::new(8);
    assert_eq!(
        coop_sweep_frames(&runner, BASE_SEED, RUNS),
        serial_frames,
        "8-thread runner frames diverged"
    );
    assert_eq!(
        coop_sweep(&runner, BASE_SEED, RUNS).fingerprint(),
        serial_fp
    );

    // Multi-process shard coordinator (run_indexed stays in-process).
    let registry = CampaignRegistry::new().register("coop_anchor", anchor_grid);
    let shard = ShardExecutor::new(4, "coop_anchor", &registry).expect("anchor registered");
    assert_eq!(
        coop_sweep_frames(&shard, BASE_SEED, RUNS),
        serial_frames,
        "4-worker shard frames diverged"
    );
    assert_eq!(coop_sweep(&shard, BASE_SEED, RUNS).fingerprint(), serial_fp);

    // Campaign server's socket-worker executor, with live TCP workers.
    let workers: Vec<SocketAddr> = (0..2).map(|_| spawn_worker()).collect();
    let fanout = FanoutExecutor::new("coop_anchor", anchor_grid(), workers);
    assert_eq!(
        coop_sweep_frames(&fanout, BASE_SEED, RUNS),
        serial_frames,
        "socket-worker fanout frames diverged"
    );
    assert_eq!(
        coop_sweep(&fanout, BASE_SEED, RUNS).fingerprint(),
        serial_fp
    );
    // And its spec-grid path really does cross the sockets for the
    // campaign it is bound to: identical bytes, no local fallback.
    assert_eq!(
        fanout.execute_grid(&anchor_grid()),
        Serial.execute_grid(&anchor_grid())
    );
    assert_eq!(fanout.fallback_grids(), 0);
}

#[test]
fn degradation_is_monotone_in_fault_intensity() {
    let sweep = coop_sweep(&Serial, BASE_SEED, RUNS);

    // Platoon: silencing the leader's radio for longer starves more of
    // the heartbeat relay, so the stale-CAM cascade reaches deeper and
    // latches more fail-safe stops.
    for class in ["radio_silence", "leader_silence"] {
        for pair in INTENSITIES.windows(2) {
            let lo = sweep.cell("platoon", class, pair[0]);
            let hi = sweep.cell("platoon", class, pair[1]);
            assert!(
                hi.cascade_depth >= lo.cascade_depth,
                "platoon/{class}: cascade {} < {}",
                hi.cascade_depth,
                lo.cascade_depth
            );
            assert!(
                hi.failsafe_stops >= lo.failsafe_stops,
                "platoon/{class}: stops {} < {}",
                hi.failsafe_stops,
                lo.failsafe_stops
            );
        }
    }

    // Intersection: a quieter RSU delivers fewer DENMs, so fewer
    // protective stops succeed — that counter is non-INCREASING.
    for pair in INTENSITIES.windows(2) {
        let lo = sweep.cell("intersection", "rsu_silence", pair[0]);
        let hi = sweep.cell("intersection", "rsu_silence", pair[1]);
        assert!(
            hi.delivered <= lo.delivered,
            "intersection/rsu_silence: delivered {} > {}",
            hi.delivered,
            lo.delivered
        );
        assert!(
            hi.failsafe_stops <= lo.failsafe_stops,
            "intersection/rsu_silence: protective stops {} > {}",
            hi.failsafe_stops,
            lo.failsafe_stops
        );
    }
}

/// The blind-corner geometry of DESIGN.md §15: road user crosses early,
/// stalled obstacle past the corner, own sensor occluded until far
/// inside braking distance.
fn blind_corner_config(cpm_on: bool) -> IntersectionConfig {
    IntersectionConfig {
        seed: 1,
        protagonist_start_m: 12.0,
        road_user_start_m: 5.0,
        conflict_window_s: 0.8,
        second_hazard: Some(SecondHazard::default()),
        cpm: cpm_on.then(CpServiceConfig::default),
        ..IntersectionConfig::default()
    }
}

#[test]
fn collective_perception_is_what_resolves_the_blind_corner() {
    let on = IntersectionScenario::new(blind_corner_config(true)).run();
    assert!(on.cpm_delivered > 0, "{on:?}");
    assert!(on.cpm_extended_detections > 0, "{on:?}");
    assert!(on.second_hazard_via_cpm, "{on:?}");
    assert!(!on.collision, "{on:?}");

    let off = IntersectionScenario::new(blind_corner_config(false)).run();
    assert_eq!(off.cpm_delivered, 0);
    assert!(!off.second_hazard_via_cpm, "{off:?}");
    assert!(off.collision, "own sensors alone must be too late: {off:?}");
}
