//! Allocation-regression gate for the scenario hot loop.
//!
//! The calendar-queue engine and the scratch-recycling work drove the
//! table 2 scenario from ~160 heap allocations per run down to a
//! handful: the event queue's slab and buckets, the CAM frame pool,
//! the vision-pipeline buffers and the per-handler scratch vectors are
//! all reused across runs, so a steady-state run only allocates what
//! it genuinely hands outward (the `RunRecord`'s trace, the DENM
//! payload `Arc`, the LDM's first inserts).
//!
//! This test pins that property with a counting global allocator: the
//! *marginal* allocations per run — measured over warm runs so
//! one-time pool fills are excluded — must stay under the committed
//! ceiling. A regression that reintroduces per-event boxing or
//! per-run buffer growth shows up here as a count, not as a vague
//! slowdown.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use its_testbed::scenario::{Scenario, ScenarioConfig};

/// Counts every allocator call (`alloc` and `realloc` both count: a
/// doubling `Vec` growth is exactly the churn this gate exists to
/// catch). Deallocations are free.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Committed ceiling on steady-state allocations per scenario run.
/// Measured at 16.0 on the change that introduced this gate; the
/// ceiling leaves a little room for legitimate drift while staying an
/// order of magnitude below the pre-refactor 162.6.
const ALLOCS_PER_RUN_CEILING: f64 = 20.0;

// This file deliberately holds a single #[test]: the count is
// process-global, and a sibling test running on another harness
// thread would pollute the measurement.
#[test]
fn steady_state_allocations_per_run_stay_under_ceiling() {
    let base = ScenarioConfig::default();
    // Warm-up: fills the thread-local run scratch, the vision-buffer
    // pool and every station-owned scratch vector. Runs on the same
    // thread as the measurement below (the harness gives each test one
    // thread), so the pools it fills are the pools the measured runs
    // reuse.
    for i in 0..8 {
        std::hint::black_box(Scenario::run_seeded(&base, i));
    }
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    const RUNS: u64 = 16;
    for i in 0..RUNS {
        std::hint::black_box(Scenario::run_seeded(&base, i));
    }
    let per_run = (ALLOC_CALLS.load(Ordering::Relaxed) - before) as f64 / RUNS as f64;
    assert!(
        per_run <= ALLOCS_PER_RUN_CEILING,
        "scenario hot loop regressed to {per_run:.1} allocs/run \
         (ceiling {ALLOCS_PER_RUN_CEILING}); look for per-event boxing \
         or per-run buffer growth"
    );
    // Sanity: the counter is actually wired up — a run records a trace
    // and hands out a DENM payload, so zero would mean the allocator
    // hook is not being exercised.
    assert!(per_run > 0.0, "counting allocator not engaged");
}
