//! The city node-count campaign must be byte-identical however it is
//! executed: serial in-process, the deterministic thread pool, or the
//! multi-process shard coordinator.
//!
//! City jobs are not scenario runs, so every executor reaches them
//! through [`Executor::run_indexed`]'s in-process path — which is
//! exactly the contract this test pins: the *same* seeded simulation
//! per index, merged in index order, regardless of worker count.

use its_testbed::campaign::{CampaignSpec, Serial};
use its_testbed::city::{sweep_city, sweep_city_records, CityConfig};
use its_testbed::{Runner, ScenarioConfig};
use shard::{CampaignRegistry, ShardExecutor};
use sim_core::SimDuration;

const COUNTS: [usize; 3] = [40, 70, 100];

fn base() -> CityConfig {
    CityConfig {
        duration: SimDuration::from_secs(2),
        ..CityConfig::default()
    }
}

/// A registry entry so the shard executor can be constructed; city jobs
/// run through `run_indexed`, not through this grid.
fn city_anchor_grid() -> Vec<CampaignSpec> {
    vec![CampaignSpec::new(ScenarioConfig::default(), 4)]
}

#[test]
fn city_campaign_is_byte_identical_across_executors() {
    let registry = CampaignRegistry::new().register("city_anchor", city_anchor_grid);
    let serial_table = sweep_city(&Serial, &base(), &COUNTS);
    let serial_records = sweep_city_records(&Serial, &base(), &COUNTS);

    for threads in [2, 8] {
        let runner = Runner::new(threads);
        assert_eq!(
            sweep_city(&runner, &base(), &COUNTS),
            serial_table,
            "{threads}-thread runner table diverged"
        );
        assert_eq!(
            sweep_city_records(&runner, &base(), &COUNTS),
            serial_records,
            "{threads}-thread runner records diverged"
        );
    }

    for workers in [2, 4] {
        let shard = ShardExecutor::new(workers, "city_anchor", &registry)
            .expect("anchor campaign registered");
        assert_eq!(
            sweep_city(&shard, &base(), &COUNTS),
            serial_table,
            "{workers}-worker shard table diverged"
        );
        assert_eq!(
            sweep_city_records(&shard, &base(), &COUNTS),
            serial_records,
            "{workers}-worker shard records diverged"
        );
    }
}

#[test]
fn city_records_carry_the_requested_counts_in_order() {
    let records = sweep_city_records(&Serial, &base(), &COUNTS);
    let ns: Vec<usize> = records.iter().map(|r| r.n_stations).collect();
    assert_eq!(ns, COUNTS.to_vec());
}
