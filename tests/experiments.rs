//! Experiment-level regression tests: every table and figure of the
//! paper regenerates with the right structure and the right *shape*
//! (who dominates, by roughly what factor, what stays bounded).

use its_testbed::experiments::{self, paper};
use its_testbed::metrics::{mean, Edf};
use its_testbed::scenario::ScenarioConfig;
use its_testbed::Runner;

fn base() -> ScenarioConfig {
    ScenarioConfig {
        seed: 9000,
        ..ScenarioConfig::default()
    }
}

#[test]
fn table2_five_run_structure() {
    let t = experiments::table2(&Runner::from_env(), &base(), 5);
    assert_eq!(t.interval_2_3.len(), 5);
    assert_eq!(t.interval_3_4.len(), 5);
    assert_eq!(t.interval_4_5.len(), 5);
    assert_eq!(t.total.len(), 5);
    // Paper row sums equal the totals.
    for i in 0..5 {
        let sum = t.interval_2_3[i] + t.interval_3_4[i] + t.interval_4_5[i];
        assert_eq!(sum, t.total[i]);
    }
}

#[test]
fn table2_shape_versus_paper() {
    let t = experiments::table2(&Runner::from_env(), &base(), 30);
    let (m23, m34, m45) = (
        mean(&t.interval_2_3),
        mean(&t.interval_3_4),
        mean(&t.interval_4_5),
    );
    // Shape: the radio hop is over an order of magnitude below the two
    // software intervals (paper: 1.6 vs 27.6 and 29.2).
    assert!(m34 * 8.0 < m23, "{m34} vs {m23}");
    assert!(m34 * 8.0 < m45, "{m34} vs {m45}");
    // Magnitudes within a factor ~1.5 of the paper's averages.
    assert!((mean(&paper::INTERVAL_2_3) - m23).abs() < 14.0, "m23 {m23}");
    assert!((mean(&paper::INTERVAL_3_4) - m34).abs() < 2.0, "m34 {m34}");
    assert!((mean(&paper::INTERVAL_4_5) - m45).abs() < 14.0, "m45 {m45}");
    let mtot = mean(&t.total);
    assert!((mean(&paper::TOTAL) - mtot).abs() < 20.0, "total {mtot}");
}

#[test]
fn fig11_edf_statements_hold_at_scale() {
    let f = experiments::fig11(&Runner::from_env(), &base(), 60);
    assert!(f.edf.max() < 100.0, "max {} ms", f.edf.max());
    assert!(f.edf.min() > 15.0, "min {} ms", f.edf.min());
    // The EDF is a proper distribution function.
    let pts = f.edf.step_points();
    assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    let mut prev = 0.0;
    for (_, p) in pts {
        assert!(p >= prev);
        prev = p;
    }
}

#[test]
fn table3_statistics_versus_paper() {
    let t = experiments::table3(&Runner::from_env(), &base(), 20);
    let m = t.mean();
    // Paper: avg 0.36 m with variance 0.0022; we accept ±0.08 m on the
    // mean and the same order of variance.
    assert!((m - mean(&paper::BRAKING)).abs() < 0.08, "mean {m}");
    assert!(t.variance() < 0.01, "variance {}", t.variance());
    // Every run within one vehicle length (0.53 m).
    for &b in &t.braking_m {
        assert!(b < 0.53, "braking {b}");
    }
}

#[test]
fn fig10_detection_to_stop_quantisation_bound() {
    let f = experiments::fig10(&base());
    // Frame measurement differs from truth by at most one frame period.
    assert!((f.frame_measured_s - f.true_detection_to_stop_s).abs() <= f.frame_period_s + 1e-9);
    // Detected distance below the action point, like the paper's
    // "crosses the 1.52 m action point and is detected at 1.45 m".
    assert!(f.detected_at_m <= f.action_point_m);
}

#[test]
fn table1_is_the_paper_table() {
    let s = experiments::table1();
    for &(cause, sub, desc) in its_messages::cause_codes::TABLE_I_ROWS {
        assert!(s.contains(desc), "missing row {cause}/{sub}: {desc}");
    }
}

#[test]
fn paper_reference_data_self_consistent() {
    // The constants we compare against reproduce the paper's own
    // aggregates.
    assert!((mean(&paper::TOTAL) - 58.4).abs() < 0.01);
    assert!((mean(&paper::INTERVAL_2_3) - 27.6).abs() < 0.01);
    assert!((mean(&paper::INTERVAL_3_4) - 1.6).abs() < 0.01);
    assert!((mean(&paper::INTERVAL_4_5) - 29.2).abs() < 0.01);
    let edf = Edf::from_samples(paper::TOTAL.to_vec());
    assert_eq!(edf.fraction_at_or_below(55.0), 0.6);
}

#[test]
fn grid_of_configs_preserves_invariants() {
    // A coarse grid over speed × action point: every completed run must
    // satisfy the pipeline invariants regardless of parameters.
    for (speed, throttle) in [(1.0, 0.19), (1.5, 0.214), (2.5, 0.25)] {
        for action_point in [1.2, 1.52, 2.0] {
            let r = its_testbed::Scenario::new(ScenarioConfig {
                seed: 42,
                cruise_speed_mps: speed,
                cruise_throttle: throttle,
                action_point_m: action_point,
                start_distance_m: 4.0f64.max(3.0 * speed),
                ..ScenarioConfig::default()
            })
            .run();
            assert!(r.completed(), "speed {speed} ap {action_point}");
            let total = r.total_delay_ms().unwrap();
            assert!(total > 0, "positive measured delay");
            let braking = r.braking_distance_m().unwrap();
            assert!(braking > 0.0 && braking < 2.0, "braking {braking}");
            // Simulation-time causality, independent of wall clocks.
            assert!(r.step2_detection.unwrap() < r.step5_actuation.unwrap());
            assert!(r.step5_actuation.unwrap() < r.step6_halt.unwrap());
            // Detection estimate at or below the configured action point.
            assert!(r.detection_distance_m.unwrap() <= action_point + 1e-9);
        }
    }
}

#[test]
fn ablation_fps_dominates_step1_to_2() {
    // The camera frame clock bounds how stale the detection can be:
    // halving FPS roughly doubles the worst-case step-1→2 gap.
    let fast = ScenarioConfig {
        seed: 9500,
        camera: perception::camera::RoadSideCamera {
            processed_fps: 8.0,
            ..perception::camera::RoadSideCamera::default()
        },
        ..ScenarioConfig::default()
    };
    let slow = ScenarioConfig {
        seed: 9500,
        camera: perception::camera::RoadSideCamera {
            processed_fps: 2.0,
            ..perception::camera::RoadSideCamera::default()
        },
        ..ScenarioConfig::default()
    };
    let gap = |cfg: &ScenarioConfig| {
        let t = experiments::table2(&Runner::from_env(), cfg, 10);
        let mut gaps = Vec::new();
        for r in &t.records {
            let s1 = r.step1_crossing.unwrap().as_nanos() as f64;
            let s2 = r.step2_detection.unwrap().as_nanos() as f64;
            gaps.push((s2 - s1) / 1e6);
        }
        mean(&gaps)
    };
    let g_fast = gap(&fast);
    let g_slow = gap(&slow);
    assert!(
        g_slow > 1.5 * g_fast,
        "2 FPS gap {g_slow} ms vs 8 FPS gap {g_fast} ms"
    );
}
