//! Tier-1 regression test for the campaign server (DESIGN.md §14):
//! table2, table3 and a multi-spec city-style sweep submitted over
//! loopback HTTP produce **byte-identical** result streams to a plain
//! serial loop at 1/2/4 re-exec'd socket workers — and stay identical
//! when workers are killed mid-chunk, when they hang until the
//! per-chunk timeout reaps their connection, and when two clients
//! submit concurrently. Queue overflow answers a deterministic 503.
//!
//! `harness = false`: the server spawns this very binary as its socket
//! workers, so `main` must dispatch `--shard-listen` before anything
//! else instead of handing control to libtest.

use campaignd::{client, CampaignServer, WorkerPool};
use its_testbed::campaign::{CampaignRegistry, CampaignSpec, Executor, Serial};
use its_testbed::scenario::ScenarioConfig;
use its_testbed::submission::{encode_submission, CampaignSubmission};
use its_testbed::RunRecord;
use shard::protocol::encode_results;
use shard::KILL_ENV;
use std::time::Duration;

/// Runs per table campaign: enough that 4 workers each get a multi-run
/// chunk.
const RUNS: usize = 24;

fn base() -> ScenarioConfig {
    ScenarioConfig {
        seed: 5000,
        ..ScenarioConfig::default()
    }
}

fn table2_grid() -> Vec<CampaignSpec> {
    vec![CampaignSpec::new(base(), RUNS)]
}

fn table3_grid() -> Vec<CampaignSpec> {
    vec![CampaignSpec::with_seed_offset(base(), 1000, RUNS)]
}

/// A city-style multi-spec sweep: cruise speed × 4 seeds each, so the
/// flattened grid crosses spec boundaries inside worker chunks.
fn city_sweep_grid() -> Vec<CampaignSpec> {
    [4.0f64, 6.0, 8.0]
        .iter()
        .map(|&v| {
            CampaignSpec::new(
                ScenarioConfig {
                    seed: 5000,
                    cruise_speed_mps: v,
                    ..ScenarioConfig::default()
                },
                4,
            )
        })
        .collect()
}

fn registry() -> CampaignRegistry {
    CampaignRegistry::new()
        .register("table2", table2_grid)
        .register("table3", table3_grid)
        .register("city_sweep", city_sweep_grid)
}

const CAMPAIGNS: [(&str, fn() -> Vec<CampaignSpec>); 3] = [
    ("table2", table2_grid),
    ("table3", table3_grid),
    ("city_sweep", city_sweep_grid),
];

fn serial_stream(grid: &[CampaignSpec]) -> Vec<u8> {
    let flat: Vec<RunRecord> = Serial.execute_grid(grid).into_iter().flatten().collect();
    encode_results(&flat)
}

fn check(name: &str, ok: bool, failures: &mut usize) {
    if ok {
        println!("ok   {name}");
    } else {
        println!("FAIL {name}");
        *failures += 1;
    }
}

/// Boots `n` re-exec'd socket workers and a server over them.
fn boot(n: usize) -> (campaignd::WorkerProcs, campaignd::RunningCampaignServer) {
    let pool = WorkerPool::bind().expect("bind worker control port");
    let procs = campaignd::spawn_socket_workers(n, pool.ctrl_addr()).expect("spawn workers");
    assert!(
        pool.wait_for(n, Duration::from_secs(30)),
        "{n} workers failed to register"
    );
    let server = CampaignServer::new(registry())
        .with_workers(pool.workers())
        .with_timeout(Duration::from_secs(300))
        .serve("127.0.0.1:0")
        .expect("bind campaign server");
    (procs, server)
}

fn main() {
    let registry = registry();
    // Re-exec'd children take this exit and never reach the assertions.
    campaignd::socket_worker_main_if_requested(&registry);

    let mut failures = 0usize;

    // Reference streams from the plain serial loop.
    let serial: Vec<(&str, Vec<u8>)> = CAMPAIGNS
        .iter()
        .map(|&(name, grid)| (name, serial_stream(&grid())))
        .collect();

    // The server's catalogue is the registry, in registration order.
    {
        let (procs, server) = boot(1);
        let names = client::list_campaigns(server.addr()).expect("list campaigns");
        check(
            "GET /campaigns lists the registry in order",
            names == vec!["table2", "table3", "city_sweep"],
            &mut failures,
        );
        drop(procs);
        server.shutdown();
    }

    // Byte identity at every worker count: the raw HTTP body must equal
    // the serial result stream, with no chunk falling back in-process.
    for workers in [1usize, 2, 4] {
        let (procs, server) = boot(workers);
        for (name, expected) in &serial {
            let grid = registry.derive(name).expect("registered");
            let frame = encode_submission(&CampaignSubmission::for_grid(name, &grid));
            let resp = client::submit_raw(server.addr(), &frame).expect("submit");
            check(
                &format!("{name}: {workers}-worker server streams serial bytes"),
                resp.status == 200 && &resp.body == expected,
                &mut failures,
            );
        }
        check(
            &format!("{workers}-worker server took no fallback"),
            server.fallback_chunks() == 0,
            &mut failures,
        );
        drop(procs);
        server.shutdown();
    }

    // Kill injection: chunks 0 and 2 of 4 die mid-chunk (result magic
    // written, records missing, connection dropped). The server must
    // detect both truncations, re-run those chunks in-process, and
    // still stream the exact serial bytes. Workers inherit the
    // environment at spawn, so the variable is set before boot.
    std::env::set_var(KILL_ENV, "0,2");
    {
        let (procs, server) = boot(4);
        let grid = table2_grid();
        let frame = encode_submission(&CampaignSubmission::for_grid("table2", &grid));
        let resp = client::submit_raw(server.addr(), &frame).expect("submit");
        check(
            "table2: 4-worker server with killed chunks 0,2 streams serial bytes",
            resp.status == 200 && resp.body == serial_stream(&grid),
            &mut failures,
        );
        check(
            "kill injection actually exercised the fallback",
            server.fallback_chunks() == 2,
            &mut failures,
        );
        drop(procs);
        server.shutdown();
    }
    std::env::remove_var(KILL_ENV);

    // Two concurrent clients: submissions are queued FIFO and executed
    // one at a time, so each client's stream is complete, unmixed, and
    // byte-identical to its own serial reference.
    {
        let (procs, server) = boot(2);
        let addr = server.addr();
        let handles: Vec<_> = [("table2", table2_grid()), ("table3", table3_grid())]
            .into_iter()
            .map(|(name, grid)| {
                std::thread::spawn(move || {
                    let expected = serial_stream(&grid);
                    let frame = encode_submission(&CampaignSubmission::for_grid(name, &grid));
                    (0..3).all(|_| {
                        let resp = client::submit_raw(addr, &frame).expect("submit");
                        resp.status == 200 && resp.body == expected
                    })
                })
            })
            .collect();
        let all_ok = handles
            .into_iter()
            .all(|h| h.join().expect("client thread"));
        check(
            "two concurrent clients each get their own serial bytes, thrice",
            all_ok,
            &mut failures,
        );
        drop(procs);
        server.shutdown();
    }

    // Queue overflow: a zero-depth queue refuses every submission with
    // a deterministic 503, and the retry client surfaces it after its
    // backoff schedule is exhausted.
    {
        let server = CampaignServer::new(registry.clone())
            .with_queue_depth(0)
            .serve("127.0.0.1:0")
            .expect("bind campaign server");
        let grid = table2_grid();
        let err = client::submit(server.addr(), "table2", &grid).unwrap_err();
        check(
            "zero queue depth answers 503",
            matches!(err, client::SubmitError::Status(503, _)),
            &mut failures,
        );
        let policy = openc2x::http::RetryPolicy {
            max_attempts: 2,
            backoff_base: sim_core::SimDuration::from_millis(1),
            ..openc2x::http::RetryPolicy::default()
        };
        let err = client::submit_with_retry(server.addr(), "table2", &grid, &policy).unwrap_err();
        check(
            "submit_with_retry exhausts its attempts against a full queue",
            matches!(err, client::SubmitError::Status(503, _)),
            &mut failures,
        );
        server.shutdown();
    }

    if failures > 0 {
        eprintln!("campaignd_determinism: {failures} check(s) failed");
        std::process::exit(1);
    }
    println!("campaignd_determinism: all checks passed");
}
