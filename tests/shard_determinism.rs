//! Tier-1 regression test for the multi-process shard executor
//! (DESIGN.md §10): table2, table3 and the fault-sweep campaign
//! (DESIGN.md §11) produce **byte-identical** output across serial
//! execution, an 8-thread in-process runner, and 1/2/4-worker shards —
//! and stay identical when workers are killed mid-protocol or hang
//! until the coordinator's result timeout reaps them.
//!
//! `harness = false`: the coordinator re-execs this very binary as its
//! workers, so `main` must dispatch `--shard-worker` before anything
//! else instead of handing control to libtest.

use its_testbed::campaign::CampaignSpec;
use its_testbed::experiments::{table2, table3};
use its_testbed::faultsweep::{fault_sweep, fault_sweep_specs};
use its_testbed::scenario::ScenarioConfig;
use its_testbed::Runner;
use shard::{CampaignRegistry, ShardExecutor, HANG_ENV, KILL_ENV};
use std::time::Duration;

/// Runs per campaign: enough that 4 workers each get a multi-run chunk.
const RUNS: usize = 24;

fn base() -> ScenarioConfig {
    ScenarioConfig {
        seed: 5000,
        ..ScenarioConfig::default()
    }
}

// The registered derivations mirror exactly what `experiments::table2` /
// `table3` build internally, so the shard executor recognises their
// specs by fingerprint and actually shards instead of falling back.
fn table2_grid() -> Vec<CampaignSpec> {
    vec![CampaignSpec::new(base(), RUNS)]
}

fn table3_grid() -> Vec<CampaignSpec> {
    vec![CampaignSpec::with_seed_offset(base(), 1000, RUNS)]
}

/// Seeds per fault-sweep cell: the grid is 18 cells, so 2 seeds give 36
/// flat jobs — enough for every worker count here to get real chunks.
const FS_RUNS: usize = 2;

fn fs_base() -> ScenarioConfig {
    ScenarioConfig {
        seed: 6000,
        ..ScenarioConfig::default()
    }
}

fn faultsweep_grid() -> Vec<CampaignSpec> {
    fault_sweep_specs(&fs_base(), FS_RUNS)
}

fn registry() -> CampaignRegistry {
    CampaignRegistry::new()
        .register("table2", table2_grid)
        .register("table3", table3_grid)
        .register("faultsweep", faultsweep_grid)
}

fn sharded(workers: usize, campaign: &str) -> ShardExecutor {
    ShardExecutor::new(workers, campaign, &registry())
        .expect("campaign is registered")
        .with_timeout(Duration::from_secs(300))
}

fn braking_bits(t: &its_testbed::experiments::Table3) -> Vec<u64> {
    t.braking_m.iter().map(|b| b.to_bits()).collect()
}

fn check(name: &str, ok: bool, failures: &mut usize) {
    if ok {
        println!("ok   {name}");
    } else {
        println!("FAIL {name}");
        *failures += 1;
    }
}

fn main() {
    let registry = registry();
    // Re-exec'd children take this exit and never reach the assertions.
    shard::worker_main_if_requested(&registry);

    let mut failures = 0usize;

    // Reference renderings from the plain serial loop.
    let t2_serial = table2(&its_testbed::Serial, &base(), RUNS).render();
    let t3_serial = braking_bits(&table3(&its_testbed::Serial, &base(), RUNS));

    // In-process thread pool at 8 workers (oversubscription is fine).
    let threaded = Runner::new(8);
    check(
        "table2: 8-thread runner matches serial",
        table2(&threaded, &base(), RUNS).render() == t2_serial,
        &mut failures,
    );
    check(
        "table3: 8-thread runner matches serial (bitwise)",
        braking_bits(&table3(&threaded, &base(), RUNS)) == t3_serial,
        &mut failures,
    );

    // Shard executor at 1 and at 4 worker processes: byte-identical, and
    // no chunk may have taken the in-process fallback path.
    for workers in [1usize, 4] {
        let exec = sharded(workers, "table2");
        check(
            &format!("table2: {workers}-worker shard matches serial"),
            table2(&exec, &base(), RUNS).render() == t2_serial,
            &mut failures,
        );
        check(
            &format!("table2: {workers}-worker shard took no fallback"),
            exec.fallback_chunks() == 0,
            &mut failures,
        );

        let exec = sharded(workers, "table3");
        check(
            &format!("table3: {workers}-worker shard matches serial (bitwise)"),
            braking_bits(&table3(&exec, &base(), RUNS)) == t3_serial,
            &mut failures,
        );
        check(
            &format!("table3: {workers}-worker shard took no fallback"),
            exec.fallback_chunks() == 0,
            &mut failures,
        );
    }

    // Kill injection: workers 0 and 2 of 4 die mid-protocol (magic
    // written, records missing). The coordinator must detect both
    // truncations, re-run those chunks in-process, and still merge to
    // the exact serial bytes. Children inherit the environment, so
    // setting the variable here reaches the re-exec'd workers.
    std::env::set_var(KILL_ENV, "0,2");
    let exec = sharded(4, "table2");
    check(
        "table2: 4-worker shard with killed workers 0,2 matches serial",
        table2(&exec, &base(), RUNS).render() == t2_serial,
        &mut failures,
    );
    check(
        "table2: kill injection actually exercised the fallback",
        exec.fallback_chunks() == 2,
        &mut failures,
    );
    let exec = sharded(4, "table3");
    check(
        "table3: 4-worker shard with killed workers 0,2 matches serial",
        braking_bits(&table3(&exec, &base(), RUNS)) == t3_serial,
        &mut failures,
    );
    check(
        "table3: kill injection actually exercised the fallback",
        exec.fallback_chunks() == 2,
        &mut failures,
    );
    std::env::remove_var(KILL_ENV);

    // Hang injection: worker 1 of 4 reads its assignment and then never
    // writes a byte. The coordinator's result timeout must reap it,
    // count the chunk as timed out, re-run it in-process, and still
    // merge to the exact serial bytes.
    std::env::set_var(HANG_ENV, "1");
    let exec = sharded(4, "table2").with_timeout(Duration::from_secs(5));
    check(
        "table2: 4-worker shard with hung worker 1 matches serial",
        table2(&exec, &base(), RUNS).render() == t2_serial,
        &mut failures,
    );
    check(
        "table2: hang injection tripped the worker timeout",
        exec.timed_out_chunks() == 1 && exec.fallback_chunks() == 1,
        &mut failures,
    );
    std::env::remove_var(HANG_ENV);

    // Fault-sweep campaign (DESIGN.md §11): the 18-cell fault grid with
    // the watchdog enabled must aggregate to byte-identical tables on
    // every executor — the acceptance bar for the fault-injection plane.
    let fs_serial = fault_sweep(&its_testbed::Serial, &fs_base(), FS_RUNS);
    check(
        "faultsweep: 8-thread runner matches serial",
        fault_sweep(&Runner::new(8), &fs_base(), FS_RUNS) == fs_serial,
        &mut failures,
    );
    for workers in [2usize, 4] {
        let exec = sharded(workers, "faultsweep");
        let sharded_sweep = fault_sweep(&exec, &fs_base(), FS_RUNS);
        check(
            &format!("faultsweep: {workers}-worker shard matches serial"),
            sharded_sweep == fs_serial && sharded_sweep.fingerprint() == fs_serial.fingerprint(),
            &mut failures,
        );
        check(
            &format!("faultsweep: {workers}-worker shard took no fallback"),
            exec.fallback_chunks() == 0,
            &mut failures,
        );
    }

    if failures > 0 {
        eprintln!("shard_determinism: {failures} check(s) failed");
        std::process::exit(1);
    }
    println!("shard_determinism: all checks passed");
}
