//! Reproducibility: the whole testbed is deterministic given a seed —
//! two identical configurations produce byte-identical traces, and any
//! seed change propagates.

use its_testbed::platoon::{run_platoon, PlatoonConfig};
use its_testbed::scenario::{Scenario, ScenarioConfig};

#[test]
fn identical_seeds_identical_traces() {
    for seed in [1, 17, 12345] {
        let cfg = ScenarioConfig {
            seed,
            ..ScenarioConfig::default()
        };
        let a = Scenario::new(cfg.clone()).run();
        let b = Scenario::new(cfg).run();
        assert_eq!(a.trace.digest(), b.trace.digest(), "seed {seed}");
        assert_eq!(a.total_delay_ms(), b.total_delay_ms());
        assert_eq!(a.braking_distance_m(), b.braking_distance_m());
        assert_eq!(a.step2_wall_ms, b.step2_wall_ms);
        assert_eq!(a.step5_wall_ms, b.step5_wall_ms);
    }
}

#[test]
fn trace_event_sequences_match_exactly() {
    let cfg = ScenarioConfig {
        seed: 77,
        ..ScenarioConfig::default()
    };
    let a = Scenario::new(cfg.clone()).run();
    let b = Scenario::new(cfg).run();
    assert_eq!(a.trace.events().len(), b.trace.events().len());
    for (ea, eb) in a.trace.events().zip(b.trace.events()) {
        assert_eq!(ea, eb);
    }
}

#[test]
fn seed_changes_propagate_everywhere() {
    let base = Scenario::new(ScenarioConfig {
        seed: 1,
        ..ScenarioConfig::default()
    })
    .run();
    let mut digests = std::collections::HashSet::new();
    digests.insert(base.trace.digest());
    for seed in 2..12 {
        let r = Scenario::new(ScenarioConfig {
            seed,
            ..ScenarioConfig::default()
        })
        .run();
        digests.insert(r.trace.digest());
    }
    assert_eq!(digests.len(), 11, "every seed yields a distinct trace");
}

#[test]
fn platoon_runs_are_reproducible() {
    let cfg = PlatoonConfig {
        seed: 9,
        n_vehicles: 5,
        ..PlatoonConfig::default()
    };
    assert_eq!(run_platoon(&cfg), run_platoon(&cfg));
}

#[test]
fn intersection_runs_are_reproducible() {
    use its_testbed::intersection::{IntersectionConfig, IntersectionScenario};
    let cfg = IntersectionConfig {
        seed: 31,
        ..IntersectionConfig::default()
    };
    let a = IntersectionScenario::new(cfg.clone()).run();
    let b = IntersectionScenario::new(cfg).run();
    assert_eq!(a.trace.digest(), b.trace.digest());
    assert_eq!(a.min_separation_m, b.min_separation_m);
    assert_eq!(a.halt_margin_m, b.halt_margin_m);
}

#[test]
fn congestion_runs_are_reproducible() {
    use its_testbed::congestion::{run_congestion, CongestionConfig};
    let cfg = CongestionConfig {
        seed: 13,
        n_stations: 30,
        duration: sim_core::SimDuration::from_secs(5),
        ..CongestionConfig::default()
    };
    assert_eq!(run_congestion(&cfg), run_congestion(&cfg));
}

#[test]
fn repetition_config_is_deterministic_too() {
    use sim_core::SimDuration;
    let cfg = ScenarioConfig {
        seed: 77,
        denm_repetition: Some((SimDuration::from_millis(100), SimDuration::from_secs(1))),
        ..ScenarioConfig::default()
    };
    let a = Scenario::new(cfg.clone()).run();
    let b = Scenario::new(cfg).run();
    assert_eq!(a.trace.digest(), b.trace.digest());
}

#[test]
fn ldm_queries_are_insertion_order_independent() {
    // Regression test for the HashMap→BTreeMap migration: the LDM's
    // tables iterate in key order, so two stations that learnt the same
    // facts in a different order must answer queries identically. With
    // hash-ordered tables this held only by accident of the per-process
    // hasher seed.
    use facilities::Ldm;
    use its_messages::cam::Cam;
    use its_messages::common::{ReferencePosition, StationId, StationType};
    use sim_core::SimTime;

    let cam = |id: u32, lat: f64| {
        Cam::basic(
            StationId::new(id).unwrap(),
            0,
            StationType::PassengerCar,
            ReferencePosition::from_degrees(lat, -8.608),
        )
    };
    // All stations within the query radius and at identical distance
    // from the centre, so distance sorting cannot mask table ordering.
    let ids = [9u32, 3, 27, 14, 1, 22, 6, 31, 18, 11];
    let mut forward = Ldm::new();
    for &id in &ids {
        forward.insert_cam(SimTime::ZERO, cam(id, 41.178));
    }
    let mut reverse = Ldm::new();
    for &id in ids.iter().rev() {
        reverse.insert_cam(SimTime::ZERO, cam(id, 41.178));
    }

    let centre = ReferencePosition::from_degrees(41.178, -8.608);
    let order = |ldm: &Ldm| -> Vec<u32> {
        ldm.stations_within(&centre, 50.0)
            .iter()
            .map(|c| c.header.station_id.value())
            .collect()
    };
    let a = order(&forward);
    let b = order(&reverse);
    assert_eq!(a.len(), ids.len());
    assert_eq!(a, b, "LDM answers must not depend on insertion order");
    // And the order is the deterministic key order, not luck.
    let mut sorted = ids.to_vec();
    sorted.sort_unstable();
    assert_eq!(a, sorted);
}

#[test]
fn config_differences_change_outcomes_not_determinism() {
    // Same seed, different action point: still deterministic per
    // configuration, but the configurations differ from each other.
    let near = ScenarioConfig {
        seed: 4,
        action_point_m: 1.2,
        ..ScenarioConfig::default()
    };
    let far = ScenarioConfig {
        seed: 4,
        action_point_m: 2.2,
        ..ScenarioConfig::default()
    };
    let n1 = Scenario::new(near.clone()).run();
    let n2 = Scenario::new(near).run();
    let f1 = Scenario::new(far).run();
    assert_eq!(n1.trace.digest(), n2.trace.digest());
    assert_ne!(n1.trace.digest(), f1.trace.digest());
    // The farther action point triggers earlier in the approach.
    assert!(f1.step2_detection.unwrap() <= n1.step2_detection.unwrap());
}
