//! End-to-end properties of the collision-avoidance pipeline
//! (camera → edge → RSU → 802.11p → OBU → polling script → actuators).

use its_testbed::scenario::{Scenario, ScenarioConfig};

fn run_seed(seed: u64) -> its_testbed::RunRecord {
    Scenario::new(ScenarioConfig {
        seed,
        ..ScenarioConfig::default()
    })
    .run()
}

#[test]
fn pipeline_completes_across_many_seeds() {
    for seed in 1..=25 {
        let r = run_seed(seed);
        assert!(r.completed(), "seed {seed} incomplete: {r:?}");
        assert!(r.denm_delivered, "seed {seed}: DENM lost at lab scale");
    }
}

#[test]
fn six_steps_in_causal_order() {
    let r = run_seed(99);
    let s1 = r.step1_crossing.unwrap();
    let s2 = r.step2_detection.unwrap();
    let s3 = r.step3_rsu_send.unwrap();
    let s4 = r.step4_obu_recv.unwrap();
    let s5 = r.step5_actuation.unwrap();
    let s6 = r.step6_halt.unwrap();
    assert!(s1 <= s2, "detection cannot precede the crossing");
    assert!(s2 < s3 && s3 < s4 && s4 < s5 && s5 < s6);
}

#[test]
fn headline_claim_under_100ms_for_50_runs() {
    // §IV-C: "The measured end-to-end delay … is consistently under
    // 100ms."
    for seed in 200..250 {
        let r = run_seed(seed);
        let total = r.total_delay_ms().unwrap();
        assert!(total < 100, "seed {seed}: {total} ms");
        assert!(total > 10, "seed {seed}: implausibly fast ({total} ms)");
    }
}

#[test]
fn radio_hop_is_the_smallest_interval() {
    // Table II: "Communication between RSU/OBU represents a minimal part
    // of the total time".
    for seed in 300..310 {
        let r = run_seed(seed);
        let d23 = r.interval_2_3_ms().unwrap();
        let d34 = r.interval_3_4_ms().unwrap();
        let d45 = r.interval_4_5_ms().unwrap();
        assert!(d34 <= d23, "seed {seed}: {d34} vs {d23}");
        assert!(d34 <= d45 + 1, "seed {seed}: {d34} vs {d45}");
        assert!(d34 <= 5, "seed {seed}: radio hop {d34} ms");
    }
}

#[test]
fn braking_distance_within_vehicle_length() {
    // §IV-B: "The average braking distance is less than one vehicle
    // length, that measures approximately 53 centimeters."
    let mut sum = 0.0;
    let n = 20;
    for seed in 400..400 + n {
        let r = run_seed(seed);
        sum += r.braking_distance_m().unwrap();
    }
    let avg = sum / n as f64;
    assert!(avg < 0.53, "average braking {avg} m exceeds a car length");
    assert!(avg > 0.2, "average braking {avg} m implausibly short");
}

#[test]
fn detection_happens_below_action_point_estimate() {
    let r = run_seed(500);
    let d = r.detection_distance_m.unwrap();
    assert!(
        d <= 1.52,
        "trigger fired at estimated distance {d} above the action point"
    );
    // And above the YOLO dead zone (estimates below 0.75 m snap to
    // 1.73 m, which cannot trigger).
    assert!(d > 0.5, "estimated distance {d} implausible");
}

#[test]
fn vehicle_travels_during_latency() {
    let r = run_seed(600);
    // Between detection and halt the car must cover at least the
    // latency travel at cruise speed plus some braking distance.
    let braking = r.braking_distance_m().unwrap();
    let speed = r.speed_at_detection_mps;
    let latency_s = r.total_delay_ms().unwrap() as f64 / 1000.0;
    assert!(
        braking > speed * latency_s * 0.8,
        "{braking} vs latency travel"
    );
}

#[test]
fn trace_contains_every_stage() {
    let r = run_seed(700);
    for kind in [
        "action_point",
        "detect",
        "denm_tx",
        "denm_rx",
        "cut_cmd",
        "power_cut",
        "halt",
    ] {
        assert!(
            r.trace.first_of_kind(kind).is_some(),
            "missing trace kind {kind}"
        );
    }
}

#[test]
fn faster_approach_longer_braking_distance() {
    let slow = Scenario::new(ScenarioConfig {
        seed: 42,
        cruise_speed_mps: 1.0,
        cruise_throttle: 0.19,
        ..ScenarioConfig::default()
    })
    .run();
    let fast = Scenario::new(ScenarioConfig {
        seed: 42,
        cruise_speed_mps: 2.0,
        cruise_throttle: 0.24,
        start_distance_m: 5.0,
        ..ScenarioConfig::default()
    })
    .run();
    let ds = slow.braking_distance_m().unwrap();
    let df = fast.braking_distance_m().unwrap();
    assert!(df > ds, "fast {df} m vs slow {ds} m");
}

#[test]
fn longer_poll_period_increases_interval_4_5() {
    use openc2x::node::PollingModel;
    use sim_core::SimDuration;
    let mut sum_fast = 0.0;
    let mut sum_slow = 0.0;
    let n = 15;
    for seed in 0..n {
        let fast = Scenario::new(ScenarioConfig {
            seed: 800 + seed,
            polling: PollingModel {
                period: SimDuration::from_millis(10),
                ..PollingModel::default()
            },
            ..ScenarioConfig::default()
        })
        .run();
        let slow = Scenario::new(ScenarioConfig {
            seed: 800 + seed,
            polling: PollingModel {
                period: SimDuration::from_millis(100),
                ..PollingModel::default()
            },
            ..ScenarioConfig::default()
        })
        .run();
        sum_fast += fast.interval_4_5_ms().unwrap() as f64;
        sum_slow += slow.interval_4_5_ms().unwrap() as f64;
    }
    assert!(
        sum_slow / n as f64 > 2.0 * sum_fast / n as f64,
        "poll period should dominate #4->#5: fast {sum_fast} slow {sum_slow}"
    );
}
