//! Deterministic parallel campaign runner.
//!
//! The testbed's evaluation is a Monte-Carlo campaign: thousands of
//! seeded scenario runs whose aggregates (means, variances, percentile
//! tables) must be **bitwise reproducible** — the same property the
//! rest of the workspace enforces with `detlint`. This crate is the
//! execution substrate that makes those campaigns parallel *without*
//! weakening that guarantee.
//!
//! # How determinism survives parallelism
//!
//! * **Jobs are pure functions of their index.** A job receives only its
//!   seed index `i`; every stochastic component inside it derives from a
//!   per-run seed, never from shared mutable state or the scheduler.
//! * **Static chunked work assignment.** The index range `0..jobs` is
//!   split into `workers` contiguous chunks decided *before* any thread
//!   starts; there is no work stealing, so which thread computes which
//!   index never depends on timing.
//! * **Index-ordered merge.** Worker results are concatenated in worker
//!   (= index) order after all workers join, so the output `Vec` is
//!   identical to what a serial loop would produce — element for
//!   element, and therefore in floating-point summation order too.
//!
//! Consequently `Runner::new(1)`, `Runner::new(8)` and everything in
//! between produce byte-identical aggregates; `tests/parallel_determinism.rs`
//! pins this as a tier-1 regression test.
//!
//! The pool is hand-rolled on `std::thread::scope` — the workspace
//! builds fully offline, so no rayon — and borrows the job closure and
//! its captured config by reference, avoiding any cloning of campaign
//! state.
//!
//! # Example
//!
//! ```
//! use runner::Runner;
//!
//! let squares = Runner::new(4).run(8, |i| (i * i) as u64);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! // Thread count never changes the result.
//! assert_eq!(squares, Runner::new(1).run(8, |i| (i * i) as u64));
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

use std::thread;

/// Environment variable overriding the worker count picked by
/// [`Runner::from_env`].
pub const THREADS_ENV: &str = "RUNNER_THREADS";

/// A deterministic parallel executor over an index range.
///
/// See the crate-level documentation for the determinism argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    threads: usize,
}

impl Runner {
    /// A runner with exactly `threads` workers (clamped to at least 1).
    ///
    /// The workers are spawned even when `threads` exceeds the machine's
    /// core count — oversubscription changes scheduling, never results.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A runner honouring the `RUNNER_THREADS` environment variable,
    /// falling back to the machine's available parallelism when it is
    /// unset.
    ///
    /// # Panics
    ///
    /// Panics with a clear message when `RUNNER_THREADS` is set but is
    /// not a positive integer (`0`, negative, garbage) — a silently
    /// ignored override would hide configuration mistakes.
    pub fn from_env() -> Self {
        let configured = std::env::var(THREADS_ENV)
            .ok()
            .map(|v| parse_threads(&v).unwrap_or_else(|e| panic!("{THREADS_ENV}: {e}")));
        Self::new(
            configured.unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get())),
        )
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `job(i)` for every `i` in `0..jobs` and returns the
    /// results in index order.
    ///
    /// At most `min(threads, jobs)` workers run; with one worker (or one
    /// job) everything runs inline on the calling thread. The returned
    /// `Vec` is bitwise identical for every worker count.
    ///
    /// # Panics
    ///
    /// Propagates the first (lowest-chunk) panic raised by a job, as a
    /// serial loop would.
    pub fn run<T, F>(&self, jobs: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(jobs);
        if workers <= 1 {
            return (0..jobs).map(job).collect();
        }
        let job = &job;
        let mut out: Vec<T> = Vec::with_capacity(jobs);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let (lo, hi) = chunk_bounds(jobs, workers, w);
                    scope.spawn(move || (lo..hi).map(job).collect::<Vec<T>>())
                })
                .collect();
            // Joining in spawn order merges chunks in index order.
            for handle in handles {
                match handle.join() {
                    Ok(chunk) => out.extend(chunk),
                    Err(payload) => {
                        if panic.is_none() {
                            panic = Some(payload);
                        }
                    }
                }
            }
        });
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        out
    }
}

impl Default for Runner {
    /// Equivalent to [`Runner::from_env`].
    fn default() -> Self {
        Self::from_env()
    }
}

/// A thread-count value that could not be parsed.
///
/// Zero is rejected on purpose: a campaign with no workers cannot make
/// progress, and `0` as "auto" would be ambiguous with a typo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadsError {
    value: String,
}

impl std::fmt::Display for ThreadsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid thread count `{}`: expected a positive integer (1, 2, 8, ...)",
            self.value
        )
    }
}

impl std::error::Error for ThreadsError {}

/// Parses a thread-count value (`RUNNER_THREADS`, `--threads`).
///
/// The single parsing authority for worker counts: [`Runner::from_env`]
/// and the examples' `--threads` flags all route through here, so `0`
/// and garbage are rejected with the same clear error everywhere.
pub fn parse_threads(value: &str) -> Result<usize, ThreadsError> {
    match value.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(ThreadsError {
            value: value.trim().to_owned(),
        }),
    }
}

/// Scans command-line arguments for `--threads N` / `--threads=N`.
///
/// Returns `Ok(None)` when the flag is absent, `Ok(Some(n))` for a valid
/// count, and a [`ThreadsError`] for a missing or invalid value — the
/// shared helper behind every example binary's flag parsing.
pub fn threads_flag(args: impl IntoIterator<Item = String>) -> Result<Option<usize>, ThreadsError> {
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--threads" {
            let value = it.next().unwrap_or_default();
            return parse_threads(&value).map(Some);
        }
        if let Some(v) = arg.strip_prefix("--threads=") {
            return parse_threads(v).map(Some);
        }
    }
    Ok(None)
}

/// The contiguous index range `[lo, hi)` assigned to worker `w` of
/// `workers` over `jobs` items: balanced static chunks, the first
/// `jobs % workers` chunks one item larger.
///
/// This is the chunk-assignment contract shared by the in-process
/// thread pool and the multi-process shard coordinator (`crates/shard`):
/// any executor that assigns chunk `w` with these bounds and merges
/// chunks in `w` order reproduces the serial job order exactly.
pub fn chunk_bounds(jobs: usize, workers: usize, w: usize) -> (usize, usize) {
    let base = jobs / workers;
    let extra = jobs % workers;
    let lo = w * base + w.min(extra);
    let hi = lo + base + usize::from(w < extra);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_range_without_overlap() {
        for jobs in 0..40 {
            for workers in 1..10 {
                let mut next = 0;
                for w in 0..workers {
                    let (lo, hi) = chunk_bounds(jobs, workers, w);
                    assert_eq!(lo, next, "jobs {jobs} workers {workers} w {w}");
                    assert!(hi >= lo);
                    next = hi;
                }
                assert_eq!(next, jobs);
            }
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        for jobs in 0..40 {
            for workers in 1..10 {
                let sizes: Vec<usize> = (0..workers)
                    .map(|w| {
                        let (lo, hi) = chunk_bounds(jobs, workers, w);
                        hi - lo
                    })
                    .collect();
                let max = *sizes.iter().max().unwrap();
                let min = *sizes.iter().min().unwrap();
                assert!(max - min <= 1, "jobs {jobs} workers {workers}: {sizes:?}");
            }
        }
    }

    #[test]
    fn results_arrive_in_index_order_for_every_thread_count() {
        let expected: Vec<usize> = (0..97).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 8, 16, 97, 200] {
            let got = Runner::new(threads).run(97, |i| i * 3 + 1);
            assert_eq!(got, expected, "threads {threads}");
        }
    }

    #[test]
    fn zero_jobs_and_single_job() {
        assert!(Runner::new(4).run(0, |i| i).is_empty());
        assert_eq!(Runner::new(4).run(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Runner::new(0).threads(), 1);
        assert_eq!(Runner::new(0).run(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Ok(4));
        assert_eq!(parse_threads(" 12 "), Ok(12));
        for bad in ["0", "-3", "eight", ""] {
            let err = parse_threads(bad).unwrap_err();
            assert!(
                err.to_string().contains("positive integer"),
                "error for {bad:?} should explain the constraint: {err}"
            );
        }
    }

    #[test]
    fn threads_flag_finds_both_spellings() {
        let args = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        assert_eq!(threads_flag(args(&["prog", "--threads", "4"])), Ok(Some(4)));
        assert_eq!(threads_flag(args(&["prog", "--threads=7"])), Ok(Some(7)));
        assert_eq!(threads_flag(args(&["prog", "--other"])), Ok(None));
        assert!(threads_flag(args(&["prog", "--threads", "0"])).is_err());
        assert!(threads_flag(args(&["prog", "--threads"])).is_err());
        assert!(threads_flag(args(&["prog", "--threads=zero"])).is_err());
    }

    #[test]
    fn float_accumulation_order_is_thread_count_independent() {
        // The property the campaign aggregates rely on: summing the
        // returned Vec front to back gives bit-identical floats.
        let sum = |threads: usize| -> f64 {
            Runner::new(threads)
                .run(1000, |i| ((i as f64) * 0.1).sin())
                .iter()
                .sum()
        };
        let s1 = sum(1);
        assert_eq!(s1.to_bits(), sum(2).to_bits());
        assert_eq!(s1.to_bits(), sum(8).to_bits());
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            Runner::new(4).run(16, |i| {
                assert!(i != 11, "boom at 11");
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn borrows_captured_state_without_cloning() {
        let config = vec![2u64, 3, 5, 7];
        let out = Runner::new(2).run(4, |i| config[i] * 10);
        assert_eq!(out, vec![20, 30, 50, 70]);
    }
}
