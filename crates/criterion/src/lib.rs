//! A minimal, dependency-free stand-in for the `criterion` benchmarking
//! crate, so the bench harness builds and runs in fully offline
//! environments (no crates.io index).
//!
//! Only the API surface used by `crates/bench` is provided: plain
//! wall-clock timing with a fixed warm-up, mean/min/max reporting, and
//! the `criterion_group!` / `criterion_main!` macros. Statistical
//! analysis, plots and HTML reports of upstream Criterion are
//! intentionally out of scope — the numbers printed here are meant for
//! coarse regression spotting, not publication.
//!
//! This crate is the one sanctioned home of wall-clock reads outside
//! `sim-core`: benchmarks measure *host* time by definition, which is
//! why the uses below carry `detlint:allow(D1)` annotations (see
//! `crates/detlint`).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub use std::hint::black_box;

// detlint:allow(D1) benchmarks measure real host time by definition
use std::time::Instant;

/// Times a single call of `f` on the host clock, returning its result
/// and the elapsed wall-clock seconds.
///
/// This is the sanctioned timing entry point for campaign-level benches
/// (e.g. `campaign_throughput`, which reports whole-campaign runs/sec
/// rather than per-iteration nanoseconds): it keeps every wall-clock
/// read inside this crate, as the crate-level note on detlint D1
/// requires.
pub fn time_once<O>(f: impl FnOnce() -> O) -> (O, f64) {
    // detlint:allow(D1) benchmarks measure real host time by definition
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.as_ref(), self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.as_ref().to_owned(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// Throughput annotation attached to a group, mirroring
/// `criterion::Throughput`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.as_ref());
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (upstream API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; its [`iter`](Bencher::iter) method
/// times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Nanoseconds measured for the most recent `iter` batch.
    elapsed_ns: u128,
    /// Iterations executed in the most recent `iter` batch.
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, running it enough times to smooth scheduler
    /// noise at the resolution coarse regression checks need.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and a cheap calibration of how many iterations fit
        // a ~5 ms measurement window.
        // detlint:allow(D1) benchmarks measure real host time by definition
        let t0 = Instant::now();
        black_box(routine());
        let once_ns = t0.elapsed().as_nanos().max(1);
        let iters = (5_000_000 / once_ns).clamp(1, 100_000) as u64;
        // detlint:allow(D1) benchmarks measure real host time by definition
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed_ns = t1.elapsed().as_nanos().max(1);
        self.iterations = iters;
    }

    fn ns_per_iter(&self) -> f64 {
        self.elapsed_ns as f64 / self.iterations.max(1) as f64
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut per_iter = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher::default();
        f(&mut b);
        if b.iterations > 0 {
            per_iter.push(b.ns_per_iter());
        }
    }
    if per_iter.is_empty() {
        println!("{label:50} (no samples)");
        return;
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let extra = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:>8.1} MiB/s",
                n as f64 / (mean / 1e9) / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>8.1} Melem/s", n as f64 / (mean / 1e9) / 1e6)
        }
        None => String::new(),
    };
    println!("{label:50} mean {mean:>12.1} ns  (min {min:.1}, max {max:.1}){extra}");
}

/// Declares a function that runs a list of benchmark functions,
/// mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a bench binary, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| black_box(40u64) + 2);
        assert!(b.iterations >= 1);
        assert!(b.elapsed_ns >= 1);
    }

    #[test]
    fn group_runs_to_completion() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(64));
        group.bench_function("noop", |b| b.iter(|| black_box(1)));
        group.finish();
    }
}
