//! The road-side ZED camera: field of view, range, and the ≈ 4 FPS
//! processing clock.

use sim_core::{SimDuration, SimTime};

/// How the scale vehicle is dressed up for the detector — the three
//  configurations explored in the paper's Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetAppearance {
    /// The bare F1Tenth platform: no bodywork, no headlights.
    BareScaleVehicle,
    /// With the original Traxxas rally body shell.
    WithBodyShell,
    /// With the cardboard stop sign on top (the reliable option).
    WithStopSign,
}

/// Ground truth about one object in front of the camera.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundTruthTarget {
    /// Identifier assigned by the scenario.
    pub id: u32,
    /// True distance from the camera lens, metres.
    pub distance_m: f64,
    /// Angle off the camera's optical axis, degrees (0 = head-on).
    pub bearing_deg: f64,
    /// Appearance configuration.
    pub appearance: TargetAppearance,
}

/// The road-side camera with its processing frame clock.
///
/// # Example
///
/// ```
/// use perception::camera::RoadSideCamera;
/// use sim_core::SimTime;
///
/// let cam = RoadSideCamera::default();
/// // The first frame completes one frame period after start.
/// let t = cam.next_frame_completion(SimTime::ZERO);
/// assert_eq!(t.as_millis(), 250);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoadSideCamera {
    /// End-to-end processed frame rate (camera + YOLO), Hz.
    pub processed_fps: f64,
    /// Half-angle of the usable field of view, degrees.
    pub fov_half_angle_deg: f64,
    /// Maximum usable range, metres.
    pub max_range_m: f64,
}

impl Default for RoadSideCamera {
    fn default() -> Self {
        Self {
            processed_fps: 4.0,
            fov_half_angle_deg: 45.0,
            max_range_m: 6.0,
        }
    }
}

impl RoadSideCamera {
    /// The frame period of the processing pipeline.
    pub fn frame_period(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.processed_fps)
    }

    /// The completion time of the first frame that *starts* at or after
    /// `now` (frames are aligned to multiples of the period from t = 0).
    pub fn next_frame_completion(&self, now: SimTime) -> SimTime {
        let period = self.frame_period();
        let k = now.as_nanos() / period.as_nanos();
        SimTime::from_nanos((k + 1) * period.as_nanos())
    }

    /// Whether a target is geometrically visible (in FoV and range).
    pub fn sees(&self, target: &GroundTruthTarget) -> bool {
        target.distance_m <= self.max_range_m && target.bearing_deg.abs() <= self.fov_half_angle_deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(distance: f64, bearing: f64) -> GroundTruthTarget {
        GroundTruthTarget {
            id: 1,
            distance_m: distance,
            bearing_deg: bearing,
            appearance: TargetAppearance::WithStopSign,
        }
    }

    #[test]
    fn four_fps_period() {
        let cam = RoadSideCamera::default();
        assert_eq!(cam.frame_period().as_millis(), 250);
    }

    #[test]
    fn frame_clock_aligns_to_period() {
        let cam = RoadSideCamera::default();
        assert_eq!(
            cam.next_frame_completion(SimTime::from_millis(0))
                .as_millis(),
            250
        );
        assert_eq!(
            cam.next_frame_completion(SimTime::from_millis(100))
                .as_millis(),
            250
        );
        assert_eq!(
            cam.next_frame_completion(SimTime::from_millis(250))
                .as_millis(),
            500
        );
        assert_eq!(
            cam.next_frame_completion(SimTime::from_millis(251))
                .as_millis(),
            500
        );
    }

    #[test]
    fn field_of_view_limits() {
        let cam = RoadSideCamera::default();
        assert!(cam.sees(&target(2.0, 0.0)));
        assert!(cam.sees(&target(2.0, 44.0)));
        assert!(!cam.sees(&target(2.0, 46.0)));
        assert!(!cam.sees(&target(7.0, 0.0)));
        assert!(cam.sees(&target(2.0, -44.0)));
    }
}
