//! The Hazard Advertisement Service (paper Figure 3, road-side).
//!
//! "If an on-coming vehicle crosses a point of the road, the Object
//! Detection Service identifies it and contacts the Hazard Advertisement
//! Service to assess a potential collision from consulting the LDM. If so
//! happens, the Hazard Advertisement Service instructs the ETSI ITS stack
//! to send a DENM."
//!
//! The service compares each detection's estimated distance against the
//! Action Point threshold, consults the LDM for a protagonist vehicle the
//! warning concerns, and produces a [`DenRequest`] for the DEN service.
//! Its processing time (risk assessment + local HTTP `trigger_denm` POST)
//! is part of the paper's step-2→3 interval.

use crate::detector::Detection;
use crate::tracker::Track;
use facilities::den::DenRequest;
use facilities::ldm::Ldm;
use its_messages::cause_codes::{CauseCode, CollisionRiskSubCause};
use its_messages::common::{ReferencePosition, TimestampIts};
use sim_core::{SimDuration, SimRng, SimTime};

/// Configuration of the hazard service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HazardConfig {
    /// Action Point: estimated distance at/below which a DENM is
    /// triggered (the paper sets it around 1.5–1.73 m; Fig. 8/10 use
    /// 1.52 m).
    pub action_point_m: f64,
    /// Geographic position of the monitored Region of Interest (used as
    /// the DENM event position).
    pub event_position: ReferencePosition,
    /// Radius around the event in which a protagonist vehicle must be
    /// CAM-tracked for a *crossing collision risk* classification.
    pub protagonist_radius_m: f64,
    /// Whether a DENM is issued even with no CAM-tracked protagonist
    /// (the paper's single-vehicle demo does this; the warning is then
    /// classified as an obstacle hazard rather than a collision risk).
    pub warn_without_protagonist: bool,
    /// Mean risk-assessment processing time.
    pub assess_mean: SimDuration,
    /// Std-dev of the processing time.
    pub assess_std: SimDuration,
}

impl HazardConfig {
    /// Configuration matching the paper's experiment (action point
    /// 1.52 m, single vehicle doubling as road user and protagonist).
    pub fn paper_setup(event_position: ReferencePosition) -> Self {
        Self {
            action_point_m: 1.52,
            event_position,
            protagonist_radius_m: 50.0,
            warn_without_protagonist: true,
            assess_mean: SimDuration::from_millis(3),
            assess_std: SimDuration::from_millis(1),
        }
    }
}

/// Decision produced for one detection.
#[derive(Debug, Clone, PartialEq)]
pub enum HazardDecision {
    /// No action: target still outside the Action Point.
    OutsideActionPoint,
    /// A DENM should be triggered with this request, ready at
    /// `decided_at` (detection output time + assessment latency).
    TriggerDenm {
        /// The DEN service request to submit.
        request: DenRequest,
        /// When the trigger call is issued.
        decided_at: SimTime,
    },
}

/// The hazard advertisement state machine.
///
/// Latches after its first trigger so one crossing yields one DENM
/// (updates would use `AppDENM_update`).
#[derive(Debug, Clone)]
pub struct HazardAdvertisementService {
    config: HazardConfig,
    triggered: bool,
    assessments: u64,
}

impl HazardAdvertisementService {
    /// Creates the service.
    pub fn new(config: HazardConfig) -> Self {
        Self {
            config,
            triggered: false,
            assessments: 0,
        }
    }

    /// Whether a DENM has already been triggered.
    pub fn has_triggered(&self) -> bool {
        self.triggered
    }

    /// Number of detections assessed.
    pub fn assessments(&self) -> u64 {
        self.assessments
    }

    /// Re-arms the service for a new run.
    pub fn reset(&mut self) {
        self.triggered = false;
    }

    /// Track-based assessment: triggers on time-to-collision instead of
    /// a bare distance threshold. Uses the same LDM consultation and
    /// latching as [`Self::assess`]; the track must be confirmed
    /// (`min_hits`) and closing with `TTC ≤ ttc_threshold_s`.
    ///
    /// This is the natural upgrade of the paper's fixed Action Point once
    /// the Object Detection Service exposes motion vectors (§III-A).
    #[allow(clippy::too_many_arguments)] // mirrors the service interface: track + rule + context
    pub fn assess_track(
        &mut self,
        track: &Track,
        min_hits: u32,
        ttc_threshold_s: f64,
        ldm: &Ldm,
        wall: TimestampIts,
        now: SimTime,
        rng: &mut SimRng,
    ) -> HazardDecision {
        self.assessments += 1;
        if self.triggered || !track.confirmed(min_hits) {
            return HazardDecision::OutsideActionPoint;
        }
        let Some(ttc) = track.time_to_collision_s() else {
            return HazardDecision::OutsideActionPoint;
        };
        if ttc > ttc_threshold_s {
            return HazardDecision::OutsideActionPoint;
        }
        let protagonist_tracked = !ldm
            .stations_within(
                &self.config.event_position,
                self.config.protagonist_radius_m,
            )
            .is_empty();
        if !protagonist_tracked && !self.config.warn_without_protagonist {
            return HazardDecision::OutsideActionPoint;
        }
        let cause = if protagonist_tracked {
            CauseCode::CollisionRisk(CollisionRiskSubCause::CrossingCollisionRisk)
        } else {
            CauseCode::HazardousLocationObstacleOnTheRoad(0)
        };
        let request = DenRequest::one_shot(wall, self.config.event_position, cause);
        let assess_s = rng
            .normal(
                self.config.assess_mean.as_secs_f64(),
                self.config.assess_std.as_secs_f64(),
            )
            .max(0.0005);
        self.triggered = true;
        HazardDecision::TriggerDenm {
            request,
            decided_at: now + SimDuration::from_secs_f64(assess_s),
        }
    }

    /// Assesses one detection against the LDM.
    ///
    /// `wall` is the edge node's wall clock at the detection output (used
    /// for the DENM detection time).
    pub fn assess(
        &mut self,
        detection: &Detection,
        ldm: &Ldm,
        wall: TimestampIts,
        rng: &mut SimRng,
    ) -> HazardDecision {
        self.assessments += 1;
        if self.triggered || detection.estimated_distance_m > self.config.action_point_m {
            return HazardDecision::OutsideActionPoint;
        }
        let protagonist_tracked = !ldm
            .stations_within(
                &self.config.event_position,
                self.config.protagonist_radius_m,
            )
            .is_empty();
        if !protagonist_tracked && !self.config.warn_without_protagonist {
            return HazardDecision::OutsideActionPoint;
        }
        // Crossing collision risk when we know who we are warning;
        // otherwise a generic obstacle-on-road hazard (codes 97 vs 10,
        // §II-D of the paper).
        let cause = if protagonist_tracked {
            CauseCode::CollisionRisk(CollisionRiskSubCause::CrossingCollisionRisk)
        } else {
            CauseCode::HazardousLocationObstacleOnTheRoad(0)
        };
        let mut request = DenRequest::one_shot(wall, self.config.event_position, cause);
        request.information_quality = ((detection.confidence * 7.0).round() as u8).min(7);
        let assess_s = rng
            .normal(
                self.config.assess_mean.as_secs_f64(),
                self.config.assess_std.as_secs_f64(),
            )
            .max(0.0005);
        self.triggered = true;
        HazardDecision::TriggerDenm {
            request,
            decided_at: detection.frame_time + SimDuration::from_secs_f64(assess_s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use its_messages::cam::Cam;
    use its_messages::common::{StationId, StationType};

    fn event_pos() -> ReferencePosition {
        ReferencePosition::from_degrees(41.178, -8.608)
    }

    fn detection(dist: f64, at_ms: u64) -> Detection {
        Detection {
            target_id: 1,
            label: "stop sign",
            confidence: 0.93,
            estimated_distance_m: dist,
            frame_time: SimTime::from_millis(at_ms),
        }
    }

    fn tracked_ldm() -> Ldm {
        let mut ldm = Ldm::new();
        ldm.insert_cam(
            SimTime::ZERO,
            Cam::basic(
                StationId::new(7).unwrap(),
                0,
                StationType::PassengerCar,
                event_pos(),
            ),
        );
        ldm
    }

    #[test]
    fn outside_action_point_no_trigger() {
        let mut svc = HazardAdvertisementService::new(HazardConfig::paper_setup(event_pos()));
        let mut rng = SimRng::seed_from(1);
        let d = svc.assess(
            &detection(2.0, 250),
            &tracked_ldm(),
            TimestampIts::default(),
            &mut rng,
        );
        assert_eq!(d, HazardDecision::OutsideActionPoint);
        assert!(!svc.has_triggered());
        assert_eq!(svc.assessments(), 1);
    }

    #[test]
    fn crossing_action_point_triggers_collision_risk() {
        let mut svc = HazardAdvertisementService::new(HazardConfig::paper_setup(event_pos()));
        let mut rng = SimRng::seed_from(2);
        let wall = TimestampIts::new(1000).unwrap();
        match svc.assess(&detection(1.45, 250), &tracked_ldm(), wall, &mut rng) {
            HazardDecision::TriggerDenm {
                request,
                decided_at,
            } => {
                assert_eq!(request.cause.cause_code(), 97);
                assert_eq!(request.detection_time, wall);
                assert!(decided_at > SimTime::from_millis(250));
                assert!(decided_at < SimTime::from_millis(260), "{decided_at}");
            }
            other => panic!("expected trigger, got {other:?}"),
        }
        assert!(svc.has_triggered());
    }

    #[test]
    fn no_protagonist_downgrades_to_obstacle_warning() {
        let mut svc = HazardAdvertisementService::new(HazardConfig::paper_setup(event_pos()));
        let mut rng = SimRng::seed_from(3);
        let empty = Ldm::new();
        match svc.assess(
            &detection(1.45, 250),
            &empty,
            TimestampIts::default(),
            &mut rng,
        ) {
            HazardDecision::TriggerDenm { request, .. } => {
                assert_eq!(request.cause.cause_code(), 10);
            }
            other => panic!("expected trigger, got {other:?}"),
        }
    }

    #[test]
    fn strict_config_requires_protagonist() {
        let mut cfg = HazardConfig::paper_setup(event_pos());
        cfg.warn_without_protagonist = false;
        let mut svc = HazardAdvertisementService::new(cfg);
        let mut rng = SimRng::seed_from(4);
        let empty = Ldm::new();
        let d = svc.assess(
            &detection(1.45, 250),
            &empty,
            TimestampIts::default(),
            &mut rng,
        );
        assert_eq!(d, HazardDecision::OutsideActionPoint);
    }

    #[test]
    fn latches_after_first_trigger() {
        let mut svc = HazardAdvertisementService::new(HazardConfig::paper_setup(event_pos()));
        let mut rng = SimRng::seed_from(5);
        let ldm = tracked_ldm();
        let wall = TimestampIts::default();
        assert!(matches!(
            svc.assess(&detection(1.45, 250), &ldm, wall, &mut rng),
            HazardDecision::TriggerDenm { .. }
        ));
        assert_eq!(
            svc.assess(&detection(1.30, 500), &ldm, wall, &mut rng),
            HazardDecision::OutsideActionPoint
        );
        svc.reset();
        assert!(matches!(
            svc.assess(&detection(1.30, 750), &ldm, wall, &mut rng),
            HazardDecision::TriggerDenm { .. }
        ));
    }

    #[test]
    fn information_quality_tracks_confidence() {
        let mut svc = HazardAdvertisementService::new(HazardConfig::paper_setup(event_pos()));
        let mut rng = SimRng::seed_from(6);
        let mut det = detection(1.45, 250);
        det.confidence = 1.0;
        match svc.assess(&det, &tracked_ldm(), TimestampIts::default(), &mut rng) {
            HazardDecision::TriggerDenm { request, .. } => {
                assert_eq!(request.information_quality, 7);
            }
            other => panic!("expected trigger, got {other:?}"),
        }
    }

    #[test]
    fn ttc_rule_triggers_on_closing_track() {
        use crate::tracker::Track;
        let mut svc = HazardAdvertisementService::new(HazardConfig::paper_setup(event_pos()));
        let mut rng = SimRng::seed_from(8);
        let closing = Track {
            track_id: 1,
            range_m: 2.0,
            range_rate_mps: -1.5, // TTC ≈ 1.33 s
            label: "stop sign",
            last_update: SimTime::from_millis(500),
            hits: 5,
        };
        // Above the threshold: no trigger.
        let d = svc.assess_track(
            &closing,
            3,
            1.0,
            &tracked_ldm(),
            TimestampIts::default(),
            SimTime::from_millis(500),
            &mut rng,
        );
        assert_eq!(d, HazardDecision::OutsideActionPoint);
        // Within the threshold: trigger with collision-risk cause.
        match svc.assess_track(
            &closing,
            3,
            2.0,
            &tracked_ldm(),
            TimestampIts::default(),
            SimTime::from_millis(500),
            &mut rng,
        ) {
            HazardDecision::TriggerDenm { request, .. } => {
                assert_eq!(request.cause.cause_code(), 97);
            }
            other => panic!("expected trigger, got {other:?}"),
        }
    }

    #[test]
    fn ttc_rule_ignores_unconfirmed_and_receding_tracks() {
        use crate::tracker::Track;
        let mut svc = HazardAdvertisementService::new(HazardConfig::paper_setup(event_pos()));
        let mut rng = SimRng::seed_from(9);
        let unconfirmed = Track {
            track_id: 1,
            range_m: 0.5,
            range_rate_mps: -2.0,
            label: "stop sign",
            last_update: SimTime::ZERO,
            hits: 1,
        };
        assert_eq!(
            svc.assess_track(
                &unconfirmed,
                3,
                5.0,
                &tracked_ldm(),
                TimestampIts::default(),
                SimTime::ZERO,
                &mut rng
            ),
            HazardDecision::OutsideActionPoint
        );
        let receding = Track {
            hits: 10,
            range_rate_mps: 1.0,
            ..unconfirmed
        };
        assert_eq!(
            svc.assess_track(
                &receding,
                3,
                5.0,
                &tracked_ldm(),
                TimestampIts::default(),
                SimTime::ZERO,
                &mut rng
            ),
            HazardDecision::OutsideActionPoint
        );
    }

    #[test]
    fn quirk_distance_does_not_trigger() {
        // The 1.73 m default produced under 75 cm is *above* the 1.52 m
        // action point — the very reason the paper set the threshold
        // there. A close-in target reported at 1.73 m must not trigger.
        let mut svc = HazardAdvertisementService::new(HazardConfig::paper_setup(event_pos()));
        let mut rng = SimRng::seed_from(7);
        let d = svc.assess(
            &detection(1.73, 250),
            &tracked_ldm(),
            TimestampIts::default(),
            &mut rng,
        );
        assert_eq!(d, HazardDecision::OutsideActionPoint);
    }
}
