//! Road-side perception: camera, object detection, and hazard
//! advertisement (paper §III-C).
//!
//! The testbed's edge infrastructure is a ZED camera and a Jetson Xavier
//! NX running YOLOv3 on Darknet at ≈ 4 frames per second. This crate
//! models that pipeline faithfully, including the behaviours the paper
//! documents from experiment:
//!
//! * the frame clock (≈ 4 FPS) bounding detection freshness (Fig. 10's
//!   "small error margin on detection"),
//! * YOLO's unreliable classification of the scale vehicle: *motorbike*
//!   when bare, oscillating *car*/*truck* with the Traxxas body shell and
//!   very range/angle-sensitive, and the cardboard *stop sign* that
//!   "proved to be the most resilient option" (Fig. 7),
//! * the distance-estimation quirk: under ≈ 0.75 m the estimated distance
//!   defaults to 1.73 m,
//! * the Hazard Advertisement Service that watches the Region of
//!   Interest, consults the LDM, and triggers a DENM when a road user
//!   crosses the Action Point.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod camera;
pub mod detector;
pub mod hazard;
pub mod tracker;

pub use camera::{GroundTruthTarget, RoadSideCamera, TargetAppearance};
pub use detector::{Detection, YoloModel};
pub use hazard::{HazardAdvertisementService, HazardConfig, HazardDecision};
pub use tracker::{Track, Tracker, TrackerConfig};
