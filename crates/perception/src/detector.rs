//! YOLO-like object detector model calibrated to the behaviours the
//! paper reports (§III-C2, Figure 7).
//!
//! The paper's findings, reproduced as model parameters:
//!
//! * bare vehicle → classified *motorbike* "from a 3/4 view of the front
//!   … at less than 2 meters", but "inconsistent and varied from each
//!   analysed frame";
//! * with the Traxxas body shell → "recognized … but remained
//!   unreliable: identified object class oscillated between car and
//!   truck, it was very sensitive to the angle w.r.t. the camera, and the
//!   range of recognition was very short";
//! * with the cardboard stop sign → "does not cause doubt to the
//!   recognition software";
//! * distance estimation: "YOLO can only detect objects up to
//!   approximately 75 cm; under this value, estimated distance defaults
//!   to 1.73 m".

use crate::camera::{GroundTruthTarget, TargetAppearance};
use sim_core::{SimRng, SimTime};

/// One detection output by the model.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Ground-truth target id this detection corresponds to.
    pub target_id: u32,
    /// Class label assigned by the detector. The model's vocabulary is
    /// fixed, so labels are static strings and a `Detection` is
    /// allocation-free.
    pub label: &'static str,
    /// Classifier confidence `[0, 1]`.
    pub confidence: f64,
    /// Estimated distance from the camera, metres (includes the 1.73 m
    /// floor quirk).
    pub estimated_distance_m: f64,
    /// When the frame containing this detection finished processing.
    pub frame_time: SimTime,
}

/// The minimum distance below which YOLO's estimate snaps to the default.
pub const DISTANCE_QUIRK_THRESHOLD_M: f64 = 0.75;
/// The bogus default distance returned below the threshold.
pub const DISTANCE_QUIRK_DEFAULT_M: f64 = 1.73;

/// Detector model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YoloModel {
    /// Std-dev of distance-estimate noise, metres.
    pub distance_noise_m: f64,
    /// Per-frame detection probability of the stop sign in range.
    pub stop_sign_detect_prob: f64,
    /// Per-frame detection probability of the bare vehicle in its
    /// (short) usable range.
    pub bare_detect_prob: f64,
    /// Per-frame detection probability of the body-shell vehicle at a
    /// favourable angle.
    pub shell_detect_prob: f64,
    /// Range limit for recognising the bare vehicle, metres ("at less
    /// than 2 meters of distance").
    pub bare_range_m: f64,
    /// Range limit for the body shell ("the range of recognition was
    /// very short").
    pub shell_range_m: f64,
    /// Angle sensitivity of the body shell, degrees off-axis at which
    /// detection probability halves.
    pub shell_angle_half_deg: f64,
}

impl Default for YoloModel {
    fn default() -> Self {
        Self {
            distance_noise_m: 0.05,
            stop_sign_detect_prob: 0.97,
            bare_detect_prob: 0.45,
            shell_detect_prob: 0.65,
            bare_range_m: 2.0,
            shell_range_m: 1.5,
            shell_angle_half_deg: 20.0,
        }
    }
}

impl YoloModel {
    /// Probability that this frame yields a detection of `target`.
    pub fn detection_probability(&self, target: &GroundTruthTarget) -> f64 {
        match target.appearance {
            TargetAppearance::WithStopSign => self.stop_sign_detect_prob,
            TargetAppearance::BareScaleVehicle => {
                if target.distance_m <= self.bare_range_m {
                    self.bare_detect_prob
                } else {
                    0.0
                }
            }
            TargetAppearance::WithBodyShell => {
                if target.distance_m <= self.shell_range_m {
                    // Halve the probability per `shell_angle_half_deg`
                    // off-axis — "very sensitive to the angle".
                    let halvings = target.bearing_deg.abs() / self.shell_angle_half_deg;
                    self.shell_detect_prob * 0.5f64.powf(halvings)
                } else {
                    0.0
                }
            }
        }
    }

    /// Samples the class label for a detected target.
    pub fn sample_label(&self, target: &GroundTruthTarget, rng: &mut SimRng) -> &'static str {
        match target.appearance {
            TargetAppearance::WithStopSign => "stop sign",
            TargetAppearance::BareScaleVehicle => "motorbike",
            TargetAppearance::WithBodyShell => {
                // "identified object class oscillated between car and truck"
                if rng.bernoulli(0.5) {
                    "car"
                } else {
                    "truck"
                }
            }
        }
    }

    /// The distance estimate for a target, including the < 75 cm quirk.
    pub fn estimate_distance(&self, true_distance_m: f64, rng: &mut SimRng) -> f64 {
        // detlint:allow(R2) the paper's <75 cm quirk; the arm is decided by deterministic sim state, identical across execution modes
        if true_distance_m < DISTANCE_QUIRK_THRESHOLD_M {
            DISTANCE_QUIRK_DEFAULT_M
        } else {
            (true_distance_m + rng.normal(0.0, self.distance_noise_m)).max(0.0)
        }
    }

    /// Processes one frame: every visible target independently may yield
    /// a detection.
    pub fn process_frame(
        &self,
        frame_time: SimTime,
        targets: &[GroundTruthTarget],
        rng: &mut SimRng,
    ) -> Vec<Detection> {
        let mut out = Vec::new();
        self.process_frame_into(frame_time, targets, rng, &mut out);
        out
    }

    /// [`process_frame`](Self::process_frame) into a caller-owned buffer,
    /// so a steady-state frame loop performs no allocation. Appends to
    /// `out` without clearing it.
    pub fn process_frame_into(
        &self,
        frame_time: SimTime,
        targets: &[GroundTruthTarget],
        rng: &mut SimRng,
        out: &mut Vec<Detection>,
    ) {
        for t in targets {
            if !rng.bernoulli(self.detection_probability(t)) {
                continue;
            }
            let label = self.sample_label(t, rng);
            let confidence = match t.appearance {
                TargetAppearance::WithStopSign => rng.uniform(0.85, 0.99),
                TargetAppearance::BareScaleVehicle => rng.uniform(0.3, 0.6),
                TargetAppearance::WithBodyShell => rng.uniform(0.4, 0.7),
            };
            out.push(Detection {
                target_id: t.id,
                label,
                confidence,
                estimated_distance_m: self.estimate_distance(t.distance_m, rng),
                frame_time,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(appearance: TargetAppearance, distance: f64, bearing: f64) -> GroundTruthTarget {
        GroundTruthTarget {
            id: 1,
            distance_m: distance,
            bearing_deg: bearing,
            appearance,
        }
    }

    fn detect_rate(model: &YoloModel, t: &GroundTruthTarget, seed: u64) -> f64 {
        let mut rng = SimRng::seed_from(seed);
        let n = 5000;
        let hits = (0..n)
            .filter(|_| {
                !model
                    .process_frame(SimTime::ZERO, &[*t], &mut rng)
                    .is_empty()
            })
            .count();
        hits as f64 / n as f64
    }

    #[test]
    fn stop_sign_is_the_resilient_option() {
        let model = YoloModel::default();
        let sign = detect_rate(
            &model,
            &target(TargetAppearance::WithStopSign, 1.5, 30.0),
            1,
        );
        let bare = detect_rate(
            &model,
            &target(TargetAppearance::BareScaleVehicle, 1.5, 30.0),
            2,
        );
        let shell = detect_rate(
            &model,
            &target(TargetAppearance::WithBodyShell, 1.5, 30.0),
            3,
        );
        assert!(sign > 0.95, "stop sign rate {sign}");
        assert!(
            sign > shell && shell > 0.0 && sign > bare,
            "{sign} {shell} {bare}"
        );
    }

    #[test]
    fn bare_vehicle_labelled_motorbike_and_range_limited() {
        let model = YoloModel::default();
        let mut rng = SimRng::seed_from(4);
        let t = target(TargetAppearance::BareScaleVehicle, 1.5, 0.0);
        assert_eq!(model.sample_label(&t, &mut rng), "motorbike");
        // Beyond 2 m: never detected.
        let far = target(TargetAppearance::BareScaleVehicle, 2.5, 0.0);
        assert_eq!(model.detection_probability(&far), 0.0);
    }

    #[test]
    fn body_shell_oscillates_between_car_and_truck() {
        let model = YoloModel::default();
        let mut rng = SimRng::seed_from(5);
        let t = target(TargetAppearance::WithBodyShell, 1.0, 0.0);
        let mut labels = std::collections::HashSet::new();
        for _ in 0..100 {
            labels.insert(model.sample_label(&t, &mut rng));
        }
        assert!(labels.contains("car") && labels.contains("truck"));
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn body_shell_angle_sensitivity() {
        let model = YoloModel::default();
        let head_on =
            model.detection_probability(&target(TargetAppearance::WithBodyShell, 1.0, 0.0));
        let angled =
            model.detection_probability(&target(TargetAppearance::WithBodyShell, 1.0, 40.0));
        assert!(head_on > 2.0 * angled, "{head_on} vs {angled}");
    }

    #[test]
    fn distance_quirk_below_75cm() {
        let model = YoloModel::default();
        let mut rng = SimRng::seed_from(6);
        assert_eq!(model.estimate_distance(0.5, &mut rng), 1.73);
        assert_eq!(model.estimate_distance(0.749, &mut rng), 1.73);
        let est = model.estimate_distance(1.45, &mut rng);
        assert!((est - 1.45).abs() < 0.3, "est {est}");
    }

    #[test]
    fn detection_carries_frame_time_and_confidence() {
        let model = YoloModel {
            stop_sign_detect_prob: 1.0,
            ..YoloModel::default()
        };
        let mut rng = SimRng::seed_from(7);
        let t = target(TargetAppearance::WithStopSign, 1.45, 0.0);
        let d = model
            .process_frame(SimTime::from_millis(250), &[t], &mut rng)
            .remove(0);
        assert_eq!(d.frame_time.as_millis(), 250);
        assert_eq!(d.label, "stop sign");
        assert!(d.confidence >= 0.85 && d.confidence <= 0.99);
        assert_eq!(d.target_id, 1);
    }

    #[test]
    fn multiple_targets_detected_independently() {
        let model = YoloModel {
            stop_sign_detect_prob: 1.0,
            ..YoloModel::default()
        };
        let mut rng = SimRng::seed_from(8);
        let a = GroundTruthTarget {
            id: 1,
            ..target(TargetAppearance::WithStopSign, 1.0, 0.0)
        };
        let b = GroundTruthTarget {
            id: 2,
            ..target(TargetAppearance::WithStopSign, 2.0, 10.0)
        };
        let ds = model.process_frame(SimTime::ZERO, &[a, b], &mut rng);
        assert_eq!(ds.len(), 2);
        assert_ne!(ds[0].target_id, ds[1].target_id);
    }
}
