//! Multi-frame object tracking and motion estimation.
//!
//! The paper's Object Detection Service "performs object detection from
//! the video stream **and determines the dynamics of the vehicles
//! (motion direction vector)**" (§III-A). Raw per-frame detections are
//! noisy and anonymous; this module associates them across frames
//! (nearest-neighbour on the estimated range) and runs an α-β filter per
//! track to estimate each road user's range rate — from which the hazard
//! service can compute a time-to-collision instead of a bare distance
//! threshold.

use crate::detector::Detection;
use sim_core::SimTime;

/// One maintained track.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    /// Stable track identifier (assigned by the tracker).
    pub track_id: u32,
    /// Filtered range from the camera, metres.
    pub range_m: f64,
    /// Filtered range rate, m/s (negative = approaching).
    pub range_rate_mps: f64,
    /// Most recent classifier label.
    pub label: &'static str,
    /// Last update instant.
    pub last_update: SimTime,
    /// Number of detections folded into this track.
    pub hits: u32,
}

impl Track {
    /// Time to collision (range / closing speed), seconds; `None` when
    /// the object is not approaching.
    pub fn time_to_collision_s(&self) -> Option<f64> {
        (self.range_rate_mps < -1e-3).then(|| self.range_m / -self.range_rate_mps)
    }

    /// Whether the track is mature enough to act on.
    pub fn confirmed(&self, min_hits: u32) -> bool {
        self.hits >= min_hits
    }
}

/// Tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerConfig {
    /// α gain (position correction).
    pub alpha: f64,
    /// β gain (velocity correction).
    pub beta: f64,
    /// Association gate: maximum |measured − predicted| range, metres.
    pub gate_m: f64,
    /// Tracks not updated for this long are dropped, seconds.
    pub max_coast_s: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            beta: 0.3,
            gate_m: 0.8,
            max_coast_s: 1.5,
        }
    }
}

/// Nearest-neighbour α-β range tracker.
///
/// # Example
///
/// ```
/// use perception::tracker::{Tracker, TrackerConfig};
/// use perception::detector::Detection;
/// use sim_core::SimTime;
///
/// let mut tracker = Tracker::new(TrackerConfig::default());
/// for k in 0..8u64 {
///     let d = Detection {
///         target_id: 1,
///         label: "stop sign".into(),
///         confidence: 0.9,
///         estimated_distance_m: 3.0 - 0.375 * k as f64, // 1.5 m/s @ 4 FPS
///         frame_time: SimTime::from_millis(250 * k),
///     };
///     tracker.update(d.frame_time, &[d]);
/// }
/// let track = &tracker.tracks()[0];
/// assert!(track.range_rate_mps < -1.0, "approaching");
/// assert!(track.time_to_collision_s().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Tracker {
    config: TrackerConfig,
    tracks: Vec<Track>,
    next_id: u32,
    /// Reusable per-update association scratch.
    claimed: Vec<bool>,
}

impl Default for Tracker {
    fn default() -> Self {
        Self::new(TrackerConfig::default())
    }
}

impl Tracker {
    /// Creates a tracker.
    pub fn new(config: TrackerConfig) -> Self {
        Self {
            config,
            tracks: Vec::new(),
            next_id: 1,
            claimed: Vec::new(),
        }
    }

    /// Current tracks, oldest first.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// The confirmed track with the smallest time-to-collision, if any.
    pub fn most_urgent(&self, min_hits: u32) -> Option<&Track> {
        self.tracks
            .iter()
            .filter(|t| t.confirmed(min_hits))
            .filter_map(|t| t.time_to_collision_s().map(|ttc| (ttc, t)))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, t)| t)
    }

    /// Folds one frame of detections into the track set.
    pub fn update(&mut self, now: SimTime, detections: &[Detection]) {
        // Predict every track to `now`.
        let mut claimed = std::mem::take(&mut self.claimed);
        claimed.clear();
        claimed.resize(detections.len(), false);
        for track in &mut self.tracks {
            let dt = now
                .saturating_duration_since(track.last_update)
                .as_secs_f64();
            let predicted = track.range_m + track.range_rate_mps * dt;
            // Nearest unclaimed detection within the gate.
            let mut best: Option<(usize, f64)> = None;
            for (i, d) in detections.iter().enumerate() {
                if claimed[i] {
                    continue;
                }
                let residual = (d.estimated_distance_m - predicted).abs();
                if residual <= self.config.gate_m && best.is_none_or(|(_, r)| residual < r) {
                    best = Some((i, residual));
                }
            }
            if let Some((i, _)) = best {
                claimed[i] = true;
                let d = &detections[i];
                let residual = d.estimated_distance_m - predicted;
                track.range_m = predicted + self.config.alpha * residual;
                if dt > 1e-6 {
                    track.range_rate_mps += self.config.beta * residual / dt;
                }
                track.label = d.label;
                track.last_update = now;
                track.hits += 1;
            }
        }
        // Unclaimed detections spawn new tracks.
        for (i, d) in detections.iter().enumerate() {
            if !claimed[i] {
                self.tracks.push(Track {
                    track_id: self.next_id,
                    range_m: d.estimated_distance_m,
                    range_rate_mps: 0.0,
                    label: d.label,
                    last_update: now,
                    hits: 1,
                });
                self.next_id += 1;
            }
        }
        self.claimed = claimed;
        // Drop coasted-out tracks.
        let max_coast = self.config.max_coast_s;
        self.tracks
            .retain(|t| now.saturating_duration_since(t.last_update).as_secs_f64() <= max_coast);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(id: u32, range: f64, ms: u64) -> Detection {
        Detection {
            target_id: id,
            label: "stop sign",
            confidence: 0.9,
            estimated_distance_m: range,
            frame_time: SimTime::from_millis(ms),
        }
    }

    fn feed_approach(tracker: &mut Tracker, v_mps: f64, frames: u64) {
        for k in 0..frames {
            let range = 4.0 - v_mps * 0.25 * k as f64;
            let t = SimTime::from_millis(250 * k);
            tracker.update(t, &[det(1, range, t.as_millis())]);
        }
    }

    #[test]
    fn single_track_estimates_range_rate() {
        let mut tracker = Tracker::new(TrackerConfig::default());
        feed_approach(&mut tracker, 1.5, 8);
        assert_eq!(tracker.tracks().len(), 1);
        let t = &tracker.tracks()[0];
        assert!(t.hits >= 8);
        assert!(
            (t.range_rate_mps + 1.5).abs() < 0.4,
            "rate {} should be ≈ −1.5",
            t.range_rate_mps
        );
    }

    #[test]
    fn time_to_collision_roughly_range_over_speed() {
        let mut tracker = Tracker::new(TrackerConfig::default());
        feed_approach(&mut tracker, 1.5, 8);
        let t = &tracker.tracks()[0];
        let ttc = t.time_to_collision_s().expect("approaching");
        let expected = t.range_m / 1.5;
        assert!((ttc - expected).abs() < 0.6, "ttc {ttc} vs {expected}");
    }

    #[test]
    fn receding_object_has_no_ttc() {
        let mut tracker = Tracker::new(TrackerConfig::default());
        for k in 0..6u64 {
            let t = SimTime::from_millis(250 * k);
            tracker.update(t, &[det(1, 2.0 + 0.3 * k as f64, t.as_millis())]);
        }
        assert!(tracker.tracks()[0].time_to_collision_s().is_none());
    }

    #[test]
    fn two_separated_objects_get_two_tracks() {
        let mut tracker = Tracker::new(TrackerConfig::default());
        for k in 0..5u64 {
            let t = SimTime::from_millis(250 * k);
            tracker.update(
                t,
                &[
                    det(1, 1.5 - 0.05 * k as f64, t.as_millis()),
                    det(2, 4.0, t.as_millis()),
                ],
            );
        }
        assert_eq!(tracker.tracks().len(), 2);
        let ids: Vec<u32> = tracker.tracks().iter().map(|t| t.track_id).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn missed_frames_are_coasted_then_dropped() {
        let mut tracker = Tracker::new(TrackerConfig::default());
        tracker.update(SimTime::ZERO, &[det(1, 2.0, 0)]);
        // A miss within the coast window keeps the track.
        tracker.update(SimTime::from_millis(500), &[]);
        assert_eq!(tracker.tracks().len(), 1);
        // Past max_coast_s the track is dropped.
        tracker.update(SimTime::from_millis(2200), &[]);
        assert!(tracker.tracks().is_empty());
    }

    #[test]
    fn gate_prevents_wild_association() {
        let mut tracker = Tracker::new(TrackerConfig::default());
        tracker.update(SimTime::ZERO, &[det(1, 1.0, 0)]);
        // A detection 3 m away is outside the 0.8 m gate: new track.
        tracker.update(SimTime::from_millis(250), &[det(2, 4.0, 250)]);
        assert_eq!(tracker.tracks().len(), 2);
    }

    #[test]
    fn most_urgent_prefers_smallest_ttc() {
        let mut tracker = Tracker::new(TrackerConfig::default());
        for k in 0..6u64 {
            let t = SimTime::from_millis(250 * k);
            tracker.update(
                t,
                &[
                    det(1, 3.0 - 0.5 * 0.25 * k as f64, t.as_millis()), // slow
                    det(2, 5.0 - 2.0 * 0.25 * k as f64, t.as_millis()), // fast
                ],
            );
        }
        let urgent = tracker.most_urgent(3).expect("confirmed approaching track");
        // Track 2 closes at 2 m/s from 5 m: TTC ≈ 2 s; track 1 at
        // 0.5 m/s from 3 m: TTC ≈ 5 s.
        assert_eq!(urgent.track_id, 2);
    }

    #[test]
    fn unconfirmed_tracks_not_urgent() {
        let mut tracker = Tracker::new(TrackerConfig::default());
        tracker.update(SimTime::ZERO, &[det(1, 1.0, 0)]);
        assert!(tracker.most_urgent(3).is_none());
    }
}
