//! Spatial index for city-scale broadcast culling.
//!
//! A broadcast frame physically reaches only receivers within the
//! channel's cutoff radius (see [`crate::channel::Channel::cutoff_radius_m`]);
//! evaluating shadowing and frame-error draws for every one of N
//! stations makes each transmission O(N) and a whole fleet tick O(N²).
//! [`SpatialGrid`] buckets stations into fixed-size cells keyed by their
//! quantised [`Position2D`], so a transmission gathers candidates from
//! the few cells overlapping the cutoff circle instead of scanning the
//! fleet.
//!
//! Determinism: cells live in a `BTreeMap` (ordered iteration), the
//! candidate list is sorted by station index before it is returned, and
//! the grid itself never touches an RNG. Callers draw per-receiver
//! randomness from streams forked per `(node, frame)`
//! ([`sim_core::SimRng::fork_u64`]), so a culled receiver consumes zero
//! draws and can never perturb the streams of receivers that *are*
//! evaluated.

use crate::channel::Position2D;
use std::collections::BTreeMap;

/// Cell span guard: a query radius that would cover more cells than
/// this per axis (absurd radius / tiny cells) falls back to scanning
/// every station — still correct, never a runaway loop.
const MAX_CELL_SPAN: f64 = 4096.0;

/// A fixed-cell-size spatial hash over station positions.
///
/// Station indices are dense `u32`s (`0..len`), assigned by insertion
/// order — the same indices the caller's structure-of-arrays state uses.
///
/// # Example
///
/// ```
/// use phy80211p::channel::Position2D;
/// use phy80211p::spatial::SpatialGrid;
///
/// let mut grid = SpatialGrid::new(50.0);
/// grid.insert(Position2D::new(0.0, 0.0));
/// grid.insert(Position2D::new(30.0, 0.0));
/// grid.insert(Position2D::new(500.0, 0.0));
/// let mut out = Vec::new();
/// grid.candidates_within(Position2D::new(0.0, 0.0), 100.0, &mut out);
/// assert_eq!(out, vec![0, 1]); // the 500 m station is culled
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell_m: f64,
    cells: BTreeMap<(i64, i64), Vec<u32>>,
    /// Current cell key per station (for incremental relocation).
    keys: Vec<(i64, i64)>,
    /// Station positions, mirrored so queries can distance-filter.
    px: Vec<f64>,
    py: Vec<f64>,
}

impl SpatialGrid {
    /// Creates an empty grid with the given cell edge length (metres).
    ///
    /// # Panics
    ///
    /// Panics if `cell_m` is not a positive finite number.
    pub fn new(cell_m: f64) -> Self {
        assert!(
            cell_m.is_finite() && cell_m > 0.0,
            "cell size must be positive and finite"
        );
        Self {
            cell_m,
            cells: BTreeMap::new(),
            keys: Vec::new(),
            px: Vec::new(),
            py: Vec::new(),
        }
    }

    /// The configured cell edge length, metres.
    pub fn cell_m(&self) -> f64 {
        self.cell_m
    }

    /// Number of stations in the grid.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the grid holds no stations.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    fn cell_of(&self, x: f64, y: f64) -> (i64, i64) {
        // `as` casts saturate for non-finite / out-of-range values, so
        // pathological coordinates land in an edge cell instead of
        // panicking.
        (
            (x / self.cell_m).floor() as i64,
            (y / self.cell_m).floor() as i64,
        )
    }

    /// Adds a station at `pos`; returns its dense index.
    pub fn insert(&mut self, pos: Position2D) -> u32 {
        let idx = self.keys.len() as u32;
        let key = self.cell_of(pos.x, pos.y);
        self.cells.entry(key).or_default().push(idx);
        self.keys.push(key);
        self.px.push(pos.x);
        self.py.push(pos.y);
        idx
    }

    /// Moves station `idx` to `pos`, updating its cell only when the
    /// quantised key actually changed — the per-tick fast path for
    /// fleets whose stations move a fraction of a cell per tick.
    ///
    /// Unknown indices are ignored.
    pub fn relocate(&mut self, idx: u32, pos: Position2D) {
        let i = idx as usize;
        let Some(old_key) = self.keys.get(i).copied() else {
            return;
        };
        if let Some(x) = self.px.get_mut(i) {
            *x = pos.x;
        }
        if let Some(y) = self.py.get_mut(i) {
            *y = pos.y;
        }
        let new_key = self.cell_of(pos.x, pos.y);
        if new_key == old_key {
            return;
        }
        if let Some(bucket) = self.cells.get_mut(&old_key) {
            if let Some(at) = bucket.iter().position(|&s| s == idx) {
                bucket.swap_remove(at);
            }
        }
        self.cells.entry(new_key).or_default().push(idx);
        if let Some(k) = self.keys.get_mut(i) {
            *k = new_key;
        }
    }

    /// Rebuilds the grid from scratch for the given positions, recycling
    /// the cell buckets' allocations.
    pub fn rebuild<I>(&mut self, positions: I)
    where
        I: IntoIterator<Item = Position2D>,
    {
        for bucket in self.cells.values_mut() {
            bucket.clear();
        }
        self.keys.clear();
        self.px.clear();
        self.py.clear();
        for pos in positions {
            self.insert(pos);
        }
    }

    /// Collects (into `out`, cleared first) the indices of every station
    /// within `radius` metres of `center`, sorted ascending.
    ///
    /// The result is exact, not a superset: cells overlapping the circle
    /// are gathered and each candidate is distance-filtered against the
    /// mirrored positions. A non-finite or absurdly large radius falls
    /// back to every station.
    pub fn candidates_within(&self, center: Position2D, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        if radius < 0.0 {
            return;
        }
        let span = radius / self.cell_m;
        if !span.is_finite() || span > MAX_CELL_SPAN {
            out.extend(0..self.keys.len() as u32);
            return;
        }
        let r2 = radius * radius;
        let (kx0, ky0) = self.cell_of(center.x - radius, center.y - radius);
        let (kx1, ky1) = self.cell_of(center.x + radius, center.y + radius);
        for kx in kx0..=kx1 {
            for ky in ky0..=ky1 {
                let Some(bucket) = self.cells.get(&(kx, ky)) else {
                    continue;
                };
                for &idx in bucket {
                    let i = idx as usize;
                    let (Some(&x), Some(&y)) = (self.px.get(i), self.py.get(i)) else {
                        continue;
                    };
                    let dx = x - center.x;
                    let dy = y - center.y;
                    if dx * dx + dy * dy <= r2 {
                        out.push(idx);
                    }
                }
            }
        }
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sim_core::SimRng;

    fn brute_force(positions: &[Position2D], center: Position2D, radius: f64) -> Vec<u32> {
        positions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(center) <= radius)
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn candidates_match_brute_force_on_a_fleet() {
        let mut rng = SimRng::seed_from(11);
        let positions: Vec<Position2D> = (0..300)
            .map(|_| Position2D::new(rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0)))
            .collect();
        let mut grid = SpatialGrid::new(60.0);
        grid.rebuild(positions.iter().copied());
        let mut out = Vec::new();
        for center in [
            Position2D::new(0.0, 0.0),
            Position2D::new(-499.0, 499.0),
            Position2D::new(123.0, -77.0),
        ] {
            grid.candidates_within(center, 150.0, &mut out);
            assert_eq!(out, brute_force(&positions, center, 150.0));
        }
    }

    #[test]
    fn relocate_tracks_movement_exactly() {
        let mut rng = SimRng::seed_from(13);
        let mut positions: Vec<Position2D> = (0..120)
            .map(|_| Position2D::new(rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)))
            .collect();
        let mut grid = SpatialGrid::new(40.0);
        grid.rebuild(positions.iter().copied());
        // Drift every station a few times, some crossing cell borders.
        let mut out = Vec::new();
        for step in 0..5 {
            for (i, p) in positions.iter_mut().enumerate() {
                p.x += rng.uniform(-30.0, 30.0);
                p.y += rng.uniform(-30.0, 30.0);
                grid.relocate(i as u32, *p);
            }
            let center = Position2D::new(200.0, 200.0);
            grid.candidates_within(center, 90.0, &mut out);
            assert_eq!(out, brute_force(&positions, center, 90.0), "step {step}");
        }
    }

    #[test]
    fn rebuild_recycles_and_matches_fresh_grid() {
        let a: Vec<Position2D> = (0..50).map(|i| Position2D::new(i as f64, 0.0)).collect();
        let b: Vec<Position2D> = (0..30)
            .map(|i| Position2D::new(0.0, 3.0 * i as f64))
            .collect();
        let mut recycled = SpatialGrid::new(10.0);
        recycled.rebuild(a.iter().copied());
        recycled.rebuild(b.iter().copied());
        let mut fresh = SpatialGrid::new(10.0);
        fresh.rebuild(b.iter().copied());
        let (mut out_r, mut out_f) = (Vec::new(), Vec::new());
        let center = Position2D::new(0.0, 40.0);
        recycled.candidates_within(center, 25.0, &mut out_r);
        fresh.candidates_within(center, 25.0, &mut out_f);
        assert_eq!(out_r, out_f);
        assert_eq!(recycled.len(), 30);
    }

    #[test]
    fn huge_radius_falls_back_to_everyone() {
        let mut grid = SpatialGrid::new(1.0);
        for i in 0..10 {
            grid.insert(Position2D::new(i as f64 * 1000.0, 0.0));
        }
        let mut out = Vec::new();
        grid.candidates_within(Position2D::default(), f64::INFINITY, &mut out);
        assert_eq!(out.len(), 10);
        grid.candidates_within(Position2D::default(), 1e12, &mut out);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn negative_radius_yields_nothing() {
        let mut grid = SpatialGrid::new(10.0);
        grid.insert(Position2D::default());
        let mut out = vec![99];
        grid.candidates_within(Position2D::default(), -1.0, &mut out);
        assert!(out.is_empty());
    }

    proptest! {
        #[test]
        fn grid_is_exact_for_random_fleets(
            seed in 0u64..500,
            cell in 5.0f64..120.0,
            radius in 0.0f64..400.0,
        ) {
            let mut rng = SimRng::seed_from(seed);
            let n = 40 + (seed % 60) as usize;
            let positions: Vec<Position2D> = (0..n)
                .map(|_| Position2D::new(rng.uniform(-600.0, 600.0), rng.uniform(-600.0, 600.0)))
                .collect();
            let mut grid = SpatialGrid::new(cell);
            grid.rebuild(positions.iter().copied());
            let center = Position2D::new(rng.uniform(-600.0, 600.0), rng.uniform(-600.0, 600.0));
            let mut out = Vec::new();
            grid.candidates_within(center, radius, &mut out);
            prop_assert_eq!(out, brute_force(&positions, center, radius));
        }
    }
}
