//! EDCA medium access for OCB (outside-the-context-of-a-BSS) operation.
//!
//! ITS-G5 stations contend with EDCA: each access category waits AIFS
//! (= SIFS + AIFSN · slot) of idle medium and then, if the medium was busy
//! when the frame arrived, a random backoff drawn from the contention
//! window. Broadcast frames are sent exactly once — no ACK, no
//! retransmission — so the only stochastic component of the access delay
//! is the backoff.
//!
//! Timing set for 10 MHz channels: slot 13 µs, SIFS 32 µs.

use sim_core::{SimDuration, SimRng, SimTime};

/// Slot time at 10 MHz.
pub const SLOT_US: u64 = 13;
/// SIFS at 10 MHz.
pub const SIFS_US: u64 = 32;

/// The four EDCA access categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessCategory {
    /// Voice — highest priority; DENMs (DCC profile DP0) map here.
    Voice,
    /// Video — CAMs (DP2) map here.
    Video,
    /// Best effort.
    BestEffort,
    /// Background — lowest priority.
    Background,
}

impl AccessCategory {
    /// All categories, highest priority first.
    pub const ALL: [AccessCategory; 4] = [
        AccessCategory::Voice,
        AccessCategory::Video,
        AccessCategory::BestEffort,
        AccessCategory::Background,
    ];

    /// Maps a GeoNetworking DCC profile id to an access category
    /// (DP0→AC_VO, DP1→AC_VI, DP2→AC_BE is the textbook mapping, but
    /// OpenC2X maps CAM/DP2 to AC_VI; we follow the ETSI EN 302 663
    /// table: DP0→VO, DP1/DP2→VI, DP3→BE, else BK).
    pub fn from_dcc_profile(dp: u8) -> Self {
        match dp {
            0 => AccessCategory::Voice,
            1 | 2 => AccessCategory::Video,
            3 => AccessCategory::BestEffort,
            _ => AccessCategory::Background,
        }
    }
}

/// EDCA parameter set for one access category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdcaParams {
    /// AIFSN — number of slots after SIFS.
    pub aifsn: u8,
    /// Minimum contention window (slots − 1).
    pub cw_min: u16,
    /// Maximum contention window (slots − 1); the ceiling the
    /// [`BackoffState`] doubling law converges to under repeated retries.
    pub cw_max: u16,
}

impl EdcaParams {
    /// Default OCB parameters for an access category (EN 302 663 Table 2,
    /// derived from aCWmin = 15).
    pub fn for_category(ac: AccessCategory) -> Self {
        match ac {
            AccessCategory::Voice => EdcaParams {
                aifsn: 2,
                cw_min: 3,
                cw_max: 7,
            },
            AccessCategory::Video => EdcaParams {
                aifsn: 3,
                cw_min: 7,
                cw_max: 15,
            },
            AccessCategory::BestEffort => EdcaParams {
                aifsn: 6,
                cw_min: 15,
                cw_max: 1023,
            },
            AccessCategory::Background => EdcaParams {
                aifsn: 9,
                cw_min: 15,
                cw_max: 1023,
            },
        }
    }

    /// AIFS duration: SIFS + AIFSN · slot.
    pub fn aifs(&self) -> SimDuration {
        SimDuration::from_micros(SIFS_US + u64::from(self.aifsn) * SLOT_US)
    }
}

/// Shared-medium busy tracker.
///
/// All stations hear the same laboratory-scale channel, so a single busy
/// interval suffices; the testbed updates it on every transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Medium {
    busy_until: SimTime,
}

impl Medium {
    /// Creates an idle medium.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the medium is busy at `now`.
    pub fn is_busy(&self, now: SimTime) -> bool {
        now < self.busy_until
    }

    /// The instant the medium becomes idle (never before `now`).
    pub fn idle_at(&self, now: SimTime) -> SimTime {
        self.busy_until.max(now)
    }

    /// Marks the medium busy until `until` (keeps the later of the two).
    pub fn occupy(&mut self, until: SimTime) {
        self.busy_until = self.busy_until.max(until);
    }
}

/// EDCA channel access for a single station.
///
/// # Example
///
/// ```
/// use phy80211p::edca::{AccessCategory, EdcaMac, Medium};
/// use sim_core::{SimRng, SimTime};
///
/// let mac = EdcaMac::new();
/// let medium = Medium::new();
/// let mut rng = SimRng::seed_from(1);
/// let start = mac.access_time(
///     SimTime::ZERO, AccessCategory::Voice, &medium, &mut rng);
/// // Idle medium: transmission starts after exactly AIFS(AC_VO) = 58 µs.
/// assert_eq!(start.as_micros(), 32 + 2 * 13);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EdcaMac {
    /// Optional override of the per-category parameters.
    overrides: Vec<(AccessCategory, EdcaParams)>,
}

impl EdcaMac {
    /// Creates a MAC with the default OCB parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the parameters of one category.
    pub fn with_params(mut self, ac: AccessCategory, params: EdcaParams) -> Self {
        self.overrides.retain(|(c, _)| *c != ac);
        self.overrides.push((ac, params));
        self
    }

    /// Parameters in effect for `ac`.
    pub fn params(&self, ac: AccessCategory) -> EdcaParams {
        self.overrides
            .iter()
            .find(|(c, _)| *c == ac)
            .map(|(_, p)| *p)
            .unwrap_or_else(|| EdcaParams::for_category(ac))
    }

    /// The instant transmission may start for a frame that becomes ready
    /// at `now`:
    ///
    /// * medium idle and stays idle through AIFS → `now + AIFS`
    ///   (no backoff, per 802.11 when the medium is idle on arrival);
    /// * medium busy → idle instant + AIFS + random backoff in
    ///   `[0, CWmin]` slots.
    pub fn access_time(
        &self,
        now: SimTime,
        ac: AccessCategory,
        medium: &Medium,
        rng: &mut SimRng,
    ) -> SimTime {
        let params = self.params(ac);
        // detlint:allow(R2) modeled CSMA: the busy check reads deterministic medium state, identical across execution modes
        if !medium.is_busy(now) {
            now + params.aifs()
        } else {
            let idle = medium.idle_at(now);
            let backoff_slots = rng.below(u64::from(params.cw_min) + 1);
            idle + params.aifs() + SimDuration::from_micros(backoff_slots * SLOT_US)
        }
    }
}

/// Per-frame contention-window state with the standard 802.11 binary
/// exponential backoff law.
///
/// Broadcast ITS frames are sent exactly once, so [`EdcaMac`] never
/// retries; this state machine models the unicast/retry side of EDCA for
/// ablations of acknowledged hand-offs. Each failed attempt doubles the
/// window (`cw' = min(2·cw + 1, CWmax)`) and a success resets it to
/// CWmin; the drawn backoff is always within `[0, cw]` slots.
///
/// # Example
///
/// ```
/// use phy80211p::edca::{AccessCategory, BackoffState};
///
/// let mut state = BackoffState::new(AccessCategory::Voice);
/// assert_eq!(state.cw(), 3);
/// state.on_retry();
/// assert_eq!(state.cw(), 7); // 2·3 + 1, already at CWmax for AC_VO
/// state.on_retry();
/// assert_eq!(state.cw(), 7); // capped
/// state.on_success();
/// assert_eq!(state.cw(), 3); // reset
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffState {
    params: EdcaParams,
    cw: u16,
    retries: u32,
}

impl BackoffState {
    /// Fresh state for `ac` with the default OCB parameter set.
    pub fn new(ac: AccessCategory) -> Self {
        Self::with_params(EdcaParams::for_category(ac))
    }

    /// Fresh state for an explicit parameter set. The window starts at
    /// `min(CWmin, CWmax)` so a degenerate set (`cw_min > cw_max`) still
    /// respects the ceiling.
    pub fn with_params(params: EdcaParams) -> Self {
        Self {
            params,
            cw: params.cw_min.min(params.cw_max),
            retries: 0,
        }
    }

    /// The parameter set in effect.
    pub fn params(&self) -> EdcaParams {
        self.params
    }

    /// Current contention window (slots − 1).
    pub fn cw(&self) -> u16 {
        self.cw
    }

    /// Consecutive failed attempts since the last success.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Records a failed attempt: the window doubles (`2·cw + 1`) and
    /// saturates at CWmax.
    pub fn on_retry(&mut self) {
        self.retries = self.retries.saturating_add(1);
        self.cw = self
            .cw
            .saturating_mul(2)
            .saturating_add(1)
            .min(self.params.cw_max);
    }

    /// Records a delivered frame: the window resets to CWmin and the
    /// retry counter clears.
    pub fn on_success(&mut self) {
        self.retries = 0;
        self.cw = self.params.cw_min.min(self.params.cw_max);
    }

    /// Draws a uniform backoff in `[0, cw]` slots.
    pub fn draw_slots(&self, rng: &mut SimRng) -> u16 {
        // below(cw + 1) < cw + 1 ≤ 65_536, so the cast never truncates.
        rng.below(u64::from(self.cw) + 1) as u16
    }

    /// The instant transmission may start for a frame ready at `now`,
    /// with the backoff drawn from the *current* (retry-widened) window:
    /// idle medium → `now + AIFS`; busy medium → idle instant + AIFS +
    /// backoff.
    pub fn access_time(&self, now: SimTime, medium: &Medium, rng: &mut SimRng) -> SimTime {
        if !medium.is_busy(now) {
            now + self.params.aifs()
        } else {
            let slots = u64::from(self.draw_slots(rng));
            medium.idle_at(now) + self.params.aifs() + SimDuration::from_micros(slots * SLOT_US)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parameter_table_matches_en302663() {
        let vo = EdcaParams::for_category(AccessCategory::Voice);
        assert_eq!((vo.aifsn, vo.cw_min, vo.cw_max), (2, 3, 7));
        let vi = EdcaParams::for_category(AccessCategory::Video);
        assert_eq!((vi.aifsn, vi.cw_min, vi.cw_max), (3, 7, 15));
        let be = EdcaParams::for_category(AccessCategory::BestEffort);
        assert_eq!((be.aifsn, be.cw_min, be.cw_max), (6, 15, 1023));
        let bk = EdcaParams::for_category(AccessCategory::Background);
        assert_eq!((bk.aifsn, bk.cw_min, bk.cw_max), (9, 15, 1023));
    }

    #[test]
    fn aifs_values() {
        assert_eq!(
            EdcaParams::for_category(AccessCategory::Voice)
                .aifs()
                .as_micros(),
            58
        );
        assert_eq!(
            EdcaParams::for_category(AccessCategory::Video)
                .aifs()
                .as_micros(),
            71
        );
    }

    #[test]
    fn dcc_profile_mapping() {
        assert_eq!(AccessCategory::from_dcc_profile(0), AccessCategory::Voice);
        assert_eq!(AccessCategory::from_dcc_profile(1), AccessCategory::Video);
        assert_eq!(AccessCategory::from_dcc_profile(2), AccessCategory::Video);
        assert_eq!(
            AccessCategory::from_dcc_profile(3),
            AccessCategory::BestEffort
        );
        assert_eq!(
            AccessCategory::from_dcc_profile(7),
            AccessCategory::Background
        );
    }

    #[test]
    fn idle_medium_no_backoff() {
        let mac = EdcaMac::new();
        let medium = Medium::new();
        let mut rng = SimRng::seed_from(1);
        let t0 = SimTime::from_millis(100);
        let start = mac.access_time(t0, AccessCategory::Voice, &medium, &mut rng);
        assert_eq!((start - t0).as_micros(), 58);
    }

    #[test]
    fn busy_medium_defers_and_backs_off() {
        let mac = EdcaMac::new();
        let mut medium = Medium::new();
        medium.occupy(SimTime::from_micros(500));
        let mut rng = SimRng::seed_from(2);
        let mut seen_nonzero_backoff = false;
        for _ in 0..50 {
            let start = mac.access_time(SimTime::ZERO, AccessCategory::Voice, &medium, &mut rng);
            let delay_after_idle = start.as_micros() - 500;
            // AIFS + backoff in {0..3} slots.
            assert!(delay_after_idle >= 58);
            assert!(delay_after_idle <= 58 + 3 * 13);
            assert_eq!((delay_after_idle - 58) % 13, 0);
            if delay_after_idle > 58 {
                seen_nonzero_backoff = true;
            }
        }
        assert!(seen_nonzero_backoff);
    }

    #[test]
    fn higher_priority_accesses_sooner_on_idle() {
        let mac = EdcaMac::new();
        let medium = Medium::new();
        let mut rng = SimRng::seed_from(3);
        let vo = mac.access_time(SimTime::ZERO, AccessCategory::Voice, &medium, &mut rng);
        let bk = mac.access_time(SimTime::ZERO, AccessCategory::Background, &medium, &mut rng);
        assert!(vo < bk);
    }

    #[test]
    fn medium_occupy_keeps_latest() {
        let mut m = Medium::new();
        m.occupy(SimTime::from_micros(100));
        m.occupy(SimTime::from_micros(50));
        assert_eq!(m.idle_at(SimTime::ZERO), SimTime::from_micros(100));
        assert!(m.is_busy(SimTime::from_micros(99)));
        assert!(!m.is_busy(SimTime::from_micros(100)));
    }

    #[test]
    fn params_override() {
        let mac = EdcaMac::new().with_params(
            AccessCategory::Voice,
            EdcaParams {
                aifsn: 1,
                cw_min: 0,
                cw_max: 0,
            },
        );
        assert_eq!(mac.params(AccessCategory::Voice).aifsn, 1);
        // Other categories unaffected.
        assert_eq!(mac.params(AccessCategory::Video).aifsn, 3);
    }

    #[test]
    fn backoff_state_doubles_and_resets() {
        for ac in AccessCategory::ALL {
            let params = EdcaParams::for_category(ac);
            let mut state = BackoffState::new(ac);
            assert_eq!(state.cw(), params.cw_min);
            let mut expected = u64::from(params.cw_min);
            for retry in 1..=12u32 {
                state.on_retry();
                expected = (2 * expected + 1).min(u64::from(params.cw_max));
                assert_eq!(u64::from(state.cw()), expected, "{ac:?} retry {retry}");
                assert_eq!(state.retries(), retry);
            }
            assert_eq!(state.cw(), params.cw_max, "{ac:?} must reach CWmax");
            state.on_success();
            assert_eq!(state.cw(), params.cw_min);
            assert_eq!(state.retries(), 0);
        }
    }

    proptest! {
        #[test]
        fn backoff_never_exceeds_cw_bounds(
            seed in any::<u64>(),
            ac_idx in 0usize..4,
            retries in 0u32..12,
            draws in 1usize..16,
        ) {
            let ac = AccessCategory::ALL[ac_idx];
            let params = EdcaParams::for_category(ac);
            let mut state = BackoffState::new(ac);
            for _ in 0..retries {
                state.on_retry();
            }
            prop_assert!(state.cw() >= params.cw_min);
            prop_assert!(state.cw() <= params.cw_max);
            let mut rng = SimRng::seed_from(seed);
            for _ in 0..draws {
                let slots = state.draw_slots(&mut rng);
                prop_assert!(slots <= state.cw(), "drew {slots} with cw {}", state.cw());
            }
        }

        #[test]
        fn cw_law_is_min_of_doubling_and_cap(retries in 0u32..20, ac_idx in 0usize..4) {
            let ac = AccessCategory::ALL[ac_idx];
            let params = EdcaParams::for_category(ac);
            let mut state = BackoffState::new(ac);
            for _ in 0..retries {
                state.on_retry();
            }
            // Closed form: after k retries cw = min(2^k·(CWmin+1) − 1, CWmax).
            let doubled = (u64::from(params.cw_min) + 1)
                .saturating_mul(1u64 << retries.min(32))
                .saturating_sub(1);
            prop_assert_eq!(
                u64::from(state.cw()),
                doubled.min(u64::from(params.cw_max))
            );
        }

        #[test]
        fn aifs_ordering_holds_for_arbitrary_seeds(seed in any::<u64>(), now_us in 0u64..10_000_000) {
            let mac = EdcaMac::new();
            let medium = Medium::new();
            let mut rng = SimRng::seed_from(seed);
            let now = SimTime::from_micros(now_us);
            // Idle medium: access time is deterministic (AIFS only), so the
            // priority order Voice < Video < BestEffort < Background must
            // hold whatever the RNG state.
            let times: Vec<SimTime> = AccessCategory::ALL
                .iter()
                .map(|&ac| mac.access_time(now, ac, &medium, &mut rng))
                .collect();
            for pair in times.windows(2) {
                prop_assert!(pair[0] < pair[1], "{times:?}");
            }
        }

        #[test]
        fn busy_medium_backoff_is_slot_aligned_within_window(
            seed in any::<u64>(),
            busy_us in 1u64..100_000,
            retries in 0u32..8,
            ac_idx in 0usize..4,
        ) {
            let ac = AccessCategory::ALL[ac_idx];
            let mut state = BackoffState::new(ac);
            for _ in 0..retries {
                state.on_retry();
            }
            let mut medium = Medium::new();
            medium.occupy(SimTime::from_micros(busy_us));
            let mut rng = SimRng::seed_from(seed);
            let start = state.access_time(SimTime::ZERO, &medium, &mut rng);
            let after_idle = start.as_micros() - busy_us;
            let aifs = state.params().aifs().as_micros();
            prop_assert!(after_idle >= aifs);
            let backoff = after_idle - aifs;
            prop_assert_eq!(backoff % SLOT_US, 0, "backoff not slot-aligned: {}", backoff);
            prop_assert!(backoff <= u64::from(state.cw()) * SLOT_US);
        }
    }
}
