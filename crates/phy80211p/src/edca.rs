//! EDCA medium access for OCB (outside-the-context-of-a-BSS) operation.
//!
//! ITS-G5 stations contend with EDCA: each access category waits AIFS
//! (= SIFS + AIFSN · slot) of idle medium and then, if the medium was busy
//! when the frame arrived, a random backoff drawn from the contention
//! window. Broadcast frames are sent exactly once — no ACK, no
//! retransmission — so the only stochastic component of the access delay
//! is the backoff.
//!
//! Timing set for 10 MHz channels: slot 13 µs, SIFS 32 µs.

use sim_core::{SimDuration, SimRng, SimTime};

/// Slot time at 10 MHz.
pub const SLOT_US: u64 = 13;
/// SIFS at 10 MHz.
pub const SIFS_US: u64 = 32;

/// The four EDCA access categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessCategory {
    /// Voice — highest priority; DENMs (DCC profile DP0) map here.
    Voice,
    /// Video — CAMs (DP2) map here.
    Video,
    /// Best effort.
    BestEffort,
    /// Background — lowest priority.
    Background,
}

impl AccessCategory {
    /// All categories, highest priority first.
    pub const ALL: [AccessCategory; 4] = [
        AccessCategory::Voice,
        AccessCategory::Video,
        AccessCategory::BestEffort,
        AccessCategory::Background,
    ];

    /// Maps a GeoNetworking DCC profile id to an access category
    /// (DP0→AC_VO, DP1→AC_VI, DP2→AC_BE is the textbook mapping, but
    /// OpenC2X maps CAM/DP2 to AC_VI; we follow the ETSI EN 302 663
    /// table: DP0→VO, DP1/DP2→VI, DP3→BE, else BK).
    pub fn from_dcc_profile(dp: u8) -> Self {
        match dp {
            0 => AccessCategory::Voice,
            1 | 2 => AccessCategory::Video,
            3 => AccessCategory::BestEffort,
            _ => AccessCategory::Background,
        }
    }
}

/// EDCA parameter set for one access category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdcaParams {
    /// AIFSN — number of slots after SIFS.
    pub aifsn: u8,
    /// Minimum contention window (slots − 1).
    pub cw_min: u16,
    /// Maximum contention window (slots − 1). Unused for broadcast (no
    /// retries) but kept for completeness.
    pub cw_max: u16,
}

impl EdcaParams {
    /// Default OCB parameters for an access category (EN 302 663 Table 2,
    /// derived from aCWmin = 15).
    pub fn for_category(ac: AccessCategory) -> Self {
        match ac {
            AccessCategory::Voice => EdcaParams {
                aifsn: 2,
                cw_min: 3,
                cw_max: 7,
            },
            AccessCategory::Video => EdcaParams {
                aifsn: 3,
                cw_min: 7,
                cw_max: 15,
            },
            AccessCategory::BestEffort => EdcaParams {
                aifsn: 6,
                cw_min: 15,
                cw_max: 1023,
            },
            AccessCategory::Background => EdcaParams {
                aifsn: 9,
                cw_min: 15,
                cw_max: 1023,
            },
        }
    }

    /// AIFS duration: SIFS + AIFSN · slot.
    pub fn aifs(&self) -> SimDuration {
        SimDuration::from_micros(SIFS_US + u64::from(self.aifsn) * SLOT_US)
    }
}

/// Shared-medium busy tracker.
///
/// All stations hear the same laboratory-scale channel, so a single busy
/// interval suffices; the testbed updates it on every transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Medium {
    busy_until: SimTime,
}

impl Medium {
    /// Creates an idle medium.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the medium is busy at `now`.
    pub fn is_busy(&self, now: SimTime) -> bool {
        now < self.busy_until
    }

    /// The instant the medium becomes idle (never before `now`).
    pub fn idle_at(&self, now: SimTime) -> SimTime {
        self.busy_until.max(now)
    }

    /// Marks the medium busy until `until` (keeps the later of the two).
    pub fn occupy(&mut self, until: SimTime) {
        self.busy_until = self.busy_until.max(until);
    }
}

/// EDCA channel access for a single station.
///
/// # Example
///
/// ```
/// use phy80211p::edca::{AccessCategory, EdcaMac, Medium};
/// use sim_core::{SimRng, SimTime};
///
/// let mac = EdcaMac::new();
/// let medium = Medium::new();
/// let mut rng = SimRng::seed_from(1);
/// let start = mac.access_time(
///     SimTime::ZERO, AccessCategory::Voice, &medium, &mut rng);
/// // Idle medium: transmission starts after exactly AIFS(AC_VO) = 58 µs.
/// assert_eq!(start.as_micros(), 32 + 2 * 13);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EdcaMac {
    /// Optional override of the per-category parameters.
    overrides: Vec<(AccessCategory, EdcaParams)>,
}

impl EdcaMac {
    /// Creates a MAC with the default OCB parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the parameters of one category.
    pub fn with_params(mut self, ac: AccessCategory, params: EdcaParams) -> Self {
        self.overrides.retain(|(c, _)| *c != ac);
        self.overrides.push((ac, params));
        self
    }

    /// Parameters in effect for `ac`.
    pub fn params(&self, ac: AccessCategory) -> EdcaParams {
        self.overrides
            .iter()
            .find(|(c, _)| *c == ac)
            .map(|(_, p)| *p)
            .unwrap_or_else(|| EdcaParams::for_category(ac))
    }

    /// The instant transmission may start for a frame that becomes ready
    /// at `now`:
    ///
    /// * medium idle and stays idle through AIFS → `now + AIFS`
    ///   (no backoff, per 802.11 when the medium is idle on arrival);
    /// * medium busy → idle instant + AIFS + random backoff in
    ///   `[0, CWmin]` slots.
    pub fn access_time(
        &self,
        now: SimTime,
        ac: AccessCategory,
        medium: &Medium,
        rng: &mut SimRng,
    ) -> SimTime {
        let params = self.params(ac);
        if !medium.is_busy(now) {
            now + params.aifs()
        } else {
            let idle = medium.idle_at(now);
            let backoff_slots = rng.below(u64::from(params.cw_min) + 1);
            idle + params.aifs() + SimDuration::from_micros(backoff_slots * SLOT_US)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_table_matches_en302663() {
        let vo = EdcaParams::for_category(AccessCategory::Voice);
        assert_eq!((vo.aifsn, vo.cw_min, vo.cw_max), (2, 3, 7));
        let vi = EdcaParams::for_category(AccessCategory::Video);
        assert_eq!((vi.aifsn, vi.cw_min, vi.cw_max), (3, 7, 15));
        let be = EdcaParams::for_category(AccessCategory::BestEffort);
        assert_eq!((be.aifsn, be.cw_min, be.cw_max), (6, 15, 1023));
        let bk = EdcaParams::for_category(AccessCategory::Background);
        assert_eq!((bk.aifsn, bk.cw_min, bk.cw_max), (9, 15, 1023));
    }

    #[test]
    fn aifs_values() {
        assert_eq!(
            EdcaParams::for_category(AccessCategory::Voice)
                .aifs()
                .as_micros(),
            58
        );
        assert_eq!(
            EdcaParams::for_category(AccessCategory::Video)
                .aifs()
                .as_micros(),
            71
        );
    }

    #[test]
    fn dcc_profile_mapping() {
        assert_eq!(AccessCategory::from_dcc_profile(0), AccessCategory::Voice);
        assert_eq!(AccessCategory::from_dcc_profile(1), AccessCategory::Video);
        assert_eq!(AccessCategory::from_dcc_profile(2), AccessCategory::Video);
        assert_eq!(
            AccessCategory::from_dcc_profile(3),
            AccessCategory::BestEffort
        );
        assert_eq!(
            AccessCategory::from_dcc_profile(7),
            AccessCategory::Background
        );
    }

    #[test]
    fn idle_medium_no_backoff() {
        let mac = EdcaMac::new();
        let medium = Medium::new();
        let mut rng = SimRng::seed_from(1);
        let t0 = SimTime::from_millis(100);
        let start = mac.access_time(t0, AccessCategory::Voice, &medium, &mut rng);
        assert_eq!((start - t0).as_micros(), 58);
    }

    #[test]
    fn busy_medium_defers_and_backs_off() {
        let mac = EdcaMac::new();
        let mut medium = Medium::new();
        medium.occupy(SimTime::from_micros(500));
        let mut rng = SimRng::seed_from(2);
        let mut seen_nonzero_backoff = false;
        for _ in 0..50 {
            let start = mac.access_time(SimTime::ZERO, AccessCategory::Voice, &medium, &mut rng);
            let delay_after_idle = start.as_micros() - 500;
            // AIFS + backoff in {0..3} slots.
            assert!(delay_after_idle >= 58);
            assert!(delay_after_idle <= 58 + 3 * 13);
            assert_eq!((delay_after_idle - 58) % 13, 0);
            if delay_after_idle > 58 {
                seen_nonzero_backoff = true;
            }
        }
        assert!(seen_nonzero_backoff);
    }

    #[test]
    fn higher_priority_accesses_sooner_on_idle() {
        let mac = EdcaMac::new();
        let medium = Medium::new();
        let mut rng = SimRng::seed_from(3);
        let vo = mac.access_time(SimTime::ZERO, AccessCategory::Voice, &medium, &mut rng);
        let bk = mac.access_time(SimTime::ZERO, AccessCategory::Background, &medium, &mut rng);
        assert!(vo < bk);
    }

    #[test]
    fn medium_occupy_keeps_latest() {
        let mut m = Medium::new();
        m.occupy(SimTime::from_micros(100));
        m.occupy(SimTime::from_micros(50));
        assert_eq!(m.idle_at(SimTime::ZERO), SimTime::from_micros(100));
        assert!(m.is_busy(SimTime::from_micros(99)));
        assert!(!m.is_busy(SimTime::from_micros(100)));
    }

    #[test]
    fn params_override() {
        let mac = EdcaMac::new().with_params(
            AccessCategory::Voice,
            EdcaParams {
                aifsn: 1,
                cw_min: 0,
                cw_max: 0,
            },
        );
        assert_eq!(mac.params(AccessCategory::Voice).aifsn, 1);
        // Other categories unaffected.
        assert_eq!(mac.params(AccessCategory::Video).aifsn, 3);
    }
}
