//! IEEE 802.11p (ITS-G5) access-layer simulation: OFDM PHY timing, EDCA
//! medium access, and a wireless channel model.
//!
//! The testbed's OBU/RSU radios are Compex WLE200NX modules in OCB mode on
//! a 10 MHz channel at 5.9 GHz. This crate reproduces the quantities that
//! shape the paper's RSU→OBU delay (Table II row 2, avg 1.6 ms):
//!
//! * [`ofdm`] — frame airtime per IEEE 802.11-2012 Clause 18 with the
//!   10 MHz timing set (8 µs symbols, 32 µs preamble),
//! * [`edca`] — EDCA queues/AIFS/contention windows for the four access
//!   categories (ETSI EN 302 663), including broadcast semantics (no ACK,
//!   no retransmission),
//! * [`channel`] — log-distance path loss with log-normal shadowing, an
//!   NLoS blind-corner obstruction model, and an SNR→frame-error model per
//!   modulation/coding scheme,
//! * [`cellular`] — a 5G-like alternative access interface (paper §V
//!   future work) for the interface-comparison extension experiment,
//! * [`spatial`] — a grid-bucket spatial index so city-scale broadcasts
//!   only evaluate receivers within the channel's cutoff radius.
//!
//! # Example
//!
//! ```
//! use phy80211p::ofdm::{DataRate, airtime};
//!
//! // A 100-byte DENM frame at the 6 Mbit/s default rate:
//! let t = airtime(100, DataRate::Mbps6);
//! assert_eq!(t.as_micros(), 32 + 8 + 8 * 18); // preamble + SIGNAL + data
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod cellular;
pub mod channel;
pub mod dcc;
pub mod edca;
pub mod ofdm;
pub mod spatial;

pub use channel::{Channel, ChannelConfig, Obstacle, Position2D, TransmitOutcome};
pub use edca::{AccessCategory, EdcaMac, EdcaParams, Medium};
pub use ofdm::{airtime, DataRate};
pub use spatial::SpatialGrid;
