//! A cellular (5G-like) alternative access interface.
//!
//! The paper's future work (§V) plans a 5G module on the robotic vehicles
//! "to compare the same detection-to-action delay over a different
//! interface and network". This module provides that comparison interface
//! for the extension experiment: instead of a broadcast medium, delivery
//! goes through a base station / core hop with a latency distribution and
//! an independent loss probability.
//!
//! The default profile models a commercial 5G NSA uplink+downlink path:
//! ~12 ms median one-way latency with a long exponential tail — an order
//! of magnitude above the direct 802.11p hop, which is exactly the
//! contrast the comparison experiment is after.

use sim_core::{SimDuration, SimRng, SimTime};

/// Latency/loss profile of a cellular link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellularProfile {
    /// Fixed one-way latency floor (radio + core processing), seconds.
    pub base_latency_s: f64,
    /// Mean of the exponential jitter component, seconds.
    pub jitter_mean_s: f64,
    /// Probability that a message is lost end-to-end.
    pub loss_probability: f64,
}

impl CellularProfile {
    /// A commercial 5G (NSA) profile: 8 ms floor + 4 ms mean jitter.
    pub fn nsa_5g() -> Self {
        Self {
            base_latency_s: 0.008,
            jitter_mean_s: 0.004,
            loss_probability: 0.001,
        }
    }

    /// An ideal 5G URLLC profile: 1 ms floor + 0.5 ms mean jitter.
    pub fn urllc_5g() -> Self {
        Self {
            base_latency_s: 0.001,
            jitter_mean_s: 0.0005,
            loss_probability: 0.0001,
        }
    }

    /// An LTE-V2X (Uu) style profile: 25 ms floor + 15 ms mean jitter.
    pub fn lte_uu() -> Self {
        Self {
            base_latency_s: 0.025,
            jitter_mean_s: 0.015,
            loss_probability: 0.005,
        }
    }
}

/// Outcome of a cellular message delivery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellularOutcome {
    /// Whether the message arrived.
    pub delivered: bool,
    /// Arrival instant (meaningful when `delivered`).
    pub arrival: SimTime,
}

/// A cellular link instance.
#[derive(Debug, Clone)]
pub struct CellularLink {
    profile: CellularProfile,
}

impl CellularLink {
    /// Creates a link with the given profile.
    pub fn new(profile: CellularProfile) -> Self {
        Self { profile }
    }

    /// The profile in effect.
    pub fn profile(&self) -> &CellularProfile {
        &self.profile
    }

    /// Sends one message at `now`; latency and loss are sampled from the
    /// profile. Message size is ignored (small ITS messages are far below
    /// a 5G TB size).
    pub fn send(&self, now: SimTime, rng: &mut SimRng) -> CellularOutcome {
        if rng.bernoulli(self.profile.loss_probability) {
            return CellularOutcome {
                delivered: false,
                arrival: now,
            };
        }
        let latency =
            self.profile.base_latency_s + rng.exponential(self.profile.jitter_mean_s.max(1e-9));
        CellularOutcome {
            delivered: true,
            arrival: now + SimDuration::from_secs_f64(latency),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_at_least_base() {
        let link = CellularLink::new(CellularProfile::nsa_5g());
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1000 {
            let out = link.send(SimTime::ZERO, &mut rng);
            if out.delivered {
                assert!(out.arrival.as_secs_f64() >= 0.008);
            }
        }
    }

    #[test]
    fn mean_latency_close_to_profile() {
        let link = CellularLink::new(CellularProfile::nsa_5g());
        let mut rng = SimRng::seed_from(2);
        let mut sum = 0.0;
        let mut n = 0;
        for _ in 0..20_000 {
            let out = link.send(SimTime::ZERO, &mut rng);
            if out.delivered {
                sum += out.arrival.as_secs_f64();
                n += 1;
            }
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.012).abs() < 0.0005, "mean {mean}");
    }

    #[test]
    fn loss_probability_respected() {
        let link = CellularLink::new(CellularProfile {
            base_latency_s: 0.001,
            jitter_mean_s: 0.001,
            loss_probability: 0.2,
        });
        let mut rng = SimRng::seed_from(3);
        let lost = (0..10_000)
            .filter(|_| !link.send(SimTime::ZERO, &mut rng).delivered)
            .count();
        let p = lost as f64 / 10_000.0;
        assert!((p - 0.2).abs() < 0.02, "loss {p}");
    }

    #[test]
    fn urllc_beats_nsa_beats_lte() {
        let mut rng = SimRng::seed_from(4);
        let mean = |profile: CellularProfile, rng: &mut SimRng| {
            let link = CellularLink::new(profile);
            (0..5000)
                .filter_map(|_| {
                    let o = link.send(SimTime::ZERO, rng);
                    o.delivered.then(|| o.arrival.as_secs_f64())
                })
                .sum::<f64>()
                / 5000.0
        };
        let urllc = mean(CellularProfile::urllc_5g(), &mut rng);
        let nsa = mean(CellularProfile::nsa_5g(), &mut rng);
        let lte = mean(CellularProfile::lte_uu(), &mut rng);
        assert!(urllc < nsa && nsa < lte, "{urllc} {nsa} {lte}");
    }
}
