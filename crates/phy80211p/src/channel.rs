//! Wireless channel model: path loss, shadowing, blind-corner
//! obstruction, and an SNR→frame-error link model.
//!
//! The paper's discussion (§IV-C) calls out that "further work is required
//! to properly model attenuation, either by interference or shadowing
//! caused by own vehicle or others" — this module provides exactly those
//! knobs so the blind-corner scenario (vehicles without wireless
//! line-of-sight) can be reproduced: a log-distance path-loss law,
//! log-normal shadowing, and polygonal obstacles that add NLoS loss when
//! they cut the TX→RX segment.

use crate::ofdm::{airtime, DataRate, Modulation};
use sim_core::math::q_function;
use sim_core::{SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;

/// Speed of light, m/s.
const C_M_PER_S: f64 = 299_792_458.0;

/// Per-frame delivery probability a culled receiver is allowed to lose:
/// the cutoff radius is derived so delivery beyond it happens with
/// probability at most `2 × CULL_EPS` (shadow tail + residual FER).
pub const CULL_EPS: f64 = 1e-6;

/// Shadowing margin, in standard deviations, granted to a receiver
/// before it is culled. `P(N(0, σ) > 4.75 σ) ≈ 1e-6 = CULL_EPS`.
pub const CULL_SHADOW_SIGMAS: f64 = 4.75;

/// A point in the laboratory frame, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position2D {
    /// X coordinate, metres.
    pub x: f64,
    /// Y coordinate, metres.
    pub y: f64,
}

impl Position2D {
    /// Creates a position.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another position.
    pub fn distance(&self, other: Position2D) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// An axis-aligned rectangular obstruction (e.g. the blind-corner
/// building). Any TX→RX segment crossing it suffers `extra_loss_db`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obstacle {
    /// Minimum corner.
    pub min: Position2D,
    /// Maximum corner.
    pub max: Position2D,
    /// Additional attenuation when the link is obstructed, dB.
    pub extra_loss_db: f64,
}

impl Obstacle {
    /// Whether the segment `a`→`b` intersects this rectangle.
    pub fn blocks(&self, a: Position2D, b: Position2D) -> bool {
        // Liang–Barsky clipping: find parameter range of the segment
        // inside the slab intersection.
        let (mut t0, mut t1) = (0.0f64, 1.0f64);
        let dx = b.x - a.x;
        let dy = b.y - a.y;
        let clips = [
            (-dx, a.x - self.min.x),
            (dx, self.max.x - a.x),
            (-dy, a.y - self.min.y),
            (dy, self.max.y - a.y),
        ];
        for (p, q) in clips {
            // detlint:allow(D4) Liang–Barsky needs the exact zero-denominator case
            if p == 0.0 {
                if q < 0.0 {
                    return false; // parallel and outside
                }
            } else {
                let r = q / p;
                if p < 0.0 {
                    if r > t1 {
                        return false;
                    }
                    if r > t0 {
                        t0 = r;
                    }
                } else {
                    if r < t0 {
                        return false;
                    }
                    if r < t1 {
                        t1 = r;
                    }
                }
            }
        }
        t0 <= t1
    }
}

/// Channel configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelConfig {
    /// Transmit power, dBm (802.11p class C default 23 dBm).
    pub tx_power_dbm: f64,
    /// Combined antenna gains, dBi.
    pub antenna_gain_dbi: f64,
    /// Path-loss exponent (2.0 = free space; indoor lab ≈ 1.8–2.2).
    pub path_loss_exponent: f64,
    /// Reference loss at 1 m, dB (free space at 5.9 GHz ≈ 47.9 dB).
    pub reference_loss_db: f64,
    /// Log-normal shadowing standard deviation, dB.
    pub shadowing_sigma_db: f64,
    /// Receiver noise floor, dBm (−174 + 10·log10(10 MHz) + NF ≈ −94).
    pub noise_floor_dbm: f64,
    /// Obstructions adding NLoS loss.
    pub obstacles: Vec<Obstacle>,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        Self {
            tx_power_dbm: 23.0,
            antenna_gain_dbi: 0.0,
            path_loss_exponent: 2.0,
            reference_loss_db: 47.9,
            shadowing_sigma_db: 3.0,
            noise_floor_dbm: -94.0,
            obstacles: Vec::new(),
        }
    }
}

/// Outcome of one frame transmission towards one receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransmitOutcome {
    /// Whether the frame decoded successfully.
    pub delivered: bool,
    /// Time the last bit arrives at the receiver (TX start + airtime +
    /// propagation).
    pub arrival: SimTime,
    /// Signal-to-noise ratio seen by this receiver, dB.
    pub snr_db: f64,
    /// Frame error probability that was sampled against.
    pub fer: f64,
}

/// The broadcast channel.
///
/// # Example
///
/// ```
/// use phy80211p::channel::{Channel, ChannelConfig, Position2D};
/// use phy80211p::ofdm::DataRate;
/// use sim_core::{SimRng, SimTime};
///
/// let mut rng = SimRng::seed_from(7);
/// let channel = Channel::new(ChannelConfig::default());
/// let out = channel.transmit(
///     SimTime::ZERO,
///     Position2D::new(0.0, 0.0),
///     Position2D::new(5.0, 0.0), // 5 m apart in the lab
///     100,
///     DataRate::Mbps6,
///     &mut rng,
/// );
/// assert!(out.delivered, "5 m LoS link at 23 dBm is robust");
/// ```
#[derive(Debug, Clone)]
pub struct Channel {
    config: ChannelConfig,
}

impl Channel {
    /// Creates a channel from a configuration.
    pub fn new(config: ChannelConfig) -> Self {
        Self { config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// Deterministic (pre-shadowing) path loss between two points, dB.
    pub fn path_loss_db(&self, tx: Position2D, rx: Position2D) -> f64 {
        let d = tx.distance(rx).max(1.0);
        let mut loss =
            self.config.reference_loss_db + 10.0 * self.config.path_loss_exponent * d.log10();
        for obs in &self.config.obstacles {
            if obs.blocks(tx, rx) {
                loss += obs.extra_loss_db;
            }
        }
        loss
    }

    /// Mean received power (before shadowing), dBm.
    pub fn mean_rx_power_dbm(&self, tx: Position2D, rx: Position2D) -> f64 {
        self.config.tx_power_dbm + self.config.antenna_gain_dbi - self.path_loss_db(tx, rx)
    }

    /// Frame error rate at a given SNR for a frame of `len_bytes` at
    /// `rate`.
    ///
    /// Per-bit error probability is approximated from the modulation's
    /// uncoded BER curve shifted by an effective convolutional-coding gain,
    /// then lifted to the frame level as `1 − (1 − BER)^bits`.
    pub fn frame_error_rate(&self, snr_db: f64, len_bytes: usize, rate: DataRate) -> f64 {
        let coding_gain_db = match rate.coding_rate() {
            (1, 2) => 5.0,
            (2, 3) => 4.0,
            _ => 3.5,
        };
        let eff_snr_db = snr_db + coding_gain_db;
        let snr = 10f64.powf(eff_snr_db / 10.0);
        // Es/N0 → Eb/N0 conversion uses bits per modulation symbol.
        let bits_per_sym = match rate.modulation() {
            Modulation::Bpsk => 1.0,
            Modulation::Qpsk => 2.0,
            Modulation::Qam16 => 4.0,
            Modulation::Qam64 => 6.0,
        };
        let ebn0 = (snr / bits_per_sym).max(1e-12);
        let ber = match rate.modulation() {
            Modulation::Bpsk | Modulation::Qpsk => q_function((2.0 * ebn0).sqrt()),
            Modulation::Qam16 => 0.75 * q_function((0.8 * ebn0).sqrt()),
            Modulation::Qam64 => (7.0 / 12.0) * q_function((ebn0 * 2.0 / 7.0).sqrt()),
        };
        let bits = (8 * len_bytes.max(1)) as f64;
        1.0 - (1.0 - ber.clamp(0.0, 0.5)).powf(bits)
    }

    /// The lowest SNR (dB) at which a frame of `len_bytes` at `rate`
    /// still has any plausible chance of decoding: below this floor the
    /// frame-error rate is at least `1 − CULL_EPS`.
    ///
    /// Found by bisecting the monotone [`Channel::frame_error_rate`]
    /// curve — a pure function of the channel configuration, so the
    /// value is identical on every host.
    pub fn delivery_floor_snr_db(&self, len_bytes: usize, rate: DataRate) -> f64 {
        // FER is monotone non-increasing in SNR: find the largest SNR
        // whose FER is still >= 1 - eps.
        let mut lo = -60.0f64; // FER ~ 1 here for every rate
        let mut hi = 80.0f64; // FER ~ 0 here for every rate
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.frame_error_rate(mid, len_bytes, rate) >= 1.0 - CULL_EPS {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The path-loss cutoff radius (metres) beyond which a receiver is
    /// implausible for a frame of `len_bytes` at `rate` and may be
    /// culled without drawing its shadowing/PER randomness.
    ///
    /// Derivation (DESIGN.md §13): a receiver at distance `d` sees mean
    /// SNR `tx + gain − PL(d) − noise`; log-normal shadowing exceeds
    /// `CULL_SHADOW_SIGMAS · σ` with probability ≤ `CULL_EPS`, and even
    /// at that shadowing the frame still dies (FER ≥ `1 − CULL_EPS`)
    /// once the mean SNR plus the margin is below
    /// [`Channel::delivery_floor_snr_db`]. Total delivery probability
    /// beyond the returned radius is therefore ≤ `2 · CULL_EPS` per
    /// frame. Obstacles only ever *add* loss, so ignoring them here is
    /// conservative. Returns infinity when the configuration cannot
    /// bound the radius (e.g. zero path-loss exponent).
    pub fn cutoff_radius_m(&self, len_bytes: usize, rate: DataRate) -> f64 {
        let floor = self.delivery_floor_snr_db(len_bytes, rate);
        let margin = CULL_SHADOW_SIGMAS * self.config.shadowing_sigma_db.max(0.0);
        // Cull when mean_snr + margin <= floor, i.e. path loss >=
        // tx + gain - noise + margin - floor.
        let required_loss = self.config.tx_power_dbm + self.config.antenna_gain_dbi
            - self.config.noise_floor_dbm
            + margin
            - floor;
        if self.config.path_loss_exponent <= 0.0 {
            return f64::INFINITY;
        }
        let exponent = (required_loss - self.config.reference_loss_db)
            / (10.0 * self.config.path_loss_exponent);
        // Path loss is floored at 1 m, so the radius is too.
        let d = 10f64.powf(exponent).max(1.0);
        if d.is_finite() {
            d
        } else {
            f64::INFINITY
        }
    }

    /// Simulates one broadcast frame from `tx` as seen by `rx`.
    ///
    /// `start` is the instant the first bit hits the air (i.e. after MAC
    /// access). Arrival is `start + airtime + propagation`.
    pub fn transmit(
        &self,
        start: SimTime,
        tx: Position2D,
        rx: Position2D,
        len_bytes: usize,
        rate: DataRate,
        rng: &mut SimRng,
    ) -> TransmitOutcome {
        // detlint:allow(R2) sigma is static channel config, constant for a whole run
        let shadow_db = if self.config.shadowing_sigma_db > 0.0 {
            rng.normal(0.0, self.config.shadowing_sigma_db)
        } else {
            0.0
        };
        let rx_power = self.mean_rx_power_dbm(tx, rx) + shadow_db;
        let snr_db = rx_power - self.config.noise_floor_dbm;
        let fer = self.frame_error_rate(snr_db, len_bytes, rate);
        let delivered = !rng.bernoulli(fer);
        let propagation = SimDuration::from_secs_f64(tx.distance(rx) / C_M_PER_S);
        let arrival = start + airtime(len_bytes, rate) + propagation;
        TransmitOutcome {
            delivered,
            arrival,
            snr_db,
            fer,
        }
    }
    /// [`Channel::transmit`] with the deterministic math memoised in
    /// `cache`.
    ///
    /// Bitwise identical to the uncached path: the cache is keyed on the
    /// *exact bit patterns* of its inputs (`f64::to_bits` of the
    /// post-shadowing SNR, frame length, data rate), so a hit returns
    /// the very same `f64` the formula would produce, and the RNG draw
    /// order (shadowing normal, then delivery Bernoulli) is unchanged.
    /// Shadowing stays a fresh per-frame draw — only the pure
    /// SNR→FER/airtime math is memoised.
    #[allow(clippy::too_many_arguments)] // mirrors `transmit` plus the cache
    pub fn transmit_cached(
        &self,
        start: SimTime,
        tx: Position2D,
        rx: Position2D,
        len_bytes: usize,
        rate: DataRate,
        rng: &mut SimRng,
        cache: &mut LinkCache,
    ) -> TransmitOutcome {
        // detlint:allow(R2) sigma is static channel config, constant for a whole run
        let shadow_db = if self.config.shadowing_sigma_db > 0.0 {
            rng.normal(0.0, self.config.shadowing_sigma_db)
        } else {
            0.0
        };
        let rx_power = self.mean_rx_power_dbm(tx, rx) + shadow_db;
        let snr_db = rx_power - self.config.noise_floor_dbm;
        let fer = cache.fer(self, snr_db, len_bytes, rate);
        let delivered = !rng.bernoulli(fer);
        let propagation = SimDuration::from_secs_f64(tx.distance(rx) / C_M_PER_S);
        let arrival = start + cache.airtime(len_bytes, rate) + propagation;
        TransmitOutcome {
            delivered,
            arrival,
            snr_db,
            fer,
        }
    }
}

/// Memo cache for the deterministic parts of the link model
/// (SNR→frame-error-rate curves and frame airtimes).
///
/// One instance is meant to live next to each simulated radio channel
/// (e.g. per scenario run). Keys are exact input bit patterns — no
/// quantisation — so a cached value is the *same* `f64` the direct
/// computation returns; see [`Channel::transmit_cached`]. `BTreeMap`
/// keeps iteration (and therefore any future debug dump) deterministic.
///
/// Entries are bounded: when the FER map reaches its cap (a campaign
/// with per-frame shadowing produces a fresh SNR per frame) it is
/// cleared outright, which keeps the memory footprint flat and the
/// behaviour independent of hash or eviction order.
#[derive(Debug, Clone, Default)]
pub struct LinkCache {
    fer: BTreeMap<(u64, usize, u8), f64>,
    airtime: BTreeMap<(usize, u8), SimDuration>,
}

impl LinkCache {
    /// FER entries kept before the map is cleared.
    const MAX_FER_ENTRIES: usize = 8192;

    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of FER entries currently cached.
    pub fn fer_entries(&self) -> usize {
        self.fer.len()
    }

    /// Memoised [`Channel::frame_error_rate`]; bit-for-bit equal to the
    /// direct call.
    pub fn fer(&mut self, channel: &Channel, snr_db: f64, len_bytes: usize, rate: DataRate) -> f64 {
        let key = (snr_db.to_bits(), len_bytes, rate as u8);
        if let Some(&v) = self.fer.get(&key) {
            return v;
        }
        let v = channel.frame_error_rate(snr_db, len_bytes, rate);
        if self.fer.len() >= Self::MAX_FER_ENTRIES {
            self.fer.clear();
        }
        self.fer.insert(key, v);
        v
    }

    /// Memoised [`airtime`]; bit-for-bit equal to the direct call.
    pub fn airtime(&mut self, len_bytes: usize, rate: DataRate) -> SimDuration {
        let key = (len_bytes, rate as u8);
        if let Some(&v) = self.airtime.get(&key) {
            return v;
        }
        let v = airtime(len_bytes, rate);
        self.airtime.insert(key, v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lab_channel() -> Channel {
        Channel::new(ChannelConfig::default())
    }

    #[test]
    fn q_function_reference_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-6);
        assert!((q_function(1.0) - 0.1587).abs() < 1e-3);
        assert!((q_function(3.0) - 0.00135).abs() < 1e-4);
        assert!(q_function(-1.0) > 0.8);
    }

    #[test]
    fn path_loss_grows_with_distance() {
        let ch = lab_channel();
        let o = Position2D::default();
        let l5 = ch.path_loss_db(o, Position2D::new(5.0, 0.0));
        let l50 = ch.path_loss_db(o, Position2D::new(50.0, 0.0));
        // n = 2 ⇒ +20 dB per decade.
        assert!((l50 - l5 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn path_loss_floors_at_one_metre() {
        let ch = lab_channel();
        let o = Position2D::default();
        let near = ch.path_loss_db(o, Position2D::new(0.1, 0.0));
        let one = ch.path_loss_db(o, Position2D::new(1.0, 0.0));
        assert_eq!(near, one);
    }

    #[test]
    fn obstacle_blocks_crossing_segment_only() {
        let obs = Obstacle {
            min: Position2D::new(4.0, -1.0),
            max: Position2D::new(6.0, 1.0),
            extra_loss_db: 20.0,
        };
        // Straight through.
        assert!(obs.blocks(Position2D::new(0.0, 0.0), Position2D::new(10.0, 0.0)));
        // Passing above.
        assert!(!obs.blocks(Position2D::new(0.0, 5.0), Position2D::new(10.0, 5.0)));
        // Fully inside counts as blocked.
        assert!(obs.blocks(Position2D::new(4.5, 0.0), Position2D::new(5.5, 0.0)));
        // Diagonal clip through a corner.
        assert!(obs.blocks(Position2D::new(3.0, -2.0), Position2D::new(7.0, 2.0)));
    }

    #[test]
    fn nlos_corner_adds_loss() {
        let mut cfg = ChannelConfig::default();
        cfg.obstacles.push(Obstacle {
            min: Position2D::new(2.0, 2.0),
            max: Position2D::new(8.0, 8.0),
            extra_loss_db: 25.0,
        });
        let ch = Channel::new(cfg);
        let a = Position2D::new(0.0, 5.0);
        let b = Position2D::new(10.0, 5.0);
        let lab = Channel::new(ChannelConfig::default());
        assert!((ch.path_loss_db(a, b) - lab.path_loss_db(a, b) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn fer_decreases_with_snr() {
        let ch = lab_channel();
        let f_low = ch.frame_error_rate(2.0, 100, DataRate::Mbps6);
        let f_mid = ch.frame_error_rate(8.0, 100, DataRate::Mbps6);
        let f_high = ch.frame_error_rate(25.0, 100, DataRate::Mbps6);
        assert!(f_low > f_mid && f_mid > f_high, "{f_low} {f_mid} {f_high}");
        assert!(f_high < 1e-6);
    }

    #[test]
    fn fer_increases_with_frame_length_and_rate() {
        let ch = lab_channel();
        let snr = 12.0;
        assert!(
            ch.frame_error_rate(snr, 1000, DataRate::Mbps6)
                > ch.frame_error_rate(snr, 50, DataRate::Mbps6)
        );
        assert!(
            ch.frame_error_rate(snr, 100, DataRate::Mbps27)
                > ch.frame_error_rate(snr, 100, DataRate::Mbps6)
        );
    }

    #[test]
    fn lab_scale_link_is_reliable() {
        // The paper's lab is a few metres across; delivery should be
        // essentially lossless there.
        let ch = lab_channel();
        let mut rng = SimRng::seed_from(42);
        let delivered = (0..1000)
            .filter(|_| {
                ch.transmit(
                    SimTime::ZERO,
                    Position2D::new(0.0, 0.0),
                    Position2D::new(4.0, 2.0),
                    120,
                    DataRate::Mbps6,
                    &mut rng,
                )
                .delivered
            })
            .count();
        assert!(delivered >= 999, "delivered {delivered}/1000");
    }

    #[test]
    fn heavily_obstructed_long_link_drops_frames() {
        let mut cfg = ChannelConfig::default();
        cfg.obstacles.push(Obstacle {
            min: Position2D::new(10.0, -50.0),
            max: Position2D::new(20.0, 50.0),
            extra_loss_db: 60.0,
        });
        let ch = Channel::new(cfg);
        let mut rng = SimRng::seed_from(43);
        let delivered = (0..500)
            .filter(|_| {
                ch.transmit(
                    SimTime::ZERO,
                    Position2D::new(0.0, 0.0),
                    Position2D::new(400.0, 0.0),
                    400,
                    DataRate::Mbps6,
                    &mut rng,
                )
                .delivered
            })
            .count();
        assert!(delivered < 400, "delivered {delivered}/500");
    }

    #[test]
    fn arrival_includes_airtime_and_propagation() {
        let ch = Channel::new(ChannelConfig {
            shadowing_sigma_db: 0.0,
            ..ChannelConfig::default()
        });
        let mut rng = SimRng::seed_from(1);
        let out = ch.transmit(
            SimTime::from_millis(1),
            Position2D::new(0.0, 0.0),
            Position2D::new(300.0, 0.0),
            100,
            DataRate::Mbps6,
            &mut rng,
        );
        let airtime_us = 32 + 8 + 144;
        let prop_ns = (300.0 / C_M_PER_S * 1e9).round() as u64; // ≈ 1 µs
        assert_eq!(
            out.arrival.as_nanos(),
            1_000_000 + airtime_us * 1_000 + prop_ns
        );
    }

    #[test]
    fn delivery_floor_is_a_floor() {
        let ch = lab_channel();
        for rate in [DataRate::Mbps6, DataRate::Mbps12, DataRate::Mbps27] {
            let floor = ch.delivery_floor_snr_db(100, rate);
            assert!(
                ch.frame_error_rate(floor, 100, rate) >= 1.0 - CULL_EPS,
                "{rate:?}"
            );
            assert!(
                ch.frame_error_rate(floor + 0.01, 100, rate) < 1.0 - CULL_EPS,
                "{rate:?} floor not tight"
            );
        }
    }

    #[test]
    fn cutoff_radius_bounds_delivery() {
        // An urban-profile channel (the city scenario's configuration
        // family): beyond the cutoff the mean SNR plus the full
        // shadowing margin still cannot decode the frame.
        let ch = Channel::new(ChannelConfig {
            tx_power_dbm: 10.0,
            path_loss_exponent: 3.2,
            ..ChannelConfig::default()
        });
        let r = ch.cutoff_radius_m(100, DataRate::Mbps6);
        assert!(r.is_finite() && r > 10.0, "cutoff {r}");
        let margin = CULL_SHADOW_SIGMAS * ch.config().shadowing_sigma_db;
        let tx = Position2D::default();
        for d in [r * 1.0001, r * 1.5, r * 10.0] {
            let snr_best = ch.mean_rx_power_dbm(tx, Position2D::new(d, 0.0)) + margin
                - ch.config().noise_floor_dbm;
            assert!(
                ch.frame_error_rate(snr_best, 100, DataRate::Mbps6) >= 1.0 - CULL_EPS,
                "a receiver at {d} m (cutoff {r}) could still decode"
            );
        }
        // Just inside the cutoff the same bound must NOT hold — the
        // radius is tight, not merely safe.
        let snr_inside = ch.mean_rx_power_dbm(tx, Position2D::new(r * 0.999, 0.0)) + margin
            - ch.config().noise_floor_dbm;
        assert!(ch.frame_error_rate(snr_inside, 100, DataRate::Mbps6) < 1.0 - CULL_EPS);
    }

    #[test]
    fn cutoff_radius_grows_with_tx_power_and_shrinks_with_exponent() {
        let base = ChannelConfig {
            tx_power_dbm: 10.0,
            path_loss_exponent: 3.2,
            ..ChannelConfig::default()
        };
        let r0 = Channel::new(base.clone()).cutoff_radius_m(100, DataRate::Mbps6);
        let louder = Channel::new(ChannelConfig {
            tx_power_dbm: 20.0,
            ..base.clone()
        })
        .cutoff_radius_m(100, DataRate::Mbps6);
        let denser = Channel::new(ChannelConfig {
            path_loss_exponent: 4.0,
            ..base
        })
        .cutoff_radius_m(100, DataRate::Mbps6);
        assert!(louder > r0, "{louder} vs {r0}");
        assert!(denser < r0, "{denser} vs {r0}");
    }

    #[test]
    fn link_cache_clears_at_capacity_and_stays_correct() {
        let ch = lab_channel();
        let mut cache = LinkCache::new();
        // Fill past the cap with distinct SNR keys; the map clears once
        // and keeps answering with exact values.
        for i in 0..(8192 + 10) {
            let snr = i as f64 * 1e-3;
            let cached = cache.fer(&ch, snr, 100, DataRate::Mbps6);
            let direct = ch.frame_error_rate(snr, 100, DataRate::Mbps6);
            assert_eq!(cached.to_bits(), direct.to_bits(), "i={i}");
        }
        assert!(cache.fer_entries() <= 8192);
        assert!(cache.fer_entries() > 0);
    }

    proptest! {
        #[test]
        fn fer_is_probability(snr in -20.0f64..50.0, len in 1usize..2000) {
            let ch = lab_channel();
            for rate in DataRate::ALL {
                let f = ch.frame_error_rate(snr, len, rate);
                prop_assert!((0.0..=1.0).contains(&f), "fer {f}");
            }
        }

        #[test]
        fn cached_fer_and_airtime_agree_bit_for_bit(
            snr in -30.0f64..60.0,
            len in 1usize..2000,
            rate_idx in 0usize..8,
        ) {
            // The memo cache must be invisible: cached values carry the
            // exact bit pattern of the direct computation, on first fill
            // and on every subsequent hit.
            let ch = lab_channel();
            let rate = DataRate::ALL[rate_idx];
            let mut cache = LinkCache::new();
            let direct_fer = ch.frame_error_rate(snr, len, rate);
            let direct_at = airtime(len, rate);
            for pass in 0..2 {
                let cached_fer = cache.fer(&ch, snr, len, rate);
                prop_assert_eq!(
                    cached_fer.to_bits(),
                    direct_fer.to_bits(),
                    "fer drift on pass {}", pass
                );
                prop_assert_eq!(cache.airtime(len, rate), direct_at);
            }
        }

        #[test]
        fn transmit_cached_matches_transmit_exactly(
            seed in 0u64..1000,
            dist in 0.5f64..400.0,
            len in 1usize..1500,
            rate_idx in 0usize..8,
            sigma in 0.0f64..6.0,
        ) {
            // Same seed, same frames: the cached transmit path produces
            // bit-identical outcomes AND leaves the RNG in the same
            // state as the uncached path (the determinism contract the
            // campaign tables rely on).
            let ch = Channel::new(ChannelConfig {
                shadowing_sigma_db: sigma,
                ..ChannelConfig::default()
            });
            let rate = DataRate::ALL[rate_idx];
            let tx = Position2D::new(0.0, 0.0);
            let rx = Position2D::new(dist, 0.0);
            let mut rng_a = SimRng::seed_from(seed);
            let mut rng_b = SimRng::seed_from(seed);
            let mut cache = LinkCache::new();
            for _ in 0..4 {
                let plain = ch.transmit(SimTime::ZERO, tx, rx, len, rate, &mut rng_a);
                let cached =
                    ch.transmit_cached(SimTime::ZERO, tx, rx, len, rate, &mut rng_b, &mut cache);
                prop_assert_eq!(plain.delivered, cached.delivered);
                prop_assert_eq!(plain.arrival, cached.arrival);
                prop_assert_eq!(plain.snr_db.to_bits(), cached.snr_db.to_bits());
                prop_assert_eq!(plain.fer.to_bits(), cached.fer.to_bits());
            }
            prop_assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "RNG streams diverged");
        }

        #[test]
        fn blocks_is_symmetric(ax in -10.0f64..10.0, ay in -10.0f64..10.0,
                               bx in -10.0f64..10.0, by in -10.0f64..10.0) {
            let obs = Obstacle {
                min: Position2D::new(-2.0, -2.0),
                max: Position2D::new(2.0, 2.0),
                extra_loss_db: 10.0,
            };
            let a = Position2D::new(ax, ay);
            let b = Position2D::new(bx, by);
            prop_assert_eq!(obs.blocks(a, b), obs.blocks(b, a));
        }
    }
}
