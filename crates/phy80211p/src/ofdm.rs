//! OFDM PHY timing and rate set for 802.11p (10 MHz channels).
//!
//! With the 10 MHz channelisation of ITS-G5, all 802.11a OFDM timing
//! parameters double: 8 µs symbols, 32 µs PLCP preamble, 8 µs SIGNAL
//! field. The mandatory rate set runs from 3 to 27 Mbit/s; control traffic
//! defaults to 6 Mbit/s (QPSK 1/2), which is what OpenC2X uses.

use sim_core::SimDuration;

/// OFDM symbol duration at 10 MHz.
pub const SYMBOL_US: u64 = 8;
/// PLCP preamble duration at 10 MHz.
pub const PREAMBLE_US: u64 = 32;
/// SIGNAL field duration at 10 MHz (one symbol).
pub const SIGNAL_US: u64 = 8;
/// PLCP SERVICE field bits prepended to the PSDU.
pub const SERVICE_BITS: u64 = 16;
/// Convolutional-coder tail bits appended to the PSDU.
pub const TAIL_BITS: u64 = 6;

/// The eight ITS-G5 data rates (modulation + coding rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataRate {
    /// BPSK 1/2 — 3 Mbit/s.
    Mbps3,
    /// BPSK 3/4 — 4.5 Mbit/s.
    Mbps4_5,
    /// QPSK 1/2 — 6 Mbit/s (the default control rate).
    Mbps6,
    /// QPSK 3/4 — 9 Mbit/s.
    Mbps9,
    /// 16-QAM 1/2 — 12 Mbit/s.
    Mbps12,
    /// 16-QAM 3/4 — 18 Mbit/s.
    Mbps18,
    /// 64-QAM 2/3 — 24 Mbit/s.
    Mbps24,
    /// 64-QAM 3/4 — 27 Mbit/s.
    Mbps27,
}

/// The modulation family of a data rate (drives the error model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// Binary phase-shift keying.
    Bpsk,
    /// Quadrature phase-shift keying.
    Qpsk,
    /// 16-point quadrature amplitude modulation.
    Qam16,
    /// 64-point quadrature amplitude modulation.
    Qam64,
}

impl DataRate {
    /// All rates, slowest first.
    pub const ALL: [DataRate; 8] = [
        DataRate::Mbps3,
        DataRate::Mbps4_5,
        DataRate::Mbps6,
        DataRate::Mbps9,
        DataRate::Mbps12,
        DataRate::Mbps18,
        DataRate::Mbps24,
        DataRate::Mbps27,
    ];

    /// Data bits carried per OFDM symbol (N_DBPS).
    pub fn bits_per_symbol(&self) -> u64 {
        match self {
            DataRate::Mbps3 => 24,
            DataRate::Mbps4_5 => 36,
            DataRate::Mbps6 => 48,
            DataRate::Mbps9 => 72,
            DataRate::Mbps12 => 96,
            DataRate::Mbps18 => 144,
            DataRate::Mbps24 => 192,
            DataRate::Mbps27 => 216,
        }
    }

    /// Nominal rate in bits per second.
    pub fn bits_per_second(&self) -> u64 {
        self.bits_per_symbol() * 1_000_000 / SYMBOL_US
    }

    /// Modulation family.
    pub fn modulation(&self) -> Modulation {
        match self {
            DataRate::Mbps3 | DataRate::Mbps4_5 => Modulation::Bpsk,
            DataRate::Mbps6 | DataRate::Mbps9 => Modulation::Qpsk,
            DataRate::Mbps12 | DataRate::Mbps18 => Modulation::Qam16,
            DataRate::Mbps24 | DataRate::Mbps27 => Modulation::Qam64,
        }
    }

    /// Convolutional coding rate as (numerator, denominator).
    pub fn coding_rate(&self) -> (u32, u32) {
        match self {
            DataRate::Mbps3 | DataRate::Mbps6 | DataRate::Mbps12 => (1, 2),
            DataRate::Mbps24 => (2, 3),
            _ => (3, 4),
        }
    }
}

impl std::fmt::Display for DataRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mbps = self.bits_per_second() as f64 / 1e6;
        write!(f, "{mbps} Mbit/s")
    }
}

/// Airtime of a PSDU of `len_bytes` at `rate`: preamble + SIGNAL +
/// `ceil((16 + 8·len + 6) / N_DBPS)` data symbols.
///
/// # Example
///
/// ```
/// use phy80211p::ofdm::{airtime, DataRate};
/// // An empty frame still costs preamble + SIGNAL + one symbol.
/// assert_eq!(airtime(0, DataRate::Mbps27).as_micros(), 32 + 8 + 8);
/// ```
pub fn airtime(len_bytes: usize, rate: DataRate) -> SimDuration {
    let bits = SERVICE_BITS + 8 * len_bytes as u64 + TAIL_BITS;
    let symbols = bits.div_ceil(rate.bits_per_symbol());
    SimDuration::from_micros(PREAMBLE_US + SIGNAL_US + symbols * SYMBOL_US)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nominal_rates() {
        assert_eq!(DataRate::Mbps3.bits_per_second(), 3_000_000);
        assert_eq!(DataRate::Mbps6.bits_per_second(), 6_000_000);
        assert_eq!(DataRate::Mbps27.bits_per_second(), 27_000_000);
        assert_eq!(DataRate::Mbps4_5.bits_per_second(), 4_500_000);
    }

    #[test]
    fn airtime_100_byte_frame_at_6mbps() {
        // 16 + 800 + 6 = 822 bits; ceil(822/48) = 18 symbols = 144 µs.
        let t = airtime(100, DataRate::Mbps6);
        assert_eq!(t.as_micros(), 32 + 8 + 144);
    }

    #[test]
    fn airtime_monotone_in_length() {
        for rate in DataRate::ALL {
            let mut prev = SimDuration::ZERO;
            for len in [0usize, 10, 50, 100, 500, 1500] {
                let t = airtime(len, rate);
                assert!(t >= prev, "{rate} len {len}");
                prev = t;
            }
        }
    }

    #[test]
    fn faster_rate_never_slower() {
        for pair in DataRate::ALL.windows(2) {
            let slow = airtime(300, pair[0]);
            let fast = airtime(300, pair[1]);
            assert!(fast <= slow, "{} vs {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn coding_and_modulation_table() {
        assert_eq!(DataRate::Mbps6.modulation(), Modulation::Qpsk);
        assert_eq!(DataRate::Mbps6.coding_rate(), (1, 2));
        assert_eq!(DataRate::Mbps27.modulation(), Modulation::Qam64);
        assert_eq!(DataRate::Mbps27.coding_rate(), (3, 4));
        assert_eq!(DataRate::Mbps24.coding_rate(), (2, 3));
    }

    #[test]
    fn display_format() {
        assert_eq!(DataRate::Mbps6.to_string(), "6 Mbit/s");
        assert_eq!(DataRate::Mbps4_5.to_string(), "4.5 Mbit/s");
    }

    proptest! {
        #[test]
        fn airtime_matches_formula(len in 0usize..4096) {
            let rate = DataRate::Mbps6;
            let bits = 16 + 8 * len as u64 + 6;
            let syms = bits.div_ceil(48);
            prop_assert_eq!(
                airtime(len, rate).as_micros(),
                32 + 8 + syms * 8
            );
        }
    }
}
