//! Decentralized Congestion Control (DCC), reactive approach of
//! ETSI TS 102 687 — the gatekeeper between the facilities layer and the
//! 802.11p MAC.
//!
//! OpenC2X (the stack the paper deploys on its OBUs/RSUs) includes a DCC
//! component: it measures the channel busy ratio (CBR) over 100 ms
//! probes and walks a state machine — `Relaxed`, a ladder of `Active`
//! states, and `Restrictive` — whose current state dictates the minimum
//! gap between a station's own transmissions (`T_off`). Under the
//! paper's two-station laboratory load DCC stays in `Relaxed` and adds
//! no delay; this module lets the testbed also explore loaded channels
//! (e.g. the platoon extension, where every vehicle beacons CAMs).

use crate::edca::AccessCategory;
use sim_core::{SimDuration, SimTime};

/// DCC states of the reactive approach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DccState {
    /// Channel under-loaded: minimum constraints.
    Relaxed,
    /// First active level.
    Active1,
    /// Second active level.
    Active2,
    /// Third active level.
    Active3,
    /// Channel saturated: strongest throttling.
    Restrictive,
}

impl DccState {
    /// All states, least to most restrictive.
    pub const ALL: [DccState; 5] = [
        DccState::Relaxed,
        DccState::Active1,
        DccState::Active2,
        DccState::Active3,
        DccState::Restrictive,
    ];

    /// Minimum time between a station's own transmissions in this state
    /// (`T_off` of TS 102 687 Table A.2, reactive approach).
    pub fn t_off(&self) -> SimDuration {
        match self {
            DccState::Relaxed => SimDuration::from_millis(60),
            DccState::Active1 => SimDuration::from_millis(100),
            DccState::Active2 => SimDuration::from_millis(200),
            DccState::Active3 => SimDuration::from_millis(400),
            DccState::Restrictive => SimDuration::from_millis(1000),
        }
    }

    /// CBR threshold above which the *next more restrictive* state is
    /// entered (hysteresis handled by [`DccGatekeeper`]).
    fn up_threshold(&self) -> f64 {
        match self {
            DccState::Relaxed => 0.30,
            DccState::Active1 => 0.40,
            DccState::Active2 => 0.50,
            DccState::Active3 => 0.65,
            DccState::Restrictive => f64::INFINITY,
        }
    }

    /// CBR threshold below which the *next less restrictive* state is
    /// entered.
    fn down_threshold(&self) -> f64 {
        match self {
            DccState::Relaxed => f64::NEG_INFINITY,
            DccState::Active1 => 0.20,
            DccState::Active2 => 0.30,
            DccState::Active3 => 0.40,
            DccState::Restrictive => 0.50,
        }
    }

    fn more_restrictive(&self) -> DccState {
        match self {
            DccState::Relaxed => DccState::Active1,
            DccState::Active1 => DccState::Active2,
            DccState::Active2 => DccState::Active3,
            _ => DccState::Restrictive,
        }
    }

    fn less_restrictive(&self) -> DccState {
        match self {
            DccState::Restrictive => DccState::Active3,
            DccState::Active3 => DccState::Active2,
            DccState::Active2 => DccState::Active1,
            _ => DccState::Relaxed,
        }
    }
}

/// One reactive-DCC ladder transition for a completed CBR measurement —
/// the pure step [`DccGatekeeper::update_state`] applies, exposed so
/// structure-of-arrays station state (the city-scale fleets) can run
/// the identical state machine over contiguous arrays without a
/// per-station gatekeeper object.
pub fn step_state(state: DccState, cbr: f64) -> DccState {
    if cbr > state.up_threshold() {
        state.more_restrictive()
    } else if cbr < state.down_threshold() {
        state.less_restrictive()
    } else {
        state
    }
}

/// Sliding channel-busy-ratio probe.
///
/// CBR = fraction of the probe interval the medium was sensed busy.
#[derive(Debug, Clone)]
pub struct CbrProbe {
    interval: SimDuration,
    /// Busy intervals recorded in the current probe window.
    busy_in_window: SimDuration,
    window_start: SimTime,
    /// Last completed measurement.
    last_cbr: f64,
}

impl CbrProbe {
    /// Creates a probe with the standard 100 ms interval.
    pub fn new() -> Self {
        Self::with_interval(SimDuration::from_millis(100))
    }

    /// Creates a probe with a custom interval.
    pub fn with_interval(interval: SimDuration) -> Self {
        Self {
            interval,
            busy_in_window: SimDuration::ZERO,
            window_start: SimTime::ZERO,
            last_cbr: 0.0,
        }
    }

    /// Records that the medium was busy for `duration` (e.g. one frame's
    /// airtime) at `now`. Rolls the window if the probe interval has
    /// elapsed.
    pub fn record_busy(&mut self, now: SimTime, duration: SimDuration) {
        self.roll(now);
        self.busy_in_window += duration;
    }

    /// Completes any elapsed probe windows and returns the latest CBR.
    pub fn cbr(&mut self, now: SimTime) -> f64 {
        self.roll(now);
        self.last_cbr
    }

    fn roll(&mut self, now: SimTime) {
        while now.saturating_duration_since(self.window_start) >= self.interval {
            let busy = self.busy_in_window.as_secs_f64();
            self.last_cbr = (busy / self.interval.as_secs_f64()).min(1.0);
            self.busy_in_window = SimDuration::ZERO;
            self.window_start += self.interval;
        }
    }
}

impl Default for CbrProbe {
    fn default() -> Self {
        Self::new()
    }
}

/// The DCC gatekeeper of one station.
///
/// # Example
///
/// ```
/// use phy80211p::dcc::{DccGatekeeper, DccState};
/// use sim_core::SimTime;
///
/// let mut dcc = DccGatekeeper::new();
/// assert_eq!(dcc.state(), DccState::Relaxed);
/// // First packet may go immediately; the next is gated by T_off.
/// assert!(dcc.may_transmit(SimTime::ZERO));
/// dcc.on_transmitted(SimTime::ZERO);
/// assert!(!dcc.may_transmit(SimTime::from_millis(30)));
/// assert!(dcc.may_transmit(SimTime::from_millis(60)));
/// ```
#[derive(Debug, Clone)]
pub struct DccGatekeeper {
    state: DccState,
    probe: CbrProbe,
    last_tx: Option<SimTime>,
    /// High-priority (AC_VO / DP0) traffic bypasses the gate — DENMs
    /// must not be delayed by congestion control.
    exempt_voice: bool,
}

impl DccGatekeeper {
    /// Creates a gatekeeper in `Relaxed` with DENM (AC_VO) exemption on.
    pub fn new() -> Self {
        Self {
            state: DccState::Relaxed,
            probe: CbrProbe::new(),
            last_tx: None,
            exempt_voice: true,
        }
    }

    /// Disables the AC_VO exemption (strict gatekeeping for all traffic).
    pub fn without_voice_exemption(mut self) -> Self {
        self.exempt_voice = false;
        self
    }

    /// Current DCC state.
    pub fn state(&self) -> DccState {
        self.state
    }

    /// Feeds a busy-medium observation (a frame heard or sent on the
    /// channel).
    pub fn observe_busy(&mut self, now: SimTime, airtime: SimDuration) {
        self.probe.record_busy(now, airtime);
    }

    /// Advances the state machine from the latest CBR measurement.
    /// Returns the (possibly new) state.
    pub fn update_state(&mut self, now: SimTime) -> DccState {
        let cbr = self.probe.cbr(now);
        self.state = step_state(self.state, cbr);
        self.state
    }

    /// Whether a (non-exempt) packet may be handed to the MAC at `now`.
    pub fn may_transmit(&self, now: SimTime) -> bool {
        match self.last_tx {
            None => true,
            Some(last) => now.saturating_duration_since(last) >= self.state.t_off(),
        }
    }

    /// Gate decision for a packet of the given access category: exempt
    /// AC_VO passes immediately (when the exemption is enabled).
    pub fn gate(&self, now: SimTime, ac: AccessCategory) -> bool {
        if self.exempt_voice && ac == AccessCategory::Voice {
            return true;
        }
        self.may_transmit(now)
    }

    /// The earliest instant a non-exempt packet may be transmitted.
    pub fn next_tx_opportunity(&self, now: SimTime) -> SimTime {
        match self.last_tx {
            None => now,
            Some(last) => (last + self.state.t_off()).max(now),
        }
    }

    /// Records that a packet was transmitted at `now`.
    pub fn on_transmitted(&mut self, now: SimTime) {
        self.last_tx = Some(now);
    }
}

impl Default for DccGatekeeper {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_off_ladder_monotone() {
        let mut prev = SimDuration::ZERO;
        for s in DccState::ALL {
            assert!(s.t_off() > prev, "{s:?}");
            prev = s.t_off();
        }
        assert_eq!(DccState::Relaxed.t_off().as_millis(), 60);
        assert_eq!(DccState::Restrictive.t_off().as_millis(), 1000);
    }

    #[test]
    fn cbr_probe_measures_fraction() {
        let mut probe = CbrProbe::new();
        // 30 ms busy within the first 100 ms window.
        probe.record_busy(SimTime::from_millis(10), SimDuration::from_millis(10));
        probe.record_busy(SimTime::from_millis(50), SimDuration::from_millis(20));
        // Window completes at 100 ms.
        let cbr = probe.cbr(SimTime::from_millis(120));
        assert!((cbr - 0.30).abs() < 1e-9, "cbr {cbr}");
        // A quiet second window resets to zero.
        let cbr = probe.cbr(SimTime::from_millis(230));
        assert_eq!(cbr, 0.0);
    }

    #[test]
    fn cbr_saturates_at_one() {
        let mut probe = CbrProbe::new();
        probe.record_busy(SimTime::from_millis(10), SimDuration::from_millis(500));
        assert_eq!(probe.cbr(SimTime::from_millis(150)), 1.0);
    }

    #[test]
    fn state_walks_up_under_load_and_back_down() {
        let mut dcc = DccGatekeeper::new();
        // Load the channel ~45% for several windows.
        let mut t = SimTime::ZERO;
        for _ in 0..5 {
            for k in 0..9 {
                dcc.observe_busy(
                    t + SimDuration::from_millis(k * 10),
                    SimDuration::from_millis(5),
                );
            }
            t += SimDuration::from_millis(100);
            dcc.update_state(t);
        }
        // 45% CBR crosses Relaxed (0.30) and Active1 (0.40) thresholds
        // but not Active2's (0.50).
        assert_eq!(dcc.state(), DccState::Active2);
        // Quiet channel: walk back down.
        for _ in 0..5 {
            t += SimDuration::from_millis(100);
            dcc.update_state(t);
        }
        assert_eq!(dcc.state(), DccState::Relaxed);
    }

    #[test]
    fn hysteresis_holds_state_in_the_dead_band() {
        let mut dcc = DccGatekeeper::new();
        // Drive to Active1.
        let mut t = SimTime::ZERO;
        for k in 0..7 {
            dcc.observe_busy(
                t + SimDuration::from_millis(k * 10),
                SimDuration::from_millis(5),
            );
        }
        t += SimDuration::from_millis(100);
        dcc.update_state(t);
        assert_eq!(dcc.state(), DccState::Active1);
        // 25% CBR: below Active1's up (0.40), above its down (0.20):
        // state holds.
        for _ in 0..3 {
            for k in 0..5 {
                dcc.observe_busy(
                    t + SimDuration::from_millis(k * 10),
                    SimDuration::from_millis(5),
                );
            }
            t += SimDuration::from_millis(100);
            dcc.update_state(t);
            assert_eq!(dcc.state(), DccState::Active1);
        }
    }

    #[test]
    fn step_state_matches_gatekeeper_transitions() {
        // The pure ladder step and the gatekeeper must agree on every
        // (state, cbr) combination — the arena path depends on it.
        for state in DccState::ALL {
            for cbr10 in 0..=10u64 {
                let cbr = cbr10 as f64 / 10.0;
                let busy = SimDuration::from_secs_f64(0.1 * cbr);
                let mut dcc = DccGatekeeper::new();
                dcc.state = state;
                // Feed one full window of busy time, then update. Compare
                // against `step_state` applied to the CBR an identical
                // probe measures, so duration round-trip rounding at the
                // threshold values cannot skew the comparison.
                let mut probe = CbrProbe::new();
                probe.record_busy(SimTime::ZERO, busy);
                let measured = probe.cbr(SimTime::from_millis(100));
                dcc.observe_busy(SimTime::ZERO, busy);
                let via_gatekeeper = dcc.update_state(SimTime::from_millis(100));
                assert_eq!(
                    via_gatekeeper,
                    step_state(state, measured),
                    "state {state:?} cbr {cbr}"
                );
            }
        }
    }

    #[test]
    fn gate_enforces_t_off() {
        let mut dcc = DccGatekeeper::new();
        dcc.on_transmitted(SimTime::from_millis(100));
        assert!(!dcc.gate(SimTime::from_millis(130), AccessCategory::Video));
        assert!(dcc.gate(SimTime::from_millis(160), AccessCategory::Video));
        assert_eq!(
            dcc.next_tx_opportunity(SimTime::from_millis(130))
                .as_millis(),
            160
        );
    }

    #[test]
    fn voice_exemption_bypasses_gate() {
        let mut dcc = DccGatekeeper::new();
        dcc.on_transmitted(SimTime::from_millis(100));
        // DENM (AC_VO) passes right away; CAM (AC_VI) waits.
        assert!(dcc.gate(SimTime::from_millis(101), AccessCategory::Voice));
        assert!(!dcc.gate(SimTime::from_millis(101), AccessCategory::Video));
        // Strict mode gates everyone.
        let strict = DccGatekeeper::new().without_voice_exemption();
        let mut strict = strict;
        strict.on_transmitted(SimTime::from_millis(100));
        assert!(!strict.gate(SimTime::from_millis(101), AccessCategory::Voice));
    }

    #[test]
    fn restrictive_throttles_to_1hz() {
        let mut dcc = DccGatekeeper::new();
        // Saturate for many windows.
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            dcc.observe_busy(t, SimDuration::from_millis(90));
            t += SimDuration::from_millis(100);
            dcc.update_state(t);
        }
        assert_eq!(dcc.state(), DccState::Restrictive);
        dcc.on_transmitted(t);
        assert!(!dcc.may_transmit(t + SimDuration::from_millis(999)));
        assert!(dcc.may_transmit(t + SimDuration::from_millis(1000)));
    }
}
