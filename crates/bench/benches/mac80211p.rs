//! Access-layer microbenchmarks: OFDM airtime, EDCA channel access and
//! the channel's SNR→FER link model — the ingredients of Table II's
//! 1.6 ms RSU→OBU hop.

use criterion::{criterion_group, criterion_main, Criterion};
use phy80211p::channel::{Channel, ChannelConfig, Position2D};
use phy80211p::edca::{AccessCategory, EdcaMac, EdcaParams, Medium};
use phy80211p::ofdm::{airtime, DataRate};
use sim_core::{SimRng, SimTime};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Print the per-rate airtime of a DENM-sized frame — the series
    // behind the radio-hop number.
    println!("\nairtime of a 110-byte DENM frame per ITS-G5 data rate:");
    for rate in DataRate::ALL {
        println!("  {:>10}  {}", rate.to_string(), airtime(110, rate));
    }
    println!("\nEDCA AIFS per access category (10 MHz timing):");
    for ac in AccessCategory::ALL {
        let p = EdcaParams::for_category(ac);
        println!(
            "  {ac:?}: AIFSN {} CWmin {} -> AIFS {}",
            p.aifsn,
            p.cw_min,
            p.aifs()
        );
    }

    // DCC under load: the station-count sweep of the congestion
    // experiment (its_testbed::congestion).
    println!("\nCAM beaconing with reactive DCC (20 s simulated):");
    print!(
        "{}",
        its_testbed::congestion::sweep_station_count(
            &its_testbed::Runner::from_env(),
            &its_testbed::congestion::CongestionConfig::default(),
            &[2, 10, 40, 120],
        )
    );

    c.bench_function("mac/airtime", |b| {
        b.iter(|| black_box(airtime(black_box(110), DataRate::Mbps6)))
    });

    let mac = EdcaMac::new();
    let mut busy = Medium::new();
    busy.occupy(SimTime::from_micros(500));
    c.bench_function("mac/edca_access_busy_medium", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| {
            black_box(mac.access_time(
                SimTime::ZERO,
                AccessCategory::Voice,
                black_box(&busy),
                &mut rng,
            ))
        })
    });

    let channel = Channel::new(ChannelConfig::default());
    c.bench_function("channel/transmit_with_fading", |b| {
        let mut rng = SimRng::seed_from(2);
        b.iter(|| {
            black_box(channel.transmit(
                SimTime::ZERO,
                Position2D::new(0.0, 1.0),
                Position2D::new(black_box(2.0), 0.0),
                110,
                DataRate::Mbps6,
                &mut rng,
            ))
        })
    });

    c.bench_function("channel/frame_error_rate", |b| {
        b.iter(|| black_box(channel.frame_error_rate(black_box(8.0), 110, DataRate::Mbps6)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
