//! Extension experiment (paper §V): detection-to-action delay for a
//! whole platoon, with a platoon-size sweep under both delivery
//! arrangements.

use criterion::{criterion_group, criterion_main, Criterion};
use its_testbed::platoon::{run_platoon, PlatoonConfig, PlatoonLink};
use phy80211p::cellular::CellularProfile;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\nplatoon detection-to-action delay (worst vehicle), ms:");
    println!("  size   direct GBC   5G relay   LTE relay   min gap (direct)");
    for n in [2usize, 3, 4, 6, 8] {
        let direct = run_platoon(&PlatoonConfig {
            seed: 50,
            n_vehicles: n,
            ..PlatoonConfig::default()
        });
        let relay5g = run_platoon(&PlatoonConfig {
            seed: 50,
            n_vehicles: n,
            link: PlatoonLink::LeaderCellularRelay(CellularProfile::nsa_5g()),
            ..PlatoonConfig::default()
        });
        let relay_lte = run_platoon(&PlatoonConfig {
            seed: 50,
            n_vehicles: n,
            link: PlatoonLink::LeaderCellularRelay(CellularProfile::lte_uu()),
            ..PlatoonConfig::default()
        });
        println!(
            "  {n:>4}   {:>10.1}   {:>8.1}   {:>9.1}   {:>7.2} m",
            direct.platoon_action_ms,
            relay5g.platoon_action_ms,
            relay_lte.platoon_action_ms,
            direct.min_gap_m
        );
    }

    let mut group = c.benchmark_group("ext_platoon");
    group.sample_size(20);
    group.bench_function("run_platoon_4_direct", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_platoon(&PlatoonConfig {
                seed,
                ..PlatoonConfig::default()
            }))
        })
    });
    group.bench_function("run_platoon_8_relay", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_platoon(&PlatoonConfig {
                seed,
                n_vehicles: 8,
                link: PlatoonLink::LeaderCellularRelay(CellularProfile::nsa_5g()),
                ..PlatoonConfig::default()
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
