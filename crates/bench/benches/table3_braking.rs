//! Regenerates **Table III** (distance travelled from detection to halt)
//! and benchmarks the braking-dominated portion of a run, plus the
//! full-size extrapolation model of §IV-B's outlook.

use bench::{base_config, campaign_runner, stat_line};
use criterion::{criterion_group, criterion_main, Criterion};
use its_testbed::experiments::{paper, table3};
use its_testbed::metrics::mean;
use its_testbed::scaling::{extrapolate_braking_distance, BrakingProfile};
use std::hint::black_box;
use vehicle::dynamics::{LongitudinalModel, VehicleParams};

fn bench(c: &mut Criterion) {
    let runner = campaign_runner();
    println!("\ncampaign runner: {} worker thread(s)", runner.threads());
    // The paper's table: 7 runs.
    let t = table3(&runner, &base_config(), 7);
    println!("\n{}", t.render());
    println!(
        "paper reference: {:?} (avg {:.2} m, variance 0.0022)",
        paper::BRAKING,
        mean(&paper::BRAKING)
    );

    let big = table3(&runner, &base_config(), 100);
    println!("\n100-run campaign:");
    println!("  {}", stat_line("braking distance (m)", &big.braking_m));

    // §IV-B outlook: map the measured scale distance to full size.
    let scale = BrakingProfile::scale_power_cut();
    let service = BrakingProfile::full_size_service_brake();
    let emergency = BrakingProfile::full_size_emergency_brake();
    println!(
        "\nfull-size extrapolation of the measured mean ({:.2} m @ 1.5 m/s):",
        t.mean()
    );
    for (label, profile, v_kmh) in [
        ("service brake @ 50 km/h", &service, 50.0),
        ("service brake @ 100 km/h", &service, 100.0),
        ("AEB @ 50 km/h", &emergency, 50.0),
        ("AEB @ 100 km/h", &emergency, 100.0),
    ] {
        let d = extrapolate_braking_distance(t.mean(), &scale, 1.5, profile, v_kmh / 3.6);
        println!("  {label}: {d:.1} m");
    }

    let mut group = c.benchmark_group("table3");
    group.bench_function("coast_down_integration", |b| {
        b.iter(|| {
            let mut car = LongitudinalModel::new(VehicleParams::default());
            car.set_speed(black_box(1.5));
            black_box(car.coast_down_distance())
        })
    });
    group.bench_function("full_size_stopping_distance", |b| {
        b.iter(|| black_box(service.stopping_distance(black_box(27.8))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
