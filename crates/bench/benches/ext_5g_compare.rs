//! Extension experiment (paper §V): "installing a 5G module in the
//! robotic vehicles, to compare the same detection-to-action delay over
//! a different interface and network".
//!
//! Runs the identical collision-avoidance scenario with the DENM carried
//! over 802.11p and over three cellular profiles, comparing Table II's
//! intervals per interface.

use bench::{base_config, campaign_runner};
use criterion::{criterion_group, criterion_main, Criterion};
use its_testbed::metrics::mean;
use its_testbed::scenario::{DenmLink, Scenario, ScenarioConfig};
use phy80211p::cellular::CellularProfile;
use runner::Runner;
use std::hint::black_box;

fn campaign(runner: &Runner, link: DenmLink, runs: usize) -> (Vec<f64>, Vec<f64>) {
    let records = runner.run(runs, |i| {
        Scenario::new(ScenarioConfig {
            seed: 3000 + i as u64,
            denm_link: link,
            ..base_config()
        })
        .run()
    });
    let mut hop = Vec::new();
    let mut total = Vec::new();
    for r in &records {
        if let (Some(h), Some(t)) = (r.interval_3_4_ms(), r.total_delay_ms()) {
            hop.push(h as f64);
            total.push(t as f64);
        }
    }
    (hop, total)
}

fn bench(c: &mut Criterion) {
    let runner = campaign_runner();
    println!("\ndetection-to-action per access technology (30 runs each):");
    println!("  interface       RSU->OBU hop (ms)   total delay (ms)   <100ms");
    let cases = [
        ("802.11p", DenmLink::Its80211p),
        ("5G URLLC", DenmLink::Cellular(CellularProfile::urllc_5g())),
        ("5G NSA", DenmLink::Cellular(CellularProfile::nsa_5g())),
        ("LTE Uu", DenmLink::Cellular(CellularProfile::lte_uu())),
    ];
    for (name, link) in cases {
        let (hop, total) = campaign(&runner, link, 30);
        let all_under = total.iter().all(|&t| t < 100.0);
        println!(
            "  {name:<12}   {:>17.1}   {:>16.1}   {all_under}",
            mean(&hop),
            mean(&total)
        );
    }

    let mut group = c.benchmark_group("ext_5g");
    group.sample_size(20);
    group.bench_function("scenario_over_nsa_5g", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(
                Scenario::new(ScenarioConfig {
                    seed,
                    denm_link: DenmLink::Cellular(CellularProfile::nsa_5g()),
                    ..base_config()
                })
                .run(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
