//! Regenerates **Figure 11** (empirical distribution function of the
//! total delay samples) and, per the paper's future work, fits candidate
//! distributions to a larger campaign.

use bench::{base_config, campaign_runner};
use criterion::{criterion_group, criterion_main, Criterion};
use its_testbed::experiments::fig11;
use its_testbed::metrics::{
    bootstrap_ci, fit_normal, fit_shifted_exponential, ks_statistic, mean, Edf,
};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let runner = campaign_runner();
    // The paper's figure: 5 samples.
    let f = fig11(&runner, &base_config(), 5);
    println!("\n{}", f.render());

    // §V future work: "more measurements to produce a more comprehensive
    // CDF … and possibly model it with an appropriate distribution".
    let big = fig11(&runner, &base_config(), 150);
    let normal = fit_normal(&big.edf);
    let sexp = fit_shifted_exponential(&big.edf);
    println!("150-run CDF:");
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
        println!(
            "  p{:<4} {:>6.1} ms",
            (q * 100.0) as u32,
            big.edf.quantile(q)
        );
    }
    println!(
        "  normal fit mu={:.1} sigma={:.1} (KS {:.3})",
        normal.mean,
        normal.std_dev,
        ks_statistic(&big.edf, |x| normal.cdf(x))
    );
    println!(
        "  shifted-exp fit shift={:.1} scale={:.1} (KS {:.3})",
        sexp.shift,
        sexp.scale,
        ks_statistic(&big.edf, |x| sexp.cdf(x))
    );
    // Error bars the paper's five runs cannot provide: bootstrap CI on
    // the mean from both sample sizes.
    let ci5 = bootstrap_ci(&f.edf, mean, 0.95, 4000, 11);
    let ci150 = bootstrap_ci(&big.edf, mean, 0.95, 4000, 11);
    println!(
        "  mean total delay 95% CI: n=5 [{:.1}, {:.1}] ms | n=150 [{:.1}, {:.1}] ms",
        ci5.low, ci5.high, ci150.low, ci150.high
    );

    let samples = big.edf.samples().to_vec();
    c.bench_function("fig11/edf_build_and_quantiles", |b| {
        b.iter(|| {
            let edf = Edf::from_samples(black_box(samples.clone()));
            black_box((edf.quantile(0.5), edf.quantile(0.95), edf.mean()))
        })
    });
    c.bench_function("fig11/ks_statistic", |b| {
        b.iter(|| black_box(ks_statistic(&big.edf, |x| normal.cdf(x))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
