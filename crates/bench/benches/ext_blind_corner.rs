//! Ablation of the motivating claim (paper §I): at a blind corner,
//! "ad hoc communication performs poorly due to shadowing.
//! Infrastructure can alleviate this problem." Sweeps the corner
//! obstruction and compares direct V2V delivery against the two-leg
//! infrastructure path.

use criterion::{criterion_group, criterion_main, Criterion};
use phy80211p::channel::{Channel, ChannelConfig, Obstacle, Position2D};
use phy80211p::ofdm::DataRate;
use sim_core::{SimRng, SimTime};
use std::hint::black_box;

fn delivery_ratio(
    channel: &Channel,
    tx: Position2D,
    rx: Position2D,
    n: u32,
    rng: &mut SimRng,
) -> f64 {
    let ok = (0..n)
        .filter(|_| {
            channel
                .transmit(SimTime::ZERO, tx, rx, 110, DataRate::Mbps6, rng)
                .delivered
        })
        .count();
    ok as f64 / f64::from(n)
}

fn corner_channel(loss_db: f64) -> Channel {
    let mut cfg = ChannelConfig::default();
    cfg.obstacles.push(Obstacle {
        min: Position2D::new(2.0, 2.0),
        max: Position2D::new(30.0, 30.0),
        extra_loss_db: loss_db,
    });
    Channel::new(cfg)
}

fn bench(c: &mut Criterion) {
    let a = Position2D::new(40.0, -3.0);
    let b = Position2D::new(-3.0, 40.0);
    let rsu = Position2D::new(-3.0, -3.0);

    println!("\nblind-corner delivery ratio (110-byte DENM, 6 Mbit/s):");
    println!("  corner loss   V2V direct   infra (A->RSU->B)");
    let mut crossover = None;
    for loss in [0.0, 10.0, 15.0, 20.0, 25.0, 30.0, 40.0] {
        let ch = corner_channel(loss);
        let mut rng = SimRng::seed_from(9);
        let v2v = delivery_ratio(&ch, a, b, 3000, &mut rng);
        let infra = delivery_ratio(&ch, a, rsu, 3000, &mut rng)
            * delivery_ratio(&ch, rsu, b, 3000, &mut rng);
        if crossover.is_none() && infra > v2v + 0.05 {
            crossover = Some(loss);
        }
        println!("  {loss:>9.0} dB   {v2v:>10.3}   {infra:>17.3}");
    }
    println!(
        "  infrastructure decisively wins from ~{} dB of corner loss",
        crossover
            .map(|l| l.to_string())
            .unwrap_or_else(|| "n/a".into())
    );

    // The full two-vehicle intersection scenario, with and without the
    // infrastructure (its_testbed::intersection).
    use its_testbed::intersection::{IntersectionConfig, IntersectionScenario};
    let mut saved = 0;
    let mut baseline_collisions = 0;
    for seed in 0..20 {
        let with = IntersectionScenario::new(IntersectionConfig {
            seed,
            ..IntersectionConfig::default()
        })
        .run();
        let without = IntersectionScenario::new(IntersectionConfig {
            seed,
            with_infrastructure: false,
            ..IntersectionConfig::default()
        })
        .run();
        if without.collision {
            baseline_collisions += 1;
            if !with.collision {
                saved += 1;
            }
        }
    }
    println!(
        "\ntwo-vehicle intersection (20 timing-aligned seeds): {baseline_collisions} collisions \
         without infrastructure, {saved} prevented with it"
    );

    let ch = corner_channel(25.0);
    c.bench_function("blind_corner/transmit_nlos", |b2| {
        let mut rng = SimRng::seed_from(10);
        b2.iter(|| {
            black_box(ch.transmit(
                SimTime::ZERO,
                black_box(a),
                black_box(b),
                110,
                DataRate::Mbps6,
                &mut rng,
            ))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
