//! Ablation benches for the design choices DESIGN.md calls out: prints
//! the parameter-sweep tables and measures the sweep machinery.

use bench::{base_config, campaign_runner};
use criterion::{criterion_group, criterion_main, Criterion};
use its_testbed::ablation::{sweep_action_point, sweep_camera_fps, sweep_poll_period};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let runner = campaign_runner();
    println!("\ncampaign runner: {} worker thread(s)", runner.threads());
    println!("\n== polling period ablation ==");
    println!(
        "{}",
        sweep_poll_period(&runner, &base_config(), &[10, 50, 200], 10).render()
    );
    println!("== camera FPS ablation ==");
    println!(
        "{}",
        sweep_camera_fps(&runner, &base_config(), &[2.0, 4.0, 8.0], 10).render()
    );
    println!("== action point ablation ==");
    println!(
        "{}",
        sweep_action_point(&runner, &base_config(), &[1.0, 1.52, 2.2], 10).render()
    );

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("poll_period_sweep_3x4", |b| {
        b.iter(|| {
            black_box(sweep_poll_period(
                &runner,
                &base_config(),
                &[10, 50, 200],
                4,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
