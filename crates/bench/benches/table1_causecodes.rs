//! Regenerates **Table I** (available cause codes) and benchmarks the
//! cause-code encode/decode path every DENM takes.

use criterion::{criterion_group, criterion_main, Criterion};
use its_messages::cause_codes::{CauseCode, TABLE_I_ROWS};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", its_testbed::experiments::table1());

    c.bench_function("table1/causecode_roundtrip_all_rows", |b| {
        b.iter(|| {
            for &(cause, sub, _) in TABLE_I_ROWS {
                let cc = CauseCode::from_codes(black_box(cause), black_box(sub));
                let bytes = uper::encode(&cc).unwrap();
                let back: CauseCode = uper::decode(&bytes).unwrap();
                black_box(back);
            }
        })
    });

    c.bench_function("table1/requires_emergency_brake_lookup", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for cause in 0u8..=255 {
                for sub in [0u8, 1, 2] {
                    if CauseCode::from_codes(cause, sub).requires_emergency_brake() {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
