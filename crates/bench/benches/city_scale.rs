//! City-scale node-count benchmark: runs the `city_grid` scenario at
//! N = 100 / 500 / 2000 stations, measures wall-clock time, channel
//! evaluations per second, and a heap-allocation proxy per run, and
//! writes `BENCH_city.json` at the repository root so the numbers are
//! tracked in git.
//!
//! Two properties are asserted (and re-checked against the tracked
//! baseline by `tracked_bench_city_baseline_is_valid`):
//!
//! * **flat per-event cost** — the spatial grid keeps each broadcast's
//!   neighbourhood constant under constant density, so the wall-clock
//!   cost per channel evaluation at N=2000 stays within 4× of N=100;
//! * **culling pays** — at N=100 the culled run is at least 5× faster
//!   than the exhaustive O(N²) reference, which must nonetheless
//!   produce the bit-identical record.
//!
//! Set `BENCH_QUICK=1` for a seconds-long smoke run (small node counts,
//! short horizon) that exercises the JSON schema but not the bars.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bench::{
    city_json, city_json_path, validate_city_baseline, validate_city_json, CityBenchRow,
    CityMeasurement, CITY_BASELINE_NODE_COUNTS, CITY_MAX_NS_PER_EVENT_RATIO,
    CITY_MIN_CULLED_SPEEDUP,
};
use its_testbed::city::{run_city, CityConfig, CityRecord};
use sim_core::SimDuration;

/// Counts every heap allocation the process makes — the
/// allocations-proxy reported in `BENCH_city.json`.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn timed_run(config: &CityConfig) -> (CityRecord, f64, u64) {
    let allocs_before = ALLOC_CALLS.load(Ordering::Relaxed);
    let (record, secs) = criterion::time_once(|| run_city(config));
    let allocs = ALLOC_CALLS.load(Ordering::Relaxed) - allocs_before;
    (record, secs, allocs)
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let (counts, duration): (Vec<usize>, SimDuration) = if quick {
        (vec![40, 80, 160], SimDuration::from_secs(1))
    } else {
        (
            CITY_BASELINE_NODE_COUNTS.to_vec(),
            SimDuration::from_secs(10),
        )
    };
    let base = CityConfig {
        duration,
        ..CityConfig::default()
    };

    let mut rows = Vec::new();
    for &nodes in &counts {
        let config = CityConfig {
            n_stations: nodes,
            ..base.clone()
        };
        // Warm-up pass absorbs one-time costs (page faults, lazy init),
        // then the timed pass.
        let _ = run_city(&config);
        let (record, secs, allocs) = timed_run(&config);
        rows.push(CityBenchRow {
            nodes,
            seconds: secs,
            events: record.events,
            events_per_sec: record.events as f64 / secs,
            ns_per_event: secs * 1e9 / record.events.max(1) as f64,
            allocs_per_run: allocs as f64,
            cam_delivery_ratio: record.cam_delivery_ratio,
            mean_cbr: record.mean_cbr,
            denm_latency_ms: record.mean_denm_latency_ms,
        });
    }

    // Culling differential at the smallest count: the exhaustive O(N²)
    // reference must produce the bit-identical record, only slower.
    let smallest = counts.first().copied().unwrap_or(100);
    let culled_config = CityConfig {
        n_stations: smallest,
        ..base.clone()
    };
    let exhaustive_config = CityConfig {
        exhaustive: true,
        ..culled_config.clone()
    };
    let _ = run_city(&culled_config);
    let (culled_record, culled_secs, _) = timed_run(&culled_config);
    let _ = run_city(&exhaustive_config);
    let (exhaustive_record, exhaustive_secs, _) = timed_run(&exhaustive_config);
    assert_eq!(
        culled_record,
        CityRecord {
            events: culled_record.events,
            ..exhaustive_record.clone()
        },
        "culled and exhaustive city runs diverged"
    );
    let culled_speedup = exhaustive_secs / culled_secs.max(1e-12);

    let m = CityMeasurement {
        rows,
        culled_speedup,
    };
    let json = city_json(&m);
    let verdict = if quick {
        validate_city_json(&json)
    } else {
        validate_city_baseline(&json)
    };
    if let Err(e) = verdict {
        eprintln!("city_scale: generated JSON failed validation: {e}");
        eprintln!("{json}");
        std::process::exit(1);
    }
    let path = city_json_path();
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("city_scale: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }

    println!("city_scale{}", if quick { " (quick)" } else { "" });
    for row in &m.rows {
        println!(
            "  N={:<5} {:>8.3} s  {:>12.0} events/s  {:>8.2} ns/event  {:>10.0} allocs/run  CBR {:.4}",
            row.nodes, row.seconds, row.events_per_sec, row.ns_per_event, row.allocs_per_run,
            row.mean_cbr
        );
    }
    println!(
        "  culled vs exhaustive at N={smallest}: {culled_speedup:.2}× faster ({:.0} vs {:.0} evaluations)",
        culled_record.events as f64, exhaustive_record.events as f64
    );
    if !quick {
        let first = m.rows.first().map(|r| r.ns_per_event).unwrap_or(0.0);
        let last = m.rows.last().map(|r| r.ns_per_event).unwrap_or(0.0);
        println!(
            "  per-event cost N={} vs N={}: {:.2}× (limit {CITY_MAX_NS_PER_EVENT_RATIO}×); speedup bar {CITY_MIN_CULLED_SPEEDUP}×",
            CITY_BASELINE_NODE_COUNTS[0],
            CITY_BASELINE_NODE_COUNTS[CITY_BASELINE_NODE_COUNTS.len() - 1],
            last / first.max(1e-12)
        );
    }
    println!("  wrote {}", path.display());
}
