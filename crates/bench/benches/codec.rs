//! Codec throughput: UPER encode/decode of CAMs and DENMs and full
//! GeoNetworking packet assembly — the per-message cost inside the
//! paper's step-2→3 and step-3→4 intervals.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use geonet::btp::BtpPort;
use geonet::headers::TrafficClass;
use geonet::{GeoArea, GnAddress, GnPacket, LongPositionVector};
use its_messages::cam::Cam;
use its_messages::cause_codes::{CauseCode, CollisionRiskSubCause};
use its_messages::common::{
    ActionId, Heading, ReferencePosition, Speed, StationId, StationType, TimestampIts,
};
use its_messages::denm::{Denm, ManagementContainer, SituationContainer};
use std::hint::black_box;

fn sample_denm() -> Denm {
    let rsu = StationId::new(15).unwrap();
    Denm::new(
        rsu,
        ManagementContainer::new(
            ActionId::new(rsu, 1),
            TimestampIts::new(1_000).unwrap(),
            TimestampIts::new(1_005).unwrap(),
            ReferencePosition::from_degrees(41.178, -8.608),
            StationType::RoadSideUnit,
        ),
    )
    .with_situation(
        SituationContainer::new(
            7,
            CauseCode::CollisionRisk(CollisionRiskSubCause::CrossingCollisionRisk),
        )
        .unwrap(),
    )
}

fn sample_cam() -> Cam {
    Cam::basic(
        StationId::new(7).unwrap(),
        4321,
        StationType::PassengerCar,
        ReferencePosition::from_degrees(41.178, -8.608),
    )
    .with_dynamics(Heading::from_degrees(270.0), Speed::from_mps(1.5))
}

fn bench(c: &mut Criterion) {
    let denm = sample_denm();
    let denm_bytes = denm.to_bytes().unwrap();
    let cam = sample_cam();
    let cam_bytes = cam.to_bytes().unwrap();
    println!(
        "\nwire sizes: DENM {} bytes, CAM {} bytes",
        denm_bytes.len(),
        cam_bytes.len()
    );

    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(denm_bytes.len() as u64));
    group.bench_function("denm_encode", |b| {
        b.iter(|| black_box(denm.to_bytes().unwrap()))
    });
    group.bench_function("denm_decode", |b| {
        b.iter(|| black_box(Denm::from_bytes(black_box(&denm_bytes)).unwrap()))
    });
    group.throughput(Throughput::Bytes(cam_bytes.len() as u64));
    group.bench_function("cam_encode", |b| {
        b.iter(|| black_box(cam.to_bytes().unwrap()))
    });
    group.bench_function("cam_decode", |b| {
        b.iter(|| black_box(Cam::from_bytes(black_box(&cam_bytes)).unwrap()))
    });
    group.finish();

    let source = LongPositionVector::new(GnAddress::new(15), 1_005, 41.178, -8.608, 0.0, 0.0);
    let area = GeoArea::circle(41.178, -8.608, 100.0);
    let packet = GnPacket::geo_broadcast(
        source,
        1,
        area,
        TrafficClass::dp0(),
        BtpPort::DENM,
        denm_bytes.clone(),
    );
    let wire = packet.to_bytes();
    println!("full GN frame: {} bytes", wire.len());

    let mut group = c.benchmark_group("geonet");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("gbc_packet_assemble", |b| {
        b.iter(|| {
            let p = GnPacket::geo_broadcast(
                black_box(source),
                1,
                black_box(area),
                TrafficClass::dp0(),
                BtpPort::DENM,
                denm_bytes.clone(),
            );
            black_box(p.to_bytes())
        })
    });
    group.bench_function("gbc_packet_parse", |b| {
        b.iter(|| black_box(GnPacket::from_bytes(black_box(&wire)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
