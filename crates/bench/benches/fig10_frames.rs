//! Regenerates **Figure 10** (video frames to obtain the detection-to-
//! stop period) and benchmarks the camera/detector pipeline stage.

use bench::base_config;
use criterion::{criterion_group, criterion_main, Criterion};
use its_testbed::experiments::fig10;
use its_testbed::scenario::ScenarioConfig;
use perception::camera::{GroundTruthTarget, RoadSideCamera, TargetAppearance};
use perception::detector::YoloModel;
use sim_core::{SimRng, SimTime};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fig10(&base_config());
    println!("\n{}", f.render());

    // Sensitivity to the processing frame rate: the quantisation error
    // shrinks with FPS.
    println!("frame-rate sensitivity (same run, re-measured):");
    for fps in [2.0, 4.0, 8.0, 15.0] {
        let cfg = ScenarioConfig {
            camera: RoadSideCamera {
                processed_fps: fps,
                ..RoadSideCamera::default()
            },
            ..base_config()
        };
        let f = fig10(&cfg);
        println!(
            "  {fps:>4.0} FPS: true {:.3} s, frame-measured {:.3} s (err {:+.3} s)",
            f.true_detection_to_stop_s,
            f.frame_measured_s,
            f.frame_measured_s - f.true_detection_to_stop_s
        );
    }

    let camera = RoadSideCamera::default();
    let yolo = YoloModel::default();
    c.bench_function("fig10/frame_detection_pass", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| {
            let target = GroundTruthTarget {
                id: 1,
                distance_m: black_box(1.45),
                bearing_deg: 0.0,
                appearance: TargetAppearance::WithStopSign,
            };
            if camera.sees(&target) {
                black_box(yolo.process_frame(SimTime::ZERO, &[target], &mut rng))
            } else {
                Vec::new()
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
