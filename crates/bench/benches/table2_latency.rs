//! Regenerates **Table II** (time interval measurements) — the paper's
//! central result — and benchmarks a full end-to-end scenario run.
//!
//! The printed table has the paper's exact row structure (five runs plus
//! averages); a 200-run campaign adds the statistics and checks the
//! §IV-C headline claim (consistently under 100 ms).

use bench::{base_config, campaign_runner, stat_line};
use criterion::{criterion_group, criterion_main, Criterion};
use its_testbed::experiments::{paper, table2};
use its_testbed::metrics::mean;
use its_testbed::scenario::{Scenario, ScenarioConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let runner = campaign_runner();
    println!("\ncampaign runner: {} worker thread(s)", runner.threads());
    // The paper's table: 5 runs.
    let t = table2(&runner, &base_config(), 5);
    println!("\n{}", t.render());
    println!(
        "paper reference: #2->#3 avg {:.1} | #3->#4 avg {:.1} | #4->#5 avg {:.1} | total avg {:.1} ms",
        mean(&paper::INTERVAL_2_3),
        mean(&paper::INTERVAL_3_4),
        mean(&paper::INTERVAL_4_5),
        mean(&paper::TOTAL)
    );

    // Larger campaign for the headline claim.
    let big = table2(&runner, &base_config(), 200);
    println!("\n200-run campaign:");
    println!("  {}", stat_line("#2->#3 (ms)", &big.interval_2_3));
    println!("  {}", stat_line("#3->#4 (ms)", &big.interval_3_4));
    println!("  {}", stat_line("#4->#5 (ms)", &big.interval_4_5));
    println!("  {}", stat_line("total  (ms)", &big.total));
    let max = big.total.iter().copied().fold(0.0f64, f64::max);
    println!("  headline claim (all < 100 ms): {}", max < 100.0);

    let mut group = c.benchmark_group("table2");
    group.sample_size(20);
    group.bench_function("full_scenario_run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let record = Scenario::new(ScenarioConfig {
                seed,
                ..base_config()
            })
            .run();
            black_box(record.total_delay_ms())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
