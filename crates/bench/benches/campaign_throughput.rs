//! Campaign-throughput baseline: times a Table II + Table III campaign
//! (256 runs per table by default) at 1 worker thread and at the
//! env/machine-picked worker count, then writes `BENCH_campaign.json`
//! at the repository root so the numbers are tracked in git.
//!
//! Reported per side: wall-clock seconds, completed runs/sec, ns per
//! dispatched simulation event (Table II sub-campaign), and a heap
//! allocation proxy from a counting global allocator. Aggregate
//! fingerprints (Table II mean total delay, Table III mean braking
//! distance) ride along so any model or seed-schedule drift is visible
//! next to the perf numbers.
//!
//! Set `BENCH_QUICK=1` to run 32 runs per table (the `scripts/check.sh`
//! smoke mode) — quick numbers are noisier but the JSON shape is
//! identical.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bench::{
    base_config, campaign_json, campaign_json_path, validate_campaign_json, CampaignMeasurement,
    CampaignSide,
};
use its_testbed::experiments::{table2, table3};
use runner::Runner;

/// Counts every heap allocation the process makes — the
/// allocations-proxy reported in `BENCH_campaign.json`. Forwarding to
/// [`System`] keeps behaviour identical; the two relaxed counters are
/// the only addition.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

struct SideResult {
    side: CampaignSide,
    events_total: u64,
    table2_total_avg_ms: f64,
    table3_braking_avg_m: f64,
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

fn measure_side(runner: &Runner, runs: usize) -> SideResult {
    let allocs_before = ALLOC_CALLS.load(Ordering::Relaxed);
    let bytes_before = ALLOC_BYTES.load(Ordering::Relaxed);
    let base = base_config();
    let (t2, t2_secs) = criterion::time_once(|| table2(runner, &base, runs));
    let (t3, t3_secs) = criterion::time_once(|| table3(runner, &base, runs));
    let allocs = ALLOC_CALLS.load(Ordering::Relaxed) - allocs_before;
    let bytes = ALLOC_BYTES.load(Ordering::Relaxed) - bytes_before;

    let events_total: u64 = t2.records.iter().map(|r| r.events_dispatched).sum();
    let total_runs = (2 * runs) as f64;
    let seconds = t2_secs + t3_secs;
    SideResult {
        side: CampaignSide {
            threads: runner.threads(),
            seconds,
            runs_per_sec: total_runs / seconds,
            ns_per_event: t2_secs * 1e9 / events_total.max(1) as f64,
            allocs_per_run: allocs as f64 / total_runs,
            alloc_bytes_per_run: bytes as f64 / total_runs,
        },
        events_total,
        table2_total_avg_ms: mean(&t2.total),
        table3_braking_avg_m: mean(&t3.braking_m),
    }
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let runs = if quick { 32 } else { 256 };

    let serial = measure_side(&Runner::new(1), runs);
    let parallel = measure_side(&bench::campaign_runner(), runs);

    // The two sides must have computed the same campaign — the runner
    // contract — before their timings are comparable.
    assert_eq!(
        serial.table2_total_avg_ms.to_bits(),
        parallel.table2_total_avg_ms.to_bits(),
        "serial and parallel Table II aggregates diverged"
    );
    assert_eq!(
        serial.table3_braking_avg_m.to_bits(),
        parallel.table3_braking_avg_m.to_bits(),
        "serial and parallel Table III aggregates diverged"
    );
    assert_eq!(serial.events_total, parallel.events_total);

    let m = CampaignMeasurement {
        runs,
        events_per_run: serial.events_total as f64 / runs as f64,
        serial: serial.side,
        parallel: parallel.side,
        table2_total_avg_ms: serial.table2_total_avg_ms,
        table3_braking_avg_m: serial.table3_braking_avg_m,
    };

    let json = campaign_json(&m);
    if let Err(e) = validate_campaign_json(&json) {
        eprintln!("campaign_throughput: generated JSON failed validation: {e}");
        std::process::exit(1);
    }
    let path = campaign_json_path();
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("campaign_throughput: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }

    println!(
        "campaign_throughput ({runs} runs/table{})",
        if quick { ", quick" } else { "" }
    );
    println!(
        "  serial   ({} thread):  {:>8.2} runs/s  {:>8.1} ns/event  {:>10.1} allocs/run",
        m.serial.threads, m.serial.runs_per_sec, m.serial.ns_per_event, m.serial.allocs_per_run
    );
    println!(
        "  parallel ({} threads): {:>8.2} runs/s  {:>8.1} ns/event  {:>10.1} allocs/run",
        m.parallel.threads,
        m.parallel.runs_per_sec,
        m.parallel.ns_per_event,
        m.parallel.allocs_per_run
    );
    println!(
        "  fingerprints: table2 total avg {:.4} ms, table3 braking avg {:.6} m, {:.1} events/run",
        m.table2_total_avg_ms, m.table3_braking_avg_m, m.events_per_run
    );
    println!("  wrote {}", path.display());
}
