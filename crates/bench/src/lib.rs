//! Shared helpers for the benchmark harness.
//!
//! Every bench regenerates one table or figure of the paper: it first
//! prints the artefact (so `cargo bench` output contains the same rows
//! the paper reports) and then measures the underlying computation with
//! Criterion.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

use its_testbed::scenario::ScenarioConfig;
use runner::Runner;

/// The base configuration used by every table/figure bench, seeded so
/// that all benches report from the same simulated campaign.
pub fn base_config() -> ScenarioConfig {
    ScenarioConfig {
        seed: 20230627,
        ..ScenarioConfig::default()
    }
}

/// The campaign runner every bench executes its Monte-Carlo loops on:
/// worker count from `RUNNER_THREADS` or the machine. Thread count
/// never changes the reported numbers (see DESIGN.md §8), only how fast
/// they arrive.
pub fn campaign_runner() -> Runner {
    Runner::from_env()
}

/// One timed side (serial or parallel) of the campaign-throughput bench.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignSide {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds for the whole (Table II + Table III) campaign.
    pub seconds: f64,
    /// Completed scenario runs per second of wall-clock time.
    pub runs_per_sec: f64,
    /// Wall-clock nanoseconds per dispatched simulation event (measured
    /// over the Table II sub-campaign, whose records carry event counts).
    pub ns_per_event: f64,
    /// Heap allocations per scenario run (counting-allocator proxy).
    pub allocs_per_run: f64,
    /// Heap bytes requested per scenario run (counting-allocator proxy).
    pub alloc_bytes_per_run: f64,
}

/// The full campaign-throughput measurement written to
/// `BENCH_campaign.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignMeasurement {
    /// Runs per table (the campaign executes `2 × runs` scenarios).
    pub runs: usize,
    /// Mean events dispatched per Table II run (workload fingerprint).
    pub events_per_run: f64,
    /// Serial (1-thread) measurement.
    pub serial: CampaignSide,
    /// Parallel (N-thread) measurement.
    pub parallel: CampaignSide,
    /// Table II mean total delay, ms — an aggregate fingerprint so any
    /// seed-schedule or model drift is visible next to the perf numbers.
    pub table2_total_avg_ms: f64,
    /// Table III mean braking distance, m (same purpose).
    pub table3_braking_avg_m: f64,
}

fn side_json(side: &CampaignSide) -> String {
    format!(
        "{{\n    \"threads\": {},\n    \"seconds\": {:.6},\n    \"runs_per_sec\": {:.3},\n    \"ns_per_event\": {:.1},\n    \"allocs_per_run\": {:.1},\n    \"alloc_bytes_per_run\": {:.1}\n  }}",
        side.threads,
        side.seconds,
        side.runs_per_sec,
        side.ns_per_event,
        side.allocs_per_run,
        side.alloc_bytes_per_run
    )
}

/// Renders the measurement as the `BENCH_campaign.json` document.
pub fn campaign_json(m: &CampaignMeasurement) -> String {
    format!(
        "{{\n  \"bench\": \"campaign_throughput\",\n  \"runs_per_table\": {},\n  \"events_per_run\": {:.1},\n  \"serial\": {},\n  \"parallel\": {},\n  \"table2_total_avg_ms\": {:.4},\n  \"table3_braking_avg_m\": {:.6}\n}}\n",
        m.runs,
        m.events_per_run,
        side_json(&m.serial),
        side_json(&m.parallel),
        m.table2_total_avg_ms,
        m.table3_braking_avg_m
    )
}

/// Path of the tracked benchmark baseline at the repository root.
pub fn campaign_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_campaign.json")
}

/// Keys every valid `BENCH_campaign.json` must carry (with finite,
/// non-negative numeric values).
pub const CAMPAIGN_JSON_REQUIRED_KEYS: [&str; 8] = [
    "runs_per_table",
    "events_per_run",
    "threads",
    "seconds",
    "runs_per_sec",
    "ns_per_event",
    "allocs_per_run",
    "alloc_bytes_per_run",
];

/// Extracts every `"key": <number>` pair from a (flat or nested) JSON
/// document — a dependency-free scanner sufficient for validating the
/// bench artefacts this crate writes. Duplicate keys appear once per
/// occurrence, in document order.
pub fn json_number_fields(src: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let Some(end) = src[i + 1..].find('"').map(|e| i + 1 + e) else {
            break;
        };
        let key = &src[i + 1..end];
        let mut j = end + 1;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j < bytes.len() && bytes[j] == b':' {
            j += 1;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            let num_start = j;
            while j < bytes.len()
                && (bytes[j].is_ascii_digit()
                    || matches!(bytes[j], b'-' | b'+' | b'.' | b'e' | b'E'))
            {
                j += 1;
            }
            if let Ok(v) = src[num_start..j].parse::<f64>() {
                out.push((key.to_owned(), v));
            }
        }
        i = j.max(end + 1);
    }
    out
}

/// Validates a `BENCH_campaign.json` document: non-empty, and every
/// required key present with a finite, non-negative value.
///
/// # Errors
///
/// Returns a description of the first problem found.
pub fn validate_campaign_json(src: &str) -> Result<(), String> {
    let trimmed = src.trim();
    if trimmed.is_empty() {
        return Err("document is empty".to_owned());
    }
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        return Err("document is not a JSON object (truncated?)".to_owned());
    }
    let opens = trimmed.matches('{').count();
    let closes = trimmed.matches('}').count();
    if opens != closes {
        return Err(format!("unbalanced braces ({opens} open, {closes} close)"));
    }
    let fields = json_number_fields(src);
    for key in CAMPAIGN_JSON_REQUIRED_KEYS {
        let hits: Vec<f64> = fields
            .iter()
            .filter(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .collect();
        if hits.is_empty() {
            return Err(format!("missing numeric field {key:?}"));
        }
        for v in hits {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("field {key:?} has invalid value {v}"));
            }
        }
    }
    Ok(())
}

/// One node-count row of the city-scale benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CityBenchRow {
    /// Stations simulated.
    pub nodes: usize,
    /// Wall-clock seconds for the (culled) run.
    pub seconds: f64,
    /// Per-receiver channel evaluations the run performed.
    pub events: u64,
    /// Channel evaluations per second of wall-clock time.
    pub events_per_sec: f64,
    /// Wall-clock nanoseconds per channel evaluation.
    pub ns_per_event: f64,
    /// Heap allocations for the run (counting-allocator proxy).
    pub allocs_per_run: f64,
    /// In-cutoff CAM delivery ratio (model fingerprint).
    pub cam_delivery_ratio: f64,
    /// Mean channel busy ratio (model fingerprint).
    pub mean_cbr: f64,
    /// Mean DENM reception latency, ms (model fingerprint).
    pub denm_latency_ms: f64,
}

/// The full city-scale measurement written to `BENCH_city.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct CityMeasurement {
    /// One row per node count, in sweep order.
    pub rows: Vec<CityBenchRow>,
    /// Wall-clock speedup of the culled channel over the exhaustive
    /// O(N²) reference at the smallest node count.
    pub culled_speedup: f64,
}

fn city_row_json(row: &CityBenchRow) -> String {
    format!(
        "  {{\n    \"nodes\": {},\n    \"seconds\": {:.6},\n    \"events\": {},\n    \"events_per_sec\": {:.1},\n    \"ns_per_event\": {:.2},\n    \"allocs_per_run\": {:.1},\n    \"cam_delivery_ratio\": {:.6},\n    \"mean_cbr\": {:.6},\n    \"denm_latency_ms\": {:.4}\n  }}",
        row.nodes,
        row.seconds,
        row.events,
        row.events_per_sec,
        row.ns_per_event,
        row.allocs_per_run,
        row.cam_delivery_ratio,
        row.mean_cbr,
        row.denm_latency_ms
    )
}

/// Renders the measurement as the `BENCH_city.json` document.
pub fn city_json(m: &CityMeasurement) -> String {
    let rows: Vec<String> = m.rows.iter().map(city_row_json).collect();
    format!(
        "{{\n  \"bench\": \"city_scale\",\n  \"rows\": [\n{}\n  ],\n  \"culled_speedup\": {:.3}\n}}\n",
        rows.join(",\n"),
        m.culled_speedup
    )
}

/// Path of the tracked city benchmark baseline at the repository root.
pub fn city_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_city.json")
}

/// Keys every valid `BENCH_city.json` must carry (with finite,
/// non-negative numeric values).
pub const CITY_JSON_REQUIRED_KEYS: [&str; 10] = [
    "nodes",
    "seconds",
    "events",
    "events_per_sec",
    "ns_per_event",
    "allocs_per_run",
    "cam_delivery_ratio",
    "mean_cbr",
    "denm_latency_ms",
    "culled_speedup",
];

/// Node counts the *tracked* baseline must cover, in order.
pub const CITY_BASELINE_NODE_COUNTS: [usize; 3] = [100, 500, 2000];

/// Largest tolerated per-event cost growth between the largest and the
/// smallest tracked node count: the spatial grid makes per-event cost
/// nearly flat, so N=2000 must cost at most 4× N=100 per event.
pub const CITY_MAX_NS_PER_EVENT_RATIO: f64 = 4.0;

/// Minimum tracked speedup of culled over exhaustive at N=100.
pub const CITY_MIN_CULLED_SPEEDUP: f64 = 5.0;

/// Validates the *schema* of a `BENCH_city.json` document: non-empty,
/// brace-balanced, every required key present with finite non-negative
/// values. Quick (`BENCH_QUICK=1`) runs produce documents that pass
/// this but not necessarily [`validate_city_baseline`].
///
/// # Errors
///
/// Returns a description of the first problem found.
pub fn validate_city_json(src: &str) -> Result<(), String> {
    let trimmed = src.trim();
    if trimmed.is_empty() {
        return Err("document is empty".to_owned());
    }
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        return Err("document is not a JSON object (truncated?)".to_owned());
    }
    let opens = trimmed.matches('{').count();
    let closes = trimmed.matches('}').count();
    if opens != closes {
        return Err(format!("unbalanced braces ({opens} open, {closes} close)"));
    }
    let fields = json_number_fields(src);
    for key in CITY_JSON_REQUIRED_KEYS {
        let hits: Vec<f64> = fields
            .iter()
            .filter(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .collect();
        if hits.is_empty() {
            return Err(format!("missing numeric field {key:?}"));
        }
        for v in hits {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("field {key:?} has invalid value {v}"));
            }
        }
    }
    Ok(())
}

/// Validates the tracked `BENCH_city.json` baseline: the schema checks
/// of [`validate_city_json`] plus the acceptance bars — the exact
/// [`CITY_BASELINE_NODE_COUNTS`] rows, per-event cost at the largest
/// count within [`CITY_MAX_NS_PER_EVENT_RATIO`]× the smallest, and a
/// culled-over-exhaustive speedup of at least
/// [`CITY_MIN_CULLED_SPEEDUP`]×.
///
/// # Errors
///
/// Returns a description of the first problem found.
pub fn validate_city_baseline(src: &str) -> Result<(), String> {
    validate_city_json(src)?;
    let fields = json_number_fields(src);
    let nodes: Vec<f64> = fields
        .iter()
        .filter(|(k, _)| k == "nodes")
        .map(|&(_, v)| v)
        .collect();
    let expected: Vec<f64> = CITY_BASELINE_NODE_COUNTS
        .iter()
        .map(|&n| n as f64)
        .collect();
    if nodes != expected {
        return Err(format!(
            "baseline node counts {nodes:?}, expected {expected:?}"
        ));
    }
    let ns_per_event: Vec<f64> = fields
        .iter()
        .filter(|(k, _)| k == "ns_per_event")
        .map(|&(_, v)| v)
        .collect();
    match (ns_per_event.first(), ns_per_event.last()) {
        (Some(&smallest), Some(&largest)) if smallest > 0.0 => {
            let ratio = largest / smallest;
            if ratio > CITY_MAX_NS_PER_EVENT_RATIO {
                return Err(format!(
                    "per-event cost grew {ratio:.2}× from N={} to N={} (limit {CITY_MAX_NS_PER_EVENT_RATIO}×)",
                    CITY_BASELINE_NODE_COUNTS[0],
                    CITY_BASELINE_NODE_COUNTS[CITY_BASELINE_NODE_COUNTS.len() - 1]
                ));
            }
        }
        _ => return Err("baseline has no usable ns_per_event rows".to_owned()),
    }
    let speedup = fields
        .iter()
        .find(|(k, _)| k == "culled_speedup")
        .map(|&(_, v)| v)
        .unwrap_or(0.0);
    if speedup < CITY_MIN_CULLED_SPEEDUP {
        return Err(format!(
            "culled speedup {speedup:.2}× below the {CITY_MIN_CULLED_SPEEDUP}× bar"
        ));
    }
    Ok(())
}

/// Formats a mean/sd/min/max line for the bench reports.
pub fn stat_line(name: &str, xs: &[f64]) -> String {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    format!(
        "{name}: mean {mean:.2}, sd {:.2}, min {:.2}, max {:.2} (n={})",
        var.sqrt(),
        xs.iter().copied().fold(f64::INFINITY, f64::min),
        xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        xs.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_config_is_paper_shaped() {
        let c = base_config();
        assert_eq!(c.action_point_m, 1.52);
    }

    #[test]
    fn stat_line_formats() {
        let s = stat_line("x", &[1.0, 2.0, 3.0]);
        assert!(s.contains("mean 2.00"));
        assert!(s.contains("n=3"));
    }

    fn sample_measurement() -> CampaignMeasurement {
        let side = |threads: usize, secs: f64| CampaignSide {
            threads,
            seconds: secs,
            runs_per_sec: 512.0 / secs,
            ns_per_event: 420.0,
            allocs_per_run: 12_000.0,
            alloc_bytes_per_run: 850_000.0,
        };
        CampaignMeasurement {
            runs: 256,
            events_per_run: 9_000.0,
            serial: side(1, 40.0),
            parallel: side(8, 7.5),
            table2_total_avg_ms: 58.4,
            table3_braking_avg_m: 0.36,
        }
    }

    #[test]
    fn campaign_json_round_trips_through_validator() {
        let json = campaign_json(&sample_measurement());
        assert!(validate_campaign_json(&json).is_ok(), "{json}");
        // Both sides are present: "threads" appears once per side.
        let threads: Vec<f64> = json_number_fields(&json)
            .into_iter()
            .filter(|(k, _)| k == "threads")
            .map(|(_, v)| v)
            .collect();
        assert_eq!(threads, vec![1.0, 8.0]);
    }

    #[test]
    fn validator_rejects_empty_and_truncated_documents() {
        assert!(validate_campaign_json("").is_err());
        assert!(validate_campaign_json("   \n").is_err());
        assert!(validate_campaign_json("{}").is_err());
        let json = campaign_json(&sample_measurement());
        let truncated = &json[..json.len() / 2];
        assert!(validate_campaign_json(truncated).is_err());
    }

    #[test]
    fn json_number_scanner_handles_nesting_and_exponents() {
        let fields =
            json_number_fields("{\"a\": 1.5, \"nested\": {\"b\": -2e-3}, \"s\": \"no\", \"c\": 7}");
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0], ("a".to_owned(), 1.5));
        assert_eq!(fields[1].0, "b");
        assert!((fields[1].1 - -0.002).abs() < 1e-12);
        assert_eq!(fields[2], ("c".to_owned(), 7.0));
    }

    fn sample_city_measurement() -> CityMeasurement {
        let row = |nodes: usize, ns: f64| CityBenchRow {
            nodes,
            seconds: 0.5,
            events: 100_000,
            events_per_sec: 200_000.0,
            ns_per_event: ns,
            allocs_per_run: 5_000.0,
            cam_delivery_ratio: 0.08,
            mean_cbr: 0.02,
            denm_latency_ms: 0.4,
        };
        CityMeasurement {
            rows: vec![row(100, 120.0), row(500, 130.0), row(2000, 150.0)],
            culled_speedup: 9.0,
        }
    }

    #[test]
    fn city_json_round_trips_through_both_validators() {
        let json = city_json(&sample_city_measurement());
        assert!(validate_city_json(&json).is_ok(), "{json}");
        assert!(validate_city_baseline(&json).is_ok(), "{json}");
        let nodes: Vec<f64> = json_number_fields(&json)
            .into_iter()
            .filter(|(k, _)| k == "nodes")
            .map(|(_, v)| v)
            .collect();
        assert_eq!(nodes, vec![100.0, 500.0, 2000.0]);
    }

    #[test]
    fn city_baseline_validator_enforces_the_acceptance_bars() {
        // Wrong node counts.
        let mut m = sample_city_measurement();
        m.rows[1].nodes = 400;
        assert!(validate_city_baseline(&city_json(&m)).is_err());
        // Per-event cost blowing up with N.
        let mut m = sample_city_measurement();
        m.rows[2].ns_per_event = 1000.0;
        let err = validate_city_baseline(&city_json(&m)).unwrap_err();
        assert!(err.contains("per-event cost"), "{err}");
        // Speedup under the bar.
        let mut m = sample_city_measurement();
        m.culled_speedup = 3.0;
        let err = validate_city_baseline(&city_json(&m)).unwrap_err();
        assert!(err.contains("speedup"), "{err}");
        // Schema-only validation still accepts all three: quick runs
        // are allowed to miss the bars, not the shape.
        let mut m = sample_city_measurement();
        m.rows[0].nodes = 10;
        m.culled_speedup = 1.0;
        assert!(validate_city_json(&city_json(&m)).is_ok());
    }

    /// The tracked city baseline must carry the N=100/500/2000 rows and
    /// meet the flat-per-event-cost and culling-speedup bars —
    /// `scripts/check.sh` runs this as part of the bench smoke step.
    #[test]
    fn tracked_bench_city_baseline_is_valid() {
        let path = city_json_path();
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing baseline {}: {e}", path.display()));
        validate_city_baseline(&src)
            .unwrap_or_else(|e| panic!("invalid baseline {}: {e}", path.display()));
    }

    /// The tracked baseline at the repository root must stay parseable
    /// and non-empty — `scripts/check.sh` runs this as part of the bench
    /// smoke step.
    #[test]
    fn tracked_bench_campaign_baseline_is_valid() {
        let path = campaign_json_path();
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing baseline {}: {e}", path.display()));
        validate_campaign_json(&src)
            .unwrap_or_else(|e| panic!("invalid baseline {}: {e}", path.display()));
    }
}
