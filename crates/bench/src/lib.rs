//! Shared helpers for the benchmark harness.
//!
//! Every bench regenerates one table or figure of the paper: it first
//! prints the artefact (so `cargo bench` output contains the same rows
//! the paper reports) and then measures the underlying computation with
//! Criterion.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

use its_testbed::scenario::ScenarioConfig;
use runner::Runner;

/// The base configuration used by every table/figure bench, seeded so
/// that all benches report from the same simulated campaign.
pub fn base_config() -> ScenarioConfig {
    ScenarioConfig {
        seed: 20230627,
        ..ScenarioConfig::default()
    }
}

/// The campaign runner every bench executes its Monte-Carlo loops on:
/// worker count from `RUNNER_THREADS` or the machine. Thread count
/// never changes the reported numbers (see DESIGN.md §8), only how fast
/// they arrive.
pub fn campaign_runner() -> Runner {
    Runner::from_env()
}

/// Formats a mean/sd/min/max line for the bench reports.
pub fn stat_line(name: &str, xs: &[f64]) -> String {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    format!(
        "{name}: mean {mean:.2}, sd {:.2}, min {:.2}, max {:.2} (n={})",
        var.sqrt(),
        xs.iter().copied().fold(f64::INFINITY, f64::min),
        xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        xs.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_config_is_paper_shaped() {
        let c = base_config();
        assert_eq!(c.action_point_m, 1.52);
    }

    #[test]
    fn stat_line_formats() {
        let s = stat_line("x", &[1.0, 2.0, 3.0]);
        assert!(s.contains("mean 2.00"));
        assert!(s.contains("n=3"));
    }
}
