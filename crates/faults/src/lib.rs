//! Deterministic fault-injection plane for the testbed.
//!
//! A [`FaultPlan`] is plain data inside `ScenarioConfig`: a list of
//! typed faults, each active during a `[from, until)` window of
//! simulated time. The scenario threads one [`FaultInjector`] through
//! its event handlers; every stochastic decision the injector makes is
//! drawn from a dedicated fork of the scenario RNG, so fault campaigns
//! stay bitwise reproducible at any thread or worker count.
//!
//! Two invariants matter more than the fault classes themselves:
//!
//! * **Empty plan ⇒ strict no-op.** When the plan has no faults, no
//!   injector method ever touches its RNG or changes control flow, so a
//!   faultless run is byte-identical to a run built before this crate
//!   existed (the tracked campaign fingerprints pin this).
//! * **Faults corrupt inputs, not code paths.** Bit corruption hands
//!   back mutated frame bytes that the real UPER + GeoNetworking
//!   decoders must then reject (or survive); nothing is short-circuited
//!   around the production parsers.
//!
//! # Example
//!
//! ```
//! use faults::{FaultInjector, FaultKind, FaultPlan, FaultWindow};
//! use sim_core::{SimRng, SimTime};
//!
//! let plan = FaultPlan::new(vec![FaultKind::CameraFrameDrop { prob: 1.0 }
//!     .during(FaultWindow::new(SimTime::from_secs(1), SimTime::from_secs(2)))]);
//! let mut inj = FaultInjector::new(plan, SimRng::seed_from(7).fork("faults"));
//! assert!(!inj.drop_camera_frame(SimTime::from_millis(500))); // before window
//! assert!(inj.drop_camera_frame(SimTime::from_millis(1500))); // inside window
//! assert_eq!(inj.stats().injected, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

use sim_core::{SimDuration, SimRng, SimTime};

/// A simulated node the fault plane can target.
///
/// Mirrors the four stations of the paper's testbed: the edge server
/// running the camera + detector, the road-side unit, the on-board
/// unit, and the vehicle's ECU (Teensy + HTTP poller).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultNode {
    /// Edge server: camera frames and YOLO detections.
    Edge,
    /// Road-side unit: DENM/CAM transmission and the trigger API.
    Rsu,
    /// On-board unit: V2X reception.
    Obu,
    /// Vehicle ECU: the HTTP poll loop and actuation.
    Ecu,
    /// Platoon member `i` (0 = the leader). Targets the V2V radio of
    /// one vehicle in a string, so silencing `Platoon(0)` starves every
    /// follower's heartbeat relay downstream.
    Platoon(u8),
}

/// A half-open activation window `[from, until)` in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First instant at which the fault is active.
    pub from: SimTime,
    /// First instant at which the fault is no longer active.
    pub until: SimTime,
}

impl FaultWindow {
    /// A window covering `[from, until)`.
    pub fn new(from: SimTime, until: SimTime) -> Self {
        Self { from, until }
    }

    /// A window covering the entire run.
    pub fn always() -> Self {
        Self {
            from: SimTime::ZERO,
            until: SimTime::MAX,
        }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// One typed fault. Probabilities are per *opportunity* (frame,
/// detection, transmission, poll attempt), evaluated only while the
/// window is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The camera loses each frame with probability `prob`.
    CameraFrameDrop {
        /// Per-frame drop probability in `[0, 1]`.
        prob: f64,
    },
    /// The detector misses each true detection with probability `prob`.
    DetectorMiss {
        /// Per-detection miss probability in `[0, 1]`.
        prob: f64,
    },
    /// The detector hallucinates a phantom object on each frame with
    /// probability `prob`.
    DetectorFalsePositive {
        /// Per-frame false-positive probability in `[0, 1]`.
        prob: f64,
    },
    /// The radio medium silently loses each frame (any transmitter)
    /// with probability `prob`; `1.0` is total radio silence.
    RadioSilence {
        /// Per-frame loss probability in `[0, 1]`.
        prob: f64,
    },
    /// `node`'s transmitter is stuck: every frame it sends during the
    /// window is lost (deterministic, no RNG draw).
    StuckTransmitter {
        /// The transmitter that is stuck.
        node: FaultNode,
    },
    /// Each byte of each transmitted frame has one random bit flipped
    /// with probability `per_byte_prob`. Corrupted frames are handed to
    /// the real UPER/GeoNetworking decoders, which must reject (or
    /// survive) them.
    BitCorruption {
        /// Per-byte flip probability in `[0, 1]`.
        per_byte_prob: f64,
    },
    /// Each HTTP poll attempt stalls (times out) with probability
    /// `prob`; the poller's bounded retry/backoff schedule decides what
    /// happens next.
    HttpStall {
        /// Per-attempt stall probability in `[0, 1]`.
        prob: f64,
    },
    /// `node` is crashed for the whole window and reboots when it ends;
    /// every event the node would have handled is suppressed.
    NodeCrash {
        /// The node that is down.
        node: FaultNode,
    },
    /// `node`'s wall clock drifts an extra `drift_ms_per_s` milliseconds
    /// per simulated second while the window is active, skewing its
    /// timestamp measurements.
    ClockDrift {
        /// The node whose clock drifts.
        node: FaultNode,
        /// Additional drift rate, milliseconds per second.
        drift_ms_per_s: f64,
    },
}

impl FaultKind {
    /// Pairs the kind with an activation window.
    pub fn during(self, window: FaultWindow) -> FaultSpec {
        FaultSpec { kind: self, window }
    }
}

/// One scheduled fault: a kind plus its activation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// What goes wrong.
    pub kind: FaultKind,
    /// When it goes wrong.
    pub window: FaultWindow,
}

/// The full fault schedule for one scenario run.
///
/// The default plan is empty, which the injector treats as a strict
/// no-op (no RNG draws, no control-flow changes).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Scheduled faults, evaluated in order.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan with the given faults.
    pub fn new(faults: Vec<FaultSpec>) -> Self {
        Self { faults }
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Derives a pseudo-random plan from a seeded RNG: up to four
    /// faults with random classes, windows inside `[0, horizon)` and
    /// intensities. Intended for determinism tests that need "an
    /// arbitrary plan" without depending on any ambient randomness.
    pub fn sample(rng: &mut SimRng, horizon: SimDuration) -> Self {
        let n = rng.below(5) as usize;
        let mut faults = Vec::with_capacity(n);
        for _ in 0..n {
            let from_ns = rng.below(horizon.as_nanos().max(1));
            let len_ns = rng.below(horizon.as_nanos().max(1));
            let window = FaultWindow::new(
                SimTime::from_nanos(from_ns),
                SimTime::from_nanos(from_ns.saturating_add(len_ns)),
            );
            let prob = rng.uniform(0.05, 1.0);
            let node = match rng.below(6) {
                0 => FaultNode::Edge,
                1 => FaultNode::Rsu,
                2 => FaultNode::Obu,
                3 => FaultNode::Ecu,
                4 => FaultNode::Platoon(0),
                _ => FaultNode::Platoon(1 + rng.below(3) as u8),
            };
            let kind = match rng.below(9) {
                0 => FaultKind::CameraFrameDrop { prob },
                1 => FaultKind::DetectorMiss { prob },
                2 => FaultKind::DetectorFalsePositive { prob },
                3 => FaultKind::RadioSilence { prob },
                4 => FaultKind::StuckTransmitter { node },
                5 => FaultKind::BitCorruption {
                    per_byte_prob: prob * 0.05,
                },
                6 => FaultKind::HttpStall { prob },
                7 => FaultKind::NodeCrash { node },
                _ => FaultKind::ClockDrift {
                    node,
                    drift_ms_per_s: rng.uniform(0.1, 20.0),
                },
            };
            faults.push(kind.during(window));
        }
        Self { faults }
    }
}

/// Fault and degradation counters for one run.
///
/// Injection-side counters are maintained by the [`FaultInjector`];
/// the watchdog/outcome fields are filled in by the scenario. The
/// struct rides along in `RunRecord` and its versioned wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Fault activations that changed behaviour (dropped frame, lost
    /// transmission, stalled poll, suppressed event, corrupted frame).
    pub injected: u64,
    /// Transmitted frames that had at least one bit flipped.
    pub frames_corrupted: u64,
    /// Corrupted frames (or payloads) the real decoders rejected.
    pub corrupted_rejected: u64,
    /// HTTP poll attempts that stalled.
    pub http_stalls: u64,
    /// HTTP polls that exhausted their whole retry budget.
    pub http_giveups: u64,
    /// Watchdog transitions into the fail-safe speed cap.
    pub watchdog_speed_caps: u64,
    /// Watchdog transitions into the controlled stop.
    pub watchdog_stops: u64,
    /// Watchdog recoveries back to nominal driving.
    pub watchdog_recoveries: u64,
    /// The run ended in a watchdog-commanded controlled stop.
    pub failsafe_stop: bool,
    /// The vehicle overran the camera position (the collision/overrun
    /// outcome: the hazard was never braked for in time).
    pub overran_camera: bool,
}

impl FaultStats {
    /// Accumulates another node's counters into this one. Scenarios with
    /// several injectors (one per platoon member) merge them into the
    /// single `FaultStats` that rides in the record; the boolean
    /// outcomes OR together.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.injected += other.injected;
        self.frames_corrupted += other.frames_corrupted;
        self.corrupted_rejected += other.corrupted_rejected;
        self.http_stalls += other.http_stalls;
        self.http_giveups += other.http_giveups;
        self.watchdog_speed_caps += other.watchdog_speed_caps;
        self.watchdog_stops += other.watchdog_stops;
        self.watchdog_recoveries += other.watchdog_recoveries;
        self.failsafe_stop |= other.failsafe_stop;
        self.overran_camera |= other.overran_camera;
    }
}

/// Cooperative-scenario outcome counters for one run.
///
/// Where [`FaultStats`] counts what the fault plane *did*, `CoopStats`
/// counts what the cooperative layer *achieved (or lost)* under it:
/// how far a degradation cascaded down a platoon string, how many
/// perceived objects reached a vehicle only through collective
/// perception, and how many stations ended in a fail-safe stop. The
/// struct rides along in `RunRecord` as the wire-v3 append.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoopStats {
    /// Followers whose watchdog left nominal driving at least once —
    /// the depth a leader-side failure cascaded down the string.
    pub cascade_depth: u64,
    /// Perceived objects that entered a vehicle's LDM via CPM while
    /// beyond its own sensor range.
    pub cpm_extended_detections: u64,
    /// Stations that ended the run in a fail-safe controlled stop.
    pub failsafe_stops: u64,
}

impl CoopStats {
    /// Accumulates another run's counters into this one (sweep
    /// aggregation).
    pub fn absorb(&mut self, other: &CoopStats) {
        self.cascade_depth += other.cascade_depth;
        self.cpm_extended_detections += other.cpm_extended_detections;
        self.failsafe_stops += other.failsafe_stops;
    }
}

/// The runtime fault plane: evaluates a [`FaultPlan`] at the
/// scenario's injection points, drawing only from its own RNG stream.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds the injector. `rng` must be a dedicated fork of the
    /// scenario root RNG (conventionally `root.fork("faults")`) so
    /// fault draws never perturb other streams.
    pub fn new(plan: FaultPlan, rng: SimRng) -> Self {
        Self {
            plan,
            rng,
            stats: FaultStats::default(),
        }
    }

    /// Whether the plan schedules nothing (the strict no-op case).
    pub fn is_noop(&self) -> bool {
        self.plan.is_empty()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Mutable counter access, for outcome fields owned by the caller
    /// (watchdog trips, give-ups, overrun).
    pub fn stats_mut(&mut self) -> &mut FaultStats {
        &mut self.stats
    }

    /// Should the camera frame completing at `now` be lost?
    pub fn drop_camera_frame(&mut self, now: SimTime) -> bool {
        let mut hit = false;
        for spec in &self.plan.faults {
            if let FaultKind::CameraFrameDrop { prob } = spec.kind {
                if spec.window.contains(now) && self.rng.bernoulli(prob) {
                    hit = true;
                }
            }
        }
        if hit {
            self.stats.injected += 1;
        }
        hit
    }

    /// Should a true detection decided at `now` be missed?
    pub fn drop_detection(&mut self, now: SimTime) -> bool {
        let mut hit = false;
        for spec in &self.plan.faults {
            if let FaultKind::DetectorMiss { prob } = spec.kind {
                if spec.window.contains(now) && self.rng.bernoulli(prob) {
                    hit = true;
                }
            }
        }
        if hit {
            self.stats.injected += 1;
        }
        hit
    }

    /// A phantom detection for the frame at `now`, if the detector
    /// hallucinates one: `(estimated_distance_m, confidence)`.
    pub fn phantom_detection(&mut self, now: SimTime) -> Option<(f64, f64)> {
        let mut phantom = None;
        for spec in &self.plan.faults {
            if let FaultKind::DetectorFalsePositive { prob } = spec.kind {
                if spec.window.contains(now) && self.rng.bernoulli(prob) {
                    let distance = self.rng.uniform(0.8, 4.0);
                    let confidence = self.rng.uniform(0.25, 0.75);
                    phantom.get_or_insert((distance, confidence));
                }
            }
        }
        if phantom.is_some() {
            self.stats.injected += 1;
        }
        phantom
    }

    /// Should a radio frame sent by `node` at `now` be lost before it
    /// reaches the channel model?
    pub fn radio_drop(&mut self, now: SimTime, node: FaultNode) -> bool {
        let mut hit = false;
        for spec in &self.plan.faults {
            match spec.kind {
                FaultKind::RadioSilence { prob } => {
                    if spec.window.contains(now) && self.rng.bernoulli(prob) {
                        hit = true;
                    }
                }
                FaultKind::StuckTransmitter { node: stuck } => {
                    if stuck == node && spec.window.contains(now) {
                        hit = true;
                    }
                }
                _ => {}
            }
        }
        if hit {
            self.stats.injected += 1;
        }
        hit
    }

    /// Applies per-byte bit corruption to a frame sent at `now`.
    ///
    /// Returns `Some(corrupted)` when at least one bit flipped (the
    /// caller must feed those bytes through the real decode path) and
    /// `None` when the frame is untouched.
    pub fn corrupt_frame(&mut self, now: SimTime, frame: &[u8]) -> Option<Vec<u8>> {
        let mut corrupted: Option<Vec<u8>> = None;
        for spec in &self.plan.faults {
            if let FaultKind::BitCorruption { per_byte_prob } = spec.kind {
                if spec.window.contains(now) {
                    let bytes = corrupted.get_or_insert_with(|| frame.to_vec());
                    let mut flipped = false;
                    for b in bytes.iter_mut() {
                        if self.rng.bernoulli(per_byte_prob) {
                            *b ^= 1 << self.rng.below(8);
                            flipped = true;
                        }
                    }
                    if !flipped {
                        corrupted = None;
                    }
                }
            }
        }
        if corrupted.is_some() {
            self.stats.injected += 1;
            self.stats.frames_corrupted += 1;
        }
        corrupted
    }

    /// Records that a corrupted frame or payload was rejected by a
    /// decoder (the intended failure path).
    pub fn note_rejected(&mut self) {
        self.stats.corrupted_rejected += 1;
    }

    /// Does the HTTP poll attempt starting at `now` stall?
    pub fn http_stall(&mut self, now: SimTime) -> bool {
        let mut hit = false;
        for spec in &self.plan.faults {
            if let FaultKind::HttpStall { prob } = spec.kind {
                if spec.window.contains(now) && self.rng.bernoulli(prob) {
                    hit = true;
                }
            }
        }
        if hit {
            self.stats.injected += 1;
            self.stats.http_stalls += 1;
        }
        hit
    }

    /// Is `node` crashed at `now`? A `true` suppresses the event the
    /// node would have handled and counts as one injection.
    pub fn node_down(&mut self, now: SimTime, node: FaultNode) -> bool {
        let mut down = false;
        for spec in &self.plan.faults {
            if let FaultKind::NodeCrash { node: crashed } = spec.kind {
                if crashed == node && spec.window.contains(now) {
                    down = true;
                }
            }
        }
        if down {
            self.stats.injected += 1;
        }
        down
    }

    /// Extra wall-clock skew (milliseconds, may be negative) of
    /// `node`'s clock at `now`, accumulated since each active drift
    /// window opened. Purely arithmetic: no RNG draw, no counter.
    pub fn clock_skew_ms(&self, now: SimTime, node: FaultNode) -> i64 {
        let mut skew = 0.0f64;
        for spec in &self.plan.faults {
            if let FaultKind::ClockDrift {
                node: drifting,
                drift_ms_per_s,
            } = spec.kind
            {
                if drifting == node && spec.window.contains(now) {
                    let elapsed = now.duration_since(spec.window.from).as_secs_f64();
                    skew += drift_ms_per_s * elapsed;
                }
            }
        }
        // Truncation is fine: sub-millisecond skew is invisible in the
        // millisecond-quantised wall timestamps anyway.
        skew as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(42).fork("faults")
    }

    #[test]
    fn window_is_half_open() {
        let w = FaultWindow::new(SimTime::from_secs(1), SimTime::from_secs(2));
        assert!(!w.contains(SimTime::from_millis(999)));
        assert!(w.contains(SimTime::from_secs(1)));
        assert!(w.contains(SimTime::from_millis(1999)));
        assert!(!w.contains(SimTime::from_secs(2)));
    }

    #[test]
    fn empty_plan_draws_nothing_and_injects_nothing() {
        let a = rng();
        let mut inj = FaultInjector::new(FaultPlan::default(), a.fork("x"));
        let t = SimTime::from_secs(1);
        assert!(!inj.drop_camera_frame(t));
        assert!(!inj.drop_detection(t));
        assert!(inj.phantom_detection(t).is_none());
        assert!(!inj.radio_drop(t, FaultNode::Rsu));
        assert!(inj.corrupt_frame(t, &[1, 2, 3]).is_none());
        assert!(!inj.http_stall(t));
        assert!(!inj.node_down(t, FaultNode::Edge));
        assert_eq!(inj.clock_skew_ms(t, FaultNode::Edge), 0);
        assert_eq!(inj.stats(), FaultStats::default());
        // The injector's RNG stream was never advanced: it still
        // produces the same next value as a fresh fork.
        let b = rng();
        assert_eq!(inj.rng.next_u64(), b.fork("x").next_u64());
    }

    #[test]
    fn faults_outside_window_are_inert() {
        let plan = FaultPlan::new(vec![FaultKind::CameraFrameDrop { prob: 1.0 }.during(
            FaultWindow::new(SimTime::from_secs(5), SimTime::from_secs(6)),
        )]);
        let mut inj = FaultInjector::new(plan, rng());
        assert!(!inj.drop_camera_frame(SimTime::from_secs(1)));
        assert!(inj.drop_camera_frame(SimTime::from_millis(5500)));
        assert!(!inj.drop_camera_frame(SimTime::from_secs(7)));
        assert_eq!(inj.stats().injected, 1);
    }

    #[test]
    fn stuck_transmitter_is_deterministic_and_per_node() {
        let plan = FaultPlan::new(vec![FaultKind::StuckTransmitter {
            node: FaultNode::Rsu,
        }
        .during(FaultWindow::always())]);
        let mut inj = FaultInjector::new(plan, rng());
        let t = SimTime::from_secs(1);
        assert!(inj.radio_drop(t, FaultNode::Rsu));
        assert!(!inj.radio_drop(t, FaultNode::Obu));
        assert_eq!(inj.stats().injected, 1);
    }

    #[test]
    fn corruption_flips_bits_and_counts_frames() {
        let plan = FaultPlan::new(vec![
            FaultKind::BitCorruption { per_byte_prob: 1.0 }.during(FaultWindow::always())
        ]);
        let mut inj = FaultInjector::new(plan, rng());
        let frame = vec![0u8; 64];
        let corrupted = inj.corrupt_frame(SimTime::ZERO, &frame).expect("corrupted");
        assert_eq!(corrupted.len(), frame.len());
        assert_ne!(corrupted, frame);
        // Exactly one bit flipped per byte at prob 1.0.
        for (a, b) in frame.iter().zip(&corrupted) {
            assert_eq!((a ^ b).count_ones(), 1);
        }
        assert_eq!(inj.stats().frames_corrupted, 1);
    }

    #[test]
    fn zero_prob_corruption_leaves_frame_untouched() {
        let plan = FaultPlan::new(vec![
            FaultKind::BitCorruption { per_byte_prob: 0.0 }.during(FaultWindow::always())
        ]);
        let mut inj = FaultInjector::new(plan, rng());
        assert!(inj.corrupt_frame(SimTime::ZERO, &[9u8; 16]).is_none());
        assert_eq!(inj.stats().frames_corrupted, 0);
    }

    #[test]
    fn node_crash_targets_one_node() {
        let plan = FaultPlan::new(vec![FaultKind::NodeCrash {
            node: FaultNode::Obu,
        }
        .during(FaultWindow::new(SimTime::ZERO, SimTime::from_secs(3)))]);
        let mut inj = FaultInjector::new(plan, rng());
        assert!(inj.node_down(SimTime::from_secs(1), FaultNode::Obu));
        assert!(!inj.node_down(SimTime::from_secs(1), FaultNode::Ecu));
        // Reboot after the window.
        assert!(!inj.node_down(SimTime::from_secs(4), FaultNode::Obu));
    }

    #[test]
    fn clock_skew_accumulates_from_window_start() {
        let plan = FaultPlan::new(vec![FaultKind::ClockDrift {
            node: FaultNode::Edge,
            drift_ms_per_s: 10.0,
        }
        .during(FaultWindow::new(
            SimTime::from_secs(2),
            SimTime::from_secs(10),
        ))]);
        let inj = FaultInjector::new(plan, rng());
        assert_eq!(inj.clock_skew_ms(SimTime::from_secs(1), FaultNode::Edge), 0);
        assert_eq!(
            inj.clock_skew_ms(SimTime::from_secs(4), FaultNode::Edge),
            20
        );
        assert_eq!(inj.clock_skew_ms(SimTime::from_secs(4), FaultNode::Rsu), 0);
    }

    #[test]
    fn platoon_members_are_distinct_targets() {
        let plan = FaultPlan::new(vec![FaultKind::StuckTransmitter {
            node: FaultNode::Platoon(0),
        }
        .during(FaultWindow::always())]);
        let mut inj = FaultInjector::new(plan, rng());
        let t = SimTime::from_secs(1);
        assert!(inj.radio_drop(t, FaultNode::Platoon(0)));
        assert!(!inj.radio_drop(t, FaultNode::Platoon(1)));
        assert!(!inj.radio_drop(t, FaultNode::Rsu));
        assert_eq!(inj.stats().injected, 1);
    }

    #[test]
    fn sampled_plans_are_seed_deterministic() {
        let mut a = SimRng::seed_from(1234).fork("plan");
        let mut b = SimRng::seed_from(1234).fork("plan");
        let horizon = SimDuration::from_secs(10);
        assert_eq!(
            FaultPlan::sample(&mut a, horizon),
            FaultPlan::sample(&mut b, horizon)
        );
    }

    #[test]
    fn injection_sequence_is_reproducible() {
        let plan = FaultPlan::new(vec![
            FaultKind::RadioSilence { prob: 0.4 }.during(FaultWindow::always()),
            FaultKind::HttpStall { prob: 0.3 }.during(FaultWindow::always()),
        ]);
        let run = || {
            let mut inj = FaultInjector::new(plan.clone(), rng());
            let mut out = Vec::new();
            for i in 0..200u64 {
                let t = SimTime::from_millis(i * 10);
                out.push(inj.radio_drop(t, FaultNode::Obu));
                out.push(inj.http_stall(t));
            }
            (out, inj.stats())
        };
        assert_eq!(run(), run());
    }
}
