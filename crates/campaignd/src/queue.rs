//! Bounded FIFO submission queue with blocking consumption.
//!
//! The campaign server executes submissions strictly in arrival order
//! on a single executor thread: HTTP handler threads enqueue with
//! [`SubmissionQueue::try_enqueue`] (refused — the server's 503 — when
//! the queue is at capacity) and the executor drains with
//! [`SubmissionQueue::next_job`]. One consumer plus FIFO order is what
//! makes concurrent submissions deterministic: result streams are
//! produced one campaign at a time, never interleaved.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// A bounded multi-producer single-consumer FIFO queue.
#[derive(Debug)]
pub struct SubmissionQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> SubmissionQueue<T> {
    /// A queue admitting at most `capacity` waiting items. Zero is
    /// legal and refuses every enqueue — the configuration the
    /// overflow tests use to force a deterministic 503.
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// A poisoned queue mutex means a producer or the consumer panicked
    /// mid-operation; the queue's state (a VecDeque and a bool) is
    /// valid under any interleaving, so recover the guard instead of
    /// propagating the panic into every other connection thread.
    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Appends `item` unless the queue is full or closed; the item
    /// comes back in the error so the caller can answer the client.
    ///
    /// # Errors
    ///
    /// Returns `item` itself when the queue is at capacity or closed.
    pub fn try_enqueue(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item in FIFO order; `None` once the queue is
    /// closed and drained.
    pub fn next_job(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = match self.ready.wait(state) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Closes the queue: pending items still drain, new enqueues are
    /// refused, and the consumer unblocks once empty.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Items currently waiting (excludes anything already dequeued).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether no items are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_is_preserved() {
        let q = SubmissionQueue::new(8);
        for i in 0..5 {
            q.try_enqueue(i).unwrap();
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.next_job()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn capacity_overflow_returns_the_item() {
        let q = SubmissionQueue::new(2);
        assert_eq!(q.try_enqueue("a"), Ok(()));
        assert_eq!(q.try_enqueue("b"), Ok(()));
        assert_eq!(q.try_enqueue("c"), Err("c"));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn zero_capacity_refuses_everything() {
        let q = SubmissionQueue::new(0);
        assert_eq!(q.try_enqueue(1), Err(1));
        assert!(q.is_empty());
    }

    #[test]
    fn close_unblocks_a_waiting_consumer() {
        let q = Arc::new(SubmissionQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.next_job());
        // Give the consumer a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
        assert_eq!(q.try_enqueue(7), Err(7), "closed queue refuses enqueues");
    }

    #[test]
    fn producers_from_many_threads_all_arrive() {
        let q = Arc::new(SubmissionQueue::new(64));
        let producers: Vec<_> = (0..8)
            .map(|i| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.try_enqueue(i).is_ok())
            })
            .collect();
        for p in producers {
            assert!(p.join().unwrap());
        }
        q.close();
        let mut drained: Vec<i32> = std::iter::from_fn(|| q.next_job()).collect();
        drained.sort_unstable();
        assert_eq!(drained, (0..8).collect::<Vec<_>>());
    }
}
