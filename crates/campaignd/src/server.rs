//! The campaign server: submissions in, result streams out.
//!
//! Reuses [`openc2x::http::HttpServer`] — the same std-net HTTP/1.1
//! server the simulated OBU polls — as the front door for campaign
//! execution as a service:
//!
//! * `GET /campaigns` — newline-separated [`CampaignRegistry`] names,
//!   in registration order.
//! * `POST /submit` — a [`CampaignSubmission`] frame
//!   ([`its_testbed::submission`]). The server answers 400 for frames
//!   that don't decode, 404 for unknown campaign names, 409 Conflict
//!   when the client's expected shape/fingerprint does not match the
//!   server's own derivation, 503 Service Unavailable when the bounded
//!   submission queue is full, and otherwise a 200 whose body is the
//!   complete `"SHRS"`…`"SHRE"` result stream
//!   ([`shard::protocol::encode_results`]) of the whole campaign.
//!
//! Handler threads only validate and enqueue; a single executor thread
//! drains the FIFO [`SubmissionQueue`] and runs each campaign through
//! [`SocketFanout`]. One campaign executes at a time, in arrival order,
//! so concurrent clients get complete, unmixed result streams that are
//! byte-identical to serial execution at any worker count.

use crate::fanout::SocketFanout;
use crate::queue::SubmissionQueue;
use its_testbed::campaign::{CampaignRegistry, CampaignSpec};
use its_testbed::submission::{decode_submission, CampaignSubmission};
use openc2x::http::{HttpServer, Response, RunningServer};
use shard::protocol::encode_results;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// One accepted submission waiting for the executor thread.
struct Job {
    campaign: String,
    grid: Vec<CampaignSpec>,
    reply: mpsc::Sender<Vec<u8>>,
}

/// Fallback counters aggregated across every executed submission.
#[derive(Debug, Default)]
struct ServerStats {
    fallback_chunks: AtomicUsize,
    timed_out_chunks: AtomicUsize,
}

/// Builder for a campaign server bound to one registry.
#[derive(Debug)]
pub struct CampaignServer {
    registry: CampaignRegistry,
    workers: Vec<SocketAddr>,
    queue_depth: usize,
    timeout: Duration,
}

impl CampaignServer {
    /// A server offering `registry`'s campaigns, initially with no
    /// socket workers (submissions execute in-process) and a queue
    /// depth of 32.
    pub fn new(registry: CampaignRegistry) -> Self {
        Self {
            registry,
            workers: Vec::new(),
            queue_depth: 32,
            timeout: Duration::from_secs(120),
        }
    }

    /// Sets the socket workers to fan chunks out to — typically
    /// [`WorkerPool::workers`](crate::pool::WorkerPool::workers) after
    /// the expected count registered.
    #[must_use]
    pub fn with_workers(mut self, workers: Vec<SocketAddr>) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the maximum number of submissions waiting behind the one
    /// being executed; an arrival beyond it is answered 503. Zero
    /// refuses every submission.
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the per-chunk worker timeout (default 120 s).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving on
    /// background threads.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn serve(self, addr: &str) -> std::io::Result<RunningCampaignServer> {
        let registry = Arc::new(self.registry);
        let queue: Arc<SubmissionQueue<Job>> = Arc::new(SubmissionQueue::new(self.queue_depth));
        let stats = Arc::new(ServerStats::default());

        let executor = {
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let workers = self.workers;
            let timeout = self.timeout;
            std::thread::spawn(move || {
                while let Some(job) = queue.next_job() {
                    let fanout = SocketFanout::new(&job.campaign, job.grid).with_timeout(timeout);
                    let flat = fanout.run_flat(&workers);
                    stats
                        .fallback_chunks
                        .fetch_add(fanout.fallback_chunks(), Ordering::Relaxed);
                    stats
                        .timed_out_chunks
                        .fetch_add(fanout.timed_out_chunks(), Ordering::Relaxed);
                    // A gone receiver just means the client hung up.
                    let _ = job.reply.send(encode_results(&flat));
                }
            })
        };

        let mut http = HttpServer::new();
        {
            let names = registry.names().collect::<Vec<_>>().join("\n");
            http.route("GET", "/campaigns", move |_| {
                Response::ok(names.clone().into_bytes())
            });
        }
        {
            let registry = Arc::clone(&registry);
            let queue = Arc::clone(&queue);
            http.route("POST", "/submit", move |req| {
                submit_route(&registry, &queue, &req.body)
            });
        }

        Ok(RunningCampaignServer {
            http: Some(http.serve(addr)?),
            queue,
            executor: Some(executor),
            stats,
        })
    }
}

/// The `POST /submit` handler body: validate, enqueue, await the
/// executor's result stream.
fn submit_route(
    registry: &CampaignRegistry,
    queue: &SubmissionQueue<Job>,
    body: &[u8],
) -> Response {
    let submission: CampaignSubmission = match decode_submission(body) {
        Ok(s) => s,
        Err(e) => return Response::bad_request(&e.to_string()),
    };
    let Some(grid) = registry.derive(&submission.campaign) else {
        return Response::not_found();
    };
    if !submission.matches(&grid) {
        return Response::with_status(
            409,
            "submission shape or fingerprint does not match the server's derivation",
        );
    }
    let (reply, result) = mpsc::channel();
    let job = Job {
        campaign: submission.campaign,
        grid,
        reply,
    };
    if queue.try_enqueue(job).is_err() {
        return Response::with_status(503, "campaign queue is full");
    }
    match result.recv() {
        Ok(bytes) => Response::ok(bytes),
        Err(_) => Response::with_status(503, "campaign server is shutting down"),
    }
}

/// Handle to a running campaign server; dropping it shuts everything
/// down (HTTP listener, queue, executor thread).
#[derive(Debug)]
pub struct RunningCampaignServer {
    http: Option<RunningServer>,
    queue: Arc<SubmissionQueue<Job>>,
    executor: Option<JoinHandle<()>>,
    stats: Arc<ServerStats>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("campaign", &self.campaign)
            .field("jobs", &self.grid.iter().map(|s| s.runs).sum::<usize>())
            .finish()
    }
}

impl RunningCampaignServer {
    /// The bound HTTP address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        // http is Some until shutdown consumes self.
        self.http
            .as_ref()
            .map(RunningServer::addr)
            .unwrap_or_else(|| {
                // Unreachable in practice; a parseable placeholder keeps
                // this path panic-free.
                SocketAddr::from(([127, 0, 0, 1], 0))
            })
    }

    /// Chunks any submission so far re-executed in-process because a
    /// worker failed — the campaign-server analogue of
    /// `ShardExecutor::fallback_chunks`, asserted by the worker-kill
    /// recovery test.
    pub fn fallback_chunks(&self) -> usize {
        self.stats.fallback_chunks.load(Ordering::Relaxed)
    }

    /// The subset of [`Self::fallback_chunks`] caused by the per-chunk
    /// worker timeout.
    pub fn timed_out_chunks(&self) -> usize {
        self.stats.timed_out_chunks.load(Ordering::Relaxed)
    }

    /// Stops accepting, drains nothing further, and joins the executor.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(http) = self.http.take() {
            http.shutdown();
        }
        self.queue.close();
        if let Some(h) = self.executor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RunningCampaignServer {
    fn drop(&mut self) {
        if self.executor.is_some() {
            self.stop_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{self, SubmitError};
    use its_testbed::campaign::{Executor, Serial};
    use its_testbed::submission::encode_submission;
    use its_testbed::{RunRecord, ScenarioConfig};
    use shard::transport::serve_connections;
    use std::net::TcpListener;

    fn demo_grid() -> Vec<CampaignSpec> {
        vec![CampaignSpec::new(
            ScenarioConfig {
                seed: 7300,
                ..ScenarioConfig::default()
            },
            4,
        )]
    }

    fn other_grid() -> Vec<CampaignSpec> {
        vec![CampaignSpec::with_seed_offset(
            ScenarioConfig {
                seed: 7300,
                ..ScenarioConfig::default()
            },
            100,
            2,
        )]
    }

    fn registry() -> CampaignRegistry {
        CampaignRegistry::new()
            .register("demo", demo_grid)
            .register("other", other_grid)
    }

    fn spawn_worker() -> SocketAddr {
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind worker");
        let addr = listener.local_addr().expect("worker addr");
        std::thread::spawn(move || serve_connections(&listener, &registry()));
        addr
    }

    fn serial_flat(grid: &[CampaignSpec]) -> Vec<RunRecord> {
        Serial.execute_grid(grid).into_iter().flatten().collect()
    }

    #[test]
    fn lists_campaigns_in_registration_order() {
        let server = CampaignServer::new(registry())
            .serve("127.0.0.1:0")
            .expect("serve");
        let names = client::list_campaigns(server.addr()).expect("list");
        assert_eq!(names, vec!["demo", "other"]);
        server.shutdown();
    }

    #[test]
    fn submission_body_is_exactly_the_result_stream() {
        let worker = spawn_worker();
        let server = CampaignServer::new(registry())
            .with_workers(vec![worker])
            .serve("127.0.0.1:0")
            .expect("serve");
        let frame = encode_submission(&CampaignSubmission::for_grid("demo", &demo_grid()));
        let resp = client::submit_raw(server.addr(), &frame).expect("post");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, encode_results(&serial_flat(&demo_grid())));
        assert_eq!(server.fallback_chunks(), 0);
        server.shutdown();
    }

    #[test]
    fn rejects_bad_frame_unknown_name_and_stale_fingerprint() {
        let server = CampaignServer::new(registry())
            .serve("127.0.0.1:0")
            .expect("serve");
        let addr = server.addr();

        let resp = client::submit_raw(addr, b"garbage").expect("post");
        assert_eq!(resp.status, 400);

        assert!(matches!(
            client::submit(addr, "nope", &demo_grid()),
            Err(SubmitError::Status(404, _))
        ));

        // Client derives "other"'s grid but names "demo": shapes and
        // fingerprints disagree with the server's derivation.
        let stale = CampaignSubmission::for_grid("demo", &other_grid());
        let resp = client::submit_raw(addr, &encode_submission(&stale)).expect("post");
        assert_eq!(resp.status, 409);
        server.shutdown();
    }

    #[test]
    fn zero_queue_depth_answers_503_and_retry_reports_it() {
        let server = CampaignServer::new(registry())
            .with_queue_depth(0)
            .serve("127.0.0.1:0")
            .expect("serve");
        let err = client::submit(server.addr(), "demo", &demo_grid()).unwrap_err();
        assert!(matches!(err, SubmitError::Status(503, _)));
        // The retry path exhausts its attempts against a permanently
        // full queue and surfaces the same 503.
        let policy = openc2x::http::RetryPolicy {
            max_attempts: 2,
            backoff_base: sim_core::SimDuration::from_millis(1),
            ..openc2x::http::RetryPolicy::default()
        };
        let err =
            client::submit_with_retry(server.addr(), "demo", &demo_grid(), &policy).unwrap_err();
        assert!(matches!(err, SubmitError::Status(503, _)));
        server.shutdown();
    }

    #[test]
    fn dead_worker_degrades_to_identical_stream() {
        let dead: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let server = CampaignServer::new(registry())
            .with_workers(vec![dead])
            .serve("127.0.0.1:0")
            .expect("serve");
        let records = client::submit(server.addr(), "demo", &demo_grid()).expect("submit");
        assert_eq!(records, serial_flat(&demo_grid()));
        assert!(server.fallback_chunks() > 0);
        server.shutdown();
    }
}
