//! Campaign-as-a-service: socket workers and an HTTP campaign server
//! over the shard protocol (DESIGN.md §14).
//!
//! Crate `shard` runs a campaign across worker *processes* it spawns
//! itself. This crate decouples the two halves: workers are long-lived
//! socket servers ([`shard::transport::serve_connections`], started
//! with the hidden `--shard-listen` flag or as in-process threads) that
//! register with a coordinator's [`WorkerPool`], and campaigns arrive
//! over HTTP as [`its_testbed::submission`] frames naming a
//! [`CampaignRegistry`](its_testbed::campaign::CampaignRegistry) entry.
//! The [`CampaignServer`] validates each submission against its own
//! derivation (404 unknown, 409 fingerprint mismatch, 503 queue
//! overflow), queues it FIFO, fans the flattened grid out to the
//! workers with the exact `runner::chunk_bounds` math every executor
//! shares, and streams back one `"SHRS"`…`"SHRE"` result stream —
//! byte-identical to [`its_testbed::campaign::Serial`] at any worker
//! count, under any concurrency, with any number of worker deaths.
//!
//! # The pieces
//!
//! * [`pool::WorkerPool`] — control port collecting `"SHRG"` worker
//!   registrations.
//! * [`queue::SubmissionQueue`] — bounded FIFO making concurrent
//!   submissions execute one at a time, in arrival order.
//! * [`fanout::SocketFanout`] — the coordinator algorithm of
//!   `shard::ShardExecutor` over `TcpTransport` links, with the same
//!   degraded-never-wrong chunk fallback.
//! * [`server::CampaignServer`] — the HTTP front door, reusing
//!   [`openc2x::http::HttpServer`].
//! * [`client`] — submit-by-name helpers, including
//!   [`client::submit_with_retry`] on the OBU poll path's
//!   [`openc2x::http::RetryPolicy`].
//!
//! # Example
//!
//! ```no_run
//! use campaignd::{CampaignServer, WorkerPool};
//! use its_testbed::campaign::{CampaignRegistry, CampaignSpec};
//! use its_testbed::ScenarioConfig;
//! use std::time::Duration;
//!
//! fn demo_grid() -> Vec<CampaignSpec> {
//!     vec![CampaignSpec::new(ScenarioConfig::default(), 16)]
//! }
//!
//! fn main() -> std::io::Result<()> {
//!     let registry = CampaignRegistry::new().register("demo", demo_grid);
//!     // Re-exec'd children enter worker mode here and never return.
//!     campaignd::socket_worker_main_if_requested(&registry);
//!
//!     let pool = WorkerPool::bind()?;
//!     let workers = campaignd::spawn_socket_workers(2, pool.ctrl_addr())?;
//!     assert!(pool.wait_for(2, Duration::from_secs(10)));
//!
//!     let server = CampaignServer::new(registry)
//!         .with_workers(pool.workers())
//!         .serve("127.0.0.1:0")?;
//!     let records = campaignd::client::submit(server.addr(), "demo", &demo_grid())
//!         .expect("submit");
//!     assert_eq!(records.len(), 16);
//!     drop(workers);
//!     server.shutdown();
//!     Ok(())
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod client;
pub mod fanout;
pub mod pool;
pub mod queue;
pub mod server;

pub use fanout::{FanoutExecutor, SocketFanout};
pub use pool::WorkerPool;
pub use queue::SubmissionQueue;
pub use server::{CampaignServer, RunningCampaignServer};
// The worker-mode entry points live in shard; re-exported so a campaign
// server binary needs only this crate.
pub use shard::transport::{socket_worker_main_if_requested, LISTEN_FLAG};

use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

/// Guard over re-exec'd socket worker processes: killed and reaped on
/// drop so tests and examples cannot leak children.
#[derive(Debug)]
pub struct WorkerProcs {
    children: Vec<Child>,
}

impl WorkerProcs {
    /// How many worker processes were spawned.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Whether no workers were spawned.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

impl Drop for WorkerProcs {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Re-execs the current binary `n` times in `--shard-listen` socket
/// worker mode, each announcing itself to `ctrl` (a
/// [`WorkerPool::ctrl_addr`]). The host binary must call
/// [`socket_worker_main_if_requested`] first thing in `main`.
///
/// # Errors
///
/// Returns the first spawn error; already-spawned workers are reaped by
/// the returned guard's drop in that case.
pub fn spawn_socket_workers(n: usize, ctrl: SocketAddr) -> std::io::Result<WorkerProcs> {
    let exe = std::env::current_exe()?;
    let mut procs = WorkerProcs {
        children: Vec::with_capacity(n),
    };
    for _ in 0..n {
        let child = Command::new(&exe)
            .arg(LISTEN_FLAG)
            .arg(ctrl.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()?;
        procs.children.push(child);
    }
    Ok(procs)
}
