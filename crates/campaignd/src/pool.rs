//! Worker registration: the coordinator's control port.
//!
//! Socket workers are started *somewhere* (a re-exec'd `--shard-listen`
//! child, an in-process thread in tests, in principle another machine)
//! and dial home: each one binds its own ephemeral listener and
//! announces that address to the coordinator's control port with the
//! `"SHRG"` registration frame
//! ([`shard::transport::announce_worker`]). The [`WorkerPool`] owns the
//! control listener, collects announcements on a background accept
//! thread, and hands the campaign server a stable, arrival-ordered
//! worker list.

use shard::transport::read_announcement;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Collects socket-worker registrations on a control port.
#[derive(Debug)]
pub struct WorkerPool {
    ctrl_addr: SocketAddr,
    workers: Arc<Mutex<Vec<SocketAddr>>>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl WorkerPool {
    /// Binds a loopback control port and starts accepting
    /// registrations.
    ///
    /// # Errors
    ///
    /// Returns the bind error when no ephemeral port is available.
    pub fn bind() -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let ctrl_addr = listener.local_addr()?;
        let workers = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let workers = Arc::clone(&workers);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = conn else { continue };
                    // A malformed announcement is that worker's
                    // problem, not the pool's: skip it, keep accepting.
                    let Ok(addr) = read_announcement(&mut stream) else {
                        continue;
                    };
                    if let Ok(mut list) = workers.lock() {
                        list.push(addr);
                    }
                }
            })
        };
        Ok(Self {
            ctrl_addr,
            workers,
            stop,
            accept: Some(accept),
        })
    }

    /// The control address workers announce themselves to — the value
    /// to pass as `--shard-listen <addr>`.
    pub fn ctrl_addr(&self) -> SocketAddr {
        self.ctrl_addr
    }

    /// Registers a worker directly, bypassing the control port — for
    /// in-process workers in tests.
    pub fn register(&self, worker: SocketAddr) {
        if let Ok(mut list) = self.workers.lock() {
            list.push(worker);
        }
    }

    /// Snapshot of the registered workers, in arrival order.
    pub fn workers(&self) -> Vec<SocketAddr> {
        self.workers
            .lock()
            .map(|list| list.clone())
            .unwrap_or_default()
    }

    /// Polls until at least `n` workers have registered, sleeping
    /// between checks; `false` when `timeout` elapses first. (Pure
    /// sleep-loop accounting — the deterministic codebase bans wall
    /// clocks, and registration waits don't need them.)
    pub fn wait_for(&self, n: usize, timeout: Duration) -> bool {
        let poll = Duration::from_millis(10);
        let mut waited = Duration::ZERO;
        loop {
            if self.workers().len() >= n {
                return true;
            }
            if waited >= timeout {
                return false;
            }
            std::thread::sleep(poll);
            waited += poll;
        }
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Kick the accept loop awake so it observes the flag.
        let _ = TcpStream::connect(self.ctrl_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shard::transport::announce_worker;

    #[test]
    fn announced_workers_arrive_in_order() {
        let pool = WorkerPool::bind().expect("bind pool");
        let a: SocketAddr = "127.0.0.1:40001".parse().unwrap();
        let b: SocketAddr = "127.0.0.1:40002".parse().unwrap();
        announce_worker(pool.ctrl_addr(), a).expect("announce a");
        assert!(pool.wait_for(1, Duration::from_secs(5)));
        announce_worker(pool.ctrl_addr(), b).expect("announce b");
        assert!(pool.wait_for(2, Duration::from_secs(5)));
        assert_eq!(pool.workers(), vec![a, b]);
    }

    #[test]
    fn direct_registration_and_timeout() {
        let pool = WorkerPool::bind().expect("bind pool");
        assert!(!pool.wait_for(1, Duration::from_millis(30)));
        pool.register("127.0.0.1:40003".parse().unwrap());
        assert!(pool.wait_for(1, Duration::from_secs(5)));
    }

    #[test]
    fn garbage_on_the_control_port_is_ignored() {
        use std::io::Write;
        let pool = WorkerPool::bind().expect("bind pool");
        let mut s = TcpStream::connect(pool.ctrl_addr()).expect("connect");
        s.write_all(b"not a registration").expect("write");
        drop(s);
        let real: SocketAddr = "127.0.0.1:40004".parse().unwrap();
        announce_worker(pool.ctrl_addr(), real).expect("announce");
        assert!(pool.wait_for(1, Duration::from_secs(5)));
        assert_eq!(pool.workers(), vec![real]);
    }
}
