//! Client side of the campaign server: submit by name, get records.
//!
//! A client shares the [`CampaignRegistry`] *code* with the server, so
//! submitting is: derive the grid locally, build a
//! [`CampaignSubmission`] carrying its shape and fingerprint, POST it,
//! and decode the returned `"SHRS"`…`"SHRE"` result stream. The
//! fingerprint round-trip means a client can never silently receive
//! records for a different campaign than it derived.
//!
//! [`submit_with_retry`] reuses the OBU poll path's deterministic
//! [`RetryPolicy`] for transient conditions (a 503 full queue, a
//! connection refused while the server boots): the backoff schedule is
//! the same pure arithmetic, applied to wall-clock sleeps.

use its_testbed::campaign::CampaignSpec;
use its_testbed::submission::{encode_submission, CampaignSubmission};
use its_testbed::RunRecord;
use openc2x::http::{self, ClientResponse, RetryPolicy};
use shard::protocol::decode_result_stream;
use std::net::SocketAddr;
use std::time::Duration;

/// Why a submission did not yield records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Connecting or speaking HTTP failed (server down, mid-boot).
    Io(String),
    /// The server answered a non-200 status with a reason body.
    Status(u16, String),
    /// The 200 body was not a valid result stream.
    Protocol(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Io(e) => write!(f, "campaign submit i/o error: {e}"),
            SubmitError::Status(code, reason) => {
                write!(f, "campaign server answered {code}: {reason}")
            }
            SubmitError::Protocol(e) => write!(f, "campaign result stream invalid: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// POSTs an already-encoded submission frame and returns the raw HTTP
/// response — the byte-level entry point the determinism tests compare
/// against [`shard::protocol::encode_results`] output directly.
///
/// # Errors
///
/// Returns connection or protocol errors from the HTTP client.
pub fn submit_raw(addr: SocketAddr, frame: &[u8]) -> std::io::Result<ClientResponse> {
    http::post(addr, "/submit", frame)
}

/// Submits `campaign` (deriving the expected shape from the client's
/// own `grid`) and decodes the returned records.
///
/// # Errors
///
/// [`SubmitError::Io`] when the server is unreachable,
/// [`SubmitError::Status`] for 400/404/409/503 answers, and
/// [`SubmitError::Protocol`] when a 200 body fails to decode.
pub fn submit(
    addr: SocketAddr,
    campaign: &str,
    grid: &[CampaignSpec],
) -> Result<Vec<RunRecord>, SubmitError> {
    let frame = encode_submission(&CampaignSubmission::for_grid(campaign, grid));
    let resp = submit_raw(addr, &frame).map_err(|e| SubmitError::Io(e.to_string()))?;
    if resp.status != 200 {
        return Err(SubmitError::Status(
            resp.status,
            String::from_utf8_lossy(&resp.body).into_owned(),
        ));
    }
    decode_result_stream(&resp.body).map_err(|e| SubmitError::Protocol(e.to_string()))
}

/// Whether an error is worth retrying: the queue may drain (503) and a
/// booting server may start listening (connection refused); everything
/// else is a permanent answer.
fn transient(error: &SubmitError) -> bool {
    matches!(error, SubmitError::Status(503, _) | SubmitError::Io(_))
}

/// [`submit`], retried under `policy` for transient failures (503 full
/// queue, connection errors), with the policy's exponential backoff
/// slept between attempts.
///
/// # Errors
///
/// The last [`SubmitError`] once attempts are exhausted, or the first
/// permanent (non-transient) error immediately.
pub fn submit_with_retry(
    addr: SocketAddr,
    campaign: &str,
    grid: &[CampaignSpec],
    policy: &RetryPolicy,
) -> Result<Vec<RunRecord>, SubmitError> {
    let attempts = policy.max_attempts.max(1);
    let mut last = SubmitError::Io("no attempt made".into());
    for attempt in 0..attempts {
        match submit(addr, campaign, grid) {
            Ok(records) => return Ok(records),
            Err(e) if transient(&e) => {
                last = e;
                if attempt + 1 < attempts {
                    std::thread::sleep(Duration::from_nanos(policy.backoff(attempt).as_nanos()));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(last)
}

/// Fetches the server's campaign names (registration order).
///
/// # Errors
///
/// [`SubmitError::Io`] when unreachable, [`SubmitError::Status`] for
/// non-200 answers, [`SubmitError::Protocol`] for a non-UTF-8 body.
pub fn list_campaigns(addr: SocketAddr) -> Result<Vec<String>, SubmitError> {
    let resp = http::request(addr, "GET", "/campaigns", b"")
        .map_err(|e| SubmitError::Io(e.to_string()))?;
    if resp.status != 200 {
        return Err(SubmitError::Status(
            resp.status,
            String::from_utf8_lossy(&resp.body).into_owned(),
        ));
    }
    let text = String::from_utf8(resp.body)
        .map_err(|_| SubmitError::Protocol("campaign list is not UTF-8".into()))?;
    Ok(text
        .lines()
        .filter(|l| !l.is_empty())
        .map(str::to_owned)
        .collect())
}
