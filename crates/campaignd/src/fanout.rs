//! Chunk fan-out over socket workers.
//!
//! [`SocketFanout`] is the campaign server's executor core: the exact
//! coordinator algorithm of `shard::ShardExecutor`, with
//! [`TcpTransport`] links to already-running socket workers in place of
//! re-exec'd pipe children. The determinism contract is inherited
//! unchanged — chunks come from the shared [`runner::chunk_bounds`]
//! math over the row-major flattened grid, are merged strictly in chunk
//! order, and any chunk whose worker fails, stalls, or refuses is
//! re-executed in-process ([`shard::protocol::compute_chunk`]) for
//! identical bytes. Worker count, worker death, and worker order
//! therefore never change a single output byte.

use its_testbed::campaign::{grid_fingerprint, CampaignSpec, Executor};
use its_testbed::RunRecord;
use shard::protocol::{compute_chunk, encode_assignment, grid_offsets, Assignment, FLAT_GRID};
use shard::transport::{collect_chunk, ChunkFailure, FrameTransport, TcpTransport};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Fans one campaign grid out across socket workers and merges the
/// chunks deterministically.
#[derive(Debug)]
pub struct SocketFanout {
    campaign: String,
    grid: Vec<CampaignSpec>,
    grid_fp: u64,
    timeout: Duration,
    fallback_chunks: AtomicUsize,
    timed_out_chunks: AtomicUsize,
}

impl SocketFanout {
    /// A fan-out for `campaign`'s derived `grid`. The fingerprint sent
    /// in every assignment is computed here, from the server's own
    /// derivation.
    pub fn new(campaign: &str, grid: Vec<CampaignSpec>) -> Self {
        let grid_fp = grid_fingerprint(&grid);
        Self {
            campaign: campaign.to_owned(),
            grid,
            grid_fp,
            timeout: Duration::from_secs(120),
            fallback_chunks: AtomicUsize::new(0),
            timed_out_chunks: AtomicUsize::new(0),
        }
    }

    /// Replaces the per-chunk result timeout (default 120 s).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Chunks re-executed in-process because a worker failed, timed
    /// out, or refused its assignment.
    pub fn fallback_chunks(&self) -> usize {
        self.fallback_chunks.load(Ordering::Relaxed)
    }

    /// The subset of [`Self::fallback_chunks`] caused by the per-chunk
    /// timeout specifically.
    pub fn timed_out_chunks(&self) -> usize {
        self.timed_out_chunks.load(Ordering::Relaxed)
    }

    /// Runs the whole flattened grid across `workers` and returns the
    /// flat records in job order — byte-identical to serial execution
    /// at any worker count, including zero (pure local execution).
    pub fn run_flat(&self, workers: &[SocketAddr]) -> Vec<RunRecord> {
        let offsets = grid_offsets(&self.grid);
        let jobs = offsets.last().copied().unwrap_or(0);
        if jobs == 0 {
            return Vec::new();
        }
        if workers.is_empty() {
            // No workers is a configuration, not a failure: serve
            // in-process without touching the fallback counters.
            return self.local(0, jobs);
        }
        let n = workers.len().min(jobs);
        let chunks: Vec<(usize, usize)> =
            (0..n).map(|w| runner::chunk_bounds(jobs, n, w)).collect();

        // Assign every worker its chunk up front — each TcpTransport
        // starts its reader at send_frame, so workers compute
        // concurrently while we collect in chunk order below.
        let links: Vec<Option<TcpTransport>> = chunks
            .iter()
            .enumerate()
            .map(|(w, &(lo, hi))| {
                let addr = workers.get(w).copied()?;
                let mut link = TcpTransport::connect(addr).ok()?;
                let frame = encode_assignment(&Assignment {
                    worker_index: w as u32,
                    campaign: self.campaign.clone(),
                    grid_fp: self.grid_fp,
                    spec_index: FLAT_GRID,
                    lo: lo as u64,
                    hi: hi as u64,
                });
                link.send_frame(&frame).ok()?;
                Some(link)
            })
            .collect();

        let mut out = Vec::with_capacity(jobs);
        for (link, &(lo, hi)) in links.into_iter().zip(&chunks) {
            let collected = match link {
                Some(mut link) => collect_chunk(&mut link, hi - lo, self.timeout),
                None => Err(ChunkFailure::Failed("worker unreachable".into())),
            };
            match collected {
                Ok(records) => out.extend(records),
                Err(failure) => {
                    if failure == ChunkFailure::TimedOut {
                        self.timed_out_chunks.fetch_add(1, Ordering::Relaxed);
                    }
                    self.fallback_chunks.fetch_add(1, Ordering::Relaxed);
                    out.extend(self.local(lo, hi));
                }
            }
        }
        out
    }

    /// In-process execution of flat jobs `lo..hi` — the worker's exact
    /// compute step, used for zero-worker serving and chunk fallback.
    fn local(&self, lo: usize, hi: usize) -> Vec<RunRecord> {
        // The bounds come from grid_offsets over this same grid, so the
        // error arm is unreachable; an empty chunk (not a panic) is the
        // contained failure mode if that invariant ever broke.
        compute_chunk(&self.grid, FLAT_GRID, lo, hi).unwrap_or_default()
    }
}

/// Socket workers as a first-class [`Executor`]: the campaign-side
/// counterpart of `shard::ShardExecutor`, binding one campaign grid and
/// fanning matching submissions over [`SocketFanout`]'s TCP links.
///
/// The executor contract is inherited from the fanout: a grid whose
/// fingerprint matches the bound campaign runs across the workers and
/// merges byte-identically to [`its_testbed::campaign::Serial`]; any
/// other grid (which the workers could not re-derive, so every chunk
/// would be refused) is computed locally — degraded, never wrong.
/// `run_indexed` keeps the trait's deterministic serial default:
/// arbitrary closures cannot be shipped to worker processes, so
/// non-spec sweeps (the city benchmark, the cooperative fault sweep)
/// run in-process with unchanged bytes.
#[derive(Debug)]
pub struct FanoutExecutor {
    campaign: String,
    grid: Vec<CampaignSpec>,
    grid_fp: u64,
    workers: Vec<SocketAddr>,
    timeout: Duration,
    fallback_grids: AtomicUsize,
}

impl FanoutExecutor {
    /// Binds `campaign`'s derived `grid` to the given socket `workers`.
    pub fn new(campaign: &str, grid: Vec<CampaignSpec>, workers: Vec<SocketAddr>) -> Self {
        let grid_fp = grid_fingerprint(&grid);
        Self {
            campaign: campaign.to_owned(),
            grid,
            grid_fp,
            workers,
            timeout: Duration::from_secs(120),
            fallback_grids: AtomicUsize::new(0),
        }
    }

    /// Replaces the per-chunk result timeout (default 120 s).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Grids executed locally because they were not the bound campaign.
    pub fn fallback_grids(&self) -> usize {
        self.fallback_grids.load(Ordering::Relaxed)
    }
}

impl Executor for FanoutExecutor {
    fn execute(&self, spec: &CampaignSpec) -> Vec<RunRecord> {
        // A lone spec is addressable over the flat-grid protocol only
        // when it *is* the bound grid.
        self.execute_grid(std::slice::from_ref(spec))
            .pop()
            .unwrap_or_default()
    }

    fn execute_grid(&self, specs: &[CampaignSpec]) -> Vec<Vec<RunRecord>> {
        let flat = if grid_fingerprint(specs) == self.grid_fp {
            SocketFanout::new(&self.campaign, self.grid.clone())
                .with_timeout(self.timeout)
                .run_flat(&self.workers)
        } else {
            self.fallback_grids.fetch_add(1, Ordering::Relaxed);
            let offsets = grid_offsets(specs);
            (0..offsets.last().copied().unwrap_or(0))
                .map(|j| shard::protocol::flat_job(specs, &offsets, j))
                .collect()
        };
        let mut records = flat.into_iter();
        specs
            .iter()
            .map(|spec| records.by_ref().take(spec.runs).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use its_testbed::campaign::{CampaignRegistry, Serial};
    use its_testbed::ScenarioConfig;
    use shard::transport::serve_connections;
    use std::net::TcpListener;

    fn demo_grid() -> Vec<CampaignSpec> {
        vec![
            CampaignSpec::new(
                ScenarioConfig {
                    seed: 7200,
                    ..ScenarioConfig::default()
                },
                3,
            ),
            CampaignSpec::with_seed_offset(
                ScenarioConfig {
                    seed: 7200,
                    ..ScenarioConfig::default()
                },
                500,
                2,
            ),
        ]
    }

    fn spawn_worker() -> SocketAddr {
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind worker");
        let addr = listener.local_addr().expect("worker addr");
        std::thread::spawn(move || {
            let registry = CampaignRegistry::new().register("demo", demo_grid);
            serve_connections(&listener, &registry);
        });
        addr
    }

    fn serial_flat() -> Vec<RunRecord> {
        Serial
            .execute_grid(&demo_grid())
            .into_iter()
            .flatten()
            .collect()
    }

    #[test]
    fn zero_workers_serve_locally_without_fallback() {
        let fanout = SocketFanout::new("demo", demo_grid());
        assert_eq!(fanout.run_flat(&[]), serial_flat());
        assert_eq!(fanout.fallback_chunks(), 0);
    }

    #[test]
    fn socket_workers_match_serial_at_one_and_three() {
        for n in [1, 3] {
            let workers: Vec<SocketAddr> = (0..n).map(|_| spawn_worker()).collect();
            let fanout = SocketFanout::new("demo", demo_grid());
            assert_eq!(fanout.run_flat(&workers), serial_flat(), "{n} workers");
            assert_eq!(fanout.fallback_chunks(), 0, "{n} workers");
        }
    }

    #[test]
    fn dead_worker_falls_back_to_identical_bytes() {
        // One live worker, one address nobody listens on.
        let live = spawn_worker();
        let dead: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let fanout = SocketFanout::new("demo", demo_grid());
        assert_eq!(fanout.run_flat(&[live, dead]), serial_flat());
        assert_eq!(fanout.fallback_chunks(), 1);
        assert_eq!(fanout.timed_out_chunks(), 0);
    }

    #[test]
    fn fanout_executor_matches_serial_over_workers() {
        let workers: Vec<SocketAddr> = (0..2).map(|_| spawn_worker()).collect();
        let exec = FanoutExecutor::new("demo", demo_grid(), workers);
        assert_eq!(
            exec.execute_grid(&demo_grid()),
            Serial.execute_grid(&demo_grid())
        );
        assert_eq!(exec.fallback_grids(), 0);
        // A foreign grid is computed locally — identical bytes, counted.
        let foreign = vec![CampaignSpec::new(
            ScenarioConfig {
                seed: 31,
                ..ScenarioConfig::default()
            },
            2,
        )];
        assert_eq!(exec.execute_grid(&foreign), Serial.execute_grid(&foreign));
        assert_eq!(exec.fallback_grids(), 1);
    }

    #[test]
    fn foreign_grid_is_refused_and_recovered() {
        // Worker derives "demo"; we ask for a different campaign name
        // it does not know — every chunk is refused and recovered.
        let worker = spawn_worker();
        let grid = vec![CampaignSpec::new(
            ScenarioConfig {
                seed: 9999,
                ..ScenarioConfig::default()
            },
            2,
        )];
        let fanout = SocketFanout::new("unknown", grid.clone());
        let flat: Vec<RunRecord> = Serial.execute_grid(&grid).into_iter().flatten().collect();
        assert_eq!(fanout.run_flat(&[worker]), flat);
        assert_eq!(fanout.fallback_chunks(), 1);
    }
}
