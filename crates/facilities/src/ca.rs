//! Cooperative Awareness basic service (ETSI EN 302 637-2).
//!
//! CAMs are generated with *variable periodicity* (paper §II-B): a new CAM
//! is due when the station's dynamics changed noticeably since the last
//! one — heading by more than 4°, position by more than 4 m, or speed by
//! more than 0.5 m/s — but never more often than `T_GenCamMin` (100 ms),
//! and at least every `T_GenCamMax` (1000 ms). After a dynamics-triggered
//! CAM, the adaptive period `T_GenCam` latches to the observed interval
//! for `N_GenCam` = 3 generations before relaxing back to the maximum.

use its_messages::cam::{Cam, LowFrequencyContainer, VehicleRole};
use its_messages::common::{
    DeltaReferencePosition, Heading, PathHistory, PathPoint, ReferencePosition, Speed, StationId,
    StationType,
};
use sim_core::{SimDuration, SimTime};

/// Kinematic state of the originating station, as sampled from its
/// positioning and odometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationState {
    /// Current position.
    pub position: ReferencePosition,
    /// Heading in degrees from North.
    pub heading_deg: f64,
    /// Speed over ground in m/s.
    pub speed_mps: f64,
}

/// CAM generation trigger thresholds and period bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CamTriggerConfig {
    /// Minimum generation interval (`T_GenCamMin`).
    pub t_gen_cam_min: SimDuration,
    /// Maximum generation interval (`T_GenCamMax`).
    pub t_gen_cam_max: SimDuration,
    /// Heading-change trigger threshold, degrees.
    pub heading_delta_deg: f64,
    /// Position-change trigger threshold, metres.
    pub position_delta_m: f64,
    /// Speed-change trigger threshold, m/s.
    pub speed_delta_mps: f64,
    /// Number of consecutive CAMs generated at the latched `T_GenCam`
    /// before relaxing (`N_GenCam`).
    pub n_gen_cam: u32,
    /// Attach a low-frequency container (with the path history) to every
    /// n-th CAM (EN 302 637-2: the LF container rides along at least
    /// every 500 ms). 0 disables LF containers.
    pub lf_every_n: u32,
}

impl Default for CamTriggerConfig {
    fn default() -> Self {
        Self {
            t_gen_cam_min: SimDuration::from_millis(100),
            t_gen_cam_max: SimDuration::from_millis(1000),
            heading_delta_deg: 4.0,
            position_delta_m: 4.0,
            speed_delta_mps: 0.5,
            n_gen_cam: 3,
            lf_every_n: 2,
        }
    }
}

/// The CA basic service of one ITS station.
///
/// # Example
///
/// ```
/// use facilities::ca::{CaService, CamTriggerConfig, StationState};
/// use its_messages::common::{ReferencePosition, StationId, StationType};
/// use sim_core::SimTime;
///
/// let mut ca = CaService::new(
///     StationId::new(7).unwrap(),
///     StationType::PassengerCar,
///     CamTriggerConfig::default(),
/// );
/// let state = StationState {
///     position: ReferencePosition::from_degrees(41.178, -8.608),
///     heading_deg: 90.0,
///     speed_mps: 1.5,
/// };
/// // First poll always produces a CAM.
/// assert!(ca.poll(SimTime::ZERO, &state).is_some());
/// // Immediately after, none is due.
/// assert!(ca.poll(SimTime::from_millis(10), &state).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct CaService {
    station_id: StationId,
    station_type: StationType,
    config: CamTriggerConfig,
    /// State captured at the last generated CAM.
    last: Option<(SimTime, StationState)>,
    /// Currently latched adaptive period.
    t_gen_cam: SimDuration,
    /// CAMs generated since the period was latched.
    since_latch: u32,
    /// Count of CAMs generated in total.
    generated: u64,
    /// Recent path of the station (newest last), for the LF container.
    path: Vec<(SimTime, ReferencePosition)>,
}

impl CaService {
    /// Creates the service for a station.
    pub fn new(station_id: StationId, station_type: StationType, config: CamTriggerConfig) -> Self {
        Self {
            station_id,
            station_type,
            config,
            last: None,
            t_gen_cam: config.t_gen_cam_max,
            since_latch: 0,
            generated: 0,
            // The breadcrumb ring is capped at MAX_POINTS + 1 entries;
            // sizing it up front keeps CAM generation allocation-free.
            path: Vec::with_capacity(PathHistory::MAX_POINTS + 2),
        }
    }

    /// Total CAMs generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// The adaptive period currently in effect.
    pub fn t_gen_cam(&self) -> SimDuration {
        self.t_gen_cam
    }

    /// Whether the station dynamics changed enough to warrant a CAM.
    fn dynamics_trigger(&self, prev: &StationState, cur: &StationState) -> bool {
        let dh = heading_delta_deg(prev.heading_deg, cur.heading_deg);
        let dp = prev.position.planar_distance_m(&cur.position);
        let dv = (prev.speed_mps - cur.speed_mps).abs();
        dh > self.config.heading_delta_deg
            || dp > self.config.position_delta_m
            || dv > self.config.speed_delta_mps
    }

    /// Polls the service: returns a CAM if one is due at `now` given the
    /// current station state.
    pub fn poll(&mut self, now: SimTime, state: &StationState) -> Option<Cam> {
        let due = match &self.last {
            None => true,
            Some((last_time, last_state)) => {
                let elapsed = now.saturating_duration_since(*last_time);
                if elapsed < self.config.t_gen_cam_min {
                    false
                } else if elapsed >= self.t_gen_cam {
                    true
                } else {
                    self.dynamics_trigger(last_state, state)
                }
            }
        };
        if !due {
            return None;
        }
        // Adapt T_GenCam per EN 302 637-2 §6.1.3.
        if let Some((last_time, last_state)) = &self.last {
            let elapsed = now.saturating_duration_since(*last_time);
            if self.dynamics_trigger(last_state, state) && elapsed < self.t_gen_cam {
                self.t_gen_cam = elapsed.max(self.config.t_gen_cam_min);
                self.since_latch = 0;
            } else {
                self.since_latch += 1;
                if self.since_latch >= self.config.n_gen_cam {
                    self.t_gen_cam = self.config.t_gen_cam_max;
                }
            }
        }
        Some(self.generate(now, state))
    }

    /// Builds a CAM for `state` unconditionally, bypassing the EN 302
    /// 637-2 trigger rules. This is the build step [`poll`](Self::poll)
    /// runs once a CAM is due; callers that need a fixed beacon cadence
    /// regardless of station dynamics — a stationary RSU acting as a
    /// liveness heartbeat for a vehicle-side watchdog — invoke it
    /// directly. Counts toward [`generated`](Self::generated) and
    /// advances the path history like any triggered CAM.
    pub fn generate(&mut self, now: SimTime, state: &StationState) -> Cam {
        self.last = Some((now, *state));
        self.generated += 1;
        // Record the path point for future LF containers.
        self.path.push((now, state.position));
        if self.path.len() > PathHistory::MAX_POINTS + 1 {
            self.path.remove(0);
        }
        let gdt = (now.as_millis() % 65536) as u16;
        let mut cam = Cam::basic(self.station_id, gdt, self.station_type, state.position)
            .with_dynamics(
                Heading::from_degrees(state.heading_deg),
                Speed::from_mps(state.speed_mps),
            );
        if self.config.lf_every_n > 0 && self.generated % u64::from(self.config.lf_every_n) == 1 {
            cam = cam.with_low_frequency(LowFrequencyContainer {
                vehicle_role: VehicleRole::Default,
                exterior_lights: 0,
                path_history: self.path_history(state.position, now),
            });
        }
        cam
    }

    /// Builds the path history relative to the current position (newest
    /// point first, per EN 302 637-2 Annex).
    fn path_history(&self, current: ReferencePosition, now: SimTime) -> PathHistory {
        let mut history = PathHistory::default();
        let mut prev_time = now;
        for (t, pos) in self.path.iter().rev().skip(1) {
            let dlat = i64::from(pos.latitude.raw()) - i64::from(current.latitude.raw());
            let dlon = i64::from(pos.longitude.raw()) - i64::from(current.longitude.raw());
            // Points beyond the delta range (≈ ±13 m of latitude) end the
            // history — consistent with the CDD's short-range intent.
            let (Ok(dlat), Ok(dlon)) = (i32::try_from(dlat), i32::try_from(dlon)) else {
                break;
            };
            if !(-131071..=131072).contains(&dlat) || !(-131071..=131072).contains(&dlon) {
                break;
            }
            let dt_10ms =
                (prev_time.saturating_duration_since(*t).as_millis() / 10).clamp(1, 65535) as u16;
            let Ok(delta) = DeltaReferencePosition::new(dlat, dlon, 0) else {
                break;
            };
            let fitted = history.push(PathPoint {
                delta,
                delta_time: Some(dt_10ms),
            });
            prev_time = *t;
            if !fitted || history.len() == PathHistory::MAX_POINTS {
                break;
            }
        }
        history
    }
}

/// Smallest absolute angular difference between two headings, degrees.
fn heading_delta_deg(a: f64, b: f64) -> f64 {
    let d = (a - b).rem_euclid(360.0);
    d.min(360.0 - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(lat: f64, heading: f64, speed: f64) -> StationState {
        StationState {
            position: ReferencePosition::from_degrees(lat, -8.608),
            heading_deg: heading,
            speed_mps: speed,
        }
    }

    fn service() -> CaService {
        CaService::new(
            StationId::new(7).unwrap(),
            StationType::PassengerCar,
            CamTriggerConfig::default(),
        )
    }

    #[test]
    fn heading_delta_wraps() {
        assert_eq!(heading_delta_deg(10.0, 350.0), 20.0);
        assert_eq!(heading_delta_deg(350.0, 10.0), 20.0);
        assert_eq!(heading_delta_deg(0.0, 180.0), 180.0);
        assert_eq!(heading_delta_deg(90.0, 90.0), 0.0);
    }

    #[test]
    fn first_poll_generates() {
        let mut ca = service();
        let cam = ca.poll(SimTime::ZERO, &state(41.178, 90.0, 1.5)).unwrap();
        assert_eq!(cam.header.station_id.value(), 7);
        assert_eq!(ca.generated(), 1);
    }

    #[test]
    fn respects_t_gen_cam_min() {
        let mut ca = service();
        let s = state(41.178, 90.0, 1.5);
        ca.poll(SimTime::ZERO, &s).unwrap();
        // Huge dynamics change, but only 50 ms elapsed.
        let turned = state(41.178, 180.0, 5.0);
        assert!(ca.poll(SimTime::from_millis(50), &turned).is_none());
        // At 100 ms it fires.
        assert!(ca.poll(SimTime::from_millis(100), &turned).is_some());
    }

    #[test]
    fn max_period_forces_cam_without_dynamics() {
        let mut ca = service();
        let s = state(41.178, 90.0, 1.5);
        ca.poll(SimTime::ZERO, &s).unwrap();
        assert!(ca.poll(SimTime::from_millis(999), &s).is_none());
        assert!(ca.poll(SimTime::from_millis(1000), &s).is_some());
    }

    #[test]
    fn speed_change_triggers() {
        let mut ca = service();
        ca.poll(SimTime::ZERO, &state(41.178, 90.0, 1.5)).unwrap();
        // +0.6 m/s > 0.5 threshold at 200 ms.
        assert!(ca
            .poll(SimTime::from_millis(200), &state(41.178, 90.0, 2.1))
            .is_some());
    }

    #[test]
    fn position_change_triggers() {
        let mut ca = service();
        ca.poll(SimTime::ZERO, &state(41.178, 90.0, 1.5)).unwrap();
        // ~5.5 m north.
        let moved = state(41.178 + 5.5 / 111_194.9, 90.0, 1.5);
        assert!(ca.poll(SimTime::from_millis(200), &moved).is_some());
    }

    #[test]
    fn small_changes_do_not_trigger() {
        let mut ca = service();
        ca.poll(SimTime::ZERO, &state(41.178, 90.0, 1.5)).unwrap();
        let wiggle = state(41.178 + 1.0 / 111_194.9, 92.0, 1.7);
        assert!(ca.poll(SimTime::from_millis(500), &wiggle).is_none());
    }

    #[test]
    fn adaptive_period_latches_then_relaxes() {
        let mut ca = service();
        let s0 = state(41.178, 90.0, 1.5);
        ca.poll(SimTime::ZERO, &s0).unwrap();
        // Dynamics trigger at 300 ms latches T_GenCam to 300 ms.
        let s1 = state(41.178, 100.0, 1.5);
        ca.poll(SimTime::from_millis(300), &s1).unwrap();
        assert_eq!(ca.t_gen_cam(), SimDuration::from_millis(300));
        // Three quiescent CAMs at the latched period relax it back.
        let mut t = 300;
        for _ in 0..3 {
            t += 300;
            assert!(ca.poll(SimTime::from_millis(t), &s1).is_some());
        }
        assert_eq!(ca.t_gen_cam(), SimDuration::from_millis(1000));
    }

    #[test]
    fn generation_delta_time_is_now_mod_65536() {
        let mut ca = service();
        let cam = ca
            .poll(SimTime::from_millis(70_000), &state(41.178, 90.0, 1.5))
            .unwrap();
        assert_eq!(cam.generation_delta_time, (70_000 % 65536) as u16);
    }

    #[test]
    fn lf_container_attached_periodically_with_path_history() {
        let mut ca = service();
        // Drive north, 4.5 m per second: position trigger fires at
        // ~1 Hz+; collect several CAMs.
        let mut cams = Vec::new();
        for sec in 0..6u64 {
            let s = state(41.178 + sec as f64 * 4.5 / 111_194.9, 0.0, 4.5);
            if let Some(cam) = ca.poll(SimTime::from_secs(sec), &s) {
                cams.push(cam);
            }
        }
        assert!(cams.len() >= 5, "CAMs: {}", cams.len());
        // Default lf_every_n = 2: first, third, fifth … carry LF.
        assert!(cams[0].low_frequency.is_some(), "first CAM carries LF");
        assert!(cams[1].low_frequency.is_none());
        let lf = cams[4]
            .low_frequency
            .as_ref()
            .expect("fifth CAM carries LF");
        // The path history points back along the northward drive.
        assert!(!lf.path_history.is_empty());
        let p0 = lf.path_history.points()[0];
        assert!(p0.delta.delta_latitude < 0, "previous point lies south");
        assert!(p0.delta_time.is_some());
        // Round-trips on the wire.
        let bytes = cams[4].to_bytes().unwrap();
        assert_eq!(Cam::from_bytes(&bytes).unwrap(), cams[4]);
    }

    #[test]
    fn lf_disabled_when_every_n_zero() {
        let mut ca = CaService::new(
            StationId::new(7).unwrap(),
            StationType::PassengerCar,
            CamTriggerConfig {
                lf_every_n: 0,
                ..CamTriggerConfig::default()
            },
        );
        let cam = ca.poll(SimTime::ZERO, &state(41.178, 90.0, 1.5)).unwrap();
        assert!(cam.low_frequency.is_none());
    }

    #[test]
    fn steady_driving_produces_1hz_stream() {
        let mut ca = service();
        let s = state(41.178, 90.0, 0.0); // parked
        let mut count = 0;
        for ms in (0..=10_000).step_by(10) {
            if ca.poll(SimTime::from_millis(ms), &s).is_some() {
                count += 1;
            }
        }
        // 0, 1000, 2000, ... 10000.
        assert_eq!(count, 11);
    }
}
