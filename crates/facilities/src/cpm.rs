//! Collective Perception basic service (CPM, ETSI TS 103 324 profile).
//!
//! A CPM carries the objects one station *perceives with its own
//! sensors* so that neighbouring stations can extend their LDM beyond
//! their own sensor range — the cooperative-perception step the paper's
//! testbed stops short of. The profile here is the subset the scenarios
//! need: the common PDU header (messageID 14), a management container
//! with the originator's type and reference position, and a perceived-
//! object container of up to [`Cpm::MAX_OBJECTS`] objects with planar
//! offsets relative to the originator.
//!
//! Like CAM and DENM, the message encodes to a compact UPER bit stream,
//! so a CPM on the simulated air interface has a realistic wire size
//! (a few dozen bytes for a handful of objects).
//!
//! # Example
//!
//! ```
//! use facilities::cpm::{Cpm, CpmPerceivedObject, ObjectClass};
//! use its_messages::common::{ReferencePosition, StationId, StationType};
//!
//! # fn main() -> Result<(), uper::UperError> {
//! let cpm = Cpm::new(
//!     StationId::new(15)?,
//!     StationType::RoadSideUnit,
//!     ReferencePosition::from_degrees(41.178, -8.608),
//!     1234,
//! )?
//! .with_object(CpmPerceivedObject::from_planar(
//!     2,
//!     3.5,
//!     -1.0,
//!     ObjectClass::Person,
//!     88,
//! ));
//! let bytes = cpm.to_bytes()?;
//! assert_eq!(Cpm::from_bytes(&bytes)?, cpm);
//! # Ok(())
//! # }
//! ```

use its_messages::common::{ReferencePosition, StationId, StationType};
use its_messages::{ItsPduHeader, MessageId};
use sim_core::{SimDuration, SimTime};
use uper::{BitReader, BitWriter, Codec, UperError};

/// Classification of a perceived object (TS 103 324 subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ObjectClass {
    /// Classifier could not decide.
    #[default]
    Unknown,
    /// A vehicle.
    Vehicle,
    /// A vulnerable road user.
    Person,
    /// A static obstruction on the roadway.
    Obstacle,
}

impl ObjectClass {
    const VARIANTS: u64 = 4;

    fn index(&self) -> u64 {
        match self {
            ObjectClass::Unknown => 0,
            ObjectClass::Vehicle => 1,
            ObjectClass::Person => 2,
            ObjectClass::Obstacle => 3,
        }
    }

    fn from_index(i: u64) -> uper::Result<Self> {
        Ok(match i {
            0 => ObjectClass::Unknown,
            1 => ObjectClass::Vehicle,
            2 => ObjectClass::Person,
            3 => ObjectClass::Obstacle,
            other => {
                return Err(UperError::InvalidEnum {
                    index: other,
                    name: "ObjectClass",
                })
            }
        })
    }
}

impl Codec for ObjectClass {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_enumerated(self.index(), Self::VARIANTS)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Self::from_index(r.read_enumerated(Self::VARIANTS)?)
    }
}

/// One object of the perceived-object container. Distances and speeds
/// are planar offsets relative to the originating station, in the TS
/// 103 324 units (centimetres / cm-per-second).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CpmPerceivedObject {
    /// Originator-scoped object identifier.
    pub object_id: u16,
    /// East-ish offset from the originator, cm (`-132768..=132767`).
    pub x_distance_cm: i32,
    /// North-ish offset from the originator, cm (`-132768..=132767`).
    pub y_distance_cm: i32,
    /// Object speed along x, cm/s (`-16383..=16383`).
    pub x_speed_cm_s: i16,
    /// Object speed along y, cm/s (`-16383..=16383`).
    pub y_speed_cm_s: i16,
    /// Detection confidence, percent (`0..=100`).
    pub confidence_pct: u8,
    /// Object classification.
    pub class: ObjectClass,
}

impl CpmPerceivedObject {
    const DISTANCE_MIN: i64 = -132_768;
    const DISTANCE_MAX: i64 = 132_767;
    const SPEED_MIN: i64 = -16_383;
    const SPEED_MAX: i64 = 16_383;
    const CONFIDENCE_MAX: u64 = 100;

    /// Builds an object from planar offsets in metres (x east-ish, y
    /// north-ish, relative to the originator), saturating to the wire
    /// ranges. Never fails: out-of-range sensor data clamps to the
    /// nearest encodable offset.
    pub fn from_planar(
        object_id: u16,
        dx_m: f64,
        dy_m: f64,
        class: ObjectClass,
        confidence_pct: u8,
    ) -> Self {
        let clamp_distance = |m: f64| -> i32 {
            let cm = m * 100.0;
            cm.clamp(Self::DISTANCE_MIN as f64, Self::DISTANCE_MAX as f64) as i32
        };
        Self {
            object_id,
            x_distance_cm: clamp_distance(dx_m),
            y_distance_cm: clamp_distance(dy_m),
            x_speed_cm_s: 0,
            y_speed_cm_s: 0,
            confidence_pct: confidence_pct.min(Self::CONFIDENCE_MAX as u8),
            class,
        }
    }

    /// Planar offset from the originator in metres.
    pub fn offset_m(&self) -> (f64, f64) {
        (
            f64::from(self.x_distance_cm) / 100.0,
            f64::from(self.y_distance_cm) / 100.0,
        )
    }
}

impl Codec for CpmPerceivedObject {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_constrained_u64(u64::from(self.object_id), 0, 65_535)?;
        w.write_constrained_i64(
            i64::from(self.x_distance_cm),
            Self::DISTANCE_MIN,
            Self::DISTANCE_MAX,
        )?;
        w.write_constrained_i64(
            i64::from(self.y_distance_cm),
            Self::DISTANCE_MIN,
            Self::DISTANCE_MAX,
        )?;
        w.write_constrained_i64(
            i64::from(self.x_speed_cm_s),
            Self::SPEED_MIN,
            Self::SPEED_MAX,
        )?;
        w.write_constrained_i64(
            i64::from(self.y_speed_cm_s),
            Self::SPEED_MIN,
            Self::SPEED_MAX,
        )?;
        w.write_constrained_u64(u64::from(self.confidence_pct), 0, Self::CONFIDENCE_MAX)?;
        self.class.encode(w)
    }

    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        let object_id = r.read_constrained_u64(0, 65_535)? as u16;
        let x_distance_cm = r.read_constrained_i64(Self::DISTANCE_MIN, Self::DISTANCE_MAX)? as i32;
        let y_distance_cm = r.read_constrained_i64(Self::DISTANCE_MIN, Self::DISTANCE_MAX)? as i32;
        let x_speed_cm_s = r.read_constrained_i64(Self::SPEED_MIN, Self::SPEED_MAX)? as i16;
        let y_speed_cm_s = r.read_constrained_i64(Self::SPEED_MIN, Self::SPEED_MAX)? as i16;
        let confidence_pct = r.read_constrained_u64(0, Self::CONFIDENCE_MAX)? as u8;
        let class = ObjectClass::decode(r)?;
        Ok(Self {
            object_id,
            x_distance_cm,
            y_distance_cm,
            x_speed_cm_s,
            y_speed_cm_s,
            confidence_pct,
            class,
        })
    }
}

/// CPM management container: who is perceiving, from where.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpmManagementContainer {
    /// Station type of the originator.
    pub station_type: StationType,
    /// Reference position of the originator; object offsets are
    /// relative to it.
    pub reference_position: ReferencePosition,
}

impl Codec for CpmManagementContainer {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        self.station_type.encode(w)?;
        self.reference_position.encode(w)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Ok(Self {
            station_type: StationType::decode(r)?,
            reference_position: ReferencePosition::decode(r)?,
        })
    }
}

/// A Collective Perception Message.
#[derive(Debug, Clone, PartialEq)]
pub struct Cpm {
    /// Common PDU header (`messageID` 14).
    pub header: ItsPduHeader,
    /// Milliseconds of the generation instant, modulo 65536.
    pub generation_delta_time: u16,
    /// Originator state.
    pub management: CpmManagementContainer,
    /// Perceived objects, at most [`Self::MAX_OBJECTS`].
    pub perceived_objects: Vec<CpmPerceivedObject>,
}

impl Cpm {
    /// Upper bound of the perceived-object container.
    pub const MAX_OBJECTS: usize = 128;

    /// A CPM with an empty perceived-object container.
    ///
    /// # Errors
    ///
    /// Never fails today; the `Result` mirrors the other message
    /// constructors so callers handle all builders uniformly.
    pub fn new(
        station_id: StationId,
        station_type: StationType,
        reference_position: ReferencePosition,
        generation_delta_time: u16,
    ) -> uper::Result<Self> {
        Ok(Self {
            header: ItsPduHeader::new(MessageId::Cpm, station_id),
            generation_delta_time,
            management: CpmManagementContainer {
                station_type,
                reference_position,
            },
            perceived_objects: Vec::new(),
        })
    }

    /// Adds a perceived object (builder style). Objects past
    /// [`Self::MAX_OBJECTS`] are silently dropped — encoding would
    /// reject the container otherwise.
    #[must_use]
    pub fn with_object(mut self, object: CpmPerceivedObject) -> Self {
        if self.perceived_objects.len() < Self::MAX_OBJECTS {
            self.perceived_objects.push(object);
        }
        self
    }

    /// Serializes to UPER bytes.
    ///
    /// # Errors
    ///
    /// Returns an error if any field violates its constraint.
    pub fn to_bytes(&self) -> uper::Result<Vec<u8>> {
        uper::encode(self)
    }

    /// Parses a CPM from UPER bytes.
    ///
    /// # Errors
    ///
    /// Returns an error on truncated input, a non-CPM `messageID`, or
    /// constraint violations.
    pub fn from_bytes(bytes: &[u8]) -> uper::Result<Self> {
        uper::decode(bytes)
    }
}

impl Codec for Cpm {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        self.header.encode(w)?;
        w.write_constrained_u64(u64::from(self.generation_delta_time), 0, 65_535)?;
        self.management.encode(w)?;
        w.write_constrained_u64(
            self.perceived_objects.len() as u64,
            0,
            Self::MAX_OBJECTS as u64,
        )?;
        for object in &self.perceived_objects {
            object.encode(w)?;
        }
        Ok(())
    }

    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        let header = ItsPduHeader::decode(r)?;
        if header.message_id != MessageId::Cpm {
            return Err(UperError::InvalidEnum {
                index: u64::from(header.message_id.code()),
                name: "Cpm",
            });
        }
        let generation_delta_time = r.read_constrained_u64(0, 65_535)? as u16;
        let management = CpmManagementContainer::decode(r)?;
        let count = r.read_constrained_u64(0, Self::MAX_OBJECTS as u64)? as usize;
        let mut perceived_objects = Vec::with_capacity(count);
        for _ in 0..count {
            perceived_objects.push(CpmPerceivedObject::decode(r)?);
        }
        Ok(Self {
            header,
            generation_delta_time,
            management,
            perceived_objects,
        })
    }
}

/// CP service configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpServiceConfig {
    /// Minimum interval between generated CPMs (`T_GenCpm`).
    pub period: SimDuration,
    /// Objects carried per CPM at most (the freshest first).
    pub max_objects: usize,
    /// Generate a CPM even when no object is perceived (liveness
    /// beacon). Off by default: an empty perception shares nothing.
    pub send_empty: bool,
}

impl Default for CpServiceConfig {
    fn default() -> Self {
        Self {
            period: SimDuration::from_millis(100),
            max_objects: Cpm::MAX_OBJECTS,
            send_empty: false,
        }
    }
}

/// The CP basic service of one ITS station: rate-limits CPM generation
/// the way [`CaService`](crate::ca::CaService) does for CAMs.
///
/// # Example
///
/// ```
/// use facilities::cpm::{CpService, CpServiceConfig, CpmPerceivedObject, ObjectClass};
/// use its_messages::common::{ReferencePosition, StationId, StationType};
/// use sim_core::SimTime;
///
/// let mut cp = CpService::new(
///     StationId::new(15).unwrap(),
///     StationType::RoadSideUnit,
///     CpServiceConfig::default(),
/// );
/// let pos = ReferencePosition::from_degrees(41.178, -8.608);
/// let seen = [CpmPerceivedObject::from_planar(2, 3.0, 0.5, ObjectClass::Person, 90)];
/// // First poll with a perceived object produces a CPM.
/// assert!(cp.poll(SimTime::ZERO, pos, &seen).is_some());
/// // Inside the period, none is due.
/// assert!(cp.poll(SimTime::from_millis(50), pos, &seen).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct CpService {
    station_id: StationId,
    station_type: StationType,
    config: CpServiceConfig,
    last: Option<SimTime>,
    generated: u64,
}

impl CpService {
    /// Creates the service for a station.
    pub fn new(station_id: StationId, station_type: StationType, config: CpServiceConfig) -> Self {
        Self {
            station_id,
            station_type,
            config,
            last: None,
            generated: 0,
        }
    }

    /// Total CPMs generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Polls the service: returns a CPM if one is due at `now` given
    /// the objects currently perceived by the station's own sensors.
    /// Objects beyond the configured cap are dropped, front-first.
    pub fn poll(
        &mut self,
        now: SimTime,
        position: ReferencePosition,
        objects: &[CpmPerceivedObject],
    ) -> Option<Cpm> {
        if objects.is_empty() && !self.config.send_empty {
            return None;
        }
        if let Some(last) = self.last {
            if now.saturating_duration_since(last) < self.config.period {
                return None;
            }
        }
        self.last = Some(now);
        self.generated += 1;
        let gdt = (now.as_millis() % 65_536) as u16;
        let cap = self.config.max_objects.min(Cpm::MAX_OBJECTS);
        let mut cpm = Cpm {
            header: ItsPduHeader::new(MessageId::Cpm, self.station_id),
            generation_delta_time: gdt,
            management: CpmManagementContainer {
                station_type: self.station_type,
                reference_position: position,
            },
            perceived_objects: Vec::with_capacity(objects.len().min(cap)),
        };
        for object in objects.iter().take(cap) {
            cpm.perceived_objects.push(*object);
        }
        Some(cpm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin() -> ReferencePosition {
        ReferencePosition::from_degrees(41.178, -8.608)
    }

    fn sample_cpm(objects: usize) -> Cpm {
        let mut cpm = Cpm::new(
            StationId::new(15).unwrap(),
            StationType::RoadSideUnit,
            origin(),
            1234,
        )
        .unwrap();
        for i in 0..objects {
            cpm = cpm.with_object(CpmPerceivedObject {
                object_id: i as u16,
                x_distance_cm: 350 - i as i32 * 40,
                y_distance_cm: -120 + i as i32 * 17,
                x_speed_cm_s: 150,
                y_speed_cm_s: -42,
                confidence_pct: 88,
                class: ObjectClass::Person,
            });
        }
        cpm
    }

    #[test]
    fn roundtrip_with_objects() {
        for n in [0usize, 1, 3, 7] {
            let cpm = sample_cpm(n);
            let bytes = cpm.to_bytes().unwrap();
            assert_eq!(Cpm::from_bytes(&bytes).unwrap(), cpm);
        }
    }

    #[test]
    fn wire_size_is_compact() {
        // Mandatory-only CPM: header + gdt + management + empty count.
        let empty = sample_cpm(0).to_bytes().unwrap();
        assert!(empty.len() < 25, "empty CPM is {} bytes", empty.len());
        // Each object costs 91 bits ≈ 12 bytes on the wire.
        let five = sample_cpm(5).to_bytes().unwrap();
        assert!(
            five.len() < empty.len() + 5 * 12 + 2,
            "5-object CPM is {} bytes",
            five.len()
        );
    }

    #[test]
    fn rejects_non_cpm_message_id() {
        let cam_header = ItsPduHeader::new(MessageId::Cam, StationId::new(7).unwrap());
        let mut w = BitWriter::new();
        cam_header.encode(&mut w).unwrap();
        w.write_constrained_u64(0, 0, 65_535).unwrap();
        let bytes = w.finish();
        assert!(Cpm::from_bytes(&bytes).is_err());
    }

    #[test]
    fn out_of_range_object_fails_encode() {
        let mut cpm = sample_cpm(1);
        cpm.perceived_objects[0].x_distance_cm = 1_000_000;
        assert!(cpm.to_bytes().is_err());
    }

    #[test]
    fn from_planar_saturates_to_wire_ranges() {
        let o = CpmPerceivedObject::from_planar(1, 5_000.0, -5_000.0, ObjectClass::Vehicle, 250);
        assert_eq!(o.x_distance_cm, 132_767);
        assert_eq!(o.y_distance_cm, -132_768);
        assert_eq!(o.confidence_pct, 100);
        let (dx, dy) =
            CpmPerceivedObject::from_planar(1, 3.5, -1.0, ObjectClass::Person, 90).offset_m();
        assert!((dx - 3.5).abs() < 0.011 && (dy + 1.0).abs() < 0.011);
    }

    #[test]
    fn object_cap_drops_overflow() {
        let mut cpm = sample_cpm(0);
        for i in 0..(Cpm::MAX_OBJECTS + 10) {
            cpm = cpm.with_object(CpmPerceivedObject {
                object_id: i as u16,
                ..CpmPerceivedObject::default()
            });
        }
        assert_eq!(cpm.perceived_objects.len(), Cpm::MAX_OBJECTS);
        let bytes = cpm.to_bytes().unwrap();
        assert_eq!(
            Cpm::from_bytes(&bytes).unwrap().perceived_objects.len(),
            Cpm::MAX_OBJECTS
        );
    }

    #[test]
    fn service_rate_limits_and_counts() {
        let mut cp = CpService::new(
            StationId::new(15).unwrap(),
            StationType::RoadSideUnit,
            CpServiceConfig::default(),
        );
        let seen = [CpmPerceivedObject::from_planar(
            2,
            3.0,
            0.5,
            ObjectClass::Person,
            90,
        )];
        assert!(cp.poll(SimTime::ZERO, origin(), &seen).is_some());
        assert!(cp.poll(SimTime::from_millis(99), origin(), &seen).is_none());
        let cpm = cp.poll(SimTime::from_millis(100), origin(), &seen).unwrap();
        assert_eq!(cpm.perceived_objects.len(), 1);
        assert_eq!(cpm.generation_delta_time, 100);
        assert_eq!(cp.generated(), 2);
        // Nothing perceived, nothing shared (send_empty off).
        assert!(cp.poll(SimTime::from_millis(300), origin(), &[]).is_none());
    }

    #[test]
    fn service_send_empty_beacons() {
        let mut cp = CpService::new(
            StationId::new(15).unwrap(),
            StationType::RoadSideUnit,
            CpServiceConfig {
                send_empty: true,
                ..CpServiceConfig::default()
            },
        );
        let cpm = cp.poll(SimTime::ZERO, origin(), &[]).unwrap();
        assert!(cpm.perceived_objects.is_empty());
    }

    #[test]
    fn truncated_bytes_error_not_panic() {
        let bytes = sample_cpm(3).to_bytes().unwrap();
        for len in 0..bytes.len() {
            assert!(
                Cpm::from_bytes(&bytes[..len]).is_err(),
                "truncation at {len} decoded"
            );
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
                let _ = Cpm::from_bytes(&bytes);
            }

            #[test]
            fn roundtrip_arbitrary_objects(
                n in 0usize..12,
                seed in any::<u64>(),
            ) {
                let mut rng = sim_core::SimRng::seed_from(seed);
                let mut cpm = sample_cpm(0);
                for i in 0..n {
                    cpm = cpm.with_object(CpmPerceivedObject {
                        object_id: i as u16,
                        x_distance_cm: rng.below(265_536) as i32 - 132_768,
                        y_distance_cm: rng.below(265_536) as i32 - 132_768,
                        x_speed_cm_s: (rng.below(32_767) as i32 - 16_383) as i16,
                        y_speed_cm_s: (rng.below(32_767) as i32 - 16_383) as i16,
                        confidence_pct: rng.below(101) as u8,
                        class: ObjectClass::from_index(rng.below(4)).unwrap(),
                    });
                }
                let bytes = cpm.to_bytes().unwrap();
                prop_assert_eq!(Cpm::from_bytes(&bytes).unwrap(), cpm);
            }
        }
    }
}
