//! Local Dynamic Map (ETSI EN 302 895).
//!
//! The LDM "builds a digital map of all dynamic objects and road details
//! … sensed by the own station or through near-by road users through
//! messages like CAM" (paper §II-B). In the testbed the edge node's Hazard
//! Advertisement Service consults the LDM to decide whether a detected
//! road user implies a collision risk for a CAM-tracked vehicle.
//!
//! Three tables are kept, mirroring OpenC2X's sqlite-backed LDM:
//! stations (from CAMs), events (from DENMs), and locally perceived
//! objects (from the camera pipeline).

use its_messages::cam::Cam;
use its_messages::common::{ActionId, ReferencePosition, StationId};
use its_messages::denm::Denm;
use sim_core::SimTime;
use std::collections::BTreeMap;

/// An object perceived by the station's own sensors (the road-side
/// camera), not learnt over the air.
#[derive(Debug, Clone, PartialEq)]
pub struct PerceivedObject {
    /// Locally-assigned object id.
    pub id: u32,
    /// Estimated position.
    pub position: ReferencePosition,
    /// Estimated distance from the sensor, metres.
    pub distance_m: f64,
    /// Classifier label (e.g. `"stop sign"`, `"motorbike"`).
    pub class_label: &'static str,
    /// Classifier confidence `[0, 1]`.
    pub confidence: f64,
}

/// A timestamped LDM record.
#[derive(Debug, Clone, PartialEq)]
struct Stamped<T> {
    value: T,
    updated: SimTime,
}

/// The Local Dynamic Map of one ITS station.
///
/// # Example
///
/// ```
/// use facilities::ldm::Ldm;
/// use its_messages::cam::Cam;
/// use its_messages::common::{ReferencePosition, StationId, StationType};
/// use sim_core::SimTime;
///
/// let mut ldm = Ldm::new();
/// let cam = Cam::basic(
///     StationId::new(7).unwrap(), 0, StationType::PassengerCar,
///     ReferencePosition::from_degrees(41.178, -8.608));
/// ldm.insert_cam(SimTime::ZERO, cam);
/// assert_eq!(ldm.station_count(), 1);
/// let near = ldm.stations_within(
///     &ReferencePosition::from_degrees(41.178, -8.608), 10.0);
/// assert_eq!(near.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ldm {
    stations: BTreeMap<StationId, Stamped<Cam>>,
    events: BTreeMap<ActionId, Stamped<Denm>>,
    objects: BTreeMap<u32, Stamped<PerceivedObject>>,
}

impl Ldm {
    /// Creates an empty LDM.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or refreshes a station track from a received CAM.
    pub fn insert_cam(&mut self, now: SimTime, cam: Cam) {
        self.stations.insert(
            cam.header.station_id,
            Stamped {
                value: cam,
                updated: now,
            },
        );
    }

    /// Inserts or refreshes an event from a received DENM. Termination
    /// DENMs remove the event instead.
    pub fn insert_denm(&mut self, now: SimTime, denm: Denm) {
        let action = denm.management.action_id;
        if denm.is_termination() {
            self.events.remove(&action);
        } else {
            self.events.insert(
                action,
                Stamped {
                    value: denm,
                    updated: now,
                },
            );
        }
    }

    /// Inserts or refreshes a locally perceived object.
    pub fn insert_object(&mut self, now: SimTime, object: PerceivedObject) {
        self.objects.insert(
            object.id,
            Stamped {
                value: object,
                updated: now,
            },
        );
    }

    /// Number of tracked stations.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// Number of active events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Number of perceived objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Latest CAM of a station, if tracked.
    pub fn station(&self, id: StationId) -> Option<&Cam> {
        self.stations.get(&id).map(|s| &s.value)
    }

    /// Latest DENM of an event, if active.
    pub fn event(&self, action: ActionId) -> Option<&Denm> {
        self.events.get(&action).map(|s| &s.value)
    }

    /// A perceived object by id.
    pub fn object(&self, id: u32) -> Option<&PerceivedObject> {
        self.objects.get(&id).map(|s| &s.value)
    }

    /// All station CAMs whose reference position lies within `radius_m`
    /// of `centre`, sorted nearest first.
    pub fn stations_within(&self, centre: &ReferencePosition, radius_m: f64) -> Vec<&Cam> {
        let mut hits: Vec<(f64, &Cam)> = self
            .stations
            .values()
            .filter_map(|s| {
                let d = centre.planar_distance_m(&s.value.basic.reference_position);
                (d <= radius_m).then_some((d, &s.value))
            })
            .collect();
        hits.sort_by(|a, b| a.0.total_cmp(&b.0));
        hits.into_iter().map(|(_, cam)| cam).collect()
    }

    /// All perceived objects within `radius_m` of `centre`, nearest first.
    pub fn objects_within(
        &self,
        centre: &ReferencePosition,
        radius_m: f64,
    ) -> Vec<&PerceivedObject> {
        let mut hits: Vec<(f64, &PerceivedObject)> = self
            .objects
            .values()
            .filter_map(|s| {
                let d = centre.planar_distance_m(&s.value.position);
                (d <= radius_m).then_some((d, &s.value))
            })
            .collect();
        hits.sort_by(|a, b| a.0.total_cmp(&b.0));
        hits.into_iter().map(|(_, o)| o).collect()
    }

    /// Active (non-expired) events at wall-time reference `now`, judging
    /// expiry by insertion time + validity duration.
    pub fn active_events(&self, now: SimTime) -> Vec<&Denm> {
        self.events
            .values()
            .filter(|s| {
                let validity_s = u64::from(s.value.management.validity_duration);
                now.saturating_duration_since(s.updated).as_millis() <= validity_s * 1000
            })
            .map(|s| &s.value)
            .collect()
    }

    /// Drops every record not refreshed within `max_age_ms` of `now`.
    /// Returns the number of records removed.
    pub fn gc(&mut self, now: SimTime, max_age_ms: u64) -> usize {
        let before = self.stations.len() + self.events.len() + self.objects.len();
        let fresh =
            |updated: SimTime| now.saturating_duration_since(updated).as_millis() <= max_age_ms;
        self.stations.retain(|_, s| fresh(s.updated));
        self.events.retain(|_, s| fresh(s.updated));
        self.objects.retain(|_, s| fresh(s.updated));
        before - (self.stations.len() + self.events.len() + self.objects.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use its_messages::common::{StationType, TimestampIts};
    use its_messages::denm::{ManagementContainer, Termination};

    fn cam_at(id: u32, lat: f64) -> Cam {
        Cam::basic(
            StationId::new(id).unwrap(),
            0,
            StationType::PassengerCar,
            ReferencePosition::from_degrees(lat, -8.608),
        )
    }

    fn denm(seq: u16, validity_s: u32) -> Denm {
        let mut m = ManagementContainer::new(
            ActionId::new(StationId::new(15).unwrap(), seq),
            TimestampIts::new(0).unwrap(),
            TimestampIts::new(0).unwrap(),
            ReferencePosition::from_degrees(41.178, -8.608),
            StationType::RoadSideUnit,
        );
        m.validity_duration = validity_s;
        Denm::new(StationId::new(15).unwrap(), m)
    }

    #[test]
    fn cam_refresh_replaces_track() {
        let mut ldm = Ldm::new();
        ldm.insert_cam(SimTime::ZERO, cam_at(7, 41.178));
        ldm.insert_cam(SimTime::from_millis(100), cam_at(7, 41.179));
        assert_eq!(ldm.station_count(), 1);
        let lat = ldm
            .station(StationId::new(7).unwrap())
            .unwrap()
            .basic
            .reference_position
            .latitude
            .as_degrees()
            .unwrap();
        assert!((lat - 41.179).abs() < 1e-6);
    }

    #[test]
    fn stations_within_sorted_by_distance() {
        let mut ldm = Ldm::new();
        let base = 41.178;
        let m_per_deg = 111_194.9;
        ldm.insert_cam(SimTime::ZERO, cam_at(1, base + 30.0 / m_per_deg));
        ldm.insert_cam(SimTime::ZERO, cam_at(2, base + 5.0 / m_per_deg));
        ldm.insert_cam(SimTime::ZERO, cam_at(3, base + 100.0 / m_per_deg));
        let centre = ReferencePosition::from_degrees(base, -8.608);
        let near = ldm.stations_within(&centre, 50.0);
        let ids: Vec<u32> = near.iter().map(|c| c.header.station_id.value()).collect();
        assert_eq!(ids, vec![2, 1]);
    }

    #[test]
    fn termination_denm_removes_event() {
        let mut ldm = Ldm::new();
        ldm.insert_denm(SimTime::ZERO, denm(1, 600));
        assert_eq!(ldm.event_count(), 1);
        let mut cancel = denm(1, 600);
        cancel.management.termination = Some(Termination::IsCancellation);
        ldm.insert_denm(SimTime::from_millis(10), cancel);
        assert_eq!(ldm.event_count(), 0);
    }

    #[test]
    fn active_events_expire_by_validity() {
        let mut ldm = Ldm::new();
        ldm.insert_denm(SimTime::ZERO, denm(1, 1)); // 1 s validity
        assert_eq!(ldm.active_events(SimTime::from_millis(500)).len(), 1);
        assert_eq!(ldm.active_events(SimTime::from_millis(1500)).len(), 0);
        // Still stored (GC is separate from validity filtering).
        assert_eq!(ldm.event_count(), 1);
    }

    #[test]
    fn perceived_objects_query() {
        let mut ldm = Ldm::new();
        ldm.insert_object(
            SimTime::ZERO,
            PerceivedObject {
                id: 1,
                position: ReferencePosition::from_degrees(41.178, -8.608),
                distance_m: 1.45,
                class_label: "stop sign",
                confidence: 0.93,
            },
        );
        let centre = ReferencePosition::from_degrees(41.178, -8.608);
        assert_eq!(ldm.objects_within(&centre, 5.0).len(), 1);
        assert_eq!(ldm.object(1).unwrap().class_label, "stop sign");
        assert!(ldm.object(2).is_none());
    }

    #[test]
    fn gc_drops_stale_records_only() {
        let mut ldm = Ldm::new();
        ldm.insert_cam(SimTime::ZERO, cam_at(1, 41.178));
        ldm.insert_cam(SimTime::from_millis(900), cam_at(2, 41.179));
        ldm.insert_denm(SimTime::ZERO, denm(1, 600));
        let removed = ldm.gc(SimTime::from_millis(1000), 500);
        assert_eq!(removed, 2); // station 1 and the DENM
        assert_eq!(ldm.station_count(), 1);
        assert!(ldm.station(StationId::new(2).unwrap()).is_some());
    }

    #[test]
    fn cooperative_perception_combines_sources() {
        // The hazard service's world view: one CAM-tracked vehicle and one
        // camera-perceived object, both queryable around the intersection.
        let mut ldm = Ldm::new();
        ldm.insert_cam(SimTime::ZERO, cam_at(7, 41.17801));
        ldm.insert_object(
            SimTime::ZERO,
            PerceivedObject {
                id: 9,
                position: ReferencePosition::from_degrees(41.17802, -8.608),
                distance_m: 1.5,
                class_label: "stop sign",
                confidence: 0.9,
            },
        );
        let centre = ReferencePosition::from_degrees(41.178, -8.608);
        assert_eq!(ldm.stations_within(&centre, 10.0).len(), 1);
        assert_eq!(ldm.objects_within(&centre, 10.0).len(), 1);
    }
}
