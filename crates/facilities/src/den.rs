//! Decentralized Environmental Notification basic service
//! (ETSI EN 302 637-3).
//!
//! The originating side implements the `AppDENM_trigger`, `AppDENM_update`
//! and `AppDENM_terminate` interfaces the application layer calls (in the
//! testbed, the Hazard Advertisement Service calls `trigger` through the
//! OpenC2X HTTP API). Triggered events are retransmitted at the requested
//! repetition interval until their repetition duration elapses.
//!
//! The receiving side de-duplicates by `(ActionID, referenceTime)` and
//! hands genuinely new or updated DENMs to the application (the vehicle's
//! Message Handler).

use its_messages::cause_codes::CauseCode;
use its_messages::common::{
    ActionId, ReferencePosition, RelevanceDistance, StationId, StationType, TimestampIts,
};
use its_messages::denm::{Denm, ManagementContainer, SituationContainer, Termination};
use sim_core::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// An application request to advertise an event (input to
/// [`DenService::trigger`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DenRequest {
    /// Time the event was detected (station wall clock).
    pub detection_time: TimestampIts,
    /// Position of the event.
    pub event_position: ReferencePosition,
    /// Event classification for the Situation container.
    pub cause: CauseCode,
    /// Information quality `[0, 7]`.
    pub information_quality: u8,
    /// How long the notification remains valid.
    pub validity_duration_s: u32,
    /// Repetition interval between consecutive transmissions, if the
    /// event should be repeated.
    pub repetition_interval: Option<SimDuration>,
    /// Total duration over which repetitions continue.
    pub repetition_duration: Option<SimDuration>,
    /// Relevance distance band.
    pub relevance_distance: Option<RelevanceDistance>,
}

impl DenRequest {
    /// A one-shot (no repetition) request, as the testbed's collision
    /// avoidance application issues.
    pub fn one_shot(
        detection_time: TimestampIts,
        event_position: ReferencePosition,
        cause: CauseCode,
    ) -> Self {
        Self {
            detection_time,
            event_position,
            cause,
            information_quality: 7,
            validity_duration_s: 600,
            repetition_interval: None,
            repetition_duration: None,
            relevance_distance: Some(RelevanceDistance::LessThan50m),
        }
    }
}

/// One active originated event.
#[derive(Debug, Clone)]
struct ActiveEvent {
    request: DenRequest,
    action_id: ActionId,
    /// Next scheduled transmission, if any.
    next_tx: Option<SimTime>,
    /// When repetitions stop.
    repeat_until: SimTime,
    /// Cancelled by the application.
    terminated: bool,
}

/// The DEN basic service of one ITS station (originator + receiver roles).
///
/// # Example
///
/// ```
/// use facilities::den::{DenRequest, DenService};
/// use its_messages::cause_codes::{CauseCode, CollisionRiskSubCause};
/// use its_messages::common::{ReferencePosition, StationId, StationType, TimestampIts};
/// use sim_core::SimTime;
///
/// let mut den = DenService::new(
///     StationId::new(15).unwrap(), StationType::RoadSideUnit);
/// let action = den.trigger(
///     SimTime::ZERO,
///     TimestampIts::new(1000).unwrap(),
///     DenRequest::one_shot(
///         TimestampIts::new(1000).unwrap(),
///         ReferencePosition::from_degrees(41.178, -8.608),
///         CauseCode::CollisionRisk(CollisionRiskSubCause::CrossingCollisionRisk),
///     ),
/// );
/// let due = den.poll(SimTime::ZERO, TimestampIts::new(1000).unwrap());
/// assert_eq!(due.len(), 1);
/// assert_eq!(due[0].management.action_id, action);
/// ```
#[derive(Debug, Clone)]
pub struct DenService {
    station_id: StationId,
    station_type: StationType,
    next_sequence: u16,
    events: Vec<ActiveEvent>,
    /// Receiver-side table: latest `referenceTime` seen per action id.
    received: BTreeMap<ActionId, TimestampIts>,
}

impl DenService {
    /// Creates the service for a station.
    pub fn new(station_id: StationId, station_type: StationType) -> Self {
        Self {
            station_id,
            station_type,
            next_sequence: 0,
            events: Vec::new(),
            received: BTreeMap::new(),
        }
    }

    /// Number of events this originator still tracks.
    pub fn active_events(&self) -> usize {
        self.events.iter().filter(|e| !e.terminated).count()
    }

    /// `AppDENM_trigger`: registers a new event and schedules its first
    /// transmission immediately. Returns the allocated [`ActionId`].
    pub fn trigger(&mut self, now: SimTime, _wall: TimestampIts, request: DenRequest) -> ActionId {
        let action_id = ActionId::new(self.station_id, self.next_sequence);
        self.next_sequence = self.next_sequence.wrapping_add(1);
        let repeat_until = match (request.repetition_interval, request.repetition_duration) {
            (Some(_), Some(d)) => now + d,
            _ => now,
        };
        self.events.push(ActiveEvent {
            request,
            action_id,
            next_tx: Some(now),
            repeat_until,
            terminated: false,
        });
        action_id
    }

    /// `AppDENM_update`: replaces the event description and schedules an
    /// immediate retransmission. Returns `false` if the action id is
    /// unknown or already terminated.
    pub fn update(&mut self, now: SimTime, action_id: ActionId, request: DenRequest) -> bool {
        if let Some(ev) = self
            .events
            .iter_mut()
            .find(|e| e.action_id == action_id && !e.terminated)
        {
            let repeat_until = match (request.repetition_interval, request.repetition_duration) {
                (Some(_), Some(d)) => now + d,
                _ => now,
            };
            ev.request = request;
            ev.next_tx = Some(now);
            ev.repeat_until = repeat_until;
            true
        } else {
            false
        }
    }

    /// `AppDENM_terminate`: emits a cancellation DENM and stops
    /// repetitions. Returns the cancellation message, or `None` if the
    /// action id is unknown.
    pub fn terminate(
        &mut self,
        _now: SimTime,
        wall: TimestampIts,
        action_id: ActionId,
    ) -> Option<Denm> {
        let ev = self
            .events
            .iter_mut()
            .find(|e| e.action_id == action_id && !e.terminated)?;
        ev.terminated = true;
        ev.next_tx = None;
        let mut management = ManagementContainer::new(
            action_id,
            ev.request.detection_time,
            wall,
            ev.request.event_position,
            self.station_type,
        );
        management.termination = Some(Termination::IsCancellation);
        management.validity_duration = ev.request.validity_duration_s;
        Some(Denm::new(self.station_id, management))
    }

    /// Returns every DENM due for transmission at `now`, advancing the
    /// repetition schedule. `wall` is the station's wall clock, stamped
    /// into `referenceTime`.
    pub fn poll(&mut self, now: SimTime, wall: TimestampIts) -> Vec<Denm> {
        let mut out = Vec::new();
        self.poll_into(now, wall, &mut out);
        out
    }

    /// [`poll`](Self::poll) into a caller-provided buffer, appending the
    /// due DENMs. Lets a per-event hot path reuse one buffer across
    /// polls instead of allocating a fresh `Vec` each time.
    pub fn poll_into(&mut self, now: SimTime, wall: TimestampIts, out: &mut Vec<Denm>) {
        for ev in &mut self.events {
            let Some(next_tx) = ev.next_tx else { continue };
            if next_tx > now {
                continue;
            }
            let mut management = ManagementContainer::new(
                ev.action_id,
                ev.request.detection_time,
                wall,
                ev.request.event_position,
                self.station_type,
            );
            management.validity_duration = ev.request.validity_duration_s;
            management.relevance_distance = ev.request.relevance_distance;
            management.transmission_interval_ms = ev
                .request
                .repetition_interval
                .map(|i| (i.as_millis().clamp(1, 10000)) as u16);
            let situation =
                SituationContainer::new(ev.request.information_quality.min(7), ev.request.cause)
                    .expect("information quality clamped to range");
            out.push(Denm::new(self.station_id, management).with_situation(situation));
            // Schedule the next repetition, if within the repetition window.
            ev.next_tx = match ev.request.repetition_interval {
                Some(interval) => {
                    let next = now + interval;
                    (next <= ev.repeat_until).then_some(next)
                }
                None => None,
            };
        }
    }

    /// The next instant any transmission is due, for efficient scheduling.
    pub fn next_due(&self) -> Option<SimTime> {
        self.events.iter().filter_map(|e| e.next_tx).min()
    }

    /// Receiver role: processes an incoming DENM. Returns `true` if the
    /// message is new (or a genuine update) and should be delivered to the
    /// application; duplicates and stale updates return `false`.
    pub fn receive(&mut self, denm: &Denm) -> bool {
        let action = denm.management.action_id;
        let reference = denm.management.reference_time;
        match self.received.get(&action) {
            Some(&latest) if latest >= reference => false,
            _ => {
                self.received.insert(action, reference);
                true
            }
        }
    }

    /// Drops receiver-side state older than `max_age_ms` relative to the
    /// given wall time (simple validity GC).
    pub fn gc_received(&mut self, wall: TimestampIts, max_age_ms: u64) {
        self.received
            .retain(|_, &mut seen| wall.millis_since(seen) <= max_age_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use its_messages::cause_codes::CollisionRiskSubCause;

    fn wall(ms: u64) -> TimestampIts {
        TimestampIts::new(ms).unwrap()
    }

    fn collision_request(detect_ms: u64) -> DenRequest {
        DenRequest::one_shot(
            wall(detect_ms),
            ReferencePosition::from_degrees(41.178, -8.608),
            CauseCode::CollisionRisk(CollisionRiskSubCause::CrossingCollisionRisk),
        )
    }

    fn service() -> DenService {
        DenService::new(StationId::new(15).unwrap(), StationType::RoadSideUnit)
    }

    #[test]
    fn one_shot_transmits_exactly_once() {
        let mut den = service();
        den.trigger(SimTime::ZERO, wall(100), collision_request(100));
        assert_eq!(den.poll(SimTime::ZERO, wall(100)).len(), 1);
        assert!(den.poll(SimTime::from_millis(10), wall(110)).is_empty());
        assert!(den.next_due().is_none());
    }

    #[test]
    fn denm_carries_request_fields() {
        let mut den = service();
        den.trigger(SimTime::ZERO, wall(100), collision_request(42));
        let denms = den.poll(SimTime::ZERO, wall(100));
        let d = &denms[0];
        assert_eq!(d.management.detection_time, wall(42));
        assert_eq!(d.management.reference_time, wall(100));
        assert_eq!(d.event_type().unwrap().cause_code(), 97);
        assert_eq!(
            d.management.relevance_distance,
            Some(RelevanceDistance::LessThan50m)
        );
        assert_eq!(d.management.station_type, StationType::RoadSideUnit);
    }

    #[test]
    fn sequence_numbers_increment() {
        let mut den = service();
        let a = den.trigger(SimTime::ZERO, wall(0), collision_request(0));
        let b = den.trigger(SimTime::ZERO, wall(0), collision_request(0));
        assert_eq!(a.sequence_number + 1, b.sequence_number);
    }

    #[test]
    fn repetition_schedule() {
        let mut den = service();
        let mut req = collision_request(0);
        req.repetition_interval = Some(SimDuration::from_millis(100));
        req.repetition_duration = Some(SimDuration::from_millis(350));
        den.trigger(SimTime::ZERO, wall(0), req);
        let mut count = 0;
        for ms in (0..=1000).step_by(10) {
            count += den.poll(SimTime::from_millis(ms), wall(ms)).len();
        }
        // t = 0, 100, 200, 300 (400 > 350 window).
        assert_eq!(count, 4);
    }

    #[test]
    fn repetition_interval_stamped_in_management() {
        let mut den = service();
        let mut req = collision_request(0);
        req.repetition_interval = Some(SimDuration::from_millis(100));
        req.repetition_duration = Some(SimDuration::from_millis(200));
        den.trigger(SimTime::ZERO, wall(0), req);
        let denms = den.poll(SimTime::ZERO, wall(0));
        assert_eq!(denms[0].management.transmission_interval_ms, Some(100));
    }

    #[test]
    fn update_replaces_and_retransmits() {
        let mut den = service();
        let action = den.trigger(SimTime::ZERO, wall(0), collision_request(0));
        den.poll(SimTime::ZERO, wall(0));
        let mut updated = collision_request(0);
        updated.cause = CauseCode::HazardousLocationObstacleOnTheRoad(0);
        assert!(den.update(SimTime::from_millis(50), action, updated));
        let denms = den.poll(SimTime::from_millis(50), wall(50));
        assert_eq!(denms.len(), 1);
        assert_eq!(denms[0].event_type().unwrap().cause_code(), 10);
        // Unknown action id.
        let bogus = ActionId::new(StationId::new(99).unwrap(), 0);
        assert!(!den.update(SimTime::from_millis(60), bogus, collision_request(0)));
    }

    #[test]
    fn terminate_emits_cancellation_and_stops() {
        let mut den = service();
        let mut req = collision_request(0);
        req.repetition_interval = Some(SimDuration::from_millis(100));
        req.repetition_duration = Some(SimDuration::from_secs(10));
        let action = den.trigger(SimTime::ZERO, wall(0), req);
        den.poll(SimTime::ZERO, wall(0));
        let cancel = den
            .terminate(SimTime::from_millis(150), wall(150), action)
            .unwrap();
        assert!(cancel.is_termination());
        assert_eq!(den.active_events(), 0);
        assert!(den.poll(SimTime::from_millis(200), wall(200)).is_empty());
        // Double-terminate returns None.
        assert!(den
            .terminate(SimTime::from_millis(300), wall(300), action)
            .is_none());
    }

    #[test]
    fn receiver_dedupes_by_action_and_reference_time() {
        let mut tx = service();
        tx.trigger(SimTime::ZERO, wall(100), collision_request(100));
        let denm = tx.poll(SimTime::ZERO, wall(100)).remove(0);

        let mut rx = DenService::new(StationId::new(1).unwrap(), StationType::PassengerCar);
        assert!(rx.receive(&denm), "first copy is new");
        assert!(!rx.receive(&denm), "exact duplicate dropped");

        // An update with a later referenceTime passes.
        let mut newer = denm.clone();
        newer.management.reference_time = wall(200);
        assert!(rx.receive(&newer));
        // A stale copy with the old referenceTime is now dropped.
        assert!(!rx.receive(&denm));
    }

    #[test]
    fn receiver_gc_expires_entries() {
        let mut tx = service();
        tx.trigger(SimTime::ZERO, wall(100), collision_request(100));
        let denm = tx.poll(SimTime::ZERO, wall(100)).remove(0);
        let mut rx = DenService::new(StationId::new(1).unwrap(), StationType::PassengerCar);
        rx.receive(&denm);
        rx.gc_received(wall(100 + 5000), 1000);
        // After GC the same message counts as new again.
        assert!(rx.receive(&denm));
    }

    #[test]
    fn next_due_tracks_earliest_repetition() {
        let mut den = service();
        let mut req = collision_request(0);
        req.repetition_interval = Some(SimDuration::from_millis(100));
        req.repetition_duration = Some(SimDuration::from_secs(1));
        den.trigger(SimTime::ZERO, wall(0), req);
        assert_eq!(den.next_due(), Some(SimTime::ZERO));
        den.poll(SimTime::ZERO, wall(0));
        assert_eq!(den.next_due(), Some(SimTime::from_millis(100)));
    }
}
