//! ETSI ITS Facilities layer: Cooperative Awareness, Decentralized
//! Environmental Notification, and the Local Dynamic Map.
//!
//! These are the services the paper's §II-B singles out: "the Facilities
//! Layer providing some of the most noteworthy services, namely the
//! Cooperative Awareness (CA) and Decentralized Environmental Notification
//! (DEN) services", both connected to the LDM, "a digital map of all
//! dynamic objects and road details".
//!
//! * [`ca::CaService`] — CAM generation with the EN 302 637-2 adaptive
//!   `T_GenCam` trigger rules (heading / position / speed deltas),
//! * [`den::DenService`] — DENM trigger / update / terminate with
//!   repetition and validity handling (EN 302 637-3 `AppDENM_*`),
//! * [`cpm::CpService`] — collective perception (TS 103 324 profile):
//!   CPMs carry a station's own detections so a receiver's LDM extends
//!   past its sensor range,
//! * [`ldm::Ldm`] — keyed store of CAM-tracked stations, active DENMs and
//!   locally-perceived objects, with area queries and garbage collection.
//!
//! All services are passive state machines driven by `poll`-style calls
//! from the discrete-event loop, so they compose with any scheduler.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod ca;
pub mod cpm;
pub mod den;
pub mod ldm;

pub use ca::{CaService, CamTriggerConfig, StationState};
pub use cpm::{CpService, CpServiceConfig, Cpm, CpmPerceivedObject, ObjectClass};
pub use den::{DenRequest, DenService};
pub use ldm::{Ldm, PerceivedObject};
