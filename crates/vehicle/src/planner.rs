//! Motion Planner and Message Handler (paper Figure 3, vehicle side).
//!
//! The Motion Planner "decides the next actions of the vehicle on the
//! short/medium term and takes into consideration, besides its own sensors
//! and navigation information, the data received from the network". In
//! normal operation it follows the line; when the Message Handler reports
//! a DENM, it overrides with an emergency stop — in the testbed, *any*
//! received DENM cuts wheel power (§III-D2).

use crate::actuators::ActuatorCommand;
use crate::watchdog::DegradationLevel;
use its_messages::cause_codes::CauseCode;
use its_messages::denm::Denm;

/// When the Message Handler escalates a DENM to an emergency stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StopPolicy {
    /// Stop on any received DENM — the paper's implementation ("If a DENM
    /// was received by the OBU … power to the wheels is interrupted").
    #[default]
    AnyDenm,
    /// Stop only on event types that demand braking (collision risk,
    /// AEB/pre-crash dangerous situations) — the §II-D refinement.
    EmergencyCausesOnly,
}

/// Interprets received DENMs for the Motion Planner.
#[derive(Debug, Clone, Default)]
pub struct MessageHandler {
    policy: StopPolicy,
    /// DENMs seen, for diagnostics.
    received: u64,
    /// The cause that triggered the stop, if any.
    stop_cause: Option<Option<CauseCode>>,
}

impl MessageHandler {
    /// Creates a handler with the given policy.
    pub fn new(policy: StopPolicy) -> Self {
        Self {
            policy,
            received: 0,
            stop_cause: None,
        }
    }

    /// Number of DENMs processed.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Whether an emergency stop has been latched.
    pub fn stop_latched(&self) -> bool {
        self.stop_cause.is_some()
    }

    /// The event type of the DENM that latched the stop (a mandatory-only
    /// DENM has no Situation container, hence the nested `Option`).
    pub fn stop_cause(&self) -> Option<Option<CauseCode>> {
        self.stop_cause
    }

    /// Processes one received DENM; returns `true` if it (newly) latches
    /// an emergency stop.
    pub fn on_denm(&mut self, denm: &Denm) -> bool {
        self.received += 1;
        if self.stop_cause.is_some() {
            return false; // already stopping
        }
        let triggers = match self.policy {
            StopPolicy::AnyDenm => !denm.is_termination(),
            StopPolicy::EmergencyCausesOnly => denm
                .event_type()
                .is_some_and(|c| c.requires_emergency_brake()),
        };
        if triggers {
            self.stop_cause = Some(denm.event_type());
        }
        triggers
    }

    /// Clears the latched stop (scenario reset).
    pub fn reset(&mut self) {
        self.stop_cause = None;
    }
}

/// High-level drive mode decided by the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DriveMode {
    /// Follow the line at the cruise throttle.
    #[default]
    LineFollow,
    /// Power cut, coasting to a stop.
    EmergencyStop,
}

/// The Motion Planner: merges navigation (line following) with network
/// inputs (via [`MessageHandler`]) into actuator commands.
///
/// # Example
///
/// ```
/// use vehicle::planner::{DriveMode, MotionPlanner, StopPolicy};
/// use vehicle::actuators::ActuatorCommand;
///
/// let mut planner = MotionPlanner::new(0.25, StopPolicy::AnyDenm);
/// let cmd = planner.plan(Some(0.1));
/// assert!(matches!(cmd, ActuatorCommand::Drive { .. }));
/// planner.force_stop();
/// assert_eq!(planner.mode(), DriveMode::EmergencyStop);
/// assert_eq!(planner.plan(Some(0.1)), ActuatorCommand::CutPower);
/// ```
#[derive(Debug, Clone)]
pub struct MotionPlanner {
    handler: MessageHandler,
    cruise_throttle: f64,
    mode: DriveMode,
    last_steering: f64,
    degradation: DegradationLevel,
    failsafe_scale: f64,
}

impl MotionPlanner {
    /// Creates a planner with the given cruise throttle and stop policy.
    pub fn new(cruise_throttle: f64, policy: StopPolicy) -> Self {
        Self {
            handler: MessageHandler::new(policy),
            cruise_throttle: cruise_throttle.clamp(0.0, 1.0),
            mode: DriveMode::LineFollow,
            last_steering: 0.0,
            degradation: DegradationLevel::Nominal,
            failsafe_scale: 0.5,
        }
    }

    /// Sets the throttle multiplier used in [`DegradationLevel::SpeedCap`].
    pub fn set_failsafe_scale(&mut self, scale: f64) {
        self.failsafe_scale = scale.clamp(0.0, 1.0);
    }

    /// Updates the fail-safe degradation level the planner must honour
    /// (decided by the V2X watchdog each control period).
    pub fn set_degradation(&mut self, level: DegradationLevel) {
        self.degradation = level;
    }

    /// The degradation level currently honoured.
    pub fn degradation(&self) -> DegradationLevel {
        self.degradation
    }

    /// The message handler (to feed received DENMs).
    pub fn handler_mut(&mut self) -> &mut MessageHandler {
        &mut self.handler
    }

    /// Read access to the message handler.
    pub fn handler(&self) -> &MessageHandler {
        &self.handler
    }

    /// The current drive mode.
    pub fn mode(&self) -> DriveMode {
        self.mode
    }

    /// Processes a received DENM; switches to emergency stop if the
    /// policy demands it. Returns `true` when the stop was newly latched.
    pub fn on_denm(&mut self, denm: &Denm) -> bool {
        let stop = self.handler.on_denm(denm);
        if stop {
            self.mode = DriveMode::EmergencyStop;
        }
        stop
    }

    /// Forces an emergency stop (e.g. local safety supervisor).
    pub fn force_stop(&mut self) {
        self.mode = DriveMode::EmergencyStop;
    }

    /// Produces the actuator command for this control period given the
    /// line follower's steering output (or `None` when the line is lost,
    /// in which case the last steering is held).
    pub fn plan(&mut self, steering: Option<f64>) -> ActuatorCommand {
        match self.mode {
            DriveMode::EmergencyStop => ActuatorCommand::CutPower,
            DriveMode::LineFollow => {
                if let Some(s) = steering {
                    self.last_steering = s;
                }
                let throttle = match self.degradation {
                    DegradationLevel::Nominal => self.cruise_throttle,
                    DegradationLevel::SpeedCap => self.cruise_throttle * self.failsafe_scale,
                    DegradationLevel::ControlledStop => 0.0,
                };
                ActuatorCommand::Drive {
                    throttle,
                    steering_rad: self.last_steering,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use its_messages::cause_codes::{CauseCode, CollisionRiskSubCause};
    use its_messages::common::{ActionId, ReferencePosition, StationId, StationType, TimestampIts};
    use its_messages::denm::{Denm, ManagementContainer, SituationContainer, Termination};

    fn denm(cause: Option<CauseCode>) -> Denm {
        let m = ManagementContainer::new(
            ActionId::new(StationId::new(15).unwrap(), 0),
            TimestampIts::new(0).unwrap(),
            TimestampIts::new(0).unwrap(),
            ReferencePosition::from_degrees(41.178, -8.608),
            StationType::RoadSideUnit,
        );
        let mut d = Denm::new(StationId::new(15).unwrap(), m);
        if let Some(c) = cause {
            d = d.with_situation(SituationContainer::new(7, c).unwrap());
        }
        d
    }

    #[test]
    fn any_denm_policy_stops_on_mandatory_only_denm() {
        // The paper's DENMs carry only Header + Management; the vehicle
        // must still stop.
        let mut planner = MotionPlanner::new(0.25, StopPolicy::AnyDenm);
        assert!(planner.on_denm(&denm(None)));
        assert_eq!(planner.mode(), DriveMode::EmergencyStop);
        assert_eq!(planner.plan(Some(0.0)), ActuatorCommand::CutPower);
    }

    #[test]
    fn emergency_policy_ignores_benign_causes() {
        let mut planner = MotionPlanner::new(0.25, StopPolicy::EmergencyCausesOnly);
        assert!(!planner.on_denm(&denm(None)));
        assert!(
            !planner.on_denm(&denm(Some(CauseCode::HazardousLocationObstacleOnTheRoad(
                0
            ))))
        );
        assert_eq!(planner.mode(), DriveMode::LineFollow);
        assert!(planner.on_denm(&denm(Some(CauseCode::CollisionRisk(
            CollisionRiskSubCause::CrossingCollisionRisk
        )))));
        assert_eq!(planner.mode(), DriveMode::EmergencyStop);
    }

    #[test]
    fn termination_denm_does_not_stop() {
        let mut planner = MotionPlanner::new(0.25, StopPolicy::AnyDenm);
        let mut d = denm(None);
        d.management.termination = Some(Termination::IsCancellation);
        assert!(!planner.on_denm(&d));
        assert_eq!(planner.mode(), DriveMode::LineFollow);
    }

    #[test]
    fn stop_latches_once() {
        let mut handler = MessageHandler::new(StopPolicy::AnyDenm);
        assert!(handler.on_denm(&denm(None)));
        assert!(!handler.on_denm(&denm(None)), "second DENM not a new stop");
        assert_eq!(handler.received(), 2);
        assert!(handler.stop_latched());
        handler.reset();
        assert!(!handler.stop_latched());
    }

    #[test]
    fn stop_cause_recorded() {
        let mut handler = MessageHandler::new(StopPolicy::AnyDenm);
        let cause = CauseCode::CollisionRisk(CollisionRiskSubCause::CrossingCollisionRisk);
        handler.on_denm(&denm(Some(cause)));
        assert_eq!(handler.stop_cause(), Some(Some(cause)));
    }

    #[test]
    fn planner_holds_last_steering_when_line_lost() {
        let mut planner = MotionPlanner::new(0.25, StopPolicy::AnyDenm);
        planner.plan(Some(0.2));
        match planner.plan(None) {
            ActuatorCommand::Drive { steering_rad, .. } => assert_eq!(steering_rad, 0.2),
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn degradation_caps_then_zeroes_throttle() {
        let mut planner = MotionPlanner::new(0.4, StopPolicy::AnyDenm);
        planner.set_failsafe_scale(0.5);
        planner.set_degradation(DegradationLevel::SpeedCap);
        match planner.plan(Some(0.1)) {
            ActuatorCommand::Drive { throttle, .. } => assert_eq!(throttle, 0.2),
            other => panic!("unexpected command {other:?}"),
        }
        planner.set_degradation(DegradationLevel::ControlledStop);
        match planner.plan(Some(0.1)) {
            ActuatorCommand::Drive {
                throttle,
                steering_rad,
            } => {
                assert_eq!(throttle, 0.0, "controlled stop coasts down");
                assert_eq!(steering_rad, 0.1, "steering stays active while stopping");
            }
            other => panic!("unexpected command {other:?}"),
        }
        planner.set_degradation(DegradationLevel::Nominal);
        match planner.plan(Some(0.1)) {
            ActuatorCommand::Drive { throttle, .. } => assert_eq!(throttle, 0.4),
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn emergency_stop_outranks_degradation_recovery() {
        // A latched DENM stop must not be undone by the watchdog reporting
        // a healthy link again.
        let mut planner = MotionPlanner::new(0.25, StopPolicy::AnyDenm);
        planner.on_denm(&denm(None));
        planner.set_degradation(DegradationLevel::Nominal);
        assert_eq!(planner.plan(Some(0.0)), ActuatorCommand::CutPower);
    }

    #[test]
    fn cruise_throttle_clamped() {
        let mut planner = MotionPlanner::new(2.0, StopPolicy::AnyDenm);
        match planner.plan(Some(0.0)) {
            ActuatorCommand::Drive { throttle, .. } => assert_eq!(throttle, 1.0),
            other => panic!("unexpected command {other:?}"),
        }
    }
}
