//! The line-following perception pipeline (paper Figure 6).
//!
//! The real vehicle captures video with a ZED camera, runs Canny edge
//! detection, applies a region filter, extracts line coordinates with a
//! probabilistic Hough transform, and feeds the Motion Planner which
//! computes a steering angle through a PID controller. This module runs
//! the same stage structure on synthetic frames rendered from the ground
//! truth track geometry:
//!
//! 1. [`CameraModel::capture`] — renders the floor line into a binary
//!    bird's-eye image of the area ahead of the car,
//! 2. [`detect_edges`] — extracts edge pixels (intensity transitions),
//! 3. [`hough_lines`] — a probabilistic Hough vote (random edge-point
//!    subsampling into a (ρ, θ) accumulator, as in Matas et al.),
//! 4. [`LineFollower::steering`] — converts the strongest line into a
//!    lateral error and runs it through the PID.

use crate::dynamics::BicycleState;
use crate::pid::Pid;
use sim_core::SimRng;
use std::cell::RefCell;

/// Ground-truth track: a polyline of the tape line on the floor.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    points: Vec<(f64, f64)>,
}

impl Track {
    /// Creates a track from a polyline.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "a track needs at least two points");
        Self { points }
    }

    /// A straight track along +x of the given length.
    pub fn straight(length_m: f64) -> Self {
        Self::new(vec![(0.0, 0.0), (length_m, 0.0)])
    }

    /// An L-shaped track: straight along +x then a corner turning to +y —
    /// the blind-corner intersection geometry. The corner radius (1.5 m)
    /// comfortably exceeds the vehicle's minimum turning radius
    /// (wheelbase 0.32 m / tan 0.35 rad ≈ 0.88 m).
    pub fn l_corner(leg_m: f64) -> Self {
        let mut pts = vec![(0.0, 0.0), (leg_m, 0.0)];
        // Rounded corner with a few knots.
        let r = 1.5;
        for i in 1..=6 {
            let a = std::f64::consts::FRAC_PI_2 * f64::from(i) / 6.0;
            pts.push((leg_m + r * a.sin(), r * (1.0 - a.cos())));
        }
        pts.push((leg_m + r, leg_m + r));
        Self::new(pts)
    }

    /// The polyline points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Distance from an arbitrary point to the nearest track segment.
    pub fn distance_to(&self, x: f64, y: f64) -> f64 {
        self.points
            .windows(2)
            .map(|w| segment_distance(w[0], w[1], (x, y)))
            .fold(f64::INFINITY, f64::min)
    }

    /// Signed lateral offset of a pose from the track: positive when the
    /// track is to the left of the heading direction.
    pub fn lateral_offset(&self, pose: &BicycleState) -> f64 {
        // Find the nearest point on the polyline, then project into the
        // vehicle frame.
        let (nx, ny) = self.nearest_point(pose.x, pose.y);
        let dx = nx - pose.x;
        let dy = ny - pose.y;
        // Left of heading = positive lateral coordinate.
        -dx * pose.theta.sin() + dy * pose.theta.cos()
    }

    /// Nearest point on the polyline to `(x, y)`.
    pub fn nearest_point(&self, x: f64, y: f64) -> (f64, f64) {
        let mut best = (f64::INFINITY, self.points[0]);
        for w in self.points.windows(2) {
            let p = segment_closest(w[0], w[1], (x, y));
            let d = ((p.0 - x).powi(2) + (p.1 - y).powi(2)).sqrt();
            if d < best.0 {
                best = (d, p);
            }
        }
        best.1
    }
}

fn segment_closest(a: (f64, f64), b: (f64, f64), p: (f64, f64)) -> (f64, f64) {
    let abx = b.0 - a.0;
    let aby = b.1 - a.1;
    let len2 = abx * abx + aby * aby;
    if len2 <= 0.0 {
        return a;
    }
    let t = (((p.0 - a.0) * abx + (p.1 - a.1) * aby) / len2).clamp(0.0, 1.0);
    (a.0 + t * abx, a.1 + t * aby)
}

fn segment_distance(a: (f64, f64), b: (f64, f64), p: (f64, f64)) -> f64 {
    let c = segment_closest(a, b, p);
    ((c.0 - p.0).powi(2) + (c.1 - p.1).powi(2)).sqrt()
}

/// A binary camera frame (bird's-eye projection of the floor ahead).
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    width: usize,
    height: usize,
    pixels: Vec<bool>,
}

impl Frame {
    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(row, col)`; row 0 is the far edge of the view.
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.pixels[row * self.width + col]
    }

    /// Fraction of lit pixels, useful as a "line visible" heuristic.
    pub fn fill_ratio(&self) -> f64 {
        let lit = self.pixels.iter().filter(|&&p| p).count();
        lit as f64 / self.pixels.len() as f64
    }
}

/// Projection model of the forward-facing camera.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraModel {
    /// Image width, pixels.
    pub width: usize,
    /// Image height, pixels.
    pub height: usize,
    /// Near edge of the ground footprint, metres ahead of the rear axle.
    pub near_m: f64,
    /// Far edge of the ground footprint, metres ahead.
    pub far_m: f64,
    /// Half-width of the footprint, metres.
    pub half_width_m: f64,
    /// Painted line width, metres.
    pub line_width_m: f64,
}

impl Default for CameraModel {
    fn default() -> Self {
        Self {
            width: 64,
            height: 32,
            near_m: 0.15,
            far_m: 1.2,
            half_width_m: 0.5,
            line_width_m: 0.05,
        }
    }
}

impl CameraModel {
    /// Lateral metres represented by one pixel column.
    pub fn meters_per_col(&self) -> f64 {
        2.0 * self.half_width_m / self.width as f64
    }

    /// Renders the track as seen from `pose`.
    pub fn capture(&self, pose: &BicycleState, track: &Track) -> Frame {
        let mut frame = Frame {
            width: self.width,
            height: self.height,
            pixels: Vec::new(),
        };
        self.capture_into(pose, track, &mut frame);
        frame
    }

    /// Renders the track as seen from `pose` into an existing frame,
    /// reusing its pixel buffer. Produces exactly the pixels of the
    /// naive every-pixel render (pinned bitwise by
    /// `capture_matches_reference_bitwise`): each image row is one scan
    /// line across the ground, and a pixel can only be lit where that
    /// line passes through a track segment's *capsule* (the segment
    /// dilated by the line half-width). The capsule intersection — with
    /// a margin nine orders of magnitude above f64 rounding error plus
    /// a ±1-column guard band — selects candidate columns, and only
    /// those get the exact `distance_to` test, evaluated with the
    /// original expressions so every lit pixel is bitwise identical.
    /// Typical frames test a handful of columns per row instead of all
    /// of them.
    pub fn capture_into(&self, pose: &BicycleState, track: &Track, frame: &mut Frame) {
        frame.width = self.width;
        frame.height = self.height;
        frame.pixels.clear();
        frame.pixels.resize(self.width * self.height, false);
        let cos_t = pose.theta.cos();
        let sin_t = pose.theta.sin();
        let mpc = self.meters_per_col();
        let half_line = self.line_width_m / 2.0;
        // Candidate reach: the exact test lights pixels at distance
        // ≤ half_line; candidates are taken out to half_line + 1e-7 m,
        // so a boundary pixel the capsule math places up to 100 nm off
        // (f64 error here is ~1e-15 m) still gets the exact test.
        let reach = half_line + 1e-7;
        for row in 0..self.height {
            // Row 0 = far edge.
            let ahead =
                self.far_m - (self.far_m - self.near_m) * (row as f64 + 0.5) / self.height as f64;
            // The row's scan line in world space: W(s) = base + s·dir
            // with s the lateral coordinate and dir unit-length.
            let bx = pose.x + ahead * cos_t;
            let by = pose.y + ahead * sin_t;
            let dir = (-sin_t, cos_t);
            for seg in track.points.windows(2) {
                let Some((s_lo, s_hi)) = capsule_span(seg[0], seg[1], (bx, by), dir, reach) else {
                    continue;
                };
                // Lateral → column (lateral = -half_width + (col+0.5)·mpc),
                // widened one column each way as the conservative guard.
                let c_lo = ((s_lo + self.half_width_m) / mpc - 0.5).floor() as i64 - 1;
                let c_hi = ((s_hi + self.half_width_m) / mpc - 0.5).ceil() as i64 + 1;
                if c_hi < 0 || c_lo >= self.width as i64 {
                    continue;
                }
                let c_lo = c_lo.max(0) as usize;
                let c_hi = (c_hi.max(0) as usize).min(self.width - 1);
                for col in c_lo..=c_hi {
                    let i = row * self.width + col;
                    if frame.pixels[i] {
                        continue;
                    }
                    let lateral = -self.half_width_m + (col as f64 + 0.5) * mpc;
                    // Vehicle frame → world frame (the reference
                    // expressions, verbatim).
                    let wx = pose.x + ahead * cos_t - lateral * sin_t;
                    let wy = pose.y + ahead * sin_t + lateral * cos_t;
                    if track.distance_to(wx, wy) <= half_line {
                        frame.pixels[i] = true;
                    }
                }
            }
        }
    }
}

/// Intersects the scan line `base + s·dir` (`dir` unit-length) with the
/// capsule of radius `r` around segment `ab`, returning the `s`-span of
/// the intersection (a single interval — capsules are convex) or `None`
/// when the line misses it entirely. Used only to *select candidate
/// pixels* in [`CameraModel::capture_into`]; the margin built into `r`
/// plus the caller's column guard band make any rounding here
/// inconsequential for the rendered bits.
fn capsule_span(
    a: (f64, f64),
    b: (f64, f64),
    base: (f64, f64),
    dir: (f64, f64),
    r: f64,
) -> Option<(f64, f64)> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    // End discs: |base + s·dir − p|² ≤ r², i.e. s² + 2·bq·s + c ≤ 0.
    for p in [a, b] {
        let ex = base.0 - p.0;
        let ey = base.1 - p.1;
        let bq = ex * dir.0 + ey * dir.1;
        let c = ex * ex + ey * ey - r * r;
        let disc = bq * bq - c;
        if disc >= 0.0 {
            let sq = disc.sqrt();
            lo = lo.min(-bq - sq);
            hi = hi.max(-bq + sq);
        }
    }
    // Rectangle part: |perp offset| ≤ r within the segment's extent.
    let abx = b.0 - a.0;
    let aby = b.1 - a.1;
    let len = (abx * abx + aby * aby).sqrt();
    if len > 0.0 {
        let ux = abx / len;
        let uy = aby / len;
        let px = base.0 - a.0;
        let py = base.1 - a.1;
        // Signed perp distance and along-segment coordinate, both
        // affine in s.
        let constraints = [
            (px * uy - py * ux, dir.0 * uy - dir.1 * ux, -r, r),
            (px * ux + py * uy, dir.0 * ux + dir.1 * uy, 0.0, len),
        ];
        let mut rlo = f64::NEG_INFINITY;
        let mut rhi = f64::INFINITY;
        let mut feasible = true;
        for (c0, dc, lim_lo, lim_hi) in constraints {
            if dc.abs() < 1e-12 {
                // Scan line (anti)parallel to this constraint: it either
                // holds for every s or for none.
                if c0 < lim_lo || c0 > lim_hi {
                    feasible = false;
                    break;
                }
            } else {
                let s1 = (lim_lo - c0) / dc;
                let s2 = (lim_hi - c0) / dc;
                rlo = rlo.max(s1.min(s2));
                rhi = rhi.min(s1.max(s2));
            }
        }
        if feasible && rlo <= rhi {
            lo = lo.min(rlo);
            hi = hi.max(rhi);
        }
    }
    (lo <= hi).then_some((lo, hi))
}

/// Extracts edge pixels: positions where the binary intensity changes
/// horizontally (a cheap Canny stand-in on a binary frame).
pub fn detect_edges(frame: &Frame) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    detect_edges_into(frame, &mut edges);
    edges
}

/// [`detect_edges`] into a reusable buffer (cleared first).
pub fn detect_edges_into(frame: &Frame, edges: &mut Vec<(usize, usize)>) {
    edges.clear();
    for row in 0..frame.height() {
        for col in 1..frame.width() {
            if frame.get(row, col) != frame.get(row, col - 1) {
                edges.push((row, col));
            }
        }
    }
}

/// A detected line in (ρ, θ) form with its vote count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoughLine {
    /// Distance of the line from the image origin, pixels.
    pub rho: f64,
    /// Normal angle of the line, radians `[0, π)`.
    pub theta: f64,
    /// Accumulator votes received.
    pub votes: u32,
}

impl HoughLine {
    /// Column at which this line crosses image row `row`, if it is not
    /// near-horizontal in (x=col, y=row) coordinates.
    pub fn col_at_row(&self, row: f64) -> Option<f64> {
        let cos = self.theta.cos();
        if cos.abs() < 1e-3 {
            return None;
        }
        Some((self.rho - row * self.theta.sin()) / cos)
    }
}

/// Probabilistic Hough transform: votes a random subset of edge points
/// into a quantised (ρ, θ) accumulator and returns lines above
/// `min_votes`, strongest first.
pub fn hough_lines(
    edges: &[(usize, usize)],
    frame_width: usize,
    frame_height: usize,
    min_votes: u32,
    rng: &mut SimRng,
) -> Vec<HoughLine> {
    let mut scratch = HoughScratch::new();
    let mut lines = Vec::new();
    hough_lines_into(
        edges,
        frame_width,
        frame_height,
        min_votes,
        rng,
        &mut scratch,
        &mut lines,
    );
    lines
}

const THETA_BINS: usize = 45; // 4° steps over [0, π)

/// Reusable accumulator storage for [`hough_lines_into`].
#[derive(Debug, Clone, Default)]
pub struct HoughScratch {
    acc: Vec<u32>,
    /// Memoized accumulator indices, [`THETA_BINS`] per edge point
    /// (`u32::MAX` marks an out-of-range ρ bin).
    votes: Vec<u32>,
}

impl HoughScratch {
    /// Creates empty scratch storage (allocated on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`hough_lines`] with caller-provided scratch and output buffers.
///
/// Identical votes and lines: the per-bin trig values are hoisted into a
/// table computed with the same `π·tb/bins` expression the inner loop
/// used, so every `(ρ, θ)` pair — and thus every accumulator cell — is
/// bitwise identical, at 45 trig calls per frame instead of 45 per
/// sampled point. The RNG draw sequence is unchanged.
#[allow(clippy::too_many_arguments)] // mirrors `hough_lines` plus the two buffers
pub fn hough_lines_into(
    edges: &[(usize, usize)],
    frame_width: usize,
    frame_height: usize,
    min_votes: u32,
    rng: &mut SimRng,
    scratch: &mut HoughScratch,
    lines: &mut Vec<HoughLine>,
) {
    lines.clear();
    if edges.is_empty() {
        return;
    }
    let diag = ((frame_width * frame_width + frame_height * frame_height) as f64).sqrt();
    let rho_bins = (2.0 * diag).ceil() as usize + 1;
    let acc = &mut scratch.acc;
    acc.clear();
    acc.resize(THETA_BINS * rho_bins, 0);
    let mut trig = [(0.0f64, 0.0f64); THETA_BINS];
    for (tb, t) in trig.iter_mut().enumerate() {
        let theta = std::f64::consts::PI * tb as f64 / THETA_BINS as f64;
        *t = (theta.cos(), theta.sin());
    }
    // Each edge point's 45 accumulator cells depend only on the point,
    // and the sampler draws *with replacement* from a set that is
    // usually far smaller than the sample budget — so the (ρ, θ)
    // quantisation is memoized once per point (same expressions, same
    // bins bitwise) and each sample reduces to 45 integer adds.
    let memo = &mut scratch.votes;
    memo.clear();
    memo.reserve(edges.len() * THETA_BINS);
    for &(row, col) in edges {
        for (tb, &(cos_t, sin_t)) in trig.iter().enumerate() {
            let rho = col as f64 * cos_t + row as f64 * sin_t;
            let rb = (rho + diag).round() as usize;
            memo.push(if rb < rho_bins {
                // THETA_BINS·rho_bins ≈ 6.5k cells — far below u32::MAX.
                (tb * rho_bins + rb) as u32
            } else {
                u32::MAX
            });
        }
    }
    // Probabilistic subsampling: at most 256 points, as in the
    // progressive probabilistic Hough transform's random selection stage.
    let samples = edges.len().min(256);
    for _ in 0..samples {
        let point = rng.below(edges.len() as u64) as usize;
        for &cell in &memo[point * THETA_BINS..(point + 1) * THETA_BINS] {
            if cell != u32::MAX {
                acc[cell as usize] += 1;
            }
        }
    }
    lines.extend(
        acc.iter()
            .enumerate()
            .filter(|&(_, &v)| v >= min_votes)
            .map(|(idx, &v)| {
                let tb = idx / rho_bins;
                let rb = idx % rho_bins;
                HoughLine {
                    rho: rb as f64 - diag,
                    theta: std::f64::consts::PI * tb as f64 / THETA_BINS as f64,
                    votes: v,
                }
            }),
    );
    lines.sort_by_key(|l| std::cmp::Reverse(l.votes));
    lines.truncate(8);
}

/// Recycled vision-pipeline buffers: frame pixels, edge points, Hough
/// scratch and detected lines. A scenario run constructs one
/// [`LineFollower`]; without recycling, every run re-pays the
/// pipeline's first-frame buffer growth (~15 allocations). Each buffer
/// is cleared or fully overwritten before use, so recycling cannot
/// change any output bit — the pool is a free list, not a cache.
#[derive(Debug, Default)]
struct VisionBuffers {
    pixels: Vec<bool>,
    edges: Vec<(usize, usize)>,
    hough: HoughScratch,
    lines: Vec<HoughLine>,
}

/// Bounded so pathological churn (many live followers dropped at once)
/// cannot hoard memory; beyond the cap, buffers are simply freed.
const VISION_POOL_CAP: usize = 8;

thread_local! {
    /// Per-thread free list of [`VisionBuffers`]. Thread-local keeps the
    /// pool lock-free and keeps parallel campaign workers independent.
    static VISION_POOL: RefCell<Vec<VisionBuffers>> = const { RefCell::new(Vec::new()) };
}

/// The full line-following controller: camera + pipeline + PID steering.
///
/// # Example
///
/// ```
/// use vehicle::dynamics::BicycleState;
/// use vehicle::linefollow::{LineFollower, Track};
/// use sim_core::SimRng;
///
/// let track = Track::straight(20.0);
/// let mut follower = LineFollower::new();
/// let mut rng = SimRng::seed_from(5);
/// let pose = BicycleState { x: 1.0, y: 0.05, theta: 0.0 };
/// let steer = follower.steering(&pose, &track, 0.02, &mut rng);
/// assert!(steer.is_some(), "line in view");
/// ```
#[derive(Debug, Clone)]
pub struct LineFollower {
    camera: CameraModel,
    pid: Pid,
    /// Steering command applied when the line is lost (hold last).
    last_steer: f64,
    /// Consecutive frames without a detected line.
    lost_frames: u32,
    /// Reusable frame buffer (the pipeline runs every control tick;
    /// reuse avoids a frame + accumulator allocation per tick).
    frame: Frame,
    /// Reusable edge-point buffer.
    edges: Vec<(usize, usize)>,
    /// Reusable Hough accumulator.
    hough: HoughScratch,
    /// Reusable detected-line buffer.
    lines: Vec<HoughLine>,
}

impl Default for LineFollower {
    fn default() -> Self {
        Self::new()
    }
}

impl LineFollower {
    /// Creates a follower with the default camera and tuned PID gains.
    pub fn new() -> Self {
        Self::with_camera(CameraModel::default())
    }

    /// Creates a follower with a custom camera model.
    pub fn with_camera(camera: CameraModel) -> Self {
        let buffers = VISION_POOL
            .with(|p| p.borrow_mut().pop())
            .unwrap_or_default();
        Self {
            camera,
            pid: Pid::new(2.2, 0.05, 0.35)
                .with_output_limit(0.35)
                .with_integral_limit(0.2),
            last_steer: 0.0,
            lost_frames: 0,
            frame: Frame {
                width: camera.width,
                height: camera.height,
                pixels: buffers.pixels,
            },
            edges: buffers.edges,
            hough: buffers.hough,
            lines: buffers.lines,
        }
    }

    /// Consecutive frames without a line detection.
    pub fn lost_frames(&self) -> u32 {
        self.lost_frames
    }

    /// Runs the full pipeline for one control period of `dt` seconds.
    ///
    /// Returns the steering angle in radians, or `None` when no line was
    /// detected this frame (the caller typically holds the last command).
    pub fn steering(
        &mut self,
        pose: &BicycleState,
        track: &Track,
        dt: f64,
        rng: &mut SimRng,
    ) -> Option<f64> {
        self.camera.capture_into(pose, track, &mut self.frame);
        detect_edges_into(&self.frame, &mut self.edges);
        hough_lines_into(
            &self.edges,
            self.frame.width(),
            self.frame.height(),
            8,
            rng,
            &mut self.hough,
            &mut self.lines,
        );
        let best = self.lines.first()?;
        // Lateral error at a mid-frame lookahead row.
        let look_row = self.frame.height() as f64 * 0.5;
        let col = best.col_at_row(look_row)?;
        let centre = self.frame.width() as f64 / 2.0;
        let error_m = (col - centre) * self.camera.meters_per_col();
        // Positive error (line to the right in image = left in vehicle
        // frame, because columns grow rightward while lateral grows
        // leftward is handled by the projection) steers toward the line.
        let steer = self.pid.update(error_m, dt);
        self.last_steer = steer;
        self.lost_frames = 0;
        Some(steer)
    }

    /// The last steering command issued.
    pub fn hold_last(&mut self) -> f64 {
        self.lost_frames += 1;
        self.last_steer
    }
}

impl Drop for LineFollower {
    fn drop(&mut self) {
        let buffers = VisionBuffers {
            pixels: std::mem::take(&mut self.frame.pixels),
            edges: std::mem::take(&mut self.edges),
            hough: std::mem::take(&mut self.hough),
            lines: std::mem::take(&mut self.lines),
        };
        VISION_POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < VISION_POOL_CAP {
                pool.push(buffers);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{LongitudinalModel, VehicleParams};
    use proptest::prelude::*;

    #[test]
    fn track_distance_and_nearest() {
        let track = Track::straight(10.0);
        assert_eq!(track.distance_to(5.0, 0.0), 0.0);
        assert!((track.distance_to(5.0, 0.3) - 0.3).abs() < 1e-12);
        assert_eq!(track.nearest_point(5.0, 1.0), (5.0, 0.0));
        // Beyond the end, the endpoint is nearest.
        assert!((track.distance_to(11.0, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lateral_offset_signs() {
        let track = Track::straight(10.0);
        // Car left of the line (y > 0), line is to its right → negative.
        let left = BicycleState {
            x: 2.0,
            y: 0.2,
            theta: 0.0,
        };
        assert!(track.lateral_offset(&left) < 0.0);
        let right = BicycleState {
            x: 2.0,
            y: -0.2,
            theta: 0.0,
        };
        assert!(track.lateral_offset(&right) > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn track_needs_two_points() {
        let _ = Track::new(vec![(0.0, 0.0)]);
    }

    #[test]
    fn camera_sees_line_when_on_track() {
        let cam = CameraModel::default();
        let track = Track::straight(10.0);
        let frame = cam.capture(
            &BicycleState {
                x: 1.0,
                y: 0.0,
                theta: 0.0,
            },
            &track,
        );
        assert!(frame.fill_ratio() > 0.01, "line visible");
        // A central column near the bottom row should be lit.
        let mid = frame.width() / 2;
        let lit_mid: usize = (0..frame.height())
            .filter(|&r| frame.get(r, mid) || frame.get(r, mid - 1))
            .count();
        assert!(lit_mid > frame.height() / 2, "line runs up the centre");
    }

    #[test]
    fn camera_blind_when_far_from_track() {
        let cam = CameraModel::default();
        let track = Track::straight(10.0);
        let frame = cam.capture(
            &BicycleState {
                x: 1.0,
                y: 5.0,
                theta: 0.0,
            },
            &track,
        );
        assert_eq!(frame.fill_ratio(), 0.0);
    }

    #[test]
    fn edges_flank_the_line() {
        let cam = CameraModel::default();
        let track = Track::straight(10.0);
        let frame = cam.capture(
            &BicycleState {
                x: 1.0,
                y: 0.0,
                theta: 0.0,
            },
            &track,
        );
        let edges = detect_edges(&frame);
        assert!(!edges.is_empty());
        // Every edge is adjacent to exactly one lit pixel horizontally.
        for &(r, c) in &edges {
            assert!(frame.get(r, c) != frame.get(r, c - 1));
        }
    }

    #[test]
    fn hough_finds_vertical_centre_line() {
        let cam = CameraModel::default();
        let track = Track::straight(10.0);
        let frame = cam.capture(
            &BicycleState {
                x: 1.0,
                y: 0.0,
                theta: 0.0,
            },
            &track,
        );
        let edges = detect_edges(&frame);
        let mut rng = SimRng::seed_from(1);
        let lines = hough_lines(&edges, frame.width(), frame.height(), 8, &mut rng);
        assert!(!lines.is_empty());
        let best = lines[0];
        let col = best.col_at_row(frame.height() as f64 / 2.0).unwrap();
        let centre = frame.width() as f64 / 2.0;
        assert!((col - centre).abs() < 4.0, "line near centre, col={col}");
    }

    #[test]
    fn hough_empty_edges_yields_no_lines() {
        let mut rng = SimRng::seed_from(1);
        assert!(hough_lines(&[], 64, 32, 5, &mut rng).is_empty());
    }

    #[test]
    fn follower_steers_toward_line() {
        let track = Track::straight(20.0);
        let mut follower = LineFollower::new();
        let mut rng = SimRng::seed_from(2);
        // Car displaced to the left of the line (y > 0): the line appears
        // right of image centre, so steering should be negative (right).
        let pose = BicycleState {
            x: 1.0,
            y: 0.15,
            theta: 0.0,
        };
        let steer = follower.steering(&pose, &track, 0.02, &mut rng).unwrap();
        assert!(steer < 0.0, "steer {steer}");
        // Displaced right steers left.
        let mut follower2 = LineFollower::new();
        let pose2 = BicycleState {
            x: 1.0,
            y: -0.15,
            theta: 0.0,
        };
        let steer2 = follower2.steering(&pose2, &track, 0.02, &mut rng).unwrap();
        assert!(steer2 > 0.0, "steer {steer2}");
    }

    #[test]
    fn follower_reports_loss_off_track() {
        let track = Track::straight(20.0);
        let mut follower = LineFollower::new();
        let mut rng = SimRng::seed_from(3);
        let pose = BicycleState {
            x: 1.0,
            y: 5.0,
            theta: 0.0,
        };
        assert!(follower.steering(&pose, &track, 0.02, &mut rng).is_none());
        let held = follower.hold_last();
        assert_eq!(held, 0.0);
        assert_eq!(follower.lost_frames(), 1);
    }

    #[test]
    fn closed_loop_line_following_converges() {
        // Full pipeline in the loop: camera → edges → Hough → PID →
        // bicycle model, 50 Hz control, car starting 10 cm off the line.
        let track = Track::straight(40.0);
        let params = VehicleParams::default();
        let mut pose = BicycleState {
            x: 0.5,
            y: 0.10,
            theta: 0.0,
        };
        let mut car = LongitudinalModel::new(params);
        car.set_speed(1.5);
        let mut follower = LineFollower::new();
        let mut rng = SimRng::seed_from(4);
        let dt = 0.02;
        let mut offsets = Vec::new();
        for step in 0..800 {
            // 16 s
            let steer = follower
                .steering(&pose, &track, dt, &mut rng)
                .unwrap_or_else(|| follower.hold_last());
            let ds = car.step(dt, 0.25);
            pose.advance(ds, steer, params.wheelbase_m);
            if step >= 600 {
                offsets.push(track.lateral_offset(&pose).abs());
            }
        }
        // Mean |offset| over the final 4 s: the 64-px Hough grid bounds
        // accuracy to a few centimetres, so we test the average, not the
        // instantaneous value.
        let mean = offsets.iter().sum::<f64>() / offsets.len() as f64;
        assert!(mean < 0.09, "converged to {mean} m mean offset");
        assert!(pose.x > 5.0, "car made forward progress: x={}", pose.x);
    }

    #[test]
    fn closed_loop_follows_the_corner() {
        // The L-corner track at a cautious speed: the follower must stay
        // on the line through the 0.5 m-radius turn.
        let track = Track::l_corner(3.0);
        let params = VehicleParams::default();
        let mut pose = BicycleState {
            x: 0.2,
            y: 0.0,
            theta: 0.0,
        };
        let mut car = LongitudinalModel::new(params);
        car.set_speed(0.8);
        let mut follower = LineFollower::new();
        let mut rng = SimRng::seed_from(9);
        let dt = 0.02;
        let mut max_offset: f64 = 0.0;
        // Throttle that holds ~0.8 m/s: rr 2.51 N + tiny aero over 12 N.
        // Stop before the line itself ends at y = 4.5 (with no line in
        // view the follower rightly has nothing to follow).
        for _ in 0..700 {
            if pose.y > 3.5 {
                break;
            }
            let steer = follower
                .steering(&pose, &track, dt, &mut rng)
                .unwrap_or_else(|| follower.hold_last());
            let ds = car.step(dt, 0.21);
            pose.advance(ds, steer, params.wheelbase_m);
            max_offset = max_offset.max(track.lateral_offset(&pose).abs());
        }
        assert!(
            max_offset < 0.30,
            "stayed within 30 cm of the line through the corner: {max_offset}"
        );
        // The car actually turned the corner: it is now on the +y leg.
        assert!(pose.y > 0.8, "made it around: y = {}", pose.y);
        assert!(
            pose.theta > std::f64::consts::FRAC_PI_4,
            "heading rotated toward +y: {}",
            pose.theta
        );
    }

    /// The pre-optimization vote loop: θ, cos θ and sin θ evaluated
    /// inline for every sampled point. The production path hoists them
    /// into a per-call table computed with the same expressions; this
    /// reference pins that the hoist is bitwise-neutral.
    fn hough_reference(
        edges: &[(usize, usize)],
        frame_width: usize,
        frame_height: usize,
        min_votes: u32,
        rng: &mut SimRng,
    ) -> Vec<HoughLine> {
        if edges.is_empty() {
            return Vec::new();
        }
        let diag = ((frame_width * frame_width + frame_height * frame_height) as f64).sqrt();
        let rho_bins = (2.0 * diag).ceil() as usize + 1;
        let mut acc = vec![0u32; THETA_BINS * rho_bins];
        let samples = edges.len().min(256);
        for _ in 0..samples {
            let &(row, col) = &edges[rng.below(edges.len() as u64) as usize];
            for tb in 0..THETA_BINS {
                let theta = std::f64::consts::PI * tb as f64 / THETA_BINS as f64;
                let rho = col as f64 * theta.cos() + row as f64 * theta.sin();
                let rb = (rho + diag).round() as usize;
                if rb < rho_bins {
                    acc[tb * rho_bins + rb] += 1;
                }
            }
        }
        let mut lines: Vec<HoughLine> = acc
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v >= min_votes)
            .map(|(idx, &v)| {
                let tb = idx / rho_bins;
                let rb = idx % rho_bins;
                HoughLine {
                    rho: rb as f64 - diag,
                    theta: std::f64::consts::PI * tb as f64 / THETA_BINS as f64,
                    votes: v,
                }
            })
            .collect();
        lines.sort_by_key(|l| std::cmp::Reverse(l.votes));
        lines.truncate(8);
        lines
    }

    #[test]
    fn hoisted_trig_matches_inline_reference_bitwise() {
        let cam = CameraModel::default();
        let track = Track::l_corner(3.0);
        let mut rng_a = SimRng::seed_from(77);
        let mut rng_b = SimRng::seed_from(77);
        for i in 0..12 {
            let pose = BicycleState {
                x: 0.3 * f64::from(i),
                y: 0.02 * f64::from(i),
                theta: 0.03 * f64::from(i),
            };
            let frame = cam.capture(&pose, &track);
            let edges = detect_edges(&frame);
            let expect = hough_reference(&edges, frame.width(), frame.height(), 8, &mut rng_a);
            let got = hough_lines(&edges, frame.width(), frame.height(), 8, &mut rng_b);
            assert_eq!(expect.len(), got.len());
            for (e, g) in expect.iter().zip(&got) {
                assert_eq!(e.rho.to_bits(), g.rho.to_bits());
                assert_eq!(e.theta.to_bits(), g.theta.to_bits());
                assert_eq!(e.votes, g.votes);
            }
        }
        // Same number of RNG draws on both paths.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn reused_scratch_matches_fresh_buffers_bitwise() {
        let cam = CameraModel::default();
        let track = Track::l_corner(3.0);
        let mut frame = Frame {
            width: 0,
            height: 0,
            pixels: Vec::new(),
        };
        let mut edges = Vec::new();
        let mut scratch = HoughScratch::new();
        let mut lines = Vec::new();
        let mut rng_a = SimRng::seed_from(42);
        let mut rng_b = SimRng::seed_from(42);
        for i in 0..10 {
            let pose = BicycleState {
                x: 0.25 * f64::from(i),
                y: 0.03 * f64::from(i) - 0.1,
                theta: 0.02 * f64::from(i),
            };
            let fresh = cam.capture(&pose, &track);
            cam.capture_into(&pose, &track, &mut frame);
            assert_eq!(fresh, frame, "frame {i}");
            let fresh_edges = detect_edges(&fresh);
            detect_edges_into(&frame, &mut edges);
            assert_eq!(fresh_edges, edges, "edges {i}");
            let fresh_lines =
                hough_lines(&fresh_edges, fresh.width(), fresh.height(), 8, &mut rng_a);
            hough_lines_into(
                &edges,
                frame.width(),
                frame.height(),
                8,
                &mut rng_b,
                &mut scratch,
                &mut lines,
            );
            assert_eq!(fresh_lines, lines, "lines {i}");
        }
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    /// The pre-optimization renderer: every pixel gets the exact
    /// `distance_to` test. The production `capture_into` only runs that
    /// test on capsule-selected candidate columns; this reference pins
    /// that the candidate filter never changes a single pixel.
    fn capture_reference(cam: &CameraModel, pose: &BicycleState, track: &Track) -> Frame {
        let mut frame = Frame {
            width: cam.width,
            height: cam.height,
            pixels: vec![false; cam.width * cam.height],
        };
        let cos_t = pose.theta.cos();
        let sin_t = pose.theta.sin();
        let mpc = cam.meters_per_col();
        let half_line = cam.line_width_m / 2.0;
        for row in 0..cam.height {
            let ahead =
                cam.far_m - (cam.far_m - cam.near_m) * (row as f64 + 0.5) / cam.height as f64;
            for col in 0..cam.width {
                let lateral = -cam.half_width_m + (col as f64 + 0.5) * mpc;
                let wx = pose.x + ahead * cos_t - lateral * sin_t;
                let wy = pose.y + ahead * sin_t + lateral * cos_t;
                if track.distance_to(wx, wy) <= half_line {
                    frame.pixels[row * cam.width + col] = true;
                }
            }
        }
        frame
    }

    #[test]
    fn capture_matches_reference_bitwise() {
        let cam = CameraModel::default();
        for track in [Track::straight(10.0), Track::l_corner(3.0)] {
            for i in 0..40 {
                // Poses sweeping across the track, rotating through a
                // full turn, including ones straddling the line edge.
                let pose = BicycleState {
                    x: 0.25 * f64::from(i) - 1.0,
                    y: 0.055 * f64::from(i) - 1.0,
                    theta: 0.17 * f64::from(i),
                };
                let expect = capture_reference(&cam, &pose, &track);
                let got = cam.capture(&pose, &track);
                assert_eq!(expect, got, "track/pose {i}");
            }
        }
    }

    proptest! {
        #[test]
        fn capture_candidate_filter_is_bitwise_neutral(
            x in -2.0f64..6.0,
            y in -2.0f64..4.0,
            theta in -7.0f64..7.0,
        ) {
            let cam = CameraModel::default();
            let track = Track::l_corner(3.0);
            let pose = BicycleState { x, y, theta };
            let expect = capture_reference(&cam, &pose, &track);
            let got = cam.capture(&pose, &track);
            prop_assert_eq!(expect, got);
        }

        #[test]
        fn track_distance_non_negative(x in -20.0f64..20.0, y in -20.0f64..20.0) {
            let track = Track::l_corner(5.0);
            prop_assert!(track.distance_to(x, y) >= 0.0);
        }

        #[test]
        fn nearest_point_is_on_polyline_bound(x in -20.0f64..20.0, y in -20.0f64..20.0) {
            let track = Track::straight(10.0);
            let (nx, ny) = track.nearest_point(x, y);
            prop_assert!((0.0..=10.0).contains(&nx));
            prop_assert_eq!(ny, 0.0);
        }
    }
}
