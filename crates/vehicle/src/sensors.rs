//! On-board sensing: wheel-encoder odometry and an IMU yaw-rate/heading
//! model (paper Figure 5 lists an IMU and odometry among the vehicle's
//! sensors). The CAMs a real OBU broadcasts carry *measured* speed and
//! heading, not ground truth; these models supply that measurement noise.

use sim_core::SimRng;

/// Quadrature wheel encoder → speed/odometry estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WheelOdometry {
    /// Encoder ticks per metre of travel (ticks/rev ÷ wheel
    /// circumference; F1Tenth ≈ 3480 ticks/m).
    pub ticks_per_m: f64,
    /// Accumulated ticks.
    ticks: u64,
    /// Fractional tick carry.
    carry: f64,
}

impl WheelOdometry {
    /// Creates an odometer.
    pub fn new(ticks_per_m: f64) -> Self {
        Self {
            ticks_per_m,
            ticks: 0,
            carry: 0.0,
        }
    }

    /// Feeds `ds` metres of true travel; returns the ticks emitted.
    pub fn advance(&mut self, ds: f64) -> u64 {
        let exact = ds.max(0.0) * self.ticks_per_m + self.carry;
        let whole = exact.floor();
        self.carry = exact - whole;
        self.ticks += whole as u64;
        whole as u64
    }

    /// Total ticks so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Odometry distance estimate, metres (quantised to tick
    /// resolution).
    pub fn distance_m(&self) -> f64 {
        self.ticks as f64 / self.ticks_per_m
    }

    /// Speed estimate from ticks over a window of `dt` seconds.
    pub fn speed_from_window(&self, window_ticks: u64, dt: f64) -> f64 {
        assert!(dt > 0.0, "window must have positive duration");
        window_ticks as f64 / self.ticks_per_m / dt
    }
}

/// IMU yaw-rate gyro with bias and white noise; integrates to a heading
/// estimate.
#[derive(Debug, Clone)]
pub struct ImuModel {
    /// Constant gyro bias, rad/s.
    pub bias_rad_s: f64,
    /// White-noise standard deviation, rad/s.
    pub noise_std_rad_s: f64,
    /// Integrated heading estimate, radians.
    heading_rad: f64,
}

impl ImuModel {
    /// Creates an IMU with a bias sampled from ±`bias_spread` (typical
    /// MEMS gyro: a few mrad/s) and the given noise floor.
    pub fn sample(bias_spread_rad_s: f64, noise_std_rad_s: f64, rng: &mut SimRng) -> Self {
        Self {
            bias_rad_s: rng.uniform(-bias_spread_rad_s, bias_spread_rad_s),
            noise_std_rad_s,
            heading_rad: 0.0,
        }
    }

    /// Seeds the heading estimate (e.g. from an initial alignment).
    pub fn set_heading(&mut self, heading_rad: f64) {
        self.heading_rad = heading_rad;
    }

    /// Measures a true yaw rate over `dt` seconds, integrating the
    /// (noisy, biased) reading into the heading estimate. Returns the
    /// measured rate.
    pub fn measure(&mut self, true_rate_rad_s: f64, dt: f64, rng: &mut SimRng) -> f64 {
        let measured = true_rate_rad_s + self.bias_rad_s + rng.normal(0.0, self.noise_std_rad_s);
        self.heading_rad += measured * dt;
        measured
    }

    /// Current heading estimate, radians.
    pub fn heading_rad(&self) -> f64 {
        self.heading_rad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn odometry_counts_ticks_exactly() {
        let mut odo = WheelOdometry::new(1000.0);
        assert_eq!(odo.advance(0.5), 500);
        assert_eq!(odo.advance(0.0015), 1);
        assert_eq!(odo.ticks(), 501);
        assert!((odo.distance_m() - 0.501).abs() < 1e-12);
    }

    #[test]
    fn odometry_carry_accumulates_sub_tick_motion() {
        let mut odo = WheelOdometry::new(1000.0);
        // 10 steps of 0.00015 m = 1.5 ticks total.
        let mut ticks = 0;
        for _ in 0..10 {
            ticks += odo.advance(0.00015);
        }
        assert_eq!(ticks, 1);
        assert_eq!(odo.ticks(), 1);
    }

    #[test]
    fn odometry_ignores_reverse() {
        let mut odo = WheelOdometry::new(1000.0);
        assert_eq!(odo.advance(-1.0), 0);
    }

    #[test]
    fn speed_estimate_from_tick_window() {
        let odo = WheelOdometry::new(3480.0);
        // 1.5 m/s for 20 ms = 0.03 m = ~104 ticks.
        let v = odo.speed_from_window(104, 0.02);
        assert!((v - 1.494).abs() < 0.02, "v = {v}");
    }

    #[test]
    fn imu_bias_accumulates_heading_drift() {
        let mut rng = SimRng::seed_from(1);
        let mut imu = ImuModel {
            bias_rad_s: 0.01,
            noise_std_rad_s: 0.0,
            heading_rad: 0.0,
        };
        for _ in 0..1000 {
            imu.measure(0.0, 0.01, &mut rng);
        }
        // 0.01 rad/s for 10 s = 0.1 rad of drift.
        assert!((imu.heading_rad() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn imu_tracks_true_rotation_on_average() {
        let mut rng = SimRng::seed_from(2);
        let mut imu = ImuModel::sample(0.002, 0.01, &mut rng);
        // Quarter turn at 0.5 rad/s over ~3.14 s.
        let dt = 0.001;
        let steps = (std::f64::consts::FRAC_PI_2 / 0.5 / dt) as usize;
        for _ in 0..steps {
            imu.measure(0.5, dt, &mut rng);
        }
        assert!(
            (imu.heading_rad() - std::f64::consts::FRAC_PI_2).abs() < 0.03,
            "{}",
            imu.heading_rad()
        );
    }

    proptest! {
        #[test]
        fn odometry_distance_close_to_truth(steps in proptest::collection::vec(0.0f64..0.1, 1..200)) {
            let mut odo = WheelOdometry::new(3480.0);
            let mut truth = 0.0;
            for ds in steps {
                odo.advance(ds);
                truth += ds;
            }
            // Quantisation error bounded by one tick.
            prop_assert!((odo.distance_m() - truth).abs() <= 1.0 / 3480.0 + 1e-9);
        }
    }
}
