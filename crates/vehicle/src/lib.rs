//! The 1/10-scale robotic vehicle (CopaDrive / F1Tenth-style platform).
//!
//! Reproduces the in-vehicle half of the testbed (paper §III-B): a Traxxas
//! Rally 1/10 chassis whose electric motor is driven by an ESC over PWM, a
//! Jetson running the line-following pipeline (camera → edge detection →
//! probabilistic Hough transform → motion planner → PID steering), and a
//! Teensy MCU bridging the Jetson to motor and servo over USART.
//!
//! Module map (mirrors Figure 5/6 of the paper):
//!
//! * [`dynamics`] — longitudinal model (drive force, rolling resistance,
//!   drag, power-cut coast-down) and the bicycle kinematics,
//! * [`pid`] — the PID controller used for steering,
//! * [`linefollow`] — the Line Detection algorithm: synthetic camera
//!   frames of the floor line, edge extraction, probabilistic Hough vote,
//!   and lane-line estimation,
//! * [`actuators`] — ESC/PWM and the Teensy USART link, including the
//!   emergency power-cut path,
//! * [`planner`] — the Motion Planner and Message Handler: line following
//!   in normal operation, stop override when a DENM arrives,
//! * [`watchdog`] — the V2X heartbeat watchdog: supervises CAM/DENM
//!   liveness and drives the fail-safe degradation ladder (speed cap,
//!   controlled stop, recovery).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod actuators;
pub mod dynamics;
pub mod linefollow;
pub mod pid;
pub mod planner;
pub mod sensors;
pub mod speed;
pub mod watchdog;

pub use actuators::{ActuatorCommand, TeensyLink};
pub use dynamics::{BicycleState, LongitudinalModel, VehicleParams};
pub use linefollow::{LineFollower, Track};
pub use pid::Pid;
pub use planner::{DriveMode, MessageHandler, MotionPlanner, StopPolicy};
pub use sensors::{ImuModel, WheelOdometry};
pub use speed::SpeedController;
pub use watchdog::{DegradationLevel, V2xWatchdog, WatchdogConfig, WatchdogTrips};
