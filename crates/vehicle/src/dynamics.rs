//! Vehicle dynamics: longitudinal force balance and bicycle kinematics.
//!
//! The scale vehicle stops by *cutting power to the wheels* (paper §III-D2
//! — "power to the wheels is interrupted by the control logic at the
//! Jetson, stopping the car"), so the braking model is a coast-down:
//! rolling resistance + drivetrain drag + aerodynamic drag, no active
//! brake. The parameters below are tuned so that a 1.5 m/s approach stops
//! in roughly the 0.31–0.43 m band the paper measures (Table III).

/// Physical parameters of the 1/10-scale vehicle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VehicleParams {
    /// Total mass, kg (Traxxas chassis + Jetson + battery ≈ 3.2 kg).
    pub mass_kg: f64,
    /// Peak drive force at full throttle, N.
    pub max_drive_force_n: f64,
    /// Rolling-resistance coefficient (dimensionless, × m·g).
    pub rolling_resistance: f64,
    /// Drivetrain drag when unpowered, N per (m/s) — the dominant
    /// stopping force after a power cut (the brushed motor's back-EMF
    /// loading through the ESC plus gear friction). Only applied while
    /// the throttle is zero.
    pub drivetrain_drag_n_per_mps: f64,
    /// Aerodynamic drag coefficient × frontal area × ½ρ, N per (m/s)².
    pub aero_drag_n_per_mps2: f64,
    /// Wheelbase, m (F1Tenth ≈ 0.32 m).
    pub wheelbase_m: f64,
    /// Overall vehicle length, m (paper: ≈ 0.53 m).
    pub length_m: f64,
    /// Top speed, m/s (paper: up to 60 km/h ≈ 16.7 m/s).
    pub top_speed_mps: f64,
    /// Maximum steering angle, radians.
    pub max_steer_rad: f64,
}

impl Default for VehicleParams {
    fn default() -> Self {
        Self {
            mass_kg: 3.2,
            max_drive_force_n: 12.0,
            rolling_resistance: 0.08,
            drivetrain_drag_n_per_mps: 12.0,
            aero_drag_n_per_mps2: 0.02,
            wheelbase_m: 0.32,
            length_m: 0.53,
            top_speed_mps: 60.0 / 3.6,
            max_steer_rad: 0.35,
        }
    }
}

/// Gravitational acceleration, m/s².
const G: f64 = 9.81;

/// Longitudinal state integrator.
///
/// # Example
///
/// ```
/// use vehicle::dynamics::{LongitudinalModel, VehicleParams};
///
/// let mut car = LongitudinalModel::new(VehicleParams::default());
/// // Accelerate for 2 s at half throttle, 1 kHz integration.
/// for _ in 0..2000 {
///     car.step(0.001, 0.5);
/// }
/// assert!(car.speed_mps() > 1.0);
/// // Cut power: the car coasts to a stop.
/// let v0 = car.speed_mps();
/// for _ in 0..5000 {
///     car.step(0.001, 0.0);
/// }
/// assert_eq!(car.speed_mps(), 0.0);
/// assert!(car.distance_m() > 0.0);
/// # let _ = v0;
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LongitudinalModel {
    params: VehicleParams,
    speed_mps: f64,
    distance_m: f64,
}

impl LongitudinalModel {
    /// Creates a stationary vehicle.
    pub fn new(params: VehicleParams) -> Self {
        Self {
            params,
            speed_mps: 0.0,
            distance_m: 0.0,
        }
    }

    /// The parameter set in use.
    pub fn params(&self) -> &VehicleParams {
        &self.params
    }

    /// Current speed, m/s.
    pub fn speed_mps(&self) -> f64 {
        self.speed_mps
    }

    /// Odometer: distance travelled since construction, m.
    pub fn distance_m(&self) -> f64 {
        self.distance_m
    }

    /// Sets the current speed (test/scenario setup).
    pub fn set_speed(&mut self, speed_mps: f64) {
        self.speed_mps = speed_mps.clamp(0.0, self.params.top_speed_mps);
    }

    /// Advances the model by `dt` seconds with throttle `u ∈ [0, 1]`
    /// (0 = power cut). Returns the distance covered in this step.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive and finite.
    pub fn step(&mut self, dt: f64, throttle: f64) -> f64 {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        let u = throttle.clamp(0.0, 1.0);
        let p = &self.params;
        let v = self.speed_mps;
        let drive = u * p.max_drive_force_n;
        let resistive = if v > 0.0 {
            let coast_drag = if u <= 0.0 {
                p.drivetrain_drag_n_per_mps * v
            } else {
                0.0
            };
            p.rolling_resistance * p.mass_kg * G + coast_drag + p.aero_drag_n_per_mps2 * v * v
        } else {
            0.0
        };
        let accel = (drive - resistive) / p.mass_kg;
        let mut v_next = v + accel * dt;
        if u <= 0.0 && v_next < 0.0 {
            v_next = 0.0; // resistive forces cannot reverse the car
        }
        v_next = v_next.clamp(0.0, p.top_speed_mps);
        // Trapezoidal distance update.
        let ds = 0.5 * (v + v_next) * dt;
        self.speed_mps = v_next;
        self.distance_m += ds;
        ds
    }

    /// Convenience: simulate a power-cut from the current speed and
    /// return the stopping distance (does not mutate `self`).
    pub fn coast_down_distance(&self) -> f64 {
        let mut copy = *self;
        let start = copy.distance_m;
        let mut guard = 0;
        while copy.speed_mps > 0.0 {
            copy.step(0.001, 0.0);
            guard += 1;
            assert!(guard < 1_000_000, "coast-down failed to converge");
        }
        copy.distance_m - start
    }
}

/// Pose of the vehicle in the laboratory plane (bicycle kinematics).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BicycleState {
    /// X position, m.
    pub x: f64,
    /// Y position, m.
    pub y: f64,
    /// Heading, radians (0 = +x axis, counter-clockwise positive).
    pub theta: f64,
}

impl BicycleState {
    /// Advances the pose by `ds` metres of travel with steering angle
    /// `delta` (radians), using the kinematic bicycle model with
    /// wheelbase `l`.
    pub fn advance(&mut self, ds: f64, delta: f64, l: f64) {
        if delta.abs() < 1e-9 {
            self.x += ds * self.theta.cos();
            self.y += ds * self.theta.sin();
        } else {
            let radius = l / delta.tan();
            let dtheta = ds / radius;
            // Exact arc integration.
            self.x += radius * ((self.theta + dtheta).sin() - self.theta.sin());
            self.y -= radius * ((self.theta + dtheta).cos() - self.theta.cos());
            self.theta += dtheta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn accelerates_under_throttle() {
        let mut car = LongitudinalModel::new(VehicleParams::default());
        for _ in 0..1000 {
            car.step(0.001, 1.0);
        }
        assert!(car.speed_mps() > 1.0);
        assert!(car.distance_m() > 0.5);
    }

    #[test]
    fn power_cut_from_1_5_mps_stops_within_table_iii_band() {
        // Table III: braking distance 0.31–0.43 m includes ~0.09 m of
        // latency travel; the pure coast-down from 1.5 m/s should be
        // roughly 0.22–0.34 m.
        let mut car = LongitudinalModel::new(VehicleParams::default());
        car.set_speed(1.5);
        let d = car.coast_down_distance();
        assert!((0.20..=0.36).contains(&d), "coast-down {d} m");
    }

    #[test]
    fn coast_down_monotone_in_initial_speed() {
        let params = VehicleParams::default();
        let mut prev = 0.0;
        for v0 in [0.5, 1.0, 1.5, 2.0, 3.0] {
            let mut car = LongitudinalModel::new(params);
            car.set_speed(v0);
            let d = car.coast_down_distance();
            assert!(d > prev, "v0={v0} d={d}");
            prev = d;
        }
    }

    #[test]
    fn heavier_drivetrain_drag_stops_shorter() {
        let mut hard = VehicleParams::default();
        hard.drivetrain_drag_n_per_mps *= 2.0;
        let mut a = LongitudinalModel::new(VehicleParams::default());
        let mut b = LongitudinalModel::new(hard);
        a.set_speed(1.5);
        b.set_speed(1.5);
        assert!(b.coast_down_distance() < a.coast_down_distance());
    }

    #[test]
    fn speed_capped_at_top_speed() {
        let mut car = LongitudinalModel::new(VehicleParams::default());
        for _ in 0..60_000 {
            car.step(0.001, 1.0);
        }
        assert!(car.speed_mps() <= car.params().top_speed_mps + 1e-9);
    }

    #[test]
    fn stationary_car_stays_put_without_throttle() {
        let mut car = LongitudinalModel::new(VehicleParams::default());
        car.step(0.01, 0.0);
        assert_eq!(car.speed_mps(), 0.0);
        assert_eq!(car.distance_m(), 0.0);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_panics() {
        let mut car = LongitudinalModel::new(VehicleParams::default());
        car.step(0.0, 0.5);
    }

    #[test]
    fn bicycle_straight_line() {
        let mut s = BicycleState::default();
        s.advance(1.0, 0.0, 0.32);
        assert!((s.x - 1.0).abs() < 1e-12);
        assert_eq!(s.y, 0.0);
        assert_eq!(s.theta, 0.0);
    }

    #[test]
    fn bicycle_full_circle_returns_home() {
        let l = 0.32;
        let delta: f64 = 0.2;
        let radius = l / delta.tan();
        let circumference = std::f64::consts::TAU * radius;
        let mut s = BicycleState::default();
        let steps = 10_000;
        for _ in 0..steps {
            s.advance(circumference / steps as f64, delta, l);
        }
        assert!(s.x.abs() < 1e-6, "x = {}", s.x);
        assert!(s.y.abs() < 1e-6, "y = {}", s.y);
        assert!((s.theta - std::f64::consts::TAU).abs() < 1e-6);
    }

    #[test]
    fn bicycle_turns_left_for_positive_steer() {
        let mut s = BicycleState::default();
        s.advance(0.5, 0.2, 0.32);
        assert!(s.y > 0.0);
        assert!(s.theta > 0.0);
    }

    proptest! {
        #[test]
        fn speed_never_negative(v0 in 0.0f64..5.0, throttle in 0.0f64..1.0) {
            let mut car = LongitudinalModel::new(VehicleParams::default());
            car.set_speed(v0);
            for _ in 0..100 {
                car.step(0.005, throttle);
                prop_assert!(car.speed_mps() >= 0.0);
            }
        }

        #[test]
        fn distance_monotone(v0 in 0.1f64..5.0) {
            let mut car = LongitudinalModel::new(VehicleParams::default());
            car.set_speed(v0);
            let mut prev = car.distance_m();
            for _ in 0..200 {
                car.step(0.002, 0.0);
                prop_assert!(car.distance_m() >= prev);
                prev = car.distance_m();
            }
        }
    }
}
