//! PID controller (paper §III-B: "In order to calculate the steering
//! angle … a Proportional-Integral-Derivative (PID) controller is
//! implemented").
//!
//! A straightforward positional PID with clamped integral (anti-windup)
//! and clamped output, suitable for the line follower's steering loop and
//! reusable for speed holding in the scenarios.

/// A PID controller.
///
/// # Example
///
/// ```
/// use vehicle::pid::Pid;
///
/// let mut pid = Pid::new(2.0, 0.1, 0.05).with_output_limit(0.35);
/// // Error of 0.1 m to the left produces a bounded steering command.
/// let u = pid.update(0.1, 0.02);
/// assert!(u > 0.0 && u <= 0.35);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pid {
    kp: f64,
    ki: f64,
    kd: f64,
    integral: f64,
    prev_error: Option<f64>,
    integral_limit: f64,
    output_limit: f64,
}

impl Pid {
    /// Creates a controller with the given gains, unlimited output and a
    /// generous integral clamp.
    pub fn new(kp: f64, ki: f64, kd: f64) -> Self {
        Self {
            kp,
            ki,
            kd,
            integral: 0.0,
            prev_error: None,
            integral_limit: f64::INFINITY,
            output_limit: f64::INFINITY,
        }
    }

    /// Clamps the integral term to `±limit` (anti-windup).
    pub fn with_integral_limit(mut self, limit: f64) -> Self {
        self.integral_limit = limit.abs();
        self
    }

    /// Clamps the output to `±limit`.
    pub fn with_output_limit(mut self, limit: f64) -> Self {
        self.output_limit = limit.abs();
        self
    }

    /// The accumulated integral term.
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// Resets integral and derivative memory.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = None;
    }

    /// Advances the controller with the current `error` over timestep
    /// `dt` seconds and returns the control output.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive and finite.
    pub fn update(&mut self, error: f64, dt: f64) -> f64 {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        self.integral =
            (self.integral + error * dt).clamp(-self.integral_limit, self.integral_limit);
        let derivative = match self.prev_error {
            Some(prev) => (error - prev) / dt,
            None => 0.0,
        };
        self.prev_error = Some(error);
        let raw = self.kp * error + self.ki * self.integral + self.kd * derivative;
        raw.clamp(-self.output_limit, self.output_limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn proportional_only() {
        let mut pid = Pid::new(2.0, 0.0, 0.0);
        assert_eq!(pid.update(0.5, 0.01), 1.0);
        assert_eq!(pid.update(-0.5, 0.01), -1.0);
    }

    #[test]
    fn integral_accumulates_and_clamps() {
        let mut pid = Pid::new(0.0, 1.0, 0.0).with_integral_limit(0.1);
        for _ in 0..100 {
            pid.update(1.0, 0.01);
        }
        assert!((pid.integral() - 0.1).abs() < 1e-12);
        let out = pid.update(1.0, 0.01);
        assert!((out - 0.1).abs() < 1e-12);
    }

    #[test]
    fn derivative_reacts_to_change() {
        let mut pid = Pid::new(0.0, 0.0, 1.0);
        assert_eq!(pid.update(0.0, 0.1), 0.0); // no previous error
        let out = pid.update(0.5, 0.1);
        assert!((out - 5.0).abs() < 1e-12);
    }

    #[test]
    fn output_limit_applies() {
        let mut pid = Pid::new(100.0, 0.0, 0.0).with_output_limit(0.35);
        assert_eq!(pid.update(1.0, 0.01), 0.35);
        assert_eq!(pid.update(-1.0, 0.01), -0.35);
    }

    #[test]
    fn reset_clears_memory() {
        let mut pid = Pid::new(1.0, 1.0, 1.0);
        pid.update(1.0, 0.1);
        pid.reset();
        assert_eq!(pid.integral(), 0.0);
        // First update after reset has no derivative kick.
        let out = pid.update(1.0, 0.1);
        assert!((out - (1.0 + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn closed_loop_converges_on_first_order_plant() {
        // Plant: x' = u; controller drives x to the 1.0 setpoint.
        let mut pid = Pid::new(4.0, 0.5, 0.2).with_output_limit(5.0);
        let mut x = 0.0;
        let dt = 0.01;
        for _ in 0..2000 {
            let u = pid.update(1.0 - x, dt);
            x += u * dt;
        }
        assert!((x - 1.0).abs() < 0.01, "x = {x}");
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn negative_dt_panics() {
        let mut pid = Pid::new(1.0, 0.0, 0.0);
        pid.update(1.0, -0.01);
    }

    proptest! {
        #[test]
        fn output_always_within_limit(errors in proptest::collection::vec(-10.0f64..10.0, 1..100)) {
            let mut pid = Pid::new(3.0, 1.0, 0.5).with_output_limit(0.35);
            for e in errors {
                let u = pid.update(e, 0.02);
                prop_assert!(u.abs() <= 0.35 + 1e-12);
            }
        }
    }
}
