//! V2X heartbeat watchdog and fail-safe degradation ladder.
//!
//! The testbed's safety argument leans on the network: the vehicle only
//! brakes for a hazard if a DENM reaches it. A silent radio therefore
//! turns a network fault into a physical hazard. This module adds the
//! classic fail-operational counter-measure: the vehicle supervises the
//! *liveness* of the V2X link (CAM/DENM receptions act as heartbeats) and
//! degrades gracefully when the link goes quiet — first capping speed,
//! then commanding a controlled stop — and recovers to nominal operation
//! once messages resume.
//!
//! The watchdog is pure sim-time arithmetic: it draws no randomness and
//! performs no I/O, so enabling it keeps runs bitwise reproducible.

use sim_core::{SimDuration, SimTime};

/// Degradation ladder the planner honours, from healthy to stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DegradationLevel {
    /// V2X link live: normal line-following at cruise throttle.
    #[default]
    Nominal,
    /// Heartbeats stale past the first deadline: throttle capped.
    SpeedCap,
    /// Heartbeats stale past the second deadline: controlled stop.
    ControlledStop,
}

/// Deadlines and fail-safe parameters for [`V2xWatchdog`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Expected heartbeat cadence (drives the RSU's CAM generation when
    /// the scenario enables the watchdog).
    pub heartbeat_period: SimDuration,
    /// Deadline 1: heartbeat age beyond which speed is capped.
    pub stale_after: SimDuration,
    /// Deadline 2: heartbeat age beyond which the vehicle executes a
    /// controlled stop. Must be at least `stale_after`.
    pub stop_after: SimDuration,
    /// Throttle multiplier applied in [`DegradationLevel::SpeedCap`].
    pub failsafe_throttle_scale: f64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            heartbeat_period: SimDuration::from_millis(100),
            stale_after: SimDuration::from_millis(400),
            stop_after: SimDuration::from_millis(1200),
            failsafe_throttle_scale: 0.5,
        }
    }
}

/// Counters of watchdog state transitions over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WatchdogTrips {
    /// Transitions from nominal into the speed-cap level.
    pub speed_caps: u64,
    /// Transitions into the controlled-stop level.
    pub stops: u64,
    /// Recoveries back to nominal after any degradation.
    pub recoveries: u64,
}

/// Supervises V2X liveness and decides the current degradation level.
///
/// Feed every successfully decoded CAM/DENM reception into
/// [`heartbeat`](Self::heartbeat); call [`assess`](Self::assess) each
/// control period to obtain the level the planner must honour.
///
/// # Example
///
/// ```
/// use sim_core::SimTime;
/// use vehicle::watchdog::{DegradationLevel, V2xWatchdog, WatchdogConfig};
///
/// let mut wd = V2xWatchdog::new(WatchdogConfig::default());
/// wd.heartbeat(SimTime::from_millis(100));
/// assert_eq!(wd.assess(SimTime::from_millis(200)), DegradationLevel::Nominal);
/// // Radio goes silent: past deadline 1 the speed is capped…
/// assert_eq!(wd.assess(SimTime::from_millis(600)), DegradationLevel::SpeedCap);
/// // …and past deadline 2 the vehicle executes a controlled stop.
/// assert_eq!(
///     wd.assess(SimTime::from_millis(1400)),
///     DegradationLevel::ControlledStop
/// );
/// // Messages resume: back to nominal.
/// wd.heartbeat(SimTime::from_millis(1450));
/// assert_eq!(wd.assess(SimTime::from_millis(1460)), DegradationLevel::Nominal);
/// assert_eq!(wd.trips().recoveries, 1);
/// ```
#[derive(Debug, Clone)]
pub struct V2xWatchdog {
    config: WatchdogConfig,
    last_heartbeat: SimTime,
    level: DegradationLevel,
    trips: WatchdogTrips,
}

impl V2xWatchdog {
    /// Creates a watchdog; the run start counts as the initial heartbeat
    /// so a vehicle never starts degraded.
    pub fn new(config: WatchdogConfig) -> Self {
        Self {
            config,
            last_heartbeat: SimTime::ZERO,
            level: DegradationLevel::Nominal,
            trips: WatchdogTrips::default(),
        }
    }

    /// The configured deadlines.
    pub fn config(&self) -> &WatchdogConfig {
        &self.config
    }

    /// Records a successful V2X reception at `now`.
    pub fn heartbeat(&mut self, now: SimTime) {
        if now > self.last_heartbeat {
            self.last_heartbeat = now;
        }
    }

    /// The level decided by the most recent [`assess`](Self::assess).
    pub fn level(&self) -> DegradationLevel {
        self.level
    }

    /// Transition counters accumulated so far.
    pub fn trips(&self) -> WatchdogTrips {
        self.trips
    }

    /// Re-evaluates heartbeat age at `now` and returns the (possibly
    /// new) degradation level, counting transitions.
    pub fn assess(&mut self, now: SimTime) -> DegradationLevel {
        let age = now.saturating_duration_since(self.last_heartbeat);
        let next = if age >= self.config.stop_after {
            DegradationLevel::ControlledStop
        } else if age >= self.config.stale_after {
            DegradationLevel::SpeedCap
        } else {
            DegradationLevel::Nominal
        };
        if next != self.level {
            match next {
                DegradationLevel::SpeedCap => {
                    if self.level == DegradationLevel::Nominal {
                        self.trips.speed_caps += 1;
                    }
                }
                DegradationLevel::ControlledStop => self.trips.stops += 1,
                DegradationLevel::Nominal => self.trips.recoveries += 1,
            }
            self.level = next;
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn nominal_while_heartbeats_fresh() {
        let mut wd = V2xWatchdog::new(WatchdogConfig::default());
        for step in 0..20u64 {
            let now = t(step * 100);
            wd.heartbeat(now);
            assert_eq!(
                wd.assess(now + SimDuration::from_millis(20)),
                DegradationLevel::Nominal
            );
        }
        assert_eq!(wd.trips(), WatchdogTrips::default());
    }

    #[test]
    fn degrades_through_both_deadlines_and_counts_once() {
        let mut wd = V2xWatchdog::new(WatchdogConfig::default());
        wd.heartbeat(t(100));
        // Sweep time forward in 20 ms control periods with a silent radio.
        for step in 0..100u64 {
            wd.assess(t(100 + step * 20));
        }
        assert_eq!(wd.level(), DegradationLevel::ControlledStop);
        let trips = wd.trips();
        assert_eq!(trips.speed_caps, 1, "speed cap tripped exactly once");
        assert_eq!(trips.stops, 1, "stop tripped exactly once");
        assert_eq!(trips.recoveries, 0);
    }

    #[test]
    fn recovery_restores_nominal_and_is_counted() {
        let mut wd = V2xWatchdog::new(WatchdogConfig::default());
        wd.heartbeat(t(0));
        wd.assess(t(2000));
        assert_eq!(wd.level(), DegradationLevel::ControlledStop);
        wd.heartbeat(t(2100));
        assert_eq!(wd.assess(t(2110)), DegradationLevel::Nominal);
        assert_eq!(wd.trips().recoveries, 1);
    }

    #[test]
    fn stale_heartbeat_does_not_rewind_clock() {
        let mut wd = V2xWatchdog::new(WatchdogConfig::default());
        wd.heartbeat(t(500));
        wd.heartbeat(t(300)); // out-of-order delivery must not rewind
        assert_eq!(wd.assess(t(850)), DegradationLevel::Nominal);
        assert_eq!(wd.assess(t(950)), DegradationLevel::SpeedCap);
    }

    #[test]
    fn boundary_is_inclusive_at_deadlines() {
        let cfg = WatchdogConfig::default();
        let mut wd = V2xWatchdog::new(cfg);
        wd.heartbeat(t(0));
        assert_eq!(wd.assess(t(399)), DegradationLevel::Nominal);
        assert_eq!(wd.assess(t(400)), DegradationLevel::SpeedCap);
        assert_eq!(wd.assess(t(1199)), DegradationLevel::SpeedCap);
        assert_eq!(wd.assess(t(1200)), DegradationLevel::ControlledStop);
    }
}
