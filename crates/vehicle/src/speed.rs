//! Closed-loop speed holding.
//!
//! The testbed scenarios approach the camera at a steady speed; the real
//! vehicle holds it with a software governor on the ESC command. This
//! module provides that governor: a PID around the longitudinal model,
//! with feed-forward from the known resistive forces so the integrator
//! only has to absorb modelling error.

use crate::dynamics::VehicleParams;
use crate::pid::Pid;

/// PID + feed-forward speed governor producing throttle commands.
///
/// # Example
///
/// ```
/// use vehicle::dynamics::{LongitudinalModel, VehicleParams};
/// use vehicle::speed::SpeedController;
///
/// let params = VehicleParams::default();
/// let mut car = LongitudinalModel::new(params);
/// let mut governor = SpeedController::new(&params, 1.5);
/// for _ in 0..3000 {
///     let u = governor.throttle(car.speed_mps(), 0.002);
///     car.step(0.002, u);
/// }
/// assert!((car.speed_mps() - 1.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct SpeedController {
    pid: Pid,
    target_mps: f64,
    feed_forward: f64,
}

impl SpeedController {
    /// Creates a governor for the given vehicle and target speed.
    pub fn new(params: &VehicleParams, target_mps: f64) -> Self {
        let mut s = Self {
            pid: Pid::new(0.8, 0.6, 0.0)
                .with_output_limit(1.0)
                .with_integral_limit(0.5),
            target_mps: 0.0,
            feed_forward: 0.0,
        };
        s.retarget(params, target_mps);
        s
    }

    /// Changes the target speed, recomputing the feed-forward throttle
    /// that balances rolling and aerodynamic resistance at that speed.
    pub fn retarget(&mut self, params: &VehicleParams, target_mps: f64) {
        let v = target_mps.clamp(0.0, params.top_speed_mps);
        let resist =
            params.rolling_resistance * params.mass_kg * 9.81 + params.aero_drag_n_per_mps2 * v * v;
        self.feed_forward = (resist / params.max_drive_force_n).clamp(0.0, 1.0);
        self.target_mps = v;
    }

    /// The current target speed.
    pub fn target_mps(&self) -> f64 {
        self.target_mps
    }

    /// One control step: returns the throttle command `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive and finite.
    pub fn throttle(&mut self, measured_mps: f64, dt: f64) -> f64 {
        let correction = self.pid.update(self.target_mps - measured_mps, dt);
        (self.feed_forward + correction).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::LongitudinalModel;

    #[test]
    fn converges_to_target_from_standstill() {
        let params = VehicleParams::default();
        let mut car = LongitudinalModel::new(params);
        let mut gov = SpeedController::new(&params, 1.5);
        for _ in 0..5000 {
            let u = gov.throttle(car.speed_mps(), 0.002);
            car.step(0.002, u);
        }
        assert!((car.speed_mps() - 1.5).abs() < 0.03, "{}", car.speed_mps());
    }

    #[test]
    fn converges_from_above_target() {
        let params = VehicleParams::default();
        let mut car = LongitudinalModel::new(params);
        car.set_speed(4.0);
        let mut gov = SpeedController::new(&params, 1.5);
        for _ in 0..8000 {
            let u = gov.throttle(car.speed_mps(), 0.002);
            car.step(0.002, u);
        }
        assert!((car.speed_mps() - 1.5).abs() < 0.05, "{}", car.speed_mps());
    }

    #[test]
    fn retarget_moves_the_setpoint() {
        let params = VehicleParams::default();
        let mut car = LongitudinalModel::new(params);
        let mut gov = SpeedController::new(&params, 1.0);
        for _ in 0..4000 {
            let u = gov.throttle(car.speed_mps(), 0.002);
            car.step(0.002, u);
        }
        gov.retarget(&params, 2.5);
        assert_eq!(gov.target_mps(), 2.5);
        for _ in 0..6000 {
            let u = gov.throttle(car.speed_mps(), 0.002);
            car.step(0.002, u);
        }
        assert!((car.speed_mps() - 2.5).abs() < 0.05, "{}", car.speed_mps());
    }

    #[test]
    fn throttle_always_in_unit_range() {
        let params = VehicleParams::default();
        let mut gov = SpeedController::new(&params, 10.0);
        for v in [-5.0, 0.0, 3.0, 20.0] {
            let u = gov.throttle(v, 0.01);
            assert!((0.0..=1.0).contains(&u), "u = {u} at v = {v}");
        }
    }

    #[test]
    fn target_clamped_to_top_speed() {
        let params = VehicleParams::default();
        let gov = SpeedController::new(&params, 100.0);
        assert_eq!(gov.target_mps(), params.top_speed_mps);
    }
}
