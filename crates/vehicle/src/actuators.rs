//! Actuator path: Jetson → Teensy (USART) → ESC (PWM) / steering servo.
//!
//! The paper's Figure 5/6: the Control module "uses Universal
//! Synchronous/Asynchronous Receiver Transmitter (USART) to make a PWM
//! signal reach the DC motor and servo through the Teensy module". This
//! module models the small but real latency of that path — USART frame
//! time plus the MCU's control-loop pickup plus the ESC's PWM refresh —
//! which is part of the paper's step 5 timestamp ("the vehicle ECU
//! registers the time at which a command is sent to the physical
//! actuators").

use sim_core::{SimDuration, SimRng};

/// A command sent over the Teensy link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActuatorCommand {
    /// Set throttle `[0, 1]` and steering angle (radians).
    Drive {
        /// Throttle fraction.
        throttle: f64,
        /// Steering angle, radians.
        steering_rad: f64,
    },
    /// Emergency: cut all power to the wheels.
    CutPower,
}

/// Latency model of the Jetson→Teensy→ESC path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TeensyLink {
    /// USART baud rate (115200 default).
    pub baud: u64,
    /// Command frame length on the wire, bytes.
    pub frame_bytes: u64,
    /// MCU control-loop period — the command waits for the next loop
    /// iteration, uniformly distributed.
    pub mcu_loop_period: SimDuration,
    /// PWM refresh period of the ESC/servo (50 Hz hobby PWM default).
    pub pwm_period: SimDuration,
}

impl Default for TeensyLink {
    fn default() -> Self {
        Self {
            baud: 115_200,
            frame_bytes: 8,
            mcu_loop_period: SimDuration::from_millis(1),
            pwm_period: SimDuration::from_millis(20),
        }
    }
}

impl TeensyLink {
    /// Time to shift one command frame over USART (10 bit-times per byte:
    /// start + 8 data + stop).
    pub fn usart_time(&self) -> SimDuration {
        let bits = self.frame_bytes * 10;
        SimDuration::from_secs_f64(bits as f64 / self.baud as f64)
    }

    /// Samples the total command-to-actuator latency: USART transfer +
    /// wait for the MCU loop + wait for the next PWM edge.
    pub fn sample_latency(&self, rng: &mut SimRng) -> SimDuration {
        let mcu_wait = SimDuration::from_secs_f64(rng.f64() * self.mcu_loop_period.as_secs_f64());
        let pwm_wait = SimDuration::from_secs_f64(rng.f64() * self.pwm_period.as_secs_f64());
        self.usart_time() + mcu_wait + pwm_wait
    }

    /// Worst-case latency (full MCU loop + full PWM period).
    pub fn worst_case_latency(&self) -> SimDuration {
        self.usart_time() + self.mcu_loop_period + self.pwm_period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usart_time_at_115200() {
        let link = TeensyLink::default();
        // 8 bytes × 10 bits / 115200 baud ≈ 694 µs.
        let t = link.usart_time();
        assert!((t.as_secs_f64() - 80.0 / 115_200.0).abs() < 1e-9);
        assert!(t.as_micros() >= 690 && t.as_micros() <= 700);
    }

    #[test]
    fn sampled_latency_within_bounds() {
        let link = TeensyLink::default();
        let mut rng = SimRng::seed_from(1);
        let usart = link.usart_time();
        let worst = link.worst_case_latency();
        for _ in 0..1000 {
            let l = link.sample_latency(&mut rng);
            assert!(l >= usart);
            assert!(l <= worst);
        }
    }

    #[test]
    fn mean_latency_is_usart_plus_half_periods() {
        let link = TeensyLink::default();
        let mut rng = SimRng::seed_from(2);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| link.sample_latency(&mut rng).as_secs_f64())
            .sum::<f64>()
            / f64::from(n);
        let expected = link.usart_time().as_secs_f64() + 0.0005 + 0.010;
        assert!((mean - expected).abs() < 0.0005, "mean {mean}");
    }

    #[test]
    fn command_variants_compare() {
        let a = ActuatorCommand::Drive {
            throttle: 0.3,
            steering_rad: 0.1,
        };
        assert_ne!(a, ActuatorCommand::CutPower);
    }
}
