//! The OpenC2X application API endpoints.
//!
//! Two endpoints matter to the collision-avoidance system (§III-D2):
//!
//! * RSU side — `POST /trigger_denm`: the edge node's Hazard
//!   Advertisement Service posts here; the body is a UPER-encoded DENM
//!   that the station transmits.
//! * OBU side — `POST /request_denm`: the vehicle's script polls here;
//!   an empty 200 means no DENM, otherwise the body carries the oldest
//!   undelivered UPER-encoded DENM.
//!
//! State is shared behind mutexes so the HTTP handler threads and the
//! stack thread can touch it concurrently. A poisoned lock (a handler
//! thread panicked mid-update) degrades to serving the last-written
//! state rather than cascading the panic.

use crate::http::{HttpServer, Response, RunningServer};
use its_messages::denm::Denm;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the inner state if a previous holder panicked.
fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Shared state of an OBU's application API.
#[derive(Debug, Default)]
pub struct ObuApi {
    /// DENMs received over the air, waiting for the vehicle's poll.
    pending: Mutex<VecDeque<Denm>>,
    /// Total DENMs ever enqueued.
    received_total: Mutex<u64>,
}

impl ObuApi {
    /// Creates an empty API state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Called by the stack when a DENM arrives over the air.
    pub fn deliver(&self, denm: Denm) {
        locked(&self.pending).push_back(denm);
        *locked(&self.received_total) += 1;
    }

    /// The `request_denm` semantics: pops the oldest pending DENM.
    pub fn take_pending(&self) -> Option<Denm> {
        locked(&self.pending).pop_front()
    }

    /// DENMs currently waiting.
    pub fn pending_count(&self) -> usize {
        locked(&self.pending).len()
    }

    /// Total DENMs delivered to this API since start.
    pub fn received_total(&self) -> u64 {
        *locked(&self.received_total)
    }

    /// Serves the OBU HTTP API (`POST /request_denm`) on `addr`.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn serve(self: &Arc<Self>, addr: &str) -> std::io::Result<RunningServer> {
        let state = Arc::clone(self);
        let mut server = HttpServer::new();
        server.route("POST", "/request_denm", move |_req| {
            match state.take_pending() {
                Some(denm) => match denm.to_bytes() {
                    Ok(bytes) => Response::ok(bytes),
                    Err(_) => Response::bad_request("denm encode failed"),
                },
                None => Response::ok_empty(),
            }
        });
        server.serve(addr)
    }
}

/// Shared state of an RSU's application API.
#[derive(Debug, Default)]
pub struct RsuApi {
    /// DENMs posted by the edge node, waiting for the stack to transmit.
    outbox: Mutex<VecDeque<Denm>>,
    /// Total trigger calls accepted.
    triggered_total: Mutex<u64>,
}

impl RsuApi {
    /// Creates an empty API state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a DENM for transmission (the `trigger_denm` semantics).
    pub fn trigger(&self, denm: Denm) {
        locked(&self.outbox).push_back(denm);
        *locked(&self.triggered_total) += 1;
    }

    /// Called by the stack: drains DENMs to put on the air.
    pub fn take_outbox(&self) -> Vec<Denm> {
        locked(&self.outbox).drain(..).collect()
    }

    /// Trigger calls accepted since start.
    pub fn triggered_total(&self) -> u64 {
        *locked(&self.triggered_total)
    }

    /// Serves the RSU HTTP API (`POST /trigger_denm`, body = UPER DENM)
    /// on `addr`.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn serve(self: &Arc<Self>, addr: &str) -> std::io::Result<RunningServer> {
        let state = Arc::clone(self);
        let mut server = HttpServer::new();
        server.route("POST", "/trigger_denm", move |req| {
            match Denm::from_bytes(&req.body) {
                Ok(denm) => {
                    state.trigger(denm);
                    Response::ok_empty()
                }
                Err(e) => Response::bad_request(&format!("invalid denm: {e}")),
            }
        });
        server.serve(addr)
    }
}

/// The OpenC2X "Server/Web Interface" (paper §III-D): "represents
/// graphically the georeferenced information contained in the LDM … and
/// allows the sending of DENMs and CAMs".
///
/// The stack publishes a textual LDM snapshot; the web server serves it
/// on `GET /ldm`. Combined with an [`RsuApi`] route set, this covers the
/// manual `trigger_denm` path the web UI exposes.
#[derive(Debug, Default)]
pub struct WebInterface {
    snapshot: Mutex<String>,
}

impl WebInterface {
    /// Creates an empty interface.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a fresh LDM snapshot (the stack calls this after LDM
    /// updates).
    pub fn publish(&self, snapshot: impl Into<String>) {
        *locked(&self.snapshot) = snapshot.into();
    }

    /// The current snapshot.
    pub fn snapshot(&self) -> String {
        locked(&self.snapshot).clone()
    }

    /// Serves `GET /ldm` on `addr`.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn serve(self: &Arc<Self>, addr: &str) -> std::io::Result<crate::http::RunningServer> {
        let state = Arc::clone(self);
        let mut server = HttpServer::new();
        server.route("GET", "/ldm", move |_req| {
            let mut resp = Response::ok(state.snapshot().into_bytes());
            resp.content_type = "text/plain".to_owned();
            resp
        });
        server.serve(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{post, request};
    use its_messages::common::{ActionId, ReferencePosition, StationId, StationType, TimestampIts};
    use its_messages::denm::ManagementContainer;

    fn denm(seq: u16) -> Denm {
        Denm::new(
            StationId::new(15).unwrap(),
            ManagementContainer::new(
                ActionId::new(StationId::new(15).unwrap(), seq),
                TimestampIts::new(1000).unwrap(),
                TimestampIts::new(1000).unwrap(),
                ReferencePosition::from_degrees(41.178, -8.608),
                StationType::RoadSideUnit,
            ),
        )
    }

    #[test]
    fn obu_queue_fifo() {
        let api = ObuApi::new();
        api.deliver(denm(1));
        api.deliver(denm(2));
        assert_eq!(api.pending_count(), 2);
        assert_eq!(
            api.take_pending()
                .unwrap()
                .management
                .action_id
                .sequence_number,
            1
        );
        assert_eq!(
            api.take_pending()
                .unwrap()
                .management
                .action_id
                .sequence_number,
            2
        );
        assert!(api.take_pending().is_none());
        assert_eq!(api.received_total(), 2);
    }

    #[test]
    fn obu_http_request_denm_flow() {
        let api = Arc::new(ObuApi::new());
        let server = api.serve("127.0.0.1:0").unwrap();
        // No DENM yet: empty 200, exactly as OpenC2X behaves.
        let r = post(server.addr(), "/request_denm", b"").unwrap();
        assert_eq!(r.status, 200);
        assert!(r.body.is_empty());
        // Deliver one over "the air", poll again.
        api.deliver(denm(7));
        let r = post(server.addr(), "/request_denm", b"").unwrap();
        assert_eq!(r.status, 200);
        let got = Denm::from_bytes(&r.body).unwrap();
        assert_eq!(got.management.action_id.sequence_number, 7);
        server.shutdown();
    }

    #[test]
    fn rsu_http_trigger_denm_flow() {
        let api = Arc::new(RsuApi::new());
        let server = api.serve("127.0.0.1:0").unwrap();
        let d = denm(3);
        let r = post(server.addr(), "/trigger_denm", &d.to_bytes().unwrap()).unwrap();
        assert_eq!(r.status, 200);
        let out = api.take_outbox();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], d);
        assert_eq!(api.triggered_total(), 1);
        server.shutdown();
    }

    #[test]
    fn web_interface_serves_ldm_snapshot() {
        let web = Arc::new(WebInterface::new());
        let server = web.serve("127.0.0.1:0").unwrap();
        web.publish("stations: 1\nevents: 0\n");
        let r = request(server.addr(), "GET", "/ldm", b"").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(
            String::from_utf8(r.body).unwrap(),
            "stations: 1\nevents: 0\n"
        );
        // Updates are visible on the next poll.
        web.publish("stations: 2\nevents: 1\n");
        let r = request(server.addr(), "GET", "/ldm", b"").unwrap();
        assert!(String::from_utf8(r.body).unwrap().contains("events: 1"));
        server.shutdown();
    }

    #[test]
    fn rsu_rejects_garbage() {
        let api = Arc::new(RsuApi::new());
        let server = api.serve("127.0.0.1:0").unwrap();
        let r = post(server.addr(), "/trigger_denm", b"\xFF\xFF").unwrap();
        assert_eq!(r.status, 400);
        assert!(api.take_outbox().is_empty());
        server.shutdown();
    }
}
