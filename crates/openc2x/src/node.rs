//! Full per-station stack assembly: facilities + GeoNetworking + MAC
//! parameters, plus the vehicle-side HTTP polling model.
//!
//! An [`ItsStation`] is the software content of one OpenC2X box (OBU or
//! RSU): its CA and DEN services, its LDM, its GeoNetworking source
//! address, and its EDCA MAC. Stations are passive — the discrete-event
//! scenario drives them (`poll_*`, `on_packet`) and carries the produced
//! [`geonet::GnPacket`]s over the [`phy80211p`] channel.

use facilities::ca::{CaService, CamTriggerConfig, StationState};
use facilities::den::{DenRequest, DenService};
use facilities::ldm::Ldm;
use geonet::btp::BtpPort;
use geonet::headers::{ExtendedHeader, TrafficClass};
use geonet::loctable::LocationTable;
use geonet::{GeoArea, GnAddress, GnFrame, GnPacket, LongPositionVector};
use its_messages::cam::Cam;
use its_messages::common::{ActionId, StationId, StationType, TimestampIts};
use its_messages::denm::Denm;
use phy80211p::dcc::DccGatekeeper;
use phy80211p::edca::{AccessCategory, EdcaMac};
use phy80211p::ofdm::DataRate;
use phy80211p::Position2D;
use sim_core::{NodeClock, SimDuration, SimRng, SimTime};

/// Whether a station is vehicle-mounted or road-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StationRole {
    /// On-Board Unit on the protagonist vehicle.
    Obu,
    /// Road-Side Unit of the infrastructure.
    Rsu,
}

impl StationRole {
    /// The CDD station type corresponding to the role.
    pub fn station_type(&self) -> StationType {
        match self {
            StationRole::Obu => StationType::PassengerCar,
            StationRole::Rsu => StationType::RoadSideUnit,
        }
    }
}

/// Static configuration of a station.
#[derive(Debug, Clone)]
pub struct StationConfig {
    /// Station identifier.
    pub station_id: StationId,
    /// OBU or RSU.
    pub role: StationRole,
    /// Geographic anchor of the laboratory origin (lab metres are
    /// offsets from here).
    pub geo_origin: (f64, f64),
    /// Data rate used for transmissions.
    pub data_rate: DataRate,
    /// CAM trigger configuration.
    pub cam_config: CamTriggerConfig,
    /// Relevance-area radius for outgoing DENMs, metres.
    pub denm_area_radius_m: f64,
}

impl StationConfig {
    /// Defaults for an OBU.
    pub fn obu(station_id: StationId) -> Self {
        Self {
            station_id,
            role: StationRole::Obu,
            geo_origin: (41.178, -8.608),
            data_rate: DataRate::Mbps6,
            cam_config: CamTriggerConfig::default(),
            denm_area_radius_m: 100.0,
        }
    }

    /// Defaults for an RSU.
    pub fn rsu(station_id: StationId) -> Self {
        Self {
            role: StationRole::Rsu,
            ..Self::obu(station_id)
        }
    }
}

/// Metres per degree of latitude (used for the lab → geo mapping).
const M_PER_DEG_LAT: f64 = 111_194.9;

/// Converts a lab-frame position (metres) to degrees around the origin.
pub fn lab_to_geo(origin: (f64, f64), pos: Position2D) -> (f64, f64) {
    let lat = origin.0 + pos.y / M_PER_DEG_LAT;
    let lon = origin.1 + pos.x / (M_PER_DEG_LAT * origin.0.to_radians().cos());
    (lat, lon)
}

/// One assembled ITS station.
///
/// # Example
///
/// ```
/// use openc2x::node::{ItsStation, StationConfig};
/// use its_messages::common::StationId;
/// use phy80211p::Position2D;
/// use sim_core::{NodeClock, SimTime};
///
/// let mut obu = ItsStation::new(
///     StationConfig::obu(StationId::new(7).unwrap()),
///     NodeClock::perfect(0),
/// );
/// obu.set_position(Position2D::new(1.0, 0.0));
/// assert_eq!(obu.wall(SimTime::from_millis(5)).millis(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct ItsStation {
    config: StationConfig,
    clock: NodeClock,
    ca: CaService,
    den: DenService,
    ldm: Ldm,
    loc_table: LocationTable,
    mac: EdcaMac,
    dcc: DccGatekeeper,
    position: Position2D,
    speed_mps: f64,
    heading_deg: f64,
    gbc_sequence: u16,
    /// CAMs/DENMs transmitted (for diagnostics).
    tx_count: u64,
    rx_count: u64,
    /// Reusable UPER encode buffer for the frame-based TX path.
    cam_scratch: Vec<u8>,
    /// Reusable due-DENM list for [`ItsStation::poll_denm_into`].
    den_scratch: Vec<Denm>,
    /// Reusable UPER encode buffer for DENM packetisation.
    denm_wire_scratch: Vec<u8>,
}

/// What the stack hands up to the application after parsing a packet.
#[derive(Debug, Clone, PartialEq)]
pub enum StackIndication {
    /// A new CAM was stored into the LDM.
    CamReceived(Box<Cam>),
    /// A new (non-duplicate) DENM is delivered to the application.
    DenmReceived(Box<Denm>),
}

/// Outcome of processing one received frame ([`ItsStation::on_frame`]).
///
/// Unlike [`StackIndication`], a stored CAM is reported without a copy:
/// callers that only count beacons (the common case) stay
/// allocation-free, and the CAM itself is in the LDM.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameOutcome {
    /// Filtered out: not addressed to us, our own echo, a GBC
    /// duplicate, or an undecodable payload.
    Ignored,
    /// A CAM was stored into the LDM.
    CamStored,
    /// A new (non-duplicate) DENM is delivered to the application.
    DenmDelivered(Box<Denm>),
}

impl ItsStation {
    /// Assembles a station from its configuration and wall clock.
    pub fn new(config: StationConfig, clock: NodeClock) -> Self {
        let ca = CaService::new(
            config.station_id,
            config.role.station_type(),
            config.cam_config,
        );
        let den = DenService::new(config.station_id, config.role.station_type());
        Self {
            config,
            clock,
            ca,
            den,
            ldm: Ldm::new(),
            loc_table: LocationTable::new(20_000),
            mac: EdcaMac::new(),
            dcc: DccGatekeeper::new(),
            position: Position2D::default(),
            speed_mps: 0.0,
            heading_deg: 0.0,
            gbc_sequence: 0,
            tx_count: 0,
            rx_count: 0,
            cam_scratch: Vec::new(),
            den_scratch: Vec::new(),
            denm_wire_scratch: Vec::new(),
        }
    }

    /// The station's configuration.
    pub fn config(&self) -> &StationConfig {
        &self.config
    }

    /// The station identifier.
    pub fn station_id(&self) -> StationId {
        self.config.station_id
    }

    /// The EDCA MAC (for channel-access computations).
    pub fn mac(&self) -> &EdcaMac {
        &self.mac
    }

    /// The LDM (application view).
    pub fn ldm(&self) -> &Ldm {
        &self.ldm
    }

    /// Mutable LDM access (for locally perceived objects).
    pub fn ldm_mut(&mut self) -> &mut Ldm {
        &mut self.ldm
    }

    /// The GeoNetworking location table (neighbour view).
    pub fn location_table(&self) -> &LocationTable {
        &self.loc_table
    }

    /// Renders the LDM as the text snapshot published to the
    /// [`crate::api::WebInterface`] (the OpenC2X web UI's data).
    pub fn ldm_snapshot(&self, now: SimTime) -> String {
        let mut out = format!(
            "station {} LDM @ {}\nstations: {}\nevents: {} ({} active)\nobjects: {}\n",
            self.config.station_id,
            now,
            self.ldm.station_count(),
            self.ldm.event_count(),
            self.ldm.active_events(now).len(),
            self.ldm.object_count(),
        );
        for denm in self.ldm.active_events(now) {
            out.push_str(&format!(
                "  event {}: {}\n",
                denm.management.action_id,
                denm.event_type()
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "mandatory-only".to_owned()),
            ));
        }
        out
    }

    /// Current lab-frame position.
    pub fn position(&self) -> Position2D {
        self.position
    }

    /// Updates the station's kinematic state.
    pub fn set_position(&mut self, position: Position2D) {
        self.position = position;
    }

    /// Updates speed and heading (OBUs only, but harmless on RSUs).
    pub fn set_motion(&mut self, speed_mps: f64, heading_deg: f64) {
        self.speed_mps = speed_mps;
        self.heading_deg = heading_deg;
    }

    /// This station's wall-clock reading (NTP-synced, ms granularity).
    pub fn wall(&self, now: SimTime) -> TimestampIts {
        TimestampIts::new(self.clock.wall_millis(now) & ((1 << 42) - 1))
            .expect("wall clock within TimestampIts range")
    }

    /// Frames transmitted so far.
    pub fn tx_count(&self) -> u64 {
        self.tx_count
    }

    /// Frames received so far.
    pub fn rx_count(&self) -> u64 {
        self.rx_count
    }

    /// Geographic position (degrees) of the station.
    pub fn geo_position(&self) -> (f64, f64) {
        lab_to_geo(self.config.geo_origin, self.position)
    }

    fn position_vector(&self, now: SimTime) -> LongPositionVector {
        let (lat, lon) = self.geo_position();
        LongPositionVector::new(
            GnAddress::new(u64::from(self.config.station_id.value())),
            self.wall(now).millis(),
            lat,
            lon,
            self.speed_mps,
            self.heading_deg,
        )
    }

    /// Station state fed to the CA service.
    fn station_state(&self) -> StationState {
        let (lat, lon) = self.geo_position();
        StationState {
            position: its_messages::common::ReferencePosition::from_degrees(lat, lon),
            heading_deg: self.heading_deg,
            speed_mps: self.speed_mps,
        }
    }

    /// The DCC gatekeeper (for congestion feedback from the channel).
    pub fn dcc(&self) -> &DccGatekeeper {
        &self.dcc
    }

    /// Feeds a busy-channel observation (any frame heard on the medium)
    /// into the DCC probe and advances its state machine.
    pub fn observe_channel_busy(&mut self, now: SimTime, airtime: SimDuration) {
        self.dcc.observe_busy(now, airtime);
        self.dcc.update_state(now);
    }

    /// Polls the CA service; returns an SHB packet if a CAM is due.
    ///
    /// A due CAM is dropped (not queued) when the DCC gatekeeper is
    /// closed for its access category — the OpenC2X gatekeeper's
    /// behaviour for stale beacons. DENMs ride AC_VO and are exempt.
    ///
    /// # Errors
    ///
    /// Returns an encoding error if the CAM violates a constraint
    /// (cannot happen for states produced by `set_motion`).
    pub fn poll_cam(&mut self, now: SimTime) -> uper::Result<Option<GnPacket>> {
        match self.cam_due(now) {
            Some(cam) => {
                let payload = cam.to_bytes()?;
                Ok(Some(GnPacket::single_hop(
                    self.position_vector(now),
                    TrafficClass::dp2(),
                    BtpPort::CAM,
                    payload,
                )))
            }
            None => Ok(None),
        }
    }

    /// [`poll_cam`](Self::poll_cam), serialised straight to wire bytes:
    /// writes the full frame into `frame` (cleared first) and returns
    /// whether a CAM went out. Encoding reuses an internal scratch
    /// buffer, so the steady-state beacon loop allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns an encoding error if the CAM violates a constraint
    /// (cannot happen for states produced by `set_motion`).
    pub fn poll_cam_frame(&mut self, now: SimTime, frame: &mut Vec<u8>) -> uper::Result<bool> {
        frame.clear();
        let Some(cam) = self.cam_due(now) else {
            return Ok(false);
        };
        let mut payload = std::mem::take(&mut self.cam_scratch);
        if payload.capacity() == 0 {
            // One up-front reservation instead of doubling through the
            // first CAM encode; LF-container CAMs fit comfortably.
            payload.reserve(192);
        }
        let encoded = uper::encode_into(&cam, &mut payload);
        if encoded.is_ok() {
            GnFrame::single_hop(
                self.position_vector(now),
                TrafficClass::dp2(),
                BtpPort::CAM,
                &payload,
            )
            .write_to(frame);
        }
        self.cam_scratch = payload;
        encoded.map(|()| true)
    }

    /// CA-service poll plus the DCC gate: the CAM to transmit now, if
    /// one is due and congestion control lets it through.
    fn cam_due(&mut self, now: SimTime) -> Option<Cam> {
        let state = self.station_state();
        let cam = self.ca.poll(now, &state)?;
        if !self.dcc.gate(now, AccessCategory::Video) {
            return None; // throttled by congestion control
        }
        self.tx_count += 1;
        self.dcc.on_transmitted(now);
        Some(cam)
    }

    /// Generates one CAM *now*, bypassing both the EN 302 637-2 trigger
    /// rules and the DCC gate, and returns it as an SHB packet.
    ///
    /// This is the liveness-beacon path: a stationary RSU would
    /// otherwise only beacon at `T_GenCamMax` (1 s), far too slow for a
    /// vehicle-side heartbeat watchdog with sub-second deadlines. The
    /// scenario drives this at the watchdog's heartbeat period when one
    /// is configured; it is never called on the baseline path.
    ///
    /// # Errors
    ///
    /// Returns an encoding error if the CAM violates a constraint
    /// (cannot happen for states produced by `set_motion`).
    pub fn heartbeat_cam(&mut self, now: SimTime) -> uper::Result<GnPacket> {
        let state = self.station_state();
        let cam = self.ca.generate(now, &state);
        let payload = cam.to_bytes()?;
        self.tx_count += 1;
        self.dcc.on_transmitted(now);
        Ok(GnPacket::single_hop(
            self.position_vector(now),
            TrafficClass::dp2(),
            BtpPort::CAM,
            payload,
        ))
    }

    /// Application trigger: registers a DENM request with the DEN
    /// service. Returns the allocated action id.
    pub fn trigger_denm(&mut self, now: SimTime, request: DenRequest) -> ActionId {
        let wall = self.wall(now);
        self.den.trigger(now, wall, request)
    }

    /// The next instant the DEN service has a (re)transmission due, for
    /// scheduling repetition polls.
    pub fn next_denm_due(&self) -> Option<SimTime> {
        self.den.next_due()
    }

    /// Polls the DEN service; returns GBC packets for every DENM due.
    ///
    /// # Errors
    ///
    /// Returns an encoding error if a DENM violates a constraint.
    pub fn poll_denm(&mut self, now: SimTime) -> uper::Result<Vec<GnPacket>> {
        let mut packets = Vec::new();
        self.poll_denm_into(now, &mut packets)?;
        Ok(packets)
    }

    /// [`poll_denm`](Self::poll_denm) into a caller-provided buffer,
    /// appending the due packets. The DENM list and its UPER wire bytes
    /// go through station-owned scratch buffers, so steady-state polls
    /// allocate only the `Arc` payload copy each packet hands out.
    ///
    /// # Errors
    ///
    /// Returns an encoding error if a DENM violates a constraint; `out`
    /// is left cleared in that case.
    pub fn poll_denm_into(&mut self, now: SimTime, out: &mut Vec<GnPacket>) -> uper::Result<()> {
        let wall = self.wall(now);
        let mut denms = std::mem::take(&mut self.den_scratch);
        denms.clear();
        self.den.poll_into(now, wall, &mut denms);
        let mut wire = std::mem::take(&mut self.denm_wire_scratch);
        let result = self.packetize_denms(now, &denms, &mut wire, out);
        denms.clear();
        self.den_scratch = denms;
        self.denm_wire_scratch = wire;
        if result.is_err() {
            out.clear();
        }
        result
    }

    fn packetize_denms(
        &mut self,
        now: SimTime,
        denms: &[Denm],
        wire: &mut Vec<u8>,
        out: &mut Vec<GnPacket>,
    ) -> uper::Result<()> {
        for denm in denms {
            let (lat, lon) = {
                let p = denm.management.event_position;
                (
                    p.latitude.as_degrees().unwrap_or(self.config.geo_origin.0),
                    p.longitude.as_degrees().unwrap_or(self.config.geo_origin.1),
                )
            };
            if wire.capacity() == 0 {
                wire.reserve(128);
            }
            uper::encode_into(denm, wire)?;
            let payload: std::sync::Arc<[u8]> = wire.as_slice().into();
            let area = GeoArea::circle(lat, lon, self.config.denm_area_radius_m);
            let seq = self.gbc_sequence;
            self.gbc_sequence = self.gbc_sequence.wrapping_add(1);
            self.tx_count += 1;
            out.push(GnPacket::geo_broadcast(
                self.position_vector(now),
                seq,
                area,
                TrafficClass::dp0(),
                BtpPort::DENM,
                payload,
            ));
        }
        Ok(())
    }

    /// The EDCA access category of a packet's traffic class.
    pub fn access_category(packet: &GnPacket) -> AccessCategory {
        AccessCategory::from_dcc_profile(packet.common.traffic_class.dcc_profile)
    }

    /// Computes when this station's MAC puts `packet` on the air, given
    /// the shared medium state.
    pub fn channel_access(
        &self,
        now: SimTime,
        packet: &GnPacket,
        medium: &phy80211p::Medium,
        rng: &mut SimRng,
    ) -> SimTime {
        self.mac
            .access_time(now, Self::access_category(packet), medium, rng)
    }

    /// [`channel_access`](Self::channel_access) for a borrowed frame.
    pub fn channel_access_frame(
        &self,
        now: SimTime,
        frame: &GnFrame<'_>,
        medium: &phy80211p::Medium,
        rng: &mut SimRng,
    ) -> SimTime {
        let ac = AccessCategory::from_dcc_profile(frame.common.traffic_class.dcc_profile);
        self.mac.access_time(now, ac, medium, rng)
    }

    /// Processes a received packet: geo-addressing check, BTP dispatch,
    /// LDM update, DENM de-duplication. Returns indications for the
    /// application layer.
    pub fn on_packet(&mut self, now: SimTime, packet: &GnPacket) -> Vec<StackIndication> {
        match self.on_frame(now, &packet.as_frame()) {
            FrameOutcome::Ignored => Vec::new(),
            FrameOutcome::CamStored => match Cam::from_bytes(&packet.payload) {
                Ok(cam) => vec![StackIndication::CamReceived(Box::new(cam))],
                Err(_) => Vec::new(), // unreachable: CamStored implies a decodable CAM
            },
            FrameOutcome::DenmDelivered(denm) => vec![StackIndication::DenmReceived(denm)],
        }
    }

    /// [`on_packet`](Self::on_packet) for a borrowed frame. The stack
    /// duties (geo-addressing, location table, GBC dedupe, LDM update)
    /// are identical; the returned outcome avoids re-boxing a CAM the
    /// caller only counts, so the steady-state beacon RX path allocates
    /// nothing beyond the LDM entry itself.
    pub fn on_frame(&mut self, now: SimTime, frame: &GnFrame<'_>) -> FrameOutcome {
        let (lat, lon) = self.geo_position();
        if !frame.addresses_position(lat, lon) {
            return FrameOutcome::Ignored;
        }
        // Ignore our own broadcasts echoed back.
        if frame.extended.source().address
            == GnAddress::new(u64::from(self.config.station_id.value()))
        {
            return FrameOutcome::Ignored;
        }
        // GeoNetworking router duties: learn the neighbour's position and
        // drop GBC duplicates by (source, sequence).
        let source = *frame.extended.source();
        self.loc_table.update(source, self.wall(now).millis());
        if let ExtendedHeader::GeoBroadcast(gbc) = &frame.extended {
            if self
                .loc_table
                .is_duplicate(source.address, gbc.sequence_number)
            {
                return FrameOutcome::Ignored;
            }
        }
        self.rx_count += 1;
        match frame.btp.destination_port {
            BtpPort::CAM => match Cam::from_bytes(frame.payload) {
                Ok(cam) => {
                    self.ldm.insert_cam(now, cam);
                    FrameOutcome::CamStored
                }
                Err(_) => FrameOutcome::Ignored,
            },
            BtpPort::DENM => match Denm::from_bytes(frame.payload) {
                Ok(denm) => {
                    if self.den.receive(&denm) {
                        self.ldm.insert_denm(now, denm.clone());
                        FrameOutcome::DenmDelivered(Box::new(denm))
                    } else {
                        FrameOutcome::Ignored
                    }
                }
                Err(_) => FrameOutcome::Ignored,
            },
            _ => FrameOutcome::Ignored,
        }
    }
}

/// The vehicle-side HTTP polling loop model.
///
/// The paper's Python script "is constantly communicating with the
/// OpenC2X's HTTP API hosted at the OBU, through POST requests" — the
/// wait for the next poll plus the HTTP round-trip dominates the
/// OBU→actuator interval (Table II row 3, avg 29.2 ms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PollingModel {
    /// Poll period of the script.
    pub period: SimDuration,
    /// Fixed part of the HTTP request round trip (TCP connect + parse).
    pub http_base: SimDuration,
    /// Mean of the exponential jitter on the round trip.
    pub http_jitter_mean: SimDuration,
}

impl Default for PollingModel {
    fn default() -> Self {
        Self {
            period: SimDuration::from_millis(50),
            http_base: SimDuration::from_millis(2),
            http_jitter_mean: SimDuration::from_millis(1),
        }
    }
}

impl PollingModel {
    /// The first poll instant at or after `now`, given the loop started
    /// at `phase` (uniformly random phase decorrelates poll and event).
    pub fn next_poll(&self, now: SimTime, phase: SimDuration) -> SimTime {
        let p = self.period.as_nanos();
        let base = phase.as_nanos() % p;
        let t = now.as_nanos();
        let k = if t <= base { 0 } else { (t - base).div_ceil(p) };
        SimTime::from_nanos(base + k * p)
    }

    /// Samples one HTTP request round-trip time.
    pub fn sample_http_rtt(&self, rng: &mut SimRng) -> SimDuration {
        self.http_base
            + SimDuration::from_secs_f64(
                rng.exponential(self.http_jitter_mean.as_secs_f64().max(1e-9)),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facilities::den::DenRequest;
    use geonet::headers::ExtendedHeader;
    use its_messages::cause_codes::{CauseCode, CollisionRiskSubCause};
    use its_messages::common::ReferencePosition;

    fn obu() -> ItsStation {
        let mut s = ItsStation::new(
            StationConfig::obu(StationId::new(7).unwrap()),
            NodeClock::perfect(0),
        );
        s.set_position(Position2D::new(2.0, 0.0));
        s.set_motion(1.5, 90.0);
        s
    }

    fn rsu() -> ItsStation {
        let mut s = ItsStation::new(
            StationConfig::rsu(StationId::new(15).unwrap()),
            NodeClock::perfect(0),
        );
        s.set_position(Position2D::new(0.0, 3.0));
        s
    }

    fn collision_request(station: &ItsStation, now: SimTime) -> DenRequest {
        let (lat, lon) = station.geo_position();
        DenRequest::one_shot(
            station.wall(now),
            ReferencePosition::from_degrees(lat, lon),
            CauseCode::CollisionRisk(CollisionRiskSubCause::CrossingCollisionRisk),
        )
    }

    #[test]
    fn cam_packet_assembly() {
        let mut obu = obu();
        let packet = obu.poll_cam(SimTime::ZERO).unwrap().unwrap();
        assert!(matches!(packet.extended, ExtendedHeader::SingleHop(_)));
        assert_eq!(packet.btp.destination_port, BtpPort::CAM);
        let cam = Cam::from_bytes(&packet.payload).unwrap();
        assert_eq!(cam.header.station_id.value(), 7);
        assert_eq!(obu.tx_count(), 1);
    }

    #[test]
    fn denm_packet_assembly_and_priority() {
        let mut rsu = rsu();
        let req = collision_request(&rsu, SimTime::ZERO);
        rsu.trigger_denm(SimTime::ZERO, req);
        let packets = rsu.poll_denm(SimTime::ZERO).unwrap();
        assert_eq!(packets.len(), 1);
        let p = &packets[0];
        assert!(matches!(p.extended, ExtendedHeader::GeoBroadcast(_)));
        assert_eq!(p.btp.destination_port, BtpPort::DENM);
        assert_eq!(p.common.traffic_class.dcc_profile, 0, "DENMs ride DP0");
        assert_eq!(ItsStation::access_category(p), AccessCategory::Voice);
    }

    #[test]
    fn end_to_end_rsu_to_obu_over_packets() {
        let mut rsu = rsu();
        let mut obu = obu();
        // OBU CAM → RSU LDM.
        let cam_packet = obu.poll_cam(SimTime::ZERO).unwrap().unwrap();
        let ind = rsu.on_packet(SimTime::ZERO, &cam_packet);
        assert!(matches!(ind[0], StackIndication::CamReceived(_)));
        assert_eq!(rsu.ldm().station_count(), 1);
        // RSU DENM → OBU application.
        let req = collision_request(&rsu, SimTime::ZERO);
        rsu.trigger_denm(SimTime::ZERO, req);
        let denm_packet = rsu.poll_denm(SimTime::ZERO).unwrap().remove(0);
        let ind = obu.on_packet(SimTime::from_millis(1), &denm_packet);
        assert_eq!(ind.len(), 1);
        match &ind[0] {
            StackIndication::DenmReceived(d) => {
                assert_eq!(d.event_type().unwrap().cause_code(), 97)
            }
            other => panic!("unexpected {other:?}"),
        }
        // Duplicate is dropped by the DEN receiver.
        assert!(obu
            .on_packet(SimTime::from_millis(2), &denm_packet)
            .is_empty());
    }

    #[test]
    fn own_packets_ignored() {
        let mut obu = obu();
        let packet = obu.poll_cam(SimTime::ZERO).unwrap().unwrap();
        assert!(obu.on_packet(SimTime::ZERO, &packet).is_empty());
        assert_eq!(obu.rx_count(), 0);
    }

    #[test]
    fn geo_addressing_filters_far_receivers() {
        let mut rsu = rsu();
        let req = collision_request(&rsu, SimTime::ZERO);
        rsu.trigger_denm(SimTime::ZERO, req);
        let packet = rsu.poll_denm(SimTime::ZERO).unwrap().remove(0);
        // A station 10 km away is outside the 100 m relevance circle.
        let mut far = obu();
        far.set_position(Position2D::new(10_000.0, 0.0));
        assert!(far.on_packet(SimTime::ZERO, &packet).is_empty());
    }

    #[test]
    fn garbage_payload_inside_valid_gn_packet_is_dropped() {
        let mut rsu = rsu();
        let mut obu = obu();
        let mut packet = obu.poll_cam(SimTime::ZERO).unwrap().unwrap();
        packet.payload = vec![0xFF; 7].into(); // not a CAM
        packet.common.payload_length = (packet.payload.len() + 4) as u16;
        assert!(rsu.on_packet(SimTime::ZERO, &packet).is_empty());
        assert_eq!(rsu.ldm().station_count(), 0);
    }

    #[test]
    fn denm_exempt_from_dcc_even_when_saturated() {
        // Safety property: congestion control must never delay the
        // emergency DENM (AC_VO exemption).
        let mut rsu = rsu();
        for k in 0..10u64 {
            rsu.observe_channel_busy(SimTime::from_millis(100 * k), SimDuration::from_millis(90));
        }
        assert_eq!(rsu.dcc().state(), phy80211p::dcc::DccState::Restrictive);
        let t = SimTime::from_secs(2);
        rsu.trigger_denm(t, collision_request(&rsu, t));
        let packets = rsu.poll_denm(t).unwrap();
        assert_eq!(
            packets.len(),
            1,
            "the DENM goes out despite Restrictive DCC"
        );
    }

    #[test]
    fn dcc_throttles_cams_on_saturated_channel() {
        let mut obu = obu();
        // Saturate the DCC probe: 90% busy for a second.
        for k in 0..10u64 {
            obu.observe_channel_busy(SimTime::from_millis(100 * k), SimDuration::from_millis(90));
        }
        assert_eq!(
            obu.dcc().state(),
            phy80211p::dcc::DccState::Restrictive,
            "probe saturated"
        );
        // Drive for 5 s with strong dynamics; Restrictive allows at most
        // one CAM per second.
        let mut cams = 0;
        for ms in (0..5000u64).step_by(20) {
            let t = SimTime::from_millis(1000 + ms);
            obu.set_position(Position2D::new(2.0 + 6.0 * ms as f64 / 1000.0, 0.0));
            obu.set_motion(6.0, 90.0);
            if obu.poll_cam(t).unwrap().is_some() {
                cams += 1;
            }
        }
        assert!(cams <= 6, "restrictive DCC caps the CAM rate: {cams}");
    }

    #[test]
    fn location_table_learns_neighbours_and_drops_gbc_duplicates() {
        let mut rsu = rsu();
        let mut obu = obu();
        // A CAM teaches the RSU about the OBU.
        let cam_packet = obu.poll_cam(SimTime::ZERO).unwrap().unwrap();
        rsu.on_packet(SimTime::ZERO, &cam_packet);
        assert_eq!(rsu.location_table().len(), 1);
        let entry = rsu
            .location_table()
            .entry(geonet::GnAddress::new(7))
            .expect("OBU learnt");
        assert!((entry.position.speed_mps() - 1.5).abs() < 1e-9);

        // The same GBC frame replayed (same sequence number) is dropped
        // at the GeoNetworking layer, before facilities-level dedupe.
        rsu.trigger_denm(SimTime::ZERO, collision_request(&rsu, SimTime::ZERO));
        let denm_packet = rsu.poll_denm(SimTime::ZERO).unwrap().remove(0);
        assert_eq!(
            obu.on_packet(SimTime::from_millis(1), &denm_packet).len(),
            1
        );
        let rx_before = obu.rx_count();
        assert!(obu
            .on_packet(SimTime::from_millis(2), &denm_packet)
            .is_empty());
        assert_eq!(
            obu.rx_count(),
            rx_before,
            "duplicate not counted as received"
        );
    }

    #[test]
    fn lab_to_geo_roundtrip_distance() {
        let origin = (41.178, -8.608);
        let (lat, lon) = lab_to_geo(origin, Position2D::new(3.0, 4.0));
        let a = ReferencePosition::from_degrees(origin.0, origin.1);
        let b = ReferencePosition::from_degrees(lat, lon);
        let d = a.planar_distance_m(&b);
        assert!((d - 5.0).abs() < 0.05, "distance {d}");
    }

    #[test]
    fn polling_model_next_poll_grid() {
        let m = PollingModel::default();
        let phase = SimDuration::from_millis(13);
        // Polls at 13, 63, 113, ...
        assert_eq!(m.next_poll(SimTime::from_millis(0), phase).as_millis(), 13);
        assert_eq!(m.next_poll(SimTime::from_millis(13), phase).as_millis(), 13);
        assert_eq!(m.next_poll(SimTime::from_millis(14), phase).as_millis(), 63);
        assert_eq!(m.next_poll(SimTime::from_millis(63), phase).as_millis(), 63);
    }

    #[test]
    fn polling_http_rtt_positive_and_jittered() {
        let m = PollingModel::default();
        let mut rng = SimRng::seed_from(1);
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for _ in 0..1000 {
            let rtt = m.sample_http_rtt(&mut rng).as_secs_f64();
            min = min.min(rtt);
            max = max.max(rtt);
        }
        assert!(min >= 0.002);
        assert!(max > min, "jitter present");
    }

    #[test]
    fn wall_clock_quantised_to_ms() {
        let obu = obu();
        assert_eq!(obu.wall(SimTime::from_micros(1_900)).millis(), 1);
    }
}
