//! OpenC2X-style ITS stations: OBU and RSU node glue, the HTTP
//! application API, and the vehicle-side polling model.
//!
//! OpenC2X (paper §III-D) exposes its DEN/CA applications "to the user
//! via an HTTP API": the road-side infrastructure POSTs to
//! `/trigger_denm` on the RSU to send a DENM, and the vehicle's script
//! polls `/request_denm` on the OBU — "If no DENM is found, it only
//! returns an HTTP 200 success status code. If a DENM was received by the
//! OBU, a response to the request is sent and power to the wheels is
//! interrupted."
//!
//! Three layers are provided:
//!
//! * [`http`] — a minimal HTTP/1.1 server and client over `std::net`
//!   TCP, suitable for hardware-in-the-loop style integration tests that
//!   exercise the real socket path,
//! * [`api`] — the OpenC2X endpoint semantics (`/trigger_denm`,
//!   `/request_denm`) with UPER-encoded DENMs in the bodies,
//! * [`node`] — the full per-station stack assembly (facilities +
//!   GeoNetworking + 802.11p MAC parameters) used by the discrete-event
//!   experiments, plus [`node::PollingModel`], the latency model of the
//!   HTTP polling loop that dominates the paper's OBU→actuator interval.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod node;

pub use api::{ObuApi, RsuApi, WebInterface};
pub use http::{poll_with_retry, PollError, PollOutcome, RetryPolicy};
pub use node::{ItsStation, PollingModel, StationConfig, StationRole};
