//! Minimal blocking HTTP/1.1 server and client on `std::net`.
//!
//! Implements just enough of HTTP/1.1 for the OpenC2X application API:
//! request line + headers + `Content-Length` bodies, fixed-length
//! responses, one request per connection (`Connection: close`
//! semantics). No external dependencies; every byte on the socket is
//! produced and parsed by this module.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use sim_core::SimDuration;

/// An HTTP request as seen by a handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …).
    pub method: String,
    /// Request path (`/request_denm`).
    pub path: String,
    /// Lower-cased header map.
    pub headers: BTreeMap<String, String>,
    /// Request body.
    pub body: Vec<u8>,
}

/// An HTTP response produced by a handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 404, …).
    pub status: u16,
    /// Response body.
    pub body: Vec<u8>,
    /// Content type (defaults to `application/octet-stream`).
    pub content_type: String,
}

impl Response {
    /// A 200 response with a body.
    pub fn ok(body: impl Into<Vec<u8>>) -> Self {
        Self {
            status: 200,
            body: body.into(),
            content_type: "application/octet-stream".to_owned(),
        }
    }

    /// A 200 response with no body (OpenC2X's "no DENM found" answer).
    pub fn ok_empty() -> Self {
        Self::ok(Vec::new())
    }

    /// A 404 response.
    pub fn not_found() -> Self {
        Self {
            status: 404,
            body: b"not found".to_vec(),
            content_type: "text/plain".to_owned(),
        }
    }

    /// A 400 response with a reason.
    pub fn bad_request(reason: &str) -> Self {
        Self::with_status(400, reason)
    }

    /// A plain-text response with an arbitrary status code — the
    /// campaign server's 409 Conflict (submission fingerprint mismatch)
    /// and 503 Service Unavailable (queue full) answers come through
    /// here.
    pub fn with_status(status: u16, reason: &str) -> Self {
        Self {
            status,
            body: reason.as_bytes().to_vec(),
            content_type: "text/plain".to_owned(),
        }
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            409 => "Conflict",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// A registered route handler.
type Handler = Box<dyn Fn(&Request) -> Response + Send + Sync>;

/// A tiny multi-threaded HTTP server.
///
/// # Example
///
/// ```no_run
/// use openc2x::http::{HttpServer, Response};
///
/// # fn main() -> std::io::Result<()> {
/// let mut server = HttpServer::new();
/// server.route("POST", "/trigger_denm", |req| {
///     Response::ok(req.body.clone())
/// });
/// let running = server.serve("127.0.0.1:0")?;
/// println!("listening on {}", running.addr());
/// running.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct HttpServer {
    routes: Vec<(String, String, Handler)>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("routes", &self.routes.len())
            .finish()
    }
}

impl HttpServer {
    /// Creates a server with no routes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a handler for `method` + `path`.
    pub fn route(
        &mut self,
        method: &str,
        path: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        self.routes
            .push((method.to_owned(), path.to_owned(), Box::new(handler)));
        self
    }

    /// Binds and starts serving on a background thread.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn serve(self, addr: &str) -> std::io::Result<RunningServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let routes = Arc::new(self.routes);
        let handle = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let routes = Arc::clone(&routes);
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, &routes);
                });
            }
        });
        Ok(RunningServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }
}

fn handle_connection(
    stream: TcpStream,
    routes: &[(String, String, Handler)],
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let request = match parse_request(&mut reader) {
        Ok(r) => r,
        Err(_) => {
            write_response(&stream, &Response::bad_request("malformed request"))?;
            return Ok(());
        }
    };
    let response = routes
        .iter()
        .find(|(m, p, _)| *m == request.method && *p == request.path)
        .map(|(_, _, h)| h(&request))
        .unwrap_or_else(Response::not_found);
    write_response(&stream, &response)
}

fn parse_request(reader: &mut BufReader<TcpStream>) -> std::io::Result<Request> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no method"))?
        .to_owned();
    let path = parts
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no path"))?
        .to_owned();
    let mut headers = BTreeMap::new();
    loop {
        let mut h = String::new();
        reader.read_line(&mut h)?;
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_owned());
        }
    }
    let len: usize = headers
        .get("content-length")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn write_response(mut stream: &TcpStream, response: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nContent-Type: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.status_text(),
        response.body.len(),
        response.content_type,
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// Handle to a running server; dropping it shuts the server down.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl RunningServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Kick the accept loop awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_inner();
        }
    }
}

/// A client response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Response body.
    pub body: Vec<u8>,
}

/// Sends a blocking request and reads the full response.
///
/// # Errors
///
/// Returns connection or protocol errors.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let mut len = 0usize;
    loop {
        let mut h = String::new();
        reader.read_line(&mut h)?;
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                len = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(ClientResponse { status, body })
}

/// Convenience: POST to `http://addr/path`.
///
/// # Errors
///
/// Returns connection or protocol errors.
pub fn post(addr: SocketAddr, path: &str, body: &[u8]) -> std::io::Result<ClientResponse> {
    request(addr, "POST", path, body)
}

/// Deterministic bounded retry/backoff policy for the vehicle's OBU
/// poll path.
///
/// Mirrors the blocking HTTP client the real OpenC2X vehicle uses, but in
/// simulated time: each attempt either returns within the attempt window
/// or times out after [`attempt_timeout`](Self::attempt_timeout), and
/// failed attempts back off exponentially
/// (`backoff_base * backoff_factor^attempt`). The schedule is pure
/// arithmetic over [`SimDuration`] — no randomness, no wall clock — so
/// the DENM notification latency observed under a transient stall is an
/// exact function of the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts before giving up (minimum 1).
    pub max_attempts: u32,
    /// Simulated time charged to an attempt that stalls.
    pub attempt_timeout: SimDuration,
    /// Backoff before the second attempt.
    pub backoff_base: SimDuration,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_factor: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            attempt_timeout: SimDuration::from_millis(20),
            backoff_base: SimDuration::from_millis(10),
            backoff_factor: 2,
        }
    }
}

impl RetryPolicy {
    /// The backoff inserted after failed attempt `attempt` (0-based):
    /// `backoff_base * backoff_factor^attempt`, saturating.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let factor = u64::from(self.backoff_factor).saturating_pow(attempt);
        SimDuration::from_nanos(self.backoff_base.as_nanos().saturating_mul(factor))
    }
}

/// Error returned when every attempt of a retried poll stalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollError {
    /// All attempts timed out; `waited` is the simulated time burned on
    /// timeouts and backoffs before giving up.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// Total simulated time spent before giving up.
        waited: SimDuration,
    },
}

impl std::fmt::Display for PollError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RetriesExhausted { attempts, waited } => write!(
                f,
                "poll retries exhausted after {attempts} attempts ({} us waited)",
                waited.as_micros()
            ),
        }
    }
}

impl std::error::Error for PollError {}

/// Outcome of a successful (possibly retried) poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollOutcome {
    /// Attempts made, counting the successful one (1 = no retry needed).
    pub attempts: u32,
    /// Simulated delay accumulated by failed attempts before the
    /// successful one (zero when the first attempt succeeds).
    pub delay: SimDuration,
}

/// Runs the deterministic retry schedule of `policy` against `stalled`,
/// a predicate telling whether the attempt starting `offset` after the
/// poll began stalls (e.g. an injected fault window).
///
/// Returns the attempt count and accumulated pre-response delay on
/// success, or [`PollError::RetriesExhausted`] once the budget is spent.
/// A first-attempt success costs zero delay, making the retry path a
/// strict no-op for healthy links.
pub fn poll_with_retry(
    policy: &RetryPolicy,
    mut stalled: impl FnMut(u32, SimDuration) -> bool,
) -> Result<PollOutcome, PollError> {
    let attempts = policy.max_attempts.max(1);
    let mut waited = SimDuration::ZERO;
    for attempt in 0..attempts {
        if !stalled(attempt, waited) {
            return Ok(PollOutcome {
                attempts: attempt + 1,
                delay: waited,
            });
        }
        waited = waited + policy.attempt_timeout;
        if attempt + 1 < attempts {
            waited = waited + policy.backoff(attempt);
        }
    }
    Err(PollError::RetriesExhausted { attempts, waited })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> RunningServer {
        let mut s = HttpServer::new();
        s.route("POST", "/echo", |req| Response::ok(req.body.clone()));
        s.route("GET", "/empty", |_| Response::ok_empty());
        s.serve("127.0.0.1:0").expect("bind")
    }

    #[test]
    fn post_roundtrip() {
        let server = echo_server();
        let resp = post(server.addr(), "/echo", b"hello denm").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"hello denm");
        server.shutdown();
    }

    #[test]
    fn empty_body_and_get() {
        let server = echo_server();
        let resp = request(server.addr(), "GET", "/empty", b"").unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body.is_empty());
        server.shutdown();
    }

    #[test]
    fn unknown_route_404() {
        let server = echo_server();
        let resp = post(server.addr(), "/nope", b"").unwrap();
        assert_eq!(resp.status, 404);
        server.shutdown();
    }

    #[test]
    fn with_status_carries_code_and_reason_over_the_wire() {
        let mut s = HttpServer::new();
        s.route("POST", "/full", |_| {
            Response::with_status(503, "queue full")
        });
        s.route("POST", "/clash", |_| {
            Response::with_status(409, "fingerprint mismatch")
        });
        let server = s.serve("127.0.0.1:0").expect("bind");
        let resp = post(server.addr(), "/full", b"").unwrap();
        assert_eq!(
            (resp.status, resp.body.as_slice()),
            (503, &b"queue full"[..])
        );
        let resp = post(server.addr(), "/clash", b"").unwrap();
        assert_eq!(resp.status, 409);
        server.shutdown();
    }

    #[test]
    fn binary_body_passes_through() {
        let server = echo_server();
        let body: Vec<u8> = (0..=255).collect();
        let resp = post(server.addr(), "/echo", &body).unwrap();
        assert_eq!(resp.body, body);
        server.shutdown();
    }

    #[test]
    fn concurrent_requests() {
        let server = echo_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let body = vec![i as u8; 64];
                    let resp = post(addr, "/echo", &body).unwrap();
                    assert_eq!(resp.body, body);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn first_attempt_success_is_free() {
        let outcome = poll_with_retry(&RetryPolicy::default(), |_, _| false).unwrap();
        assert_eq!(outcome.attempts, 1);
        assert_eq!(outcome.delay, SimDuration::ZERO);
    }

    #[test]
    fn retry_delay_follows_timeout_plus_exponential_backoff() {
        let policy = RetryPolicy::default();
        // Attempt 0 stalls, attempt 1 succeeds: 20 ms timeout + 10 ms backoff.
        let outcome = poll_with_retry(&policy, |attempt, _| attempt == 0).unwrap();
        assert_eq!(outcome.attempts, 2);
        assert_eq!(outcome.delay, SimDuration::from_millis(30));
        // Attempts 0 and 1 stall: 20 + 10 + 20 + 20 = 70 ms before attempt 2.
        let outcome = poll_with_retry(&policy, |attempt, _| attempt < 2).unwrap();
        assert_eq!(outcome.attempts, 3);
        assert_eq!(outcome.delay, SimDuration::from_millis(70));
    }

    #[test]
    fn stall_predicate_sees_accumulated_offset() {
        let policy = RetryPolicy::default();
        let mut offsets = Vec::new();
        let _ = poll_with_retry(&policy, |_, offset| {
            offsets.push(offset);
            true
        });
        assert_eq!(
            offsets,
            vec![
                SimDuration::ZERO,
                SimDuration::from_millis(30),
                SimDuration::from_millis(70),
            ]
        );
    }

    #[test]
    fn exhaustion_reports_attempts_and_waited_time() {
        let policy = RetryPolicy::default();
        let err = poll_with_retry(&policy, |_, _| true).unwrap_err();
        // 3 timeouts (60 ms) + backoffs 10 + 20 ms; no backoff after the last.
        assert_eq!(
            err,
            PollError::RetriesExhausted {
                attempts: 3,
                waited: SimDuration::from_millis(90),
            }
        );
    }

    #[test]
    fn zero_attempts_still_tries_once() {
        let policy = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        let outcome = poll_with_retry(&policy, |_, _| false).unwrap();
        assert_eq!(outcome.attempts, 1);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let policy = RetryPolicy {
            max_attempts: 80,
            backoff_factor: u32::MAX,
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff(70), SimDuration::from_nanos(u64::MAX));
    }

    #[test]
    fn shutdown_is_idempotent_via_drop() {
        let server = echo_server();
        let addr = server.addr();
        drop(server);
        // After drop, connections should fail or be refused eventually.
        // (The OS may accept briefly; we only assert no panic occurred.)
        let _ = TcpStream::connect(addr);
    }
}
