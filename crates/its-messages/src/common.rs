//! Common data elements from the ITS Common Data Dictionary
//! (ETSI TS 102 894-2), with their ASN.1 value ranges and physical units.
//!
//! Each element is a validated newtype: the raw wire integer is private and
//! constructors enforce the constrained range, so an encoded message can
//! never carry an out-of-range field.

use crate::enum_err;
use std::fmt;
use uper::{BitReader, BitWriter, Codec, UperError};

/// `StationID ::= INTEGER (0..4294967295)` — unique ITS station identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StationId(u32);

impl StationId {
    /// Creates a station id.
    ///
    /// # Errors
    ///
    /// Never fails for `u32` input; the `Result` keeps the constructor
    /// uniform with the other constrained elements.
    pub fn new(id: u32) -> uper::Result<Self> {
        Ok(Self(id))
    }

    /// Raw identifier value.
    pub fn value(&self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for StationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "station-{}", self.0)
    }
}

impl Codec for StationId {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_constrained_u64(u64::from(self.0), 0, u32::MAX as u64)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Ok(Self(r.read_constrained_u64(0, u32::MAX as u64)? as u32))
    }
}

/// `StationType ::= INTEGER (0..255)` — the kind of ITS station.
///
/// Only the values used by the testbed are named; any other value decodes
/// to [`StationType::Unknown`] carrying the raw code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StationType {
    /// Type information not available (code 0).
    Unavailable,
    /// Pedestrian (code 1).
    Pedestrian,
    /// Cyclist (code 2).
    Cyclist,
    /// Moped (code 3).
    Moped,
    /// Motorcycle (code 4) — how YOLO mislabelled the bare scale vehicle.
    Motorcycle,
    /// Passenger car (code 5) — the scale vehicle's intended class.
    PassengerCar,
    /// Bus (code 6).
    Bus,
    /// Light truck (code 7).
    LightTruck,
    /// Heavy truck (code 8) — YOLO's other mislabel with the body shell.
    HeavyTruck,
    /// Trailer (code 9).
    Trailer,
    /// Special vehicle (code 10).
    SpecialVehicle,
    /// Tram (code 11).
    Tram,
    /// Road-side unit (code 15).
    RoadSideUnit,
    /// Any other code.
    Unknown(u8),
}

impl StationType {
    /// Wire code of this station type.
    pub fn code(&self) -> u8 {
        match self {
            StationType::Unavailable => 0,
            StationType::Pedestrian => 1,
            StationType::Cyclist => 2,
            StationType::Moped => 3,
            StationType::Motorcycle => 4,
            StationType::PassengerCar => 5,
            StationType::Bus => 6,
            StationType::LightTruck => 7,
            StationType::HeavyTruck => 8,
            StationType::Trailer => 9,
            StationType::SpecialVehicle => 10,
            StationType::Tram => 11,
            StationType::RoadSideUnit => 15,
            StationType::Unknown(code) => *code,
        }
    }

    /// Maps a wire code back to a station type.
    pub fn from_code(code: u8) -> Self {
        match code {
            0 => StationType::Unavailable,
            1 => StationType::Pedestrian,
            2 => StationType::Cyclist,
            3 => StationType::Moped,
            4 => StationType::Motorcycle,
            5 => StationType::PassengerCar,
            6 => StationType::Bus,
            7 => StationType::LightTruck,
            8 => StationType::HeavyTruck,
            9 => StationType::Trailer,
            10 => StationType::SpecialVehicle,
            11 => StationType::Tram,
            15 => StationType::RoadSideUnit,
            other => StationType::Unknown(other),
        }
    }
}

impl Codec for StationType {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_constrained_u64(u64::from(self.code()), 0, 255)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Ok(Self::from_code(r.read_constrained_u64(0, 255)? as u8))
    }
}

/// `TimestampIts ::= INTEGER (0..4398046511103)` — milliseconds since the
/// ITS epoch (2004-01-01), 42 bits on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimestampIts(u64);

/// Upper bound of [`TimestampIts`] (2^42 - 1).
pub const TIMESTAMP_ITS_MAX: u64 = (1 << 42) - 1;

/// Unix milliseconds of the ITS epoch (2004-01-01T00:00:00Z).
pub const ITS_EPOCH_UNIX_MS: u64 = 1_072_915_200_000;

impl TimestampIts {
    /// Converts Unix milliseconds to an ITS timestamp.
    ///
    /// # Errors
    ///
    /// Returns [`UperError::OutOfRange`] for instants before the ITS
    /// epoch or beyond its 2^42 − 1 ms range (~year 2143).
    pub fn from_unix_ms(unix_ms: u64) -> uper::Result<Self> {
        let its = unix_ms.checked_sub(ITS_EPOCH_UNIX_MS).ok_or({
            UperError::OutOfRange {
                value: unix_ms as i128,
                min: ITS_EPOCH_UNIX_MS as i128,
                max: (ITS_EPOCH_UNIX_MS + TIMESTAMP_ITS_MAX) as i128,
            }
        })?;
        Self::new(its)
    }

    /// This timestamp as Unix milliseconds.
    pub fn as_unix_ms(&self) -> u64 {
        self.0 + ITS_EPOCH_UNIX_MS
    }

    /// Creates a timestamp from milliseconds since the ITS epoch.
    ///
    /// # Errors
    ///
    /// Returns [`UperError::OutOfRange`] if `millis` exceeds 2^42 - 1.
    pub fn new(millis: u64) -> uper::Result<Self> {
        if millis > TIMESTAMP_ITS_MAX {
            return Err(UperError::OutOfRange {
                value: millis as i128,
                min: 0,
                max: TIMESTAMP_ITS_MAX as i128,
            });
        }
        Ok(Self(millis))
    }

    /// Milliseconds since the ITS epoch.
    pub fn millis(&self) -> u64 {
        self.0
    }

    /// Difference `self - earlier` in milliseconds (saturating at zero).
    pub fn millis_since(&self, earlier: TimestampIts) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Codec for TimestampIts {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_constrained_u64(self.0, 0, TIMESTAMP_ITS_MAX)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Ok(Self(r.read_constrained_u64(0, TIMESTAMP_ITS_MAX)?))
    }
}

/// `Latitude ::= INTEGER (-900000000..900000001)` in 0.1 micro-degrees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Latitude(i32);

impl Latitude {
    /// Wire value meaning "unavailable".
    pub const UNAVAILABLE: Latitude = Latitude(900000001);

    /// Creates a latitude from tenths of micro-degrees.
    ///
    /// # Errors
    ///
    /// Returns [`UperError::OutOfRange`] outside `[-900000000, 900000001]`.
    pub fn new(tenth_microdeg: i32) -> uper::Result<Self> {
        if !(-900000000..=900000001).contains(&tenth_microdeg) {
            return Err(UperError::OutOfRange {
                value: tenth_microdeg as i128,
                min: -900000000,
                max: 900000001,
            });
        }
        Ok(Self(tenth_microdeg))
    }

    /// Creates a latitude from degrees, clamping to the valid range.
    pub fn from_degrees(deg: f64) -> Self {
        let raw = (deg * 1e7).round().clamp(-9e8, 9e8) as i32;
        Self(raw)
    }

    /// Latitude in degrees (`None` if unavailable).
    pub fn as_degrees(&self) -> Option<f64> {
        (*self != Self::UNAVAILABLE).then(|| f64::from(self.0) / 1e7)
    }

    /// Raw wire value.
    pub fn raw(&self) -> i32 {
        self.0
    }
}

impl Codec for Latitude {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_constrained_i64(i64::from(self.0), -900000000, 900000001)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Ok(Self(r.read_constrained_i64(-900000000, 900000001)? as i32))
    }
}

/// `Longitude ::= INTEGER (-1800000000..1800000001)` in 0.1 micro-degrees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Longitude(i32);

impl Longitude {
    /// Wire value meaning "unavailable".
    pub const UNAVAILABLE: Longitude = Longitude(1800000001);

    /// Creates a longitude from tenths of micro-degrees.
    ///
    /// # Errors
    ///
    /// Returns [`UperError::OutOfRange`] outside `[-1800000000, 1800000001]`.
    pub fn new(tenth_microdeg: i32) -> uper::Result<Self> {
        if !(-1800000000..=1800000001).contains(&tenth_microdeg) {
            return Err(UperError::OutOfRange {
                value: tenth_microdeg as i128,
                min: -1800000000,
                max: 1800000001,
            });
        }
        Ok(Self(tenth_microdeg))
    }

    /// Creates a longitude from degrees, clamping to the valid range.
    pub fn from_degrees(deg: f64) -> Self {
        let raw = (deg * 1e7).round().clamp(-1.8e9, 1.8e9) as i32;
        Self(raw)
    }

    /// Longitude in degrees (`None` if unavailable).
    pub fn as_degrees(&self) -> Option<f64> {
        (*self != Self::UNAVAILABLE).then(|| f64::from(self.0) / 1e7)
    }

    /// Raw wire value.
    pub fn raw(&self) -> i32 {
        self.0
    }
}

impl Codec for Longitude {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_constrained_i64(i64::from(self.0), -1800000000, 1800000001)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Ok(Self(r.read_constrained_i64(-1800000000, 1800000001)? as i32))
    }
}

/// `AltitudeValue ::= INTEGER (-100000..800001)` in centimetres.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Altitude(i32);

impl Altitude {
    /// Wire value meaning "unavailable".
    pub const UNAVAILABLE: Altitude = Altitude(800001);

    /// Creates an altitude from centimetres above the WGS-84 ellipsoid.
    ///
    /// # Errors
    ///
    /// Returns [`UperError::OutOfRange`] outside `[-100000, 800001]`.
    pub fn new(cm: i32) -> uper::Result<Self> {
        if !(-100000..=800001).contains(&cm) {
            return Err(UperError::OutOfRange {
                value: cm as i128,
                min: -100000,
                max: 800001,
            });
        }
        Ok(Self(cm))
    }

    /// Altitude in metres (`None` if unavailable).
    pub fn as_meters(&self) -> Option<f64> {
        (*self != Self::UNAVAILABLE).then(|| f64::from(self.0) / 100.0)
    }
}

impl Default for Altitude {
    fn default() -> Self {
        Self::UNAVAILABLE
    }
}

impl Codec for Altitude {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_constrained_i64(i64::from(self.0), -100000, 800001)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Ok(Self(r.read_constrained_i64(-100000, 800001)? as i32))
    }
}

/// Geographic reference position (latitude, longitude, altitude).
///
/// The confidence ellipse of the CDD is reduced to a single semi-major
/// confidence field, which is what the testbed logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReferencePosition {
    /// Latitude of the position.
    pub latitude: Latitude,
    /// Longitude of the position.
    pub longitude: Longitude,
    /// Altitude of the position.
    pub altitude: Altitude,
}

impl ReferencePosition {
    /// Builds a position from degrees with unavailable altitude.
    pub fn from_degrees(lat_deg: f64, lon_deg: f64) -> Self {
        Self {
            latitude: Latitude::from_degrees(lat_deg),
            longitude: Longitude::from_degrees(lon_deg),
            altitude: Altitude::UNAVAILABLE,
        }
    }

    /// Great-circle-free flat-earth distance to `other` in metres.
    ///
    /// Adequate for the laboratory scale of the testbed (tens of metres);
    /// uses an equirectangular projection around the mean latitude.
    pub fn planar_distance_m(&self, other: &ReferencePosition) -> f64 {
        const EARTH_RADIUS_M: f64 = 6_371_000.0;
        let (lat1, lon1) = match (self.latitude.as_degrees(), self.longitude.as_degrees()) {
            (Some(a), Some(b)) => (a.to_radians(), b.to_radians()),
            _ => return f64::INFINITY,
        };
        let (lat2, lon2) = match (other.latitude.as_degrees(), other.longitude.as_degrees()) {
            (Some(a), Some(b)) => (a.to_radians(), b.to_radians()),
            _ => return f64::INFINITY,
        };
        let x = (lon2 - lon1) * ((lat1 + lat2) / 2.0).cos();
        let y = lat2 - lat1;
        EARTH_RADIUS_M * (x * x + y * y).sqrt()
    }
}

impl Codec for ReferencePosition {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        self.latitude.encode(w)?;
        self.longitude.encode(w)?;
        self.altitude.encode(w)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Ok(Self {
            latitude: Latitude::decode(r)?,
            longitude: Longitude::decode(r)?,
            altitude: Altitude::decode(r)?,
        })
    }
}

/// `HeadingValue ::= INTEGER (0..3601)` in 0.1 degrees from North.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Heading(u16);

impl Heading {
    /// Wire value meaning "unavailable".
    pub const UNAVAILABLE: Heading = Heading(3601);

    /// Creates a heading from tenths of degrees clockwise from North.
    ///
    /// # Errors
    ///
    /// Returns [`UperError::OutOfRange`] if `tenth_deg > 3601`.
    pub fn new(tenth_deg: u16) -> uper::Result<Self> {
        if tenth_deg > 3601 {
            return Err(UperError::OutOfRange {
                value: tenth_deg as i128,
                min: 0,
                max: 3601,
            });
        }
        Ok(Self(tenth_deg))
    }

    /// Creates a heading from degrees, wrapping into `[0, 360)`.
    pub fn from_degrees(deg: f64) -> Self {
        let wrapped = deg.rem_euclid(360.0);
        Self((wrapped * 10.0).round() as u16 % 3600)
    }

    /// Heading in degrees (`None` if unavailable).
    pub fn as_degrees(&self) -> Option<f64> {
        (*self != Self::UNAVAILABLE).then(|| f64::from(self.0) / 10.0)
    }
}

impl Codec for Heading {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_constrained_u64(u64::from(self.0), 0, 3601)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Ok(Self(r.read_constrained_u64(0, 3601)? as u16))
    }
}

/// `SpeedValue ::= INTEGER (0..16383)` in centimetres per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Speed(u16);

impl Speed {
    /// Wire value meaning "unavailable".
    pub const UNAVAILABLE: Speed = Speed(16383);

    /// Creates a speed from centimetres per second.
    ///
    /// # Errors
    ///
    /// Returns [`UperError::OutOfRange`] if `cm_per_s > 16383`.
    pub fn new(cm_per_s: u16) -> uper::Result<Self> {
        if cm_per_s > 16383 {
            return Err(UperError::OutOfRange {
                value: cm_per_s as i128,
                min: 0,
                max: 16383,
            });
        }
        Ok(Self(cm_per_s))
    }

    /// Creates a speed from metres per second, clamping to the valid range.
    pub fn from_mps(mps: f64) -> Self {
        Self((mps * 100.0).round().clamp(0.0, 16382.0) as u16)
    }

    /// Speed in metres per second (`None` if unavailable).
    pub fn as_mps(&self) -> Option<f64> {
        (*self != Self::UNAVAILABLE).then(|| f64::from(self.0) / 100.0)
    }
}

impl Codec for Speed {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_constrained_u64(u64::from(self.0), 0, 16383)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Ok(Self(r.read_constrained_u64(0, 16383)? as u16))
    }
}

/// `ActionID ::= SEQUENCE { originatingStationID, sequenceNumber }` —
/// globally identifies a DENM event across updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActionId {
    /// Station that originated the event.
    pub originating_station: StationId,
    /// Sequence number, unique per originating station.
    pub sequence_number: u16,
}

impl ActionId {
    /// Creates an action id.
    pub fn new(originating_station: StationId, sequence_number: u16) -> Self {
        Self {
            originating_station,
            sequence_number,
        }
    }
}

impl std::fmt::Display for ActionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.originating_station, self.sequence_number)
    }
}

impl Codec for ActionId {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        self.originating_station.encode(w)?;
        w.write_constrained_u64(u64::from(self.sequence_number), 0, 65535)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Ok(Self {
            originating_station: StationId::decode(r)?,
            sequence_number: r.read_constrained_u64(0, 65535)? as u16,
        })
    }
}

/// `DeltaReferencePosition` — offset from a reference position, used in
/// path histories / traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DeltaReferencePosition {
    /// Delta latitude in 0.1 micro-degrees, `[-131071, 131072]`.
    pub delta_latitude: i32,
    /// Delta longitude in 0.1 micro-degrees, `[-131071, 131072]`.
    pub delta_longitude: i32,
    /// Delta altitude in centimetres, `[-12700, 12800]`.
    pub delta_altitude: i16,
}

impl DeltaReferencePosition {
    /// Creates a delta position after validating all three components.
    ///
    /// # Errors
    ///
    /// Returns [`UperError::OutOfRange`] if any component is out of range.
    pub fn new(
        delta_latitude: i32,
        delta_longitude: i32,
        delta_altitude: i16,
    ) -> uper::Result<Self> {
        if !(-131071..=131072).contains(&delta_latitude) {
            return Err(UperError::OutOfRange {
                value: delta_latitude as i128,
                min: -131071,
                max: 131072,
            });
        }
        if !(-131071..=131072).contains(&delta_longitude) {
            return Err(UperError::OutOfRange {
                value: delta_longitude as i128,
                min: -131071,
                max: 131072,
            });
        }
        if !(-12700..=12800).contains(&delta_altitude) {
            return Err(UperError::OutOfRange {
                value: delta_altitude as i128,
                min: -12700,
                max: 12800,
            });
        }
        Ok(Self {
            delta_latitude,
            delta_longitude,
            delta_altitude,
        })
    }
}

impl Codec for DeltaReferencePosition {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_constrained_i64(i64::from(self.delta_latitude), -131071, 131072)?;
        w.write_constrained_i64(i64::from(self.delta_longitude), -131071, 131072)?;
        w.write_constrained_i64(i64::from(self.delta_altitude), -12700, 12800)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Ok(Self {
            delta_latitude: r.read_constrained_i64(-131071, 131072)? as i32,
            delta_longitude: r.read_constrained_i64(-131071, 131072)? as i32,
            delta_altitude: r.read_constrained_i64(-12700, 12800)? as i16,
        })
    }
}

/// One point of a path history / trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PathPoint {
    /// Offset from the event / reference position.
    pub delta: DeltaReferencePosition,
    /// Travel time delta in 10 ms units, `[1, 65535]`, if known.
    pub delta_time: Option<u16>,
}

impl Codec for PathPoint {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_bool(self.delta_time.is_some());
        self.delta.encode(w)?;
        if let Some(dt) = self.delta_time {
            w.write_constrained_u64(u64::from(dt), 1, 65535)?;
        }
        Ok(())
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        let has_dt = r.read_bool()?;
        let delta = DeltaReferencePosition::decode(r)?;
        let delta_time = if has_dt {
            Some(r.read_constrained_u64(1, 65535)? as u16)
        } else {
            None
        };
        Ok(Self { delta, delta_time })
    }
}

/// `PathHistory ::= SEQUENCE (SIZE(0..40)) OF PathPoint`.
///
/// Stored inline as a fixed-capacity array: the ASN.1 size cap is 40,
/// so the points live in the message itself and encoding or decoding a
/// path history never allocates (low-frequency CAM containers are on
/// the scenario's per-event hot path).
#[derive(Clone)]
pub struct PathHistory {
    points: [PathPoint; Self::MAX_POINTS],
    len: u8,
}

impl Default for PathHistory {
    fn default() -> Self {
        Self {
            points: [PathPoint::default(); Self::MAX_POINTS],
            len: 0,
        }
    }
}

impl fmt::Debug for PathHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PathHistory")
            .field("points", &self.points())
            .finish()
    }
}

impl PartialEq for PathHistory {
    fn eq(&self, other: &Self) -> bool {
        self.points() == other.points()
    }
}

impl Eq for PathHistory {}

impl std::hash::Hash for PathHistory {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.points().hash(state);
    }
}

impl PathHistory {
    /// Maximum number of points in a path history.
    pub const MAX_POINTS: usize = 40;

    /// Creates a path history from points.
    ///
    /// # Errors
    ///
    /// Returns [`UperError::LengthTooLarge`] if more than
    /// [`Self::MAX_POINTS`] points are supplied.
    pub fn new(points: Vec<PathPoint>) -> uper::Result<Self> {
        Self::from_points(&points)
    }

    /// Creates a path history by copying a slice of points.
    ///
    /// # Errors
    ///
    /// Returns [`UperError::LengthTooLarge`] if more than
    /// [`Self::MAX_POINTS`] points are supplied.
    pub fn from_points(points: &[PathPoint]) -> uper::Result<Self> {
        if points.len() > Self::MAX_POINTS {
            return Err(UperError::LengthTooLarge(points.len()));
        }
        let mut h = Self::default();
        for (slot, p) in h.points.iter_mut().zip(points) {
            *slot = *p;
        }
        h.len = points.len() as u8;
        Ok(h)
    }

    /// Appends a point; returns `false` (unchanged) once full.
    pub fn push(&mut self, point: PathPoint) -> bool {
        match self.points.get_mut(usize::from(self.len)) {
            Some(slot) => {
                *slot = point;
                self.len += 1;
                true
            }
            None => false,
        }
    }

    /// The points of this history, oldest first.
    pub fn points(&self) -> &[PathPoint] {
        self.points.get(..usize::from(self.len)).unwrap_or(&[])
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Codec for PathHistory {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_constrained_u64(u64::from(self.len), 0, Self::MAX_POINTS as u64)?;
        for p in self.points() {
            p.encode(w)?;
        }
        Ok(())
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        let len = r.read_constrained_u64(0, Self::MAX_POINTS as u64)? as usize;
        let mut h = Self::default();
        for slot in h.points.iter_mut().take(len) {
            *slot = PathPoint::decode(r)?;
        }
        h.len = len as u8;
        Ok(h)
    }
}

/// `RelevanceDistance` — how far from the event position the DENM is
/// relevant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelevanceDistance {
    /// Less than 50 m.
    LessThan50m,
    /// Less than 100 m.
    LessThan100m,
    /// Less than 200 m.
    LessThan200m,
    /// Less than 500 m.
    LessThan500m,
    /// Less than 1000 m.
    LessThan1000m,
    /// Less than 5 km.
    LessThan5km,
    /// Less than 10 km.
    LessThan10km,
    /// Over 10 km.
    Over10km,
}

impl RelevanceDistance {
    const VARIANTS: u64 = 8;

    /// Upper bound of the band in metres (`f64::INFINITY` for the last).
    pub fn upper_bound_m(&self) -> f64 {
        match self {
            RelevanceDistance::LessThan50m => 50.0,
            RelevanceDistance::LessThan100m => 100.0,
            RelevanceDistance::LessThan200m => 200.0,
            RelevanceDistance::LessThan500m => 500.0,
            RelevanceDistance::LessThan1000m => 1000.0,
            RelevanceDistance::LessThan5km => 5000.0,
            RelevanceDistance::LessThan10km => 10000.0,
            RelevanceDistance::Over10km => f64::INFINITY,
        }
    }

    fn index(&self) -> u64 {
        match self {
            RelevanceDistance::LessThan50m => 0,
            RelevanceDistance::LessThan100m => 1,
            RelevanceDistance::LessThan200m => 2,
            RelevanceDistance::LessThan500m => 3,
            RelevanceDistance::LessThan1000m => 4,
            RelevanceDistance::LessThan5km => 5,
            RelevanceDistance::LessThan10km => 6,
            RelevanceDistance::Over10km => 7,
        }
    }

    fn from_index(i: u64) -> uper::Result<Self> {
        Ok(match i {
            0 => RelevanceDistance::LessThan50m,
            1 => RelevanceDistance::LessThan100m,
            2 => RelevanceDistance::LessThan200m,
            3 => RelevanceDistance::LessThan500m,
            4 => RelevanceDistance::LessThan1000m,
            5 => RelevanceDistance::LessThan5km,
            6 => RelevanceDistance::LessThan10km,
            7 => RelevanceDistance::Over10km,
            other => return Err(enum_err(other, "RelevanceDistance")),
        })
    }
}

impl Codec for RelevanceDistance {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_enumerated(self.index(), Self::VARIANTS)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Self::from_index(r.read_enumerated(Self::VARIANTS)?)
    }
}

/// `RelevanceTrafficDirection` — which traffic direction the DENM targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelevanceTrafficDirection {
    /// All traffic directions.
    AllTrafficDirections,
    /// Upstream traffic only.
    UpstreamTraffic,
    /// Downstream traffic only.
    DownstreamTraffic,
    /// Opposite-direction traffic only.
    OppositeTraffic,
}

impl RelevanceTrafficDirection {
    const VARIANTS: u64 = 4;

    fn index(&self) -> u64 {
        match self {
            RelevanceTrafficDirection::AllTrafficDirections => 0,
            RelevanceTrafficDirection::UpstreamTraffic => 1,
            RelevanceTrafficDirection::DownstreamTraffic => 2,
            RelevanceTrafficDirection::OppositeTraffic => 3,
        }
    }

    fn from_index(i: u64) -> uper::Result<Self> {
        Ok(match i {
            0 => RelevanceTrafficDirection::AllTrafficDirections,
            1 => RelevanceTrafficDirection::UpstreamTraffic,
            2 => RelevanceTrafficDirection::DownstreamTraffic,
            3 => RelevanceTrafficDirection::OppositeTraffic,
            other => return Err(enum_err(other, "RelevanceTrafficDirection")),
        })
    }
}

impl Codec for RelevanceTrafficDirection {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_enumerated(self.index(), Self::VARIANTS)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Self::from_index(r.read_enumerated(Self::VARIANTS)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(value: &T) -> T {
        let bytes = uper::encode(value).unwrap();
        uper::decode(&bytes).unwrap()
    }

    #[test]
    fn station_id_roundtrip() {
        for id in [0, 1, 42, u32::MAX] {
            let s = StationId::new(id).unwrap();
            assert_eq!(roundtrip(&s), s);
            assert_eq!(s.value(), id);
        }
    }

    #[test]
    fn station_type_codes_match_cdd() {
        assert_eq!(StationType::PassengerCar.code(), 5);
        assert_eq!(StationType::RoadSideUnit.code(), 15);
        assert_eq!(StationType::Motorcycle.code(), 4);
        assert_eq!(StationType::from_code(15), StationType::RoadSideUnit);
        assert_eq!(StationType::from_code(200), StationType::Unknown(200));
        // Unknown round-trips through the wire code.
        assert_eq!(roundtrip(&StationType::Unknown(200)).code(), 200);
    }

    #[test]
    fn timestamp_bounds() {
        assert!(TimestampIts::new(TIMESTAMP_ITS_MAX).is_ok());
        assert!(TimestampIts::new(TIMESTAMP_ITS_MAX + 1).is_err());
        let a = TimestampIts::new(100).unwrap();
        let b = TimestampIts::new(350).unwrap();
        assert_eq!(b.millis_since(a), 250);
        assert_eq!(a.millis_since(b), 0); // saturates
    }

    #[test]
    fn timestamp_unix_conversion() {
        // 2023-06-27 (the paper's conference week) in Unix ms.
        let unix = 1_687_824_000_000u64;
        let ts = TimestampIts::from_unix_ms(unix).unwrap();
        assert_eq!(ts.as_unix_ms(), unix);
        assert_eq!(ts.millis(), unix - ITS_EPOCH_UNIX_MS);
        // Before the ITS epoch: rejected.
        assert!(TimestampIts::from_unix_ms(ITS_EPOCH_UNIX_MS - 1).is_err());
        assert!(TimestampIts::from_unix_ms(ITS_EPOCH_UNIX_MS).is_ok());
    }

    #[test]
    fn latitude_degree_conversions() {
        let lat = Latitude::from_degrees(41.1784);
        assert!((lat.as_degrees().unwrap() - 41.1784).abs() < 1e-6);
        assert_eq!(Latitude::UNAVAILABLE.as_degrees(), None);
        assert!(Latitude::new(900000002).is_err());
        assert!(Latitude::new(-900000001).is_err());
    }

    #[test]
    fn longitude_degree_conversions() {
        let lon = Longitude::from_degrees(-8.6081);
        assert!((lon.as_degrees().unwrap() + 8.6081).abs() < 1e-6);
        assert!(Longitude::new(1800000002).is_err());
    }

    #[test]
    fn planar_distance_small_scale() {
        // Two points ~1.52 m apart (the paper's action-point distance) at
        // Porto's latitude.
        let a = ReferencePosition::from_degrees(41.178000, -8.608000);
        // 1 degree latitude ~= 111.19 km -> 1.52m ~= 1.367e-5 deg
        let b = ReferencePosition::from_degrees(41.178000 + 1.52 / 111_194.9, -8.608000);
        let d = a.planar_distance_m(&b);
        assert!((d - 1.52).abs() < 0.02, "distance {d}");
    }

    #[test]
    fn planar_distance_unavailable_is_infinite() {
        let a = ReferencePosition::from_degrees(41.0, -8.0);
        let mut b = a;
        b.latitude = Latitude::UNAVAILABLE;
        assert!(a.planar_distance_m(&b).is_infinite());
    }

    #[test]
    fn heading_wraps() {
        assert_eq!(Heading::from_degrees(370.0).as_degrees().unwrap(), 10.0);
        assert_eq!(Heading::from_degrees(-90.0).as_degrees().unwrap(), 270.0);
        assert_eq!(Heading::from_degrees(359.99).as_degrees().unwrap(), 0.0);
        assert!(Heading::new(3602).is_err());
    }

    #[test]
    fn speed_conversions() {
        let s = Speed::from_mps(1.5);
        assert_eq!(s.as_mps().unwrap(), 1.5);
        assert_eq!(Speed::UNAVAILABLE.as_mps(), None);
        // 60 km/h top speed of the Traxxas — representable.
        let top = Speed::from_mps(60.0 / 3.6);
        assert!((top.as_mps().unwrap() - 16.67).abs() < 0.01);
        assert!(Speed::new(16384).is_err());
    }

    #[test]
    fn action_id_display() {
        let a = ActionId::new(StationId::new(9).unwrap(), 3);
        assert_eq!(a.to_string(), "station-9#3");
    }

    #[test]
    fn delta_position_bounds() {
        assert!(DeltaReferencePosition::new(131073, 0, 0).is_err());
        assert!(DeltaReferencePosition::new(0, -131072, 0).is_err());
        assert!(DeltaReferencePosition::new(0, 0, 12801).is_err());
        assert!(DeltaReferencePosition::new(131072, 131072, 12800).is_ok());
    }

    #[test]
    fn path_history_size_cap() {
        let pts = vec![PathPoint::default(); 41];
        assert!(PathHistory::new(pts).is_err());
        let ok = PathHistory::new(vec![PathPoint::default(); 40]).unwrap();
        assert_eq!(ok.len(), 40);
        assert_eq!(roundtrip(&ok), ok);
    }

    #[test]
    fn relevance_distance_bands_monotone() {
        let all = [
            RelevanceDistance::LessThan50m,
            RelevanceDistance::LessThan100m,
            RelevanceDistance::LessThan200m,
            RelevanceDistance::LessThan500m,
            RelevanceDistance::LessThan1000m,
            RelevanceDistance::LessThan5km,
            RelevanceDistance::LessThan10km,
            RelevanceDistance::Over10km,
        ];
        for pair in all.windows(2) {
            assert!(pair[0].upper_bound_m() < pair[1].upper_bound_m());
            assert_eq!(roundtrip(&pair[0]), pair[0]);
        }
        assert_eq!(
            roundtrip(&RelevanceDistance::Over10km),
            RelevanceDistance::Over10km
        );
    }

    #[test]
    fn relevance_traffic_direction_roundtrip() {
        for d in [
            RelevanceTrafficDirection::AllTrafficDirections,
            RelevanceTrafficDirection::UpstreamTraffic,
            RelevanceTrafficDirection::DownstreamTraffic,
            RelevanceTrafficDirection::OppositeTraffic,
        ] {
            assert_eq!(roundtrip(&d), d);
        }
    }

    proptest! {
        #[test]
        fn reference_position_roundtrip(lat in -90.0f64..90.0, lon in -180.0f64..180.0) {
            let p = ReferencePosition::from_degrees(lat, lon);
            let bytes = uper::encode(&p).unwrap();
            let back: ReferencePosition = uper::decode(&bytes).unwrap();
            prop_assert_eq!(p, back);
        }

        #[test]
        fn heading_speed_roundtrip(h in 0u16..=3601, s in 0u16..=16383) {
            let heading = Heading::new(h).unwrap();
            let speed = Speed::new(s).unwrap();
            let hb = uper::encode(&heading).unwrap();
            let sb = uper::encode(&speed).unwrap();
            prop_assert_eq!(uper::decode::<Heading>(&hb).unwrap(), heading);
            prop_assert_eq!(uper::decode::<Speed>(&sb).unwrap(), speed);
        }

        #[test]
        fn path_point_roundtrip(dlat in -131071i32..=131072, dlon in -131071i32..=131072,
                                dalt in -12700i16..=12800, dt in proptest::option::of(1u16..=65535)) {
            let p = PathPoint {
                delta: DeltaReferencePosition::new(dlat, dlon, dalt).unwrap(),
                delta_time: dt,
            };
            let bytes = uper::encode(&p).unwrap();
            prop_assert_eq!(uper::decode::<PathPoint>(&bytes).unwrap(), p);
        }
    }
}
