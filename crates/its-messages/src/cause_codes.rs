//! DENM event types: `causeCode` / `subCauseCode` pairs.
//!
//! Reproduces Table I of the paper (itself an excerpt of Table 10 in
//! ETSI EN 302 637-3): hazardous-location codes 9 and 10, collision risk 97
//! and dangerous situation 99, plus the stationary-vehicle code 94 discussed
//! in §II-C, and the remaining standard direct cause codes with raw
//! sub-causes.
//!
//! The collision-avoidance use-case uses two of these:
//!
//! * **code 10** (*hazardous location — obstacle on the road*) when the
//!   road-side camera first sees a road user in the region of interest, and
//! * **code 97** (*collision risk*) when the edge node determines a
//!   collision is imminent and the vehicle must emergency-brake.

use crate::enum_err;
use uper::{BitReader, BitWriter, Codec};

/// Sub-causes of cause code 97 — *Collision Risk* (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollisionRiskSubCause {
    /// 0 — unavailable.
    Unavailable,
    /// 1 — longitudinal collision risk.
    LongitudinalCollisionRisk,
    /// 2 — crossing collision risk (the blind-corner intersection case).
    CrossingCollisionRisk,
    /// 3 — lateral collision risk.
    LateralCollisionRisk,
    /// 4 — collision risk involving a vulnerable road user.
    VulnerableRoadUser,
}

impl CollisionRiskSubCause {
    /// Wire sub-cause code.
    pub fn code(&self) -> u8 {
        match self {
            CollisionRiskSubCause::Unavailable => 0,
            CollisionRiskSubCause::LongitudinalCollisionRisk => 1,
            CollisionRiskSubCause::CrossingCollisionRisk => 2,
            CollisionRiskSubCause::LateralCollisionRisk => 3,
            CollisionRiskSubCause::VulnerableRoadUser => 4,
        }
    }

    /// Maps a wire code back to a sub-cause.
    ///
    /// # Errors
    ///
    /// Returns an error for codes above 4.
    pub fn from_code(code: u8) -> uper::Result<Self> {
        Ok(match code {
            0 => CollisionRiskSubCause::Unavailable,
            1 => CollisionRiskSubCause::LongitudinalCollisionRisk,
            2 => CollisionRiskSubCause::CrossingCollisionRisk,
            3 => CollisionRiskSubCause::LateralCollisionRisk,
            4 => CollisionRiskSubCause::VulnerableRoadUser,
            other => return Err(enum_err(u64::from(other), "CollisionRiskSubCause")),
        })
    }

    /// Human-readable description as printed in Table I.
    pub fn description(&self) -> &'static str {
        match self {
            CollisionRiskSubCause::Unavailable => "Unavailable",
            CollisionRiskSubCause::LongitudinalCollisionRisk => "Longitudinal collision risk",
            CollisionRiskSubCause::CrossingCollisionRisk => "Crossing collision risk",
            CollisionRiskSubCause::LateralCollisionRisk => "Lateral collision risk",
            CollisionRiskSubCause::VulnerableRoadUser => {
                "Collision risk involving vulnerable road-user"
            }
        }
    }
}

/// Sub-causes of cause code 99 — *Dangerous Situation* (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DangerousSituationSubCause {
    /// 0 — unavailable.
    Unavailable,
    /// 1 — emergency electronic brake lights.
    EmergencyElectronicBrakeLights,
    /// 2 — pre-crash system activated.
    PreCrashSystemActivated,
    /// 3 — ESP (Electronic Stability Program) activated.
    EspActivated,
    /// 4 — ABS (Anti-lock braking system) activated.
    AbsActivated,
    /// 5 — AEB (Automatic Emergency Braking) activated.
    AebActivated,
    /// 6 — brake warning activated.
    BrakeWarningActivated,
    /// 7 — collision risk warning activated.
    CollisionRiskWarningActivated,
}

impl DangerousSituationSubCause {
    /// Wire sub-cause code.
    pub fn code(&self) -> u8 {
        match self {
            DangerousSituationSubCause::Unavailable => 0,
            DangerousSituationSubCause::EmergencyElectronicBrakeLights => 1,
            DangerousSituationSubCause::PreCrashSystemActivated => 2,
            DangerousSituationSubCause::EspActivated => 3,
            DangerousSituationSubCause::AbsActivated => 4,
            DangerousSituationSubCause::AebActivated => 5,
            DangerousSituationSubCause::BrakeWarningActivated => 6,
            DangerousSituationSubCause::CollisionRiskWarningActivated => 7,
        }
    }

    /// Maps a wire code back to a sub-cause.
    ///
    /// # Errors
    ///
    /// Returns an error for codes above 7.
    pub fn from_code(code: u8) -> uper::Result<Self> {
        Ok(match code {
            0 => DangerousSituationSubCause::Unavailable,
            1 => DangerousSituationSubCause::EmergencyElectronicBrakeLights,
            2 => DangerousSituationSubCause::PreCrashSystemActivated,
            3 => DangerousSituationSubCause::EspActivated,
            4 => DangerousSituationSubCause::AbsActivated,
            5 => DangerousSituationSubCause::AebActivated,
            6 => DangerousSituationSubCause::BrakeWarningActivated,
            7 => DangerousSituationSubCause::CollisionRiskWarningActivated,
            other => return Err(enum_err(u64::from(other), "DangerousSituationSubCause")),
        })
    }

    /// Human-readable description as printed in Table I.
    pub fn description(&self) -> &'static str {
        match self {
            DangerousSituationSubCause::Unavailable => "Unavailable",
            DangerousSituationSubCause::EmergencyElectronicBrakeLights => {
                "Emergency electronic brake lights"
            }
            DangerousSituationSubCause::PreCrashSystemActivated => "Pre-crash system activated",
            DangerousSituationSubCause::EspActivated => {
                "ESP (Electronic Stability Program) activated"
            }
            DangerousSituationSubCause::AbsActivated => "ABS (Anti-lock braking system) activated",
            DangerousSituationSubCause::AebActivated => {
                "AEB (Automatic Emergency braking) activated"
            }
            DangerousSituationSubCause::BrakeWarningActivated => "Brake warning activated",
            DangerousSituationSubCause::CollisionRiskWarningActivated => {
                "Collision risk warning activated"
            }
        }
    }
}

/// Sub-causes of cause code 94 — *Stationary Vehicle* (§II-C of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StationaryVehicleSubCause {
    /// 0 — unavailable.
    Unavailable,
    /// 1 — human problem.
    HumanProblem,
    /// 2 — vehicle breakdown.
    VehicleBreakdown,
    /// 3 — post crash.
    PostCrash,
    /// 4 — public transport stop.
    PublicTransportStop,
    /// 5 — carrying dangerous goods.
    CarryingDangerousGoods,
}

impl StationaryVehicleSubCause {
    /// Wire sub-cause code.
    pub fn code(&self) -> u8 {
        match self {
            StationaryVehicleSubCause::Unavailable => 0,
            StationaryVehicleSubCause::HumanProblem => 1,
            StationaryVehicleSubCause::VehicleBreakdown => 2,
            StationaryVehicleSubCause::PostCrash => 3,
            StationaryVehicleSubCause::PublicTransportStop => 4,
            StationaryVehicleSubCause::CarryingDangerousGoods => 5,
        }
    }

    /// Maps a wire code back to a sub-cause.
    ///
    /// # Errors
    ///
    /// Returns an error for codes above 5.
    pub fn from_code(code: u8) -> uper::Result<Self> {
        Ok(match code {
            0 => StationaryVehicleSubCause::Unavailable,
            1 => StationaryVehicleSubCause::HumanProblem,
            2 => StationaryVehicleSubCause::VehicleBreakdown,
            3 => StationaryVehicleSubCause::PostCrash,
            4 => StationaryVehicleSubCause::PublicTransportStop,
            5 => StationaryVehicleSubCause::CarryingDangerousGoods,
            other => return Err(enum_err(u64::from(other), "StationaryVehicleSubCause")),
        })
    }
}

/// The `eventType` of a DENM Situation container.
///
/// Typed variants cover the rows of the paper's Table I (plus code 94 from
/// the running text); every other standard code is carried through
/// [`CauseCode::Other`] without loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CauseCode {
    /// Code 9 — hazardous location, surface condition. Sub-causes 1–9 are
    /// defined externally (TISA TAWG11071), so the raw code is kept.
    HazardousLocationSurfaceCondition(u8),
    /// Code 10 — hazardous location, obstacle on the road. Sub-causes 1–7
    /// defined externally; raw code kept.
    HazardousLocationObstacleOnTheRoad(u8),
    /// Code 94 — stationary vehicle.
    StationaryVehicle(StationaryVehicleSubCause),
    /// Code 97 — collision risk.
    CollisionRisk(CollisionRiskSubCause),
    /// Code 99 — dangerous situation.
    DangerousSituation(DangerousSituationSubCause),
    /// Any other `(causeCode, subCauseCode)` pair.
    Other {
        /// Direct cause code (0..=255).
        cause: u8,
        /// Sub-cause code (0..=255).
        sub_cause: u8,
    },
}

impl CauseCode {
    /// Direct cause code on the wire.
    pub fn cause_code(&self) -> u8 {
        match self {
            CauseCode::HazardousLocationSurfaceCondition(_) => 9,
            CauseCode::HazardousLocationObstacleOnTheRoad(_) => 10,
            CauseCode::StationaryVehicle(_) => 94,
            CauseCode::CollisionRisk(_) => 97,
            CauseCode::DangerousSituation(_) => 99,
            CauseCode::Other { cause, .. } => *cause,
        }
    }

    /// Sub-cause code on the wire.
    pub fn sub_cause_code(&self) -> u8 {
        match self {
            CauseCode::HazardousLocationSurfaceCondition(sc) => *sc,
            CauseCode::HazardousLocationObstacleOnTheRoad(sc) => *sc,
            CauseCode::StationaryVehicle(sc) => sc.code(),
            CauseCode::CollisionRisk(sc) => sc.code(),
            CauseCode::DangerousSituation(sc) => sc.code(),
            CauseCode::Other { sub_cause, .. } => *sub_cause,
        }
    }

    /// Rebuilds a cause code from its two wire bytes.
    ///
    /// Unknown pairs are preserved via [`CauseCode::Other`]; pairs whose
    /// direct code is typed but whose sub-cause is out of the defined range
    /// are also preserved as `Other` (liberal reception, like OpenC2X).
    pub fn from_codes(cause: u8, sub_cause: u8) -> Self {
        match cause {
            9 => CauseCode::HazardousLocationSurfaceCondition(sub_cause),
            10 => CauseCode::HazardousLocationObstacleOnTheRoad(sub_cause),
            94 => StationaryVehicleSubCause::from_code(sub_cause)
                .map(CauseCode::StationaryVehicle)
                .unwrap_or(CauseCode::Other { cause, sub_cause }),
            97 => CollisionRiskSubCause::from_code(sub_cause)
                .map(CauseCode::CollisionRisk)
                .unwrap_or(CauseCode::Other { cause, sub_cause }),
            99 => DangerousSituationSubCause::from_code(sub_cause)
                .map(CauseCode::DangerousSituation)
                .unwrap_or(CauseCode::Other { cause, sub_cause }),
            _ => CauseCode::Other { cause, sub_cause },
        }
    }

    /// Description of the direct cause, as in Table I / EN 302 637-3.
    pub fn description(&self) -> &'static str {
        match self.cause_code() {
            0 => "Reserved",
            1 => "Traffic condition",
            2 => "Accident",
            3 => "Roadworks",
            6 => "Adverse weather condition - Adhesion",
            9 => "Hazardous location - Surface condition",
            10 => "Hazardous location - Obstacle on the road",
            11 => "Hazardous location - Animal on the road",
            12 => "Human presence on the road",
            14 => "Wrong way driving",
            15 => "Rescue and recovery work in progress",
            17 => "Adverse weather condition - Extreme weather condition",
            18 => "Adverse weather condition - Visibility",
            19 => "Adverse weather condition - Precipitation",
            26 => "Slow vehicle",
            27 => "Dangerous end of queue",
            91 => "Vehicle breakdown",
            92 => "Post crash",
            93 => "Human problem",
            94 => "Stationary vehicle",
            95 => "Emergency vehicle approaching",
            96 => "Hazardous location - Dangerous curve",
            97 => "Collision risk",
            98 => "Signal violation",
            99 => "Dangerous situation",
            _ => "Unknown cause",
        }
    }

    /// Whether this event type should trigger an emergency braking action
    /// at the receiving vehicle in the collision-avoidance application.
    pub fn requires_emergency_brake(&self) -> bool {
        matches!(
            self,
            CauseCode::CollisionRisk(_)
                | CauseCode::DangerousSituation(
                    DangerousSituationSubCause::AebActivated
                        | DangerousSituationSubCause::PreCrashSystemActivated
                )
        )
    }
}

impl std::fmt::Display for CauseCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}/{})",
            self.description(),
            self.cause_code(),
            self.sub_cause_code()
        )
    }
}

impl Codec for CauseCode {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_constrained_u64(u64::from(self.cause_code()), 0, 255)?;
        w.write_constrained_u64(u64::from(self.sub_cause_code()), 0, 255)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        let cause = r.read_constrained_u64(0, 255)? as u8;
        let sub_cause = r.read_constrained_u64(0, 255)? as u8;
        Ok(Self::from_codes(cause, sub_cause))
    }
}

/// Every `(cause, sub_cause, sub-cause description)` row of the paper's
/// Table I, in print order. Used by the `table1_causecodes` bench to emit
/// the table and by tests to pin the values.
pub const TABLE_I_ROWS: &[(u8, u8, &str)] = &[
    (9, 0, "Unavailable"),
    (
        9,
        1,
        "As specified in tec109 of clause 9.18 in TISA TAWG11071",
    ),
    (10, 0, "Unavailable"),
    (
        10,
        1,
        "As specified in tec110 of clause 9.19 in TISA TAWG11071",
    ),
    (97, 0, "Unavailable"),
    (97, 1, "Longitudinal collision risk"),
    (97, 2, "Crossing collision risk"),
    (97, 3, "Lateral collision risk"),
    (97, 4, "Collision risk involving vulnerable road-user"),
    (99, 0, "Unavailable"),
    (99, 1, "Emergency electronic brake lights"),
    (99, 2, "Pre-crash system activated"),
    (99, 3, "ESP(Electronic Stability Program) activated"),
    (99, 4, "ABS (Anti-lock braking system) activated"),
    (99, 5, "AEB (Automatic Emergency braking) activated"),
    (99, 6, "Brake warning activated"),
    (99, 7, "Collision risk warning activated"),
];

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table_i_codes_roundtrip() {
        for &(cause, sub, _) in TABLE_I_ROWS {
            let cc = CauseCode::from_codes(cause, sub);
            assert_eq!(cc.cause_code(), cause);
            assert_eq!(cc.sub_cause_code(), sub);
            let bytes = uper::encode(&cc).unwrap();
            assert_eq!(bytes.len(), 2);
            assert_eq!(uper::decode::<CauseCode>(&bytes).unwrap(), cc);
        }
    }

    #[test]
    fn collision_risk_descriptions_match_table_i() {
        assert_eq!(
            CollisionRiskSubCause::CrossingCollisionRisk.description(),
            "Crossing collision risk"
        );
        assert_eq!(
            CauseCode::CollisionRisk(CollisionRiskSubCause::VulnerableRoadUser).description(),
            "Collision risk"
        );
    }

    #[test]
    fn section_ii_c_stationary_vehicle_examples() {
        // "a causeCode of 94; a subCauseCode of 1 would indicate a human
        //  problem and 2 a vehicle breakdown"
        let human = CauseCode::from_codes(94, 1);
        assert_eq!(
            human,
            CauseCode::StationaryVehicle(StationaryVehicleSubCause::HumanProblem)
        );
        let breakdown = CauseCode::from_codes(94, 2);
        assert_eq!(
            breakdown,
            CauseCode::StationaryVehicle(StationaryVehicleSubCause::VehicleBreakdown)
        );
    }

    #[test]
    fn use_case_codes_10_and_97() {
        // §II-D: code 10 warns of an obstacle; code 97 warns of imminent
        // collision, which triggers the emergency brake.
        let obstacle = CauseCode::HazardousLocationObstacleOnTheRoad(0);
        assert_eq!(obstacle.cause_code(), 10);
        assert!(!obstacle.requires_emergency_brake());

        let risk = CauseCode::CollisionRisk(CollisionRiskSubCause::CrossingCollisionRisk);
        assert_eq!(risk.cause_code(), 97);
        assert!(risk.requires_emergency_brake());
    }

    #[test]
    fn unknown_subcause_of_typed_code_preserved_as_other() {
        let cc = CauseCode::from_codes(97, 200);
        assert_eq!(
            cc,
            CauseCode::Other {
                cause: 97,
                sub_cause: 200
            }
        );
        assert_eq!(cc.cause_code(), 97);
        assert_eq!(cc.sub_cause_code(), 200);
    }

    #[test]
    fn display_includes_codes() {
        let cc = CauseCode::CollisionRisk(CollisionRiskSubCause::CrossingCollisionRisk);
        assert_eq!(cc.to_string(), "Collision risk (97/2)");
    }

    proptest! {
        #[test]
        fn any_code_pair_roundtrips(cause in any::<u8>(), sub in any::<u8>()) {
            let cc = CauseCode::from_codes(cause, sub);
            prop_assert_eq!(cc.cause_code(), cause);
            prop_assert_eq!(cc.sub_cause_code(), sub);
            let bytes = uper::encode(&cc).unwrap();
            prop_assert_eq!(uper::decode::<CauseCode>(&bytes).unwrap(), cc);
        }
    }
}
