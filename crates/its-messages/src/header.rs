//! `ItsPduHeader` — the common header at the front of every CAM and DENM
//! (Figure 2 of the paper: protocol version, message type, station ID).

use crate::common::StationId;
use crate::enum_err;
use uper::{BitReader, BitWriter, Codec};

/// Protocol version carried in every PDU header (EN 302 637 family v1.x).
pub const PROTOCOL_VERSION: u8 = 1;

/// `messageID` values of the facilities messages used by the testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageId {
    /// DENM — messageID 1.
    Denm,
    /// CAM — messageID 2.
    Cam,
    /// CPM — messageID 14 (TS 103 324 collective perception).
    Cpm,
}

impl MessageId {
    /// Wire value per EN 302 637 / TS 103 324.
    pub fn code(&self) -> u8 {
        match self {
            MessageId::Denm => 1,
            MessageId::Cam => 2,
            MessageId::Cpm => 14,
        }
    }

    /// Maps a wire code to a message id.
    ///
    /// # Errors
    ///
    /// Returns [`uper::UperError::InvalidEnum`] for codes other than 1,
    /// 2 or 14.
    pub fn from_code(code: u8) -> uper::Result<Self> {
        match code {
            1 => Ok(MessageId::Denm),
            2 => Ok(MessageId::Cam),
            14 => Ok(MessageId::Cpm),
            other => Err(enum_err(u64::from(other), "MessageId")),
        }
    }
}

/// The common ITS PDU header.
///
/// # Example
///
/// ```
/// use its_messages::{ItsPduHeader, MessageId};
/// use its_messages::common::StationId;
///
/// # fn main() -> Result<(), uper::UperError> {
/// let h = ItsPduHeader::new(MessageId::Denm, StationId::new(7)?);
/// let bytes = uper::encode(&h)?;
/// let back: ItsPduHeader = uper::decode(&bytes)?;
/// assert_eq!(h, back);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ItsPduHeader {
    /// Protocol version (always [`PROTOCOL_VERSION`] when built here).
    pub protocol_version: u8,
    /// Which facilities message follows.
    pub message_id: MessageId,
    /// Station that generated the message.
    pub station_id: StationId,
}

impl ItsPduHeader {
    /// Creates a header at the current protocol version.
    pub fn new(message_id: MessageId, station_id: StationId) -> Self {
        Self {
            protocol_version: PROTOCOL_VERSION,
            message_id,
            station_id,
        }
    }
}

impl Codec for ItsPduHeader {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_constrained_u64(u64::from(self.protocol_version), 0, 255)?;
        w.write_constrained_u64(u64::from(self.message_id.code()), 0, 255)?;
        self.station_id.encode(w)
    }

    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        let protocol_version = r.read_constrained_u64(0, 255)? as u8;
        let message_id = MessageId::from_code(r.read_constrained_u64(0, 255)? as u8)?;
        let station_id = StationId::decode(r)?;
        Ok(Self {
            protocol_version,
            message_id,
            station_id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_id_codes() {
        assert_eq!(MessageId::Denm.code(), 1);
        assert_eq!(MessageId::Cam.code(), 2);
        assert_eq!(MessageId::Cpm.code(), 14);
        assert_eq!(MessageId::from_code(1).unwrap(), MessageId::Denm);
        assert_eq!(MessageId::from_code(14).unwrap(), MessageId::Cpm);
        assert!(MessageId::from_code(3).is_err());
    }

    #[test]
    fn header_roundtrip_and_size() {
        let h = ItsPduHeader::new(MessageId::Cam, StationId::new(0xDEADBEEF).unwrap());
        let bytes = uper::encode(&h).unwrap();
        // 8 + 8 + 32 bits = 6 bytes
        assert_eq!(bytes.len(), 6);
        let back: ItsPduHeader = uper::decode(&bytes).unwrap();
        assert_eq!(h, back);
        assert_eq!(back.protocol_version, PROTOCOL_VERSION);
    }

    #[test]
    fn header_rejects_unknown_message_id() {
        let mut w = uper::BitWriter::new();
        w.write_constrained_u64(1, 0, 255).unwrap(); // version
        w.write_constrained_u64(99, 0, 255).unwrap(); // bogus messageID
        w.write_constrained_u64(0, 0, u32::MAX as u64).unwrap();
        let bytes = w.finish();
        assert!(uper::decode::<ItsPduHeader>(&bytes).is_err());
    }
}
