//! Cooperative Awareness Messages (CAM, ETSI EN 302 637-2).
//!
//! CAMs are broadcast cyclically by every ITS station; in the testbed's
//! use-case the protagonist vehicle's OBU sends CAMs that the road-side
//! infrastructure stores in its LDM to track the vehicle's state.

use crate::common::{Heading, PathHistory, ReferencePosition, Speed, StationId, StationType};
use crate::enum_err;
use crate::header::{ItsPduHeader, MessageId};
use uper::{BitReader, BitWriter, Codec, UperError};

/// `DriveDirection` of the high-frequency container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DriveDirection {
    /// Moving forward.
    #[default]
    Forward,
    /// Moving backward.
    Backward,
    /// Direction unavailable.
    Unavailable,
}

impl DriveDirection {
    const VARIANTS: u64 = 3;

    fn index(&self) -> u64 {
        match self {
            DriveDirection::Forward => 0,
            DriveDirection::Backward => 1,
            DriveDirection::Unavailable => 2,
        }
    }

    fn from_index(i: u64) -> uper::Result<Self> {
        Ok(match i {
            0 => DriveDirection::Forward,
            1 => DriveDirection::Backward,
            2 => DriveDirection::Unavailable,
            other => return Err(enum_err(other, "DriveDirection")),
        })
    }
}

impl Codec for DriveDirection {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_enumerated(self.index(), Self::VARIANTS)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Self::from_index(r.read_enumerated(Self::VARIANTS)?)
    }
}

/// `VehicleRole` of the low-frequency container (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VehicleRole {
    /// Default role (code 0).
    #[default]
    Default,
    /// Public transport (code 1).
    PublicTransport,
    /// Special transport (code 2).
    SpecialTransport,
    /// Dangerous goods (code 3).
    DangerousGoods,
    /// Road work (code 4).
    RoadWork,
    /// Rescue (code 5).
    Rescue,
    /// Emergency (code 6).
    Emergency,
    /// Safety car (code 7).
    SafetyCar,
}

impl VehicleRole {
    const VARIANTS: u64 = 8;

    fn index(&self) -> u64 {
        match self {
            VehicleRole::Default => 0,
            VehicleRole::PublicTransport => 1,
            VehicleRole::SpecialTransport => 2,
            VehicleRole::DangerousGoods => 3,
            VehicleRole::RoadWork => 4,
            VehicleRole::Rescue => 5,
            VehicleRole::Emergency => 6,
            VehicleRole::SafetyCar => 7,
        }
    }

    fn from_index(i: u64) -> uper::Result<Self> {
        Ok(match i {
            0 => VehicleRole::Default,
            1 => VehicleRole::PublicTransport,
            2 => VehicleRole::SpecialTransport,
            3 => VehicleRole::DangerousGoods,
            4 => VehicleRole::RoadWork,
            5 => VehicleRole::Rescue,
            6 => VehicleRole::Emergency,
            7 => VehicleRole::SafetyCar,
            other => return Err(enum_err(other, "VehicleRole")),
        })
    }
}

impl Codec for VehicleRole {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_enumerated(self.index(), Self::VARIANTS)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Self::from_index(r.read_enumerated(Self::VARIANTS)?)
    }
}

/// CAM basic container: who and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BasicContainer {
    /// Station type of the originating station.
    pub station_type: StationType,
    /// Latest geographic position.
    pub reference_position: ReferencePosition,
}

impl Codec for BasicContainer {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        self.station_type.encode(w)?;
        self.reference_position.encode(w)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Ok(Self {
            station_type: StationType::decode(r)?,
            reference_position: ReferencePosition::decode(r)?,
        })
    }
}

/// CAM high-frequency container: fast-changing dynamics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HighFrequencyContainer {
    /// Heading over ground.
    pub heading: Heading,
    /// Speed over ground.
    pub speed: Speed,
    /// Direction of travel.
    pub drive_direction: DriveDirection,
    /// Vehicle length in 0.1 m, `[1, 1023]` (1023 = unavailable).
    pub vehicle_length: u16,
    /// Vehicle width in 0.1 m, `[1, 62]` (62 = unavailable).
    pub vehicle_width: u8,
    /// Longitudinal acceleration in 0.1 m/s², `[-160, 161]`
    /// (161 = unavailable).
    pub longitudinal_acceleration: i16,
    /// Yaw rate in 0.01 °/s, `[-32766, 32767]` (32767 = unavailable).
    pub yaw_rate: i32,
}

impl HighFrequencyContainer {
    /// Validates all constrained fields.
    ///
    /// # Errors
    ///
    /// Returns [`UperError::OutOfRange`] naming the first offending field
    /// range.
    pub fn validate(&self) -> uper::Result<()> {
        check_range(i64::from(self.vehicle_length), 1, 1023)?;
        check_range(i64::from(self.vehicle_width), 1, 62)?;
        check_range(i64::from(self.longitudinal_acceleration), -160, 161)?;
        check_range(i64::from(self.yaw_rate), -32766, 32767)?;
        Ok(())
    }
}

impl Default for HighFrequencyContainer {
    fn default() -> Self {
        Self {
            heading: Heading::UNAVAILABLE,
            speed: Speed::UNAVAILABLE,
            drive_direction: DriveDirection::Unavailable,
            vehicle_length: 1023,
            vehicle_width: 62,
            longitudinal_acceleration: 161,
            yaw_rate: 32767,
        }
    }
}

fn check_range(value: i64, min: i64, max: i64) -> uper::Result<()> {
    if value < min || value > max {
        return Err(UperError::OutOfRange {
            value: value as i128,
            min: min as i128,
            max: max as i128,
        });
    }
    Ok(())
}

impl Codec for HighFrequencyContainer {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        self.validate()?;
        self.heading.encode(w)?;
        self.speed.encode(w)?;
        self.drive_direction.encode(w)?;
        w.write_constrained_u64(u64::from(self.vehicle_length), 1, 1023)?;
        w.write_constrained_u64(u64::from(self.vehicle_width), 1, 62)?;
        w.write_constrained_i64(i64::from(self.longitudinal_acceleration), -160, 161)?;
        w.write_constrained_i64(i64::from(self.yaw_rate), -32766, 32767)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Ok(Self {
            heading: Heading::decode(r)?,
            speed: Speed::decode(r)?,
            drive_direction: DriveDirection::decode(r)?,
            vehicle_length: r.read_constrained_u64(1, 1023)? as u16,
            vehicle_width: r.read_constrained_u64(1, 62)? as u8,
            longitudinal_acceleration: r.read_constrained_i64(-160, 161)? as i16,
            yaw_rate: r.read_constrained_i64(-32766, 32767)? as i32,
        })
    }
}

/// CAM low-frequency container: slowly-changing attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LowFrequencyContainer {
    /// Role of the vehicle.
    pub vehicle_role: VehicleRole,
    /// Exterior lights bitmap (8 bits: low beam, high beam, left turn,
    /// right turn, daytime running, reverse, fog, parking).
    pub exterior_lights: u8,
    /// Recently travelled path.
    pub path_history: PathHistory,
}

impl Codec for LowFrequencyContainer {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        self.vehicle_role.encode(w)?;
        w.write_bits(u64::from(self.exterior_lights), 8);
        self.path_history.encode(w)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Ok(Self {
            vehicle_role: VehicleRole::decode(r)?,
            exterior_lights: r.read_bits(8)? as u8,
            path_history: PathHistory::decode(r)?,
        })
    }
}

/// A complete Cooperative Awareness Message.
///
/// # Example
///
/// ```
/// use its_messages::cam::Cam;
/// use its_messages::common::{ReferencePosition, StationId, StationType};
///
/// # fn main() -> Result<(), uper::UperError> {
/// let cam = Cam::basic(
///     StationId::new(11)?,
///     500,
///     StationType::PassengerCar,
///     ReferencePosition::from_degrees(41.178, -8.608),
/// );
/// let bytes = cam.to_bytes()?;
/// assert_eq!(Cam::from_bytes(&bytes)?, cam);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cam {
    /// Common PDU header (messageID = 2).
    pub header: ItsPduHeader,
    /// `generationDeltaTime`: `TimestampIts mod 65536` of generation time.
    pub generation_delta_time: u16,
    /// Basic container (mandatory).
    pub basic: BasicContainer,
    /// High-frequency container (mandatory).
    pub high_frequency: HighFrequencyContainer,
    /// Low-frequency container (optional).
    pub low_frequency: Option<LowFrequencyContainer>,
}

impl Cam {
    /// Builds a CAM with default dynamics (heading/speed unavailable).
    pub fn basic(
        station_id: StationId,
        generation_delta_time: u16,
        station_type: StationType,
        position: ReferencePosition,
    ) -> Self {
        Self {
            header: ItsPduHeader::new(MessageId::Cam, station_id),
            generation_delta_time,
            basic: BasicContainer {
                station_type,
                reference_position: position,
            },
            high_frequency: HighFrequencyContainer::default(),
            low_frequency: None,
        }
    }

    /// Sets heading and speed in the high-frequency container.
    pub fn with_dynamics(mut self, heading: Heading, speed: Speed) -> Self {
        self.high_frequency.heading = heading;
        self.high_frequency.speed = speed;
        self.high_frequency.drive_direction = DriveDirection::Forward;
        self
    }

    /// Attaches a low-frequency container.
    pub fn with_low_frequency(mut self, lf: LowFrequencyContainer) -> Self {
        self.low_frequency = Some(lf);
        self
    }

    /// Serializes to UPER bytes.
    ///
    /// # Errors
    ///
    /// Returns an error if any field violates its constraint.
    pub fn to_bytes(&self) -> uper::Result<Vec<u8>> {
        uper::encode(self)
    }

    /// Parses from UPER bytes.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation or constraint violation.
    pub fn from_bytes(bytes: &[u8]) -> uper::Result<Self> {
        uper::decode(bytes)
    }
}

impl Codec for Cam {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        self.header.encode(w)?;
        w.write_bool(self.low_frequency.is_some()); // optional-presence bitmap
        w.write_constrained_u64(u64::from(self.generation_delta_time), 0, 65535)?;
        self.basic.encode(w)?;
        self.high_frequency.encode(w)?;
        if let Some(lf) = &self.low_frequency {
            lf.encode(w)?;
        }
        Ok(())
    }

    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        let header = ItsPduHeader::decode(r)?;
        let has_lf = r.read_bool()?;
        let generation_delta_time = r.read_constrained_u64(0, 65535)? as u16;
        let basic = BasicContainer::decode(r)?;
        let high_frequency = HighFrequencyContainer::decode(r)?;
        let low_frequency = if has_lf {
            Some(LowFrequencyContainer::decode(r)?)
        } else {
            None
        };
        Ok(Self {
            header,
            generation_delta_time,
            basic,
            high_frequency,
            low_frequency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{PathPoint, TimestampIts};
    use proptest::prelude::*;

    fn sample_cam() -> Cam {
        Cam::basic(
            StationId::new(77).unwrap(),
            4321,
            StationType::PassengerCar,
            ReferencePosition::from_degrees(41.1784, -8.6081),
        )
        .with_dynamics(Heading::from_degrees(93.5), Speed::from_mps(1.5))
    }

    #[test]
    fn basic_cam_roundtrip() {
        let cam = sample_cam();
        let bytes = cam.to_bytes().unwrap();
        assert_eq!(Cam::from_bytes(&bytes).unwrap(), cam);
    }

    #[test]
    fn cam_wire_size_is_compact() {
        // A HF-only CAM should be well under 50 bytes, like real UPER CAMs.
        let bytes = sample_cam().to_bytes().unwrap();
        assert!(bytes.len() < 50, "CAM encoded to {} bytes", bytes.len());
        assert!(bytes.len() > 10);
    }

    #[test]
    fn cam_with_low_frequency_roundtrip() {
        let lf = LowFrequencyContainer {
            vehicle_role: VehicleRole::Default,
            exterior_lights: 0b1000_0001,
            path_history: PathHistory::new(vec![PathPoint::default(); 5]).unwrap(),
        };
        let cam = sample_cam().with_low_frequency(lf);
        let bytes = cam.to_bytes().unwrap();
        let back = Cam::from_bytes(&bytes).unwrap();
        assert_eq!(back, cam);
        assert_eq!(
            back.low_frequency.as_ref().unwrap().exterior_lights,
            0b1000_0001
        );
    }

    #[test]
    fn hf_container_validation() {
        let hf = HighFrequencyContainer {
            vehicle_length: 0, // below minimum of 1
            ..HighFrequencyContainer::default()
        };
        assert!(hf.validate().is_err());
        let cam = Cam {
            high_frequency: hf,
            ..sample_cam()
        };
        assert!(cam.to_bytes().is_err());
    }

    #[test]
    fn generation_delta_time_is_mod_65536_of_timestamp() {
        // EN 302 637-2: generationDeltaTime = TimestampIts mod 65536.
        let ts = TimestampIts::new(70_000).unwrap();
        let gdt = (ts.millis() % 65536) as u16;
        assert_eq!(gdt, 4464);
        let cam = Cam::basic(
            StationId::new(1).unwrap(),
            gdt,
            StationType::PassengerCar,
            ReferencePosition::from_degrees(0.0, 0.0),
        );
        let back = Cam::from_bytes(&cam.to_bytes().unwrap()).unwrap();
        assert_eq!(back.generation_delta_time, 4464);
    }

    proptest! {
        #[test]
        fn cam_roundtrip_arbitrary_dynamics(
            gdt in any::<u16>(),
            heading in 0u16..=3601,
            speed in 0u16..=16383,
            len in 1u16..=1023,
            width in 1u8..=62,
            accel in -160i16..=161,
            yaw in -32766i32..=32767,
        ) {
            let mut cam = sample_cam();
            cam.generation_delta_time = gdt;
            cam.high_frequency = HighFrequencyContainer {
                heading: Heading::new(heading).unwrap(),
                speed: Speed::new(speed).unwrap(),
                drive_direction: DriveDirection::Forward,
                vehicle_length: len,
                vehicle_width: width,
                longitudinal_acceleration: accel,
                yaw_rate: yaw,
            };
            let bytes = cam.to_bytes().unwrap();
            prop_assert_eq!(Cam::from_bytes(&bytes).unwrap(), cam);
        }

        #[test]
        fn cam_roundtrip_arbitrary_position(
            station in 1u32..=4_294_967_295,
            lat in -90.0f64..90.0,
            lon in -180.0f64..180.0,
        ) {
            let cam = Cam::basic(
                StationId::new(station).unwrap(),
                0,
                StationType::PassengerCar,
                ReferencePosition::from_degrees(lat, lon),
            );
            let back = Cam::from_bytes(&cam.to_bytes().unwrap()).unwrap();
            prop_assert_eq!(back, cam);
        }

        #[test]
        fn truncated_valid_cam_errors_cleanly(cut_back in 1usize..40) {
            // Every proper prefix of a valid encoding must yield a clean
            // error — the decoder never reads past the buffer or panics.
            let bytes = sample_cam().to_bytes().unwrap();
            let cut = bytes.len().saturating_sub(cut_back);
            prop_assert!(Cam::from_bytes(&bytes[..cut]).is_err());
        }

        #[test]
        fn arbitrary_bytes_never_panic_the_cam_decoder(
            bytes in proptest::collection::vec(any::<u8>(), 0..128)
        ) {
            // Robust reception: radio garbage produces Err, never a panic.
            let _ = Cam::from_bytes(&bytes);
        }
    }
}
