//! ETSI ITS message set: CAM and DENM with their full container structure.
//!
//! This crate reproduces the message layer used by the testbed paper:
//!
//! * the common ITS data dictionary elements (reference positions, headings,
//!   speeds, timestamps, station identifiers — ETSI TS 102 894-2),
//! * Cooperative Awareness Messages (CAM, EN 302 637-2),
//! * Decentralized Environmental Notification Messages (DENM, EN 302 637-3)
//!   with Management, Situation, Location and À-la-carte containers
//!   (Figure 2 of the paper),
//! * the cause-code / sub-cause-code tables the paper reproduces as Table I.
//!
//! All messages encode to and decode from compact UPER-style bit streams via
//! the [`uper`] crate, so a DENM put on the simulated air interface has a
//! realistic wire size (a mandatory-only DENM is a few dozen bytes).
//!
//! # Example
//!
//! ```
//! use its_messages::denm::{Denm, ManagementContainer, SituationContainer};
//! use its_messages::common::{ActionId, ReferencePosition, StationId, StationType, TimestampIts};
//! use its_messages::cause_codes::{CauseCode, CollisionRiskSubCause};
//!
//! # fn main() -> Result<(), uper::UperError> {
//! let denm = Denm::new(
//!     StationId::new(42)?,
//!     ManagementContainer::new(
//!         ActionId::new(StationId::new(42)?, 1),
//!         TimestampIts::new(1_000)?,
//!         TimestampIts::new(1_000)?,
//!         ReferencePosition::from_degrees(41.178, -8.608),
//!         StationType::RoadSideUnit,
//!     ),
//! )
//! .with_situation(SituationContainer::new(
//!     7,
//!     CauseCode::CollisionRisk(CollisionRiskSubCause::CrossingCollisionRisk),
//! )?);
//!
//! let bytes = denm.to_bytes()?;
//! let back = Denm::from_bytes(&bytes)?;
//! assert_eq!(denm, back);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod cam;
pub mod cause_codes;
pub mod common;
pub mod denm;
pub mod header;

use uper::{BitReader, BitWriter, Codec, UperError};

pub use header::{ItsPduHeader, MessageId, PROTOCOL_VERSION};

/// Any ITS facilities-layer message carried by the testbed.
///
/// Dispatches encode/decode on the `messageID` field of the
/// [`ItsPduHeader`], exactly as a receiving ITS station does.
#[derive(Debug, Clone, PartialEq)]
pub enum ItsMessage {
    /// A Cooperative Awareness Message.
    Cam(cam::Cam),
    /// A Decentralized Environmental Notification Message.
    Denm(denm::Denm),
}

impl ItsMessage {
    /// The PDU header of the contained message.
    pub fn header(&self) -> &ItsPduHeader {
        match self {
            ItsMessage::Cam(cam) => &cam.header,
            ItsMessage::Denm(denm) => &denm.header,
        }
    }

    /// Serializes the message to UPER bytes.
    ///
    /// # Errors
    ///
    /// Returns an error if any field violates its ASN.1 constraint.
    pub fn to_bytes(&self) -> uper::Result<Vec<u8>> {
        uper::encode(self)
    }

    /// Parses a message from UPER bytes, dispatching on the header's
    /// `messageID`.
    ///
    /// # Errors
    ///
    /// Returns an error on truncated input, unknown message id, or
    /// constraint violations.
    pub fn from_bytes(bytes: &[u8]) -> uper::Result<Self> {
        uper::decode(bytes)
    }
}

impl Codec for ItsMessage {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        match self {
            ItsMessage::Cam(cam) => cam.encode(w),
            ItsMessage::Denm(denm) => denm.encode(w),
        }
    }

    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        // Peek the header, then decode the full message from the start so
        // each message type owns its complete wire format.
        let mut peek = r.clone();
        let header = ItsPduHeader::decode(&mut peek)?;
        match header.message_id {
            MessageId::Cam => Ok(ItsMessage::Cam(cam::Cam::decode(r)?)),
            MessageId::Denm => Ok(ItsMessage::Denm(denm::Denm::decode(r)?)),
            // CPMs (TS 103 324) live in the facilities crate, which
            // depends on this one; the EN 302 637 dispatch enum cannot
            // embed them, so a CPM arriving here is a routing error —
            // stations deliver BTP port 2009 to `facilities::cpm`.
            MessageId::Cpm => Err(enum_err(
                u64::from(MessageId::Cpm.code()),
                "ItsMessage (CPM is decoded by facilities::cpm)",
            )),
        }
    }
}

impl From<cam::Cam> for ItsMessage {
    fn from(cam: cam::Cam) -> Self {
        ItsMessage::Cam(cam)
    }
}

impl From<denm::Denm> for ItsMessage {
    fn from(denm: denm::Denm) -> Self {
        ItsMessage::Denm(denm)
    }
}

/// Internal helper: build the error for an enumerated index with no variant.
pub(crate) fn enum_err(index: u64, name: &'static str) -> UperError {
    UperError::InvalidEnum { index, name }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::*;

    #[test]
    fn message_dispatch_roundtrip() {
        let cam = cam::Cam::basic(
            StationId::new(7).unwrap(),
            1234,
            StationType::PassengerCar,
            ReferencePosition::from_degrees(41.0, -8.0),
        );
        let msg = ItsMessage::from(cam);
        let bytes = msg.to_bytes().unwrap();
        let back = ItsMessage::from_bytes(&bytes).unwrap();
        assert_eq!(msg, back);
        assert_eq!(back.header().message_id, MessageId::Cam);
    }
}
