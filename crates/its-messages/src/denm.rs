//! Decentralized Environmental Notification Messages (DENM,
//! ETSI EN 302 637-3).
//!
//! A DENM advertises a detected event to nearby stations. Its wire layout
//! (Figure 2 of the paper) is a common [`ItsPduHeader`] followed by four
//! containers — Management (mandatory), Situation, Location and À-la-carte
//! (all optional). The testbed's road-side unit sends a DENM with cause
//! code 97 (*collision risk*) to trigger emergency braking at the vehicle.

use crate::cause_codes::CauseCode;
use crate::common::{
    ActionId, Heading, PathHistory, ReferencePosition, RelevanceDistance,
    RelevanceTrafficDirection, Speed, StationId, StationType, TimestampIts,
};
use crate::enum_err;
use crate::header::{ItsPduHeader, MessageId};
use uper::{BitReader, BitWriter, Codec, SizeRange, UperError};

/// `Termination` flag in the Management container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Termination {
    /// The originator cancels its own event.
    IsCancellation,
    /// Another station negates the event.
    IsNegation,
}

impl Termination {
    const VARIANTS: u64 = 2;

    fn index(&self) -> u64 {
        match self {
            Termination::IsCancellation => 0,
            Termination::IsNegation => 1,
        }
    }

    fn from_index(i: u64) -> uper::Result<Self> {
        Ok(match i {
            0 => Termination::IsCancellation,
            1 => Termination::IsNegation,
            other => return Err(enum_err(other, "Termination")),
        })
    }
}

impl Codec for Termination {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_enumerated(self.index(), Self::VARIANTS)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Self::from_index(r.read_enumerated(Self::VARIANTS)?)
    }
}

/// DENM Management container (mandatory).
///
/// Identifies the event (`actionID`), when it was detected, where it is,
/// how long the notification stays valid, and who sent it.
#[derive(Debug, Clone, PartialEq)]
pub struct ManagementContainer {
    /// Event identifier, stable across updates.
    pub action_id: ActionId,
    /// Time the event was detected.
    pub detection_time: TimestampIts,
    /// Time this particular DENM (original or update) was generated.
    pub reference_time: TimestampIts,
    /// Present in termination DENMs only.
    pub termination: Option<Termination>,
    /// Geographic position of the event.
    pub event_position: ReferencePosition,
    /// Distance band within which the event is relevant.
    pub relevance_distance: Option<RelevanceDistance>,
    /// Traffic direction for which the event is relevant.
    pub relevance_traffic_direction: Option<RelevanceTrafficDirection>,
    /// Validity duration in seconds, `[0, 86400]`. Defaults to 600 s.
    pub validity_duration: u32,
    /// Repetition interval in milliseconds, `[1, 10000]`, if repeated.
    pub transmission_interval_ms: Option<u16>,
    /// Type of the originating station.
    pub station_type: StationType,
}

/// Default `validityDuration` (seconds) per EN 302 637-3.
pub const DEFAULT_VALIDITY_DURATION_S: u32 = 600;

impl ManagementContainer {
    /// Creates a management container with the mandatory fields; validity
    /// defaults to [`DEFAULT_VALIDITY_DURATION_S`].
    pub fn new(
        action_id: ActionId,
        detection_time: TimestampIts,
        reference_time: TimestampIts,
        event_position: ReferencePosition,
        station_type: StationType,
    ) -> Self {
        Self {
            action_id,
            detection_time,
            reference_time,
            termination: None,
            event_position,
            relevance_distance: None,
            relevance_traffic_direction: None,
            validity_duration: DEFAULT_VALIDITY_DURATION_S,
            transmission_interval_ms: None,
            station_type,
        }
    }

    /// Validates the constrained scalar fields.
    ///
    /// # Errors
    ///
    /// Returns [`UperError::OutOfRange`] for a bad validity duration or
    /// transmission interval.
    pub fn validate(&self) -> uper::Result<()> {
        if self.validity_duration > 86400 {
            return Err(UperError::OutOfRange {
                value: self.validity_duration as i128,
                min: 0,
                max: 86400,
            });
        }
        if let Some(ti) = self.transmission_interval_ms {
            if !(1..=10000).contains(&ti) {
                return Err(UperError::OutOfRange {
                    value: ti as i128,
                    min: 1,
                    max: 10000,
                });
            }
        }
        Ok(())
    }
}

impl Codec for ManagementContainer {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        self.validate()?;
        // Optional-presence bitmap: termination, relevanceDistance,
        // relevanceTrafficDirection, transmissionInterval.
        w.write_bool(self.termination.is_some());
        w.write_bool(self.relevance_distance.is_some());
        w.write_bool(self.relevance_traffic_direction.is_some());
        w.write_bool(self.transmission_interval_ms.is_some());
        self.action_id.encode(w)?;
        self.detection_time.encode(w)?;
        self.reference_time.encode(w)?;
        if let Some(t) = self.termination {
            t.encode(w)?;
        }
        self.event_position.encode(w)?;
        if let Some(rd) = self.relevance_distance {
            rd.encode(w)?;
        }
        if let Some(rtd) = self.relevance_traffic_direction {
            rtd.encode(w)?;
        }
        w.write_constrained_u64(u64::from(self.validity_duration), 0, 86400)?;
        if let Some(ti) = self.transmission_interval_ms {
            w.write_constrained_u64(u64::from(ti), 1, 10000)?;
        }
        self.station_type.encode(w)
    }

    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        let has_termination = r.read_bool()?;
        let has_rd = r.read_bool()?;
        let has_rtd = r.read_bool()?;
        let has_ti = r.read_bool()?;
        let action_id = ActionId::decode(r)?;
        let detection_time = TimestampIts::decode(r)?;
        let reference_time = TimestampIts::decode(r)?;
        let termination = if has_termination {
            Some(Termination::decode(r)?)
        } else {
            None
        };
        let event_position = ReferencePosition::decode(r)?;
        let relevance_distance = if has_rd {
            Some(RelevanceDistance::decode(r)?)
        } else {
            None
        };
        let relevance_traffic_direction = if has_rtd {
            Some(RelevanceTrafficDirection::decode(r)?)
        } else {
            None
        };
        let validity_duration = r.read_constrained_u64(0, 86400)? as u32;
        let transmission_interval_ms = if has_ti {
            Some(r.read_constrained_u64(1, 10000)? as u16)
        } else {
            None
        };
        let station_type = StationType::decode(r)?;
        Ok(Self {
            action_id,
            detection_time,
            reference_time,
            termination,
            event_position,
            relevance_distance,
            relevance_traffic_direction,
            validity_duration,
            transmission_interval_ms,
            station_type,
        })
    }
}

/// DENM Situation container (optional): what happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SituationContainer {
    /// `informationQuality` `[0, 7]`; 0 = lowest.
    pub information_quality: u8,
    /// The event type (`causeCode` + `subCauseCode`).
    pub event_type: CauseCode,
    /// Optionally links to the cause of this event.
    pub linked_cause: Option<CauseCode>,
}

impl SituationContainer {
    /// Creates a situation container.
    ///
    /// # Errors
    ///
    /// Returns [`UperError::OutOfRange`] if `information_quality > 7`.
    pub fn new(information_quality: u8, event_type: CauseCode) -> uper::Result<Self> {
        if information_quality > 7 {
            return Err(UperError::OutOfRange {
                value: information_quality as i128,
                min: 0,
                max: 7,
            });
        }
        Ok(Self {
            information_quality,
            event_type,
            linked_cause: None,
        })
    }

    /// Attaches a linked cause.
    pub fn with_linked_cause(mut self, cause: CauseCode) -> Self {
        self.linked_cause = Some(cause);
        self
    }
}

impl Codec for SituationContainer {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_bool(self.linked_cause.is_some());
        w.write_constrained_u64(u64::from(self.information_quality), 0, 7)?;
        self.event_type.encode(w)?;
        if let Some(lc) = self.linked_cause {
            lc.encode(w)?;
        }
        Ok(())
    }

    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        let has_linked = r.read_bool()?;
        let information_quality = r.read_constrained_u64(0, 7)? as u8;
        let event_type = CauseCode::decode(r)?;
        let linked_cause = if has_linked {
            Some(CauseCode::decode(r)?)
        } else {
            None
        };
        Ok(Self {
            information_quality,
            event_type,
            linked_cause,
        })
    }
}

/// `RoadType` of the Location container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoadType {
    /// Urban road, no structural separation between directions.
    UrbanNoSeparation,
    /// Urban road with structural separation.
    UrbanWithSeparation,
    /// Non-urban road, no structural separation.
    NonUrbanNoSeparation,
    /// Non-urban road with structural separation.
    NonUrbanWithSeparation,
}

impl RoadType {
    const VARIANTS: u64 = 4;

    fn index(&self) -> u64 {
        match self {
            RoadType::UrbanNoSeparation => 0,
            RoadType::UrbanWithSeparation => 1,
            RoadType::NonUrbanNoSeparation => 2,
            RoadType::NonUrbanWithSeparation => 3,
        }
    }

    fn from_index(i: u64) -> uper::Result<Self> {
        Ok(match i {
            0 => RoadType::UrbanNoSeparation,
            1 => RoadType::UrbanWithSeparation,
            2 => RoadType::NonUrbanNoSeparation,
            3 => RoadType::NonUrbanWithSeparation,
            other => return Err(enum_err(other, "RoadType")),
        })
    }
}

impl Codec for RoadType {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_enumerated(self.index(), Self::VARIANTS)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Self::from_index(r.read_enumerated(Self::VARIANTS)?)
    }
}

/// Maximum number of traces in a Location container.
pub const MAX_TRACES: usize = 7;

/// DENM Location container (optional): where and how to reach the event.
///
/// `traces` is mandatory within the container — one to seven itineraries
/// leading to the event position.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationContainer {
    /// Speed of the event (e.g. a moving hazard), if known.
    pub event_speed: Option<Speed>,
    /// Heading of the event, if known.
    pub event_position_heading: Option<Heading>,
    /// Itineraries to the event (1..=7 path histories).
    pub traces: Vec<PathHistory>,
    /// Road type at the event position.
    pub road_type: Option<RoadType>,
}

impl LocationContainer {
    /// Creates a location container from traces.
    ///
    /// # Errors
    ///
    /// Returns [`UperError::LengthTooLarge`] if `traces` is empty or holds
    /// more than [`MAX_TRACES`] entries.
    pub fn new(traces: Vec<PathHistory>) -> uper::Result<Self> {
        if traces.is_empty() || traces.len() > MAX_TRACES {
            return Err(UperError::LengthTooLarge(traces.len()));
        }
        Ok(Self {
            event_speed: None,
            event_position_heading: None,
            traces,
            road_type: None,
        })
    }

    /// Sets the event speed.
    pub fn with_event_speed(mut self, speed: Speed) -> Self {
        self.event_speed = Some(speed);
        self
    }

    /// Sets the event heading.
    pub fn with_event_heading(mut self, heading: Heading) -> Self {
        self.event_position_heading = Some(heading);
        self
    }

    /// Sets the road type.
    pub fn with_road_type(mut self, road_type: RoadType) -> Self {
        self.road_type = Some(road_type);
        self
    }
}

impl Codec for LocationContainer {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        if self.traces.is_empty() || self.traces.len() > MAX_TRACES {
            return Err(UperError::LengthTooLarge(self.traces.len()));
        }
        w.write_bool(self.event_speed.is_some());
        w.write_bool(self.event_position_heading.is_some());
        w.write_bool(self.road_type.is_some());
        if let Some(s) = self.event_speed {
            s.encode(w)?;
        }
        if let Some(h) = self.event_position_heading {
            h.encode(w)?;
        }
        w.write_constrained_u64(self.traces.len() as u64, 1, MAX_TRACES as u64)?;
        for t in &self.traces {
            t.encode(w)?;
        }
        if let Some(rt) = self.road_type {
            rt.encode(w)?;
        }
        Ok(())
    }

    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        let has_speed = r.read_bool()?;
        let has_heading = r.read_bool()?;
        let has_road_type = r.read_bool()?;
        let event_speed = if has_speed {
            Some(Speed::decode(r)?)
        } else {
            None
        };
        let event_position_heading = if has_heading {
            Some(Heading::decode(r)?)
        } else {
            None
        };
        let n = r.read_constrained_u64(1, MAX_TRACES as u64)? as usize;
        let mut traces = Vec::with_capacity(n);
        for _ in 0..n {
            traces.push(PathHistory::decode(r)?);
        }
        let road_type = if has_road_type {
            Some(RoadType::decode(r)?)
        } else {
            None
        };
        Ok(Self {
            event_speed,
            event_position_heading,
            traces,
            road_type,
        })
    }
}

/// How long a stationary vehicle has been stopped (`StationarySince`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StationarySince {
    /// Less than 1 minute.
    LessThan1Minute,
    /// Less than 2 minutes.
    LessThan2Minutes,
    /// Less than 15 minutes.
    LessThan15Minutes,
    /// 15 minutes or more.
    EqualOrGreater15Minutes,
}

impl StationarySince {
    const VARIANTS: u64 = 4;

    fn index(&self) -> u64 {
        match self {
            StationarySince::LessThan1Minute => 0,
            StationarySince::LessThan2Minutes => 1,
            StationarySince::LessThan15Minutes => 2,
            StationarySince::EqualOrGreater15Minutes => 3,
        }
    }

    fn from_index(i: u64) -> uper::Result<Self> {
        Ok(match i {
            0 => StationarySince::LessThan1Minute,
            1 => StationarySince::LessThan2Minutes,
            2 => StationarySince::LessThan15Minutes,
            3 => StationarySince::EqualOrGreater15Minutes,
            other => return Err(enum_err(other, "StationarySince")),
        })
    }
}

impl Codec for StationarySince {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_enumerated(self.index(), Self::VARIANTS)
    }
    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        Self::from_index(r.read_enumerated(Self::VARIANTS)?)
    }
}

/// `StationaryVehicleContainer` of the À-la-carte container — the
/// container the paper's §II-C names for the stationary-vehicle warning
/// (cause code 94).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StationaryVehicleContainer {
    /// How long the vehicle has been stationary.
    pub stationary_since: Option<StationarySince>,
    /// Whether the vehicle carries dangerous goods.
    pub carrying_dangerous_goods: Option<bool>,
    /// Number of occupants, `[0, 126]` (127 = unavailable).
    pub number_of_occupants: Option<u8>,
}

impl Codec for StationaryVehicleContainer {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        w.write_bool(self.stationary_since.is_some());
        w.write_bool(self.carrying_dangerous_goods.is_some());
        w.write_bool(self.number_of_occupants.is_some());
        if let Some(s) = self.stationary_since {
            s.encode(w)?;
        }
        if let Some(d) = self.carrying_dangerous_goods {
            w.write_bool(d);
        }
        if let Some(n) = self.number_of_occupants {
            w.write_constrained_u64(u64::from(n), 0, 127)?;
        }
        Ok(())
    }

    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        let has_since = r.read_bool()?;
        let has_goods = r.read_bool()?;
        let has_occupants = r.read_bool()?;
        let stationary_since = if has_since {
            Some(StationarySince::decode(r)?)
        } else {
            None
        };
        let carrying_dangerous_goods = if has_goods {
            Some(r.read_bool()?)
        } else {
            None
        };
        let number_of_occupants = if has_occupants {
            Some(r.read_constrained_u64(0, 127)? as u8)
        } else {
            None
        };
        Ok(Self {
            stationary_since,
            carrying_dangerous_goods,
            number_of_occupants,
        })
    }
}

/// DENM À-la-carte container (optional): use-case-specific extras —
/// "lanePosition, externalTemperature and stationaryVehicle" (§II-C).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AlacarteContainer {
    /// Lane position: -1 = hard shoulder, 0 = outermost, ... `[−1, 14]`.
    pub lane_position: Option<i8>,
    /// External air temperature in °C, `[-60, 67]`.
    pub external_temperature: Option<i8>,
    /// Stationary-vehicle details (for cause code 94 warnings).
    pub stationary_vehicle: Option<StationaryVehicleContainer>,
    /// Free-text annotation used by the testbed logs (not in the ASN.1
    /// standard; carried as a bounded UTF8String).
    pub annotation: Option<String>,
}

/// Maximum byte length of the testbed annotation string.
pub const MAX_ANNOTATION_LEN: usize = 64;

impl AlacarteContainer {
    /// Validates constrained fields.
    ///
    /// # Errors
    ///
    /// Returns [`UperError::OutOfRange`] or [`UperError::LengthTooLarge`].
    pub fn validate(&self) -> uper::Result<()> {
        if let Some(lane) = self.lane_position {
            if !(-1..=14).contains(&lane) {
                return Err(UperError::OutOfRange {
                    value: lane as i128,
                    min: -1,
                    max: 14,
                });
            }
        }
        if let Some(t) = self.external_temperature {
            if !(-60..=67).contains(&t) {
                return Err(UperError::OutOfRange {
                    value: t as i128,
                    min: -60,
                    max: 67,
                });
            }
        }
        if let Some(a) = &self.annotation {
            if a.len() > MAX_ANNOTATION_LEN {
                return Err(UperError::LengthTooLarge(a.len()));
            }
        }
        Ok(())
    }
}

impl Codec for AlacarteContainer {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        self.validate()?;
        w.write_bool(self.lane_position.is_some());
        w.write_bool(self.external_temperature.is_some());
        w.write_bool(self.stationary_vehicle.is_some());
        w.write_bool(self.annotation.is_some());
        if let Some(lane) = self.lane_position {
            w.write_constrained_i64(i64::from(lane), -1, 14)?;
        }
        if let Some(t) = self.external_temperature {
            w.write_constrained_i64(i64::from(t), -60, 67)?;
        }
        if let Some(sv) = &self.stationary_vehicle {
            sv.encode(w)?;
        }
        if let Some(a) = &self.annotation {
            w.write_utf8_string(a, SizeRange::new(0, MAX_ANNOTATION_LEN))?;
        }
        Ok(())
    }

    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        let has_lane = r.read_bool()?;
        let has_temp = r.read_bool()?;
        let has_sv = r.read_bool()?;
        let has_annotation = r.read_bool()?;
        let lane_position = if has_lane {
            Some(r.read_constrained_i64(-1, 14)? as i8)
        } else {
            None
        };
        let external_temperature = if has_temp {
            Some(r.read_constrained_i64(-60, 67)? as i8)
        } else {
            None
        };
        let stationary_vehicle = if has_sv {
            Some(StationaryVehicleContainer::decode(r)?)
        } else {
            None
        };
        let annotation = if has_annotation {
            Some(r.read_utf8_string(SizeRange::new(0, MAX_ANNOTATION_LEN))?)
        } else {
            None
        };
        Ok(Self {
            lane_position,
            external_temperature,
            stationary_vehicle,
            annotation,
        })
    }
}

/// A complete Decentralized Environmental Notification Message.
///
/// The testbed (per §III-D1 of the paper) uses DENMs with only the
/// mandatory structure — header plus Management container — which is what
/// [`Denm::new`] produces; the optional containers can be attached with the
/// `with_*` builders.
///
/// # Example
///
/// See the crate-level example in [`crate`].
#[derive(Debug, Clone, PartialEq)]
pub struct Denm {
    /// Common PDU header (messageID = 1).
    pub header: ItsPduHeader,
    /// Management container (mandatory).
    pub management: ManagementContainer,
    /// Situation container (optional).
    pub situation: Option<SituationContainer>,
    /// Location container (optional).
    pub location: Option<LocationContainer>,
    /// À-la-carte container (optional).
    pub alacarte: Option<AlacarteContainer>,
}

impl Denm {
    /// Creates a mandatory-structure DENM (header + Management only).
    pub fn new(station_id: StationId, management: ManagementContainer) -> Self {
        Self {
            header: ItsPduHeader::new(MessageId::Denm, station_id),
            management,
            situation: None,
            location: None,
            alacarte: None,
        }
    }

    /// Attaches a Situation container.
    pub fn with_situation(mut self, situation: SituationContainer) -> Self {
        self.situation = Some(situation);
        self
    }

    /// Attaches a Location container.
    pub fn with_location(mut self, location: LocationContainer) -> Self {
        self.location = Some(location);
        self
    }

    /// Attaches an À-la-carte container.
    pub fn with_alacarte(mut self, alacarte: AlacarteContainer) -> Self {
        self.alacarte = Some(alacarte);
        self
    }

    /// Whether this DENM terminates its event.
    pub fn is_termination(&self) -> bool {
        self.management.termination.is_some()
    }

    /// The event type, if a Situation container is present.
    pub fn event_type(&self) -> Option<CauseCode> {
        self.situation.map(|s| s.event_type)
    }

    /// Serializes to UPER bytes.
    ///
    /// # Errors
    ///
    /// Returns an error if any field violates its constraint.
    pub fn to_bytes(&self) -> uper::Result<Vec<u8>> {
        uper::encode(self)
    }

    /// Parses from UPER bytes.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation or constraint violation.
    pub fn from_bytes(bytes: &[u8]) -> uper::Result<Self> {
        uper::decode(bytes)
    }
}

impl Codec for Denm {
    fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
        self.header.encode(w)?;
        w.write_bool(self.situation.is_some());
        w.write_bool(self.location.is_some());
        w.write_bool(self.alacarte.is_some());
        self.management.encode(w)?;
        if let Some(s) = &self.situation {
            s.encode(w)?;
        }
        if let Some(l) = &self.location {
            l.encode(w)?;
        }
        if let Some(a) = &self.alacarte {
            a.encode(w)?;
        }
        Ok(())
    }

    fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
        let header = ItsPduHeader::decode(r)?;
        let has_situation = r.read_bool()?;
        let has_location = r.read_bool()?;
        let has_alacarte = r.read_bool()?;
        let management = ManagementContainer::decode(r)?;
        let situation = if has_situation {
            Some(SituationContainer::decode(r)?)
        } else {
            None
        };
        let location = if has_location {
            Some(LocationContainer::decode(r)?)
        } else {
            None
        };
        let alacarte = if has_alacarte {
            Some(AlacarteContainer::decode(r)?)
        } else {
            None
        };
        Ok(Self {
            header,
            management,
            situation,
            location,
            alacarte,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cause_codes::CollisionRiskSubCause;
    use crate::common::{PathHistory, PathPoint};
    use proptest::prelude::*;

    fn mgmt() -> ManagementContainer {
        ManagementContainer::new(
            ActionId::new(StationId::new(15).unwrap(), 1),
            TimestampIts::new(1_000_000).unwrap(),
            TimestampIts::new(1_000_005).unwrap(),
            ReferencePosition::from_degrees(41.1784, -8.6081),
            StationType::RoadSideUnit,
        )
    }

    fn collision_denm() -> Denm {
        Denm::new(StationId::new(15).unwrap(), mgmt()).with_situation(
            SituationContainer::new(
                7,
                CauseCode::CollisionRisk(CollisionRiskSubCause::CrossingCollisionRisk),
            )
            .unwrap(),
        )
    }

    #[test]
    fn mandatory_only_denm_roundtrip() {
        // §III-D1: "the testbed has used solely DENMs with the mandatory
        // structure (Header and Management Container)".
        let denm = Denm::new(StationId::new(15).unwrap(), mgmt());
        let bytes = denm.to_bytes().unwrap();
        let back = Denm::from_bytes(&bytes).unwrap();
        assert_eq!(denm, back);
        assert!(back.situation.is_none());
        assert!(back.location.is_none());
        assert!(back.alacarte.is_none());
        // Mandatory DENM stays compact like a real UPER DENM.
        assert!(bytes.len() < 50, "encoded to {} bytes", bytes.len());
    }

    #[test]
    fn full_denm_roundtrip() {
        let trace = PathHistory::new(vec![PathPoint::default(); 3]).unwrap();
        let denm = collision_denm()
            .with_location(
                LocationContainer::new(vec![trace])
                    .unwrap()
                    .with_event_speed(Speed::from_mps(1.5))
                    .with_event_heading(Heading::from_degrees(90.0))
                    .with_road_type(RoadType::UrbanNoSeparation),
            )
            .with_alacarte(AlacarteContainer {
                lane_position: Some(0),
                external_temperature: Some(21),
                stationary_vehicle: None,
                annotation: Some("action-point crossing".to_owned()),
            });
        let bytes = denm.to_bytes().unwrap();
        let back = Denm::from_bytes(&bytes).unwrap();
        assert_eq!(denm, back);
        assert_eq!(
            back.event_type().unwrap().cause_code(),
            97,
            "collision risk cause code"
        );
    }

    #[test]
    fn termination_denm() {
        let mut m = mgmt();
        m.termination = Some(Termination::IsCancellation);
        let denm = Denm::new(StationId::new(15).unwrap(), m);
        assert!(denm.is_termination());
        let back = Denm::from_bytes(&denm.to_bytes().unwrap()).unwrap();
        assert_eq!(
            back.management.termination,
            Some(Termination::IsCancellation)
        );
    }

    #[test]
    fn management_validation() {
        let mut m = mgmt();
        m.validity_duration = 86401;
        assert!(m.validate().is_err());
        m.validity_duration = 600;
        m.transmission_interval_ms = Some(0);
        assert!(m.validate().is_err());
        m.transmission_interval_ms = Some(10000);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn situation_information_quality_bounds() {
        assert!(SituationContainer::new(8, CauseCode::from_codes(10, 0)).is_err());
        assert!(SituationContainer::new(7, CauseCode::from_codes(10, 0)).is_ok());
    }

    #[test]
    fn location_requires_one_to_seven_traces() {
        assert!(LocationContainer::new(vec![]).is_err());
        let t = PathHistory::default();
        assert!(LocationContainer::new(vec![t.clone(); 8]).is_err());
        assert!(LocationContainer::new(vec![t; 7]).is_ok());
    }

    #[test]
    fn alacarte_bounds() {
        let a = AlacarteContainer {
            lane_position: Some(15),
            ..Default::default()
        };
        assert!(a.validate().is_err());
        let a = AlacarteContainer {
            external_temperature: Some(68),
            ..Default::default()
        };
        assert!(a.validate().is_err());
        let a = AlacarteContainer {
            annotation: Some("x".repeat(65)),
            ..Default::default()
        };
        assert!(a.validate().is_err());
    }

    #[test]
    fn stationary_vehicle_container_roundtrip() {
        // §II-C: a stationary-vehicle warning (cause 94) with the
        // dedicated à-la-carte container.
        let denm = Denm::new(StationId::new(15).unwrap(), mgmt())
            .with_situation(SituationContainer::new(6, CauseCode::from_codes(94, 2)).unwrap())
            .with_alacarte(AlacarteContainer {
                stationary_vehicle: Some(StationaryVehicleContainer {
                    stationary_since: Some(StationarySince::LessThan2Minutes),
                    carrying_dangerous_goods: Some(false),
                    number_of_occupants: Some(1),
                }),
                ..Default::default()
            });
        let back = Denm::from_bytes(&denm.to_bytes().unwrap()).unwrap();
        assert_eq!(back, denm);
        let sv = back.alacarte.unwrap().stationary_vehicle.unwrap();
        assert_eq!(sv.stationary_since, Some(StationarySince::LessThan2Minutes));
        assert_eq!(sv.number_of_occupants, Some(1));
    }

    #[test]
    fn stationary_since_all_variants_roundtrip() {
        for s in [
            StationarySince::LessThan1Minute,
            StationarySince::LessThan2Minutes,
            StationarySince::LessThan15Minutes,
            StationarySince::EqualOrGreater15Minutes,
        ] {
            let bytes = uper::encode(&s).unwrap();
            assert_eq!(uper::decode::<StationarySince>(&bytes).unwrap(), s);
        }
    }

    #[test]
    fn detection_and_reference_time_independent() {
        let denm = collision_denm();
        let back = Denm::from_bytes(&denm.to_bytes().unwrap()).unwrap();
        assert_eq!(back.management.detection_time.millis(), 1_000_000);
        assert_eq!(back.management.reference_time.millis(), 1_000_005);
    }

    proptest! {
        #[test]
        fn arbitrary_bytes_never_panic_the_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            // Robust reception: garbage from the radio must produce an
            // error, never a panic.
            let _ = Denm::from_bytes(&bytes);
            let _ = crate::ItsMessage::from_bytes(&bytes);
        }

        #[test]
        fn truncated_valid_denm_errors_cleanly(cut in 0usize..40) {
            let denm = collision_denm();
            let bytes = denm.to_bytes().unwrap();
            let cut = cut.min(bytes.len().saturating_sub(1));
            // Either a clean error or (for cuts past all mandatory
            // fields, impossible here) a value — never a panic.
            prop_assert!(Denm::from_bytes(&bytes[..cut]).is_err());
        }

        #[test]
        fn denm_roundtrip_arbitrary(
            seq in any::<u16>(),
            detect_ms in 0u64..1 << 40,
            lat in -90.0f64..90.0,
            lon in -180.0f64..180.0,
            validity in 0u32..=86400,
            iq in 0u8..=7,
            cause in any::<u8>(),
            sub in any::<u8>(),
            has_situation in any::<bool>(),
            lane in proptest::option::of(-1i8..=14),
        ) {
            let mut m = ManagementContainer::new(
                ActionId::new(StationId::new(9).unwrap(), seq),
                TimestampIts::new(detect_ms).unwrap(),
                TimestampIts::new(detect_ms + 5).unwrap(),
                ReferencePosition::from_degrees(lat, lon),
                StationType::RoadSideUnit,
            );
            m.validity_duration = validity;
            let mut denm = Denm::new(StationId::new(9).unwrap(), m);
            if has_situation {
                denm = denm.with_situation(
                    SituationContainer::new(iq, CauseCode::from_codes(cause, sub)).unwrap(),
                );
            }
            if lane.is_some() {
                denm = denm.with_alacarte(AlacarteContainer {
                    lane_position: lane,
                    ..Default::default()
                });
            }
            let bytes = denm.to_bytes().unwrap();
            prop_assert_eq!(Denm::from_bytes(&bytes).unwrap(), denm);
        }
    }
}
