//! detlint fixture: R3 (RNG under hash iteration) must fire exactly once.
//!
//! This file is test data for `tests/fixtures.rs`, not compiled code;
//! the `fixtures` directory is excluded from workspace scans.

fn jitter_links(links: &mut HashMap<u64, Link>, rng: &mut SimRng) {
    // R3: the closure draws while iterating a hash-ordered map, so the
    // draw order follows the process-random hasher.
    links.values_mut().for_each(|l| l.set_jitter(rng.f64()));
}

fn jitter_ordered(links: &mut BTreeMap<u64, Link>, rng: &mut SimRng) {
    // Key-ordered iteration is deterministic: no finding.
    links.values_mut().for_each(|l| l.set_jitter(rng.f64()));
}

fn sum_hash(links: &HashMap<u64, Link>) -> f64 {
    // Hash iteration without RNG involvement is D3's business, not R3's.
    links.values().map(|l| l.jitter()).sum()
}
