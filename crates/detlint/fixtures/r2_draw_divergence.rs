//! detlint fixture: R2 (draw-order divergence) must fire exactly once.
//!
//! This file is test data for `tests/fixtures.rs`, not compiled code;
//! the `fixtures` directory is excluded from workspace scans.

fn cached_fer(rng: &mut SimRng, memo: &mut Memo, key: u64) -> f64 {
    // R2: the cache hit returns early and skips the draw below, so a
    // warm cache shifts every later draw in the stream.
    if let Some(v) = memo.get(&key) {
        return *v;
    }
    let draw = rng.f64();
    memo.insert(key, draw);
    draw
}

fn balanced(rng: &mut SimRng, flip: bool) -> f64 {
    // Both arms draw the same multiset: no finding.
    if flip {
        rng.f64()
    } else {
        rng.f64() * 0.5
    }
}

fn error_guard(rng: &mut SimRng, n: u64) -> Result<f64, Error> {
    // A draw-free early error return aborts the run path entirely and
    // never desynchronises a surviving stream: no finding.
    if n == 0 {
        return Err(Error::Empty);
    }
    Ok(rng.f64())
}
