//! detlint fixture: S3 (panic reachability) must fire exactly once.
//!
//! This file is test data for `tests/fixtures.rs`, not compiled code;
//! the `fixtures` directory is excluded from workspace scans. The
//! fixture's entry point is `demo::handle`.

fn handle(frame: &[u8]) {
    dispatch(frame);
}

fn dispatch(frame: &[u8]) {
    let _kind = decode_kind(frame);
}

fn decode_kind(frame: &[u8]) -> u8 {
    // S3: `[]`-indexing two calls deep from the entry point — a short
    // frame panics the hot path instead of returning a typed error.
    frame[0]
}

fn cold_diagnostics() {
    // Not reachable from `handle`: S3 stays quiet even on a panic!.
    panic!("diagnostics-only path");
}
