//! detlint fixture: R1 (duplicate fork label) must fire exactly once.
//!
//! This file is test data for `tests/fixtures.rs`, not compiled code;
//! the `fixtures` directory is excluded from workspace scans.

fn build_streams(root: &SimRng) {
    let mac = root.fork("mac");
    // A distinct label is fine.
    let channel = root.fork("channel");
    // R1: second fork of "mac" in the same function — stream collision.
    let clash = root.fork("mac");
    drive(mac, channel, clash);
}

fn another_fn(root: &SimRng) {
    // Re-using a label in a *different* function is legal: the parent
    // stream differs.
    let mac = root.fork("mac");
    drive_one(mac);
}
