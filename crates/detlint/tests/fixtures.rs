//! Fixture-based coverage for the v2 rule families.
//!
//! Each file under `fixtures/` is a curated violation that must
//! trigger its rule exactly once — no more (precision), no less
//! (recall) — plus the W1 snapshot contract pinned against the live
//! workspace `wire.rs`, and a property test that arbitrary byte soup
//! never panics the lexer, parser, rules, call graph or schema
//! extractor.

use std::path::{Path, PathBuf};

use detlint::lexer::lex;
use detlint::{callgraph, parse, rules, schema, Config, Finding};
use proptest::prelude::*;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Rules of the findings `check_file` produces on a fixture, using a
/// path outside the D3 crate list so only the rule under test fires.
fn fixture_rules(name: &str) -> Vec<&'static str> {
    let source = fixture(name);
    let rel = format!("crates/fixture/src/{name}");
    rules::check_file(&Config::default(), &rel, &source)
        .iter()
        .map(|f| f.rule)
        .collect()
}

#[test]
fn r1_fixture_fires_exactly_once() {
    assert_eq!(fixture_rules("r1_dup_fork.rs"), vec!["R1"]);
}

#[test]
fn r2_fixture_fires_exactly_once() {
    assert_eq!(fixture_rules("r2_draw_divergence.rs"), vec!["R2"]);
}

#[test]
fn r3_fixture_fires_exactly_once() {
    assert_eq!(fixture_rules("r3_rng_closure.rs"), vec!["R3"]);
}

#[test]
fn s3_fixture_fires_exactly_once() {
    let source = fixture("s3_panic_reachable.rs");
    let lexed = lex(&source);
    let files = [callgraph::FileTokens {
        rel_path: "crates/demo/src/s3_panic_reachable.rs",
        lexed: &lexed,
        lines: source.lines().collect(),
    }];
    let mut cfg = Config::default();
    cfg.s3_entries = vec!["demo::handle".into()];
    let mut findings: Vec<Finding> = Vec::new();
    callgraph::check_crate(&cfg, "demo", &files, &mut findings);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "S3");
    assert!(findings[0]
        .message
        .contains("handle → dispatch → decode_kind"));
    assert!(
        !findings[0].message.contains("cold_diagnostics"),
        "unreachable fn must not be flagged"
    );
}

/// The committed `wire.schema` must be exactly what the extractor
/// produces from the live encoder — a stale snapshot is itself a bug.
#[test]
fn committed_schema_matches_live_wire_encoder() {
    let root = workspace_root();
    let cfg = Config::default();
    let wire = std::fs::read_to_string(root.join(&cfg.w1_wire)).expect("wire module readable");
    let live = schema::extract(&lex(&wire).tokens).expect("live encoder extracts");
    let committed = std::fs::read_to_string(root.join(&cfg.w1_schema))
        .expect("wire.schema must be committed at the workspace root");
    assert_eq!(
        schema::parse_snapshot(&committed).expect("committed snapshot parses"),
        live,
        "wire.schema is stale — run `detlint --update-schema` and review the diff"
    );
    assert_eq!(
        schema::compare(&schema::parse_snapshot(&committed).unwrap(), &live),
        None
    );
    assert_eq!(schema::decode_consistency(&lex(&wire).tokens, &live), None);
}

/// Mutating the live encoder's field order must fail W1 — the
/// acceptance demonstration for the snapshot lint, run against the
/// real `wire.rs` text rather than a toy codec.
#[test]
fn reordering_live_wire_fields_fails_w1() {
    let root = workspace_root();
    let cfg = Config::default();
    let wire = std::fs::read_to_string(root.join(&cfg.w1_wire)).expect("wire module readable");
    let committed = std::fs::read_to_string(root.join(&cfg.w1_schema)).expect("snapshot readable");
    let snap = schema::parse_snapshot(&committed).unwrap();

    // Swap two adjacent encoder writes, as a careless refactor would.
    let a = "put_opt_time(&mut p, self.step1_crossing);";
    let b = "put_opt_time(&mut p, self.step2_detection);";
    let mutated = wire.replace(&format!("{a}\n        {b}"), &format!("{b}\n        {a}"));
    assert_ne!(mutated, wire, "mutation must apply");
    let live = schema::extract(&lex(&mutated).tokens).unwrap();
    let msg = schema::compare(&snap, &live).expect("reorder must produce a W1 finding");
    assert!(msg.contains("position 1"), "{msg}");

    // Dropping the trailing field fails too: truncation reads as a
    // removal, and the wire format is append-only.
    let removed = wire.replace("put_coop_stats(&mut p, &self.coop);", "");
    assert_ne!(removed, wire);
    let live = schema::extract(&lex(&removed).tokens).unwrap();
    assert!(schema::compare(&snap, &live)
        .expect("removal must produce a W1 finding")
        .contains("append-only"));

    // A mid-stream removal shifts every later field and is named as a
    // position change at the first divergence.
    let shifted = wire.replace(
        "put_opt_f64(&mut p, self.detection_distance_m);\n        ",
        "",
    );
    assert_ne!(shifted, wire);
    let live = schema::extract(&lex(&shifted).tokens).unwrap();
    assert!(schema::compare(&snap, &live)
        .expect("mid-stream removal must produce a W1 finding")
        .contains("detection_distance_m"));
}

proptest! {
    /// Arbitrary byte soup must never panic any analysis layer. The
    /// lexer/parser see the lossy UTF-8 form (source files are read as
    /// strings); schema and snapshot parsing see it raw.
    #[test]
    fn byte_soup_never_panics_any_layer(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let lexed = lex(&source);
        let fns = parse::parse_fns(&lexed.tokens);
        for f in &fns {
            if let Some(body) = f.body {
                let _ = parse::find_ifs(&lexed.tokens, body);
                let _ = parse::call_sites(&lexed.tokens, body);
                let _ = parse::draw_calls(&lexed.tokens, body);
            }
        }
        let cfg = Config::default();
        let _ = rules::check_file(&cfg, "crates/core/src/soup.rs", &source);
        let files = [callgraph::FileTokens {
            rel_path: "crates/core/src/soup.rs",
            lexed: &lexed,
            lines: source.lines().collect(),
        }];
        let mut out = Vec::new();
        callgraph::check_crate(&cfg, "core", &files, &mut out);
        let _ = schema::extract(&lexed.tokens);
        let _ = schema::parse_snapshot(&source);
    }

    /// Rust-shaped soup: random fragments glued together exercise the
    /// structural layer far deeper than raw bytes.
    #[test]
    fn fragment_soup_never_panics(picks in proptest::collection::vec(0usize..16, 0..64)) {
        const FRAGMENTS: [&str; 16] = [
            "fn f(", ") {", "}", "if let Some(x) = m.get(&k) {", "return x;",
            "rng.f64()", ".fork(\"mac\")", "else {", "m.values().for_each(|v|",
            "// detlint:allow(R2)", "put_opt_u64(&mut p, self.x);", "const WIRE_VERSION: u8 = 2;",
            "r#\"raw\"#", "'a>", "b'\\n'", "/* nested /* comment */",
        ];
        let source: String = picks.iter().map(|&i| FRAGMENTS[i]).collect::<Vec<_>>().join(" ");
        let _ = rules::check_file(&Config::default(), "crates/core/src/soup.rs", &source);
        let _ = schema::extract(&lex(&source).tokens);
    }
}
