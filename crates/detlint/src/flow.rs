//! The R rule family: RNG-stream discipline.
//!
//! Bitwise-identical campaigns rest on two RNG invariants that lexical
//! token matching (D2) cannot see: every subsystem draws from its *own*
//! forked stream, and the *number and order* of draws is a pure
//! function of the run configuration — never of cache state, iteration
//! order, or which arm of a branch happened to execute.
//!
//! | ID | Hazard |
//! |----|--------|
//! | R1 | two `fork("label")` calls with the same label in one function — stream collision |
//! | R2 | a branch draws a different RNG call multiset than its sibling — draw-order divergence |
//! | R3 | `&mut` RNG used inside a closure iterating a hash-ordered collection |
//!
//! R2 covers both explicit `if`/`else` arms and the cache-hit shape
//! (`if let … { return …; }` whose continuation draws) — the exact
//! hazard `LinkCache::transmit_cached` had to dodge by keeping the
//! shadowing draw *outside* the memoised math. Branching on static
//! configuration (`if cfg.sigma > 0.0 { rng.normal(…) }`) is lexically
//! indistinguishable from branching on per-run state, so such sites
//! carry a justified `detlint:allow(R2)` explaining why the condition
//! is constant for a whole run.

use crate::lexer::{Lexed, Token, TokenKind};
use crate::parse::{self, FnDef};
use crate::rules::Finding;

/// Runs R1/R2/R3 over one file. Findings are not yet allow-filtered.
pub fn check_file(rel_path: &str, lexed: &Lexed, lines: &[&str], out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let snippet = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    };
    let fns = parse::parse_fns(toks);
    for f in &fns {
        if f.in_test {
            continue;
        }
        let Some(body) = f.body else { continue };
        check_fork_collisions(toks, f, body, rel_path, &snippet, out);
        check_draw_divergence(toks, f, body, rel_path, &snippet, out);
        // Hash-typed names are scoped to this fn (params + body): a
        // `links: HashMap` param elsewhere in the file must not taint a
        // same-named `BTreeMap` here.
        let hash_names = hash_typed_names(toks, (f.name_idx, body.1));
        check_closure_draws(toks, f, body, rel_path, &hash_names, &snippet, out);
    }
}

/// R1 — duplicate `fork("label")` literals within one function.
fn check_fork_collisions(
    toks: &[Token],
    f: &FnDef,
    body: (usize, usize),
    rel_path: &str,
    snippet: &dyn Fn(u32) -> String,
    out: &mut Vec<Finding>,
) {
    let (lo, hi) = body;
    let mut seen: Vec<(&str, u32)> = Vec::new();
    for i in lo..=hi.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if !(t.is_ident("fork") && toks.get(i + 1).is_some_and(|n| n.is_punct("("))) {
            continue;
        }
        let Some(lit) = toks.get(i + 2).filter(|l| l.kind == TokenKind::Literal) else {
            continue;
        };
        if !toks.get(i + 3).is_some_and(|n| n.is_punct(")")) {
            continue; // dynamic label expression — not statically checkable
        }
        if let Some((_, first_line)) = seen.iter().find(|(l, _)| *l == lit.text) {
            out.push(Finding {
                file: rel_path.to_owned(),
                line: t.line,
                col: t.col,
                rule: "R1",
                message: format!(
                    "duplicate RNG stream label {:?} in `{}` (first forked on line {first_line}): \
                     both consumers draw the same sequence",
                    lit.text, f.name
                ),
                snippet: snippet(t.line),
                hint: "give every subsystem its own fork label; identical labels yield identical streams",
            });
        } else {
            seen.push((lit.text.as_str(), t.line));
        }
    }
}

/// R2 — sibling branches with different RNG draw multisets.
fn check_draw_divergence(
    toks: &[Token],
    f: &FnDef,
    body: (usize, usize),
    rel_path: &str,
    snippet: &dyn Fn(u32) -> String,
    out: &mut Vec<Finding>,
) {
    for br in parse::find_ifs(toks, body) {
        let then_draws = parse::draw_calls(toks, br.then_block);
        let t = &toks[br.if_idx];
        if let Some(else_part) = br.else_part {
            let else_draws = parse::draw_calls(toks, else_part);
            if then_draws != else_draws && (!then_draws.is_empty() || !else_draws.is_empty()) {
                out.push(Finding {
                    file: rel_path.to_owned(),
                    line: t.line,
                    col: t.col,
                    rule: "R2",
                    message: format!(
                        "branch arms of `{}` draw different RNG sequences ({} vs {}): \
                         downstream draws shift depending on the path taken",
                        f.name,
                        fmt_draws(&then_draws),
                        fmt_draws(&else_draws)
                    ),
                    snippet: snippet(t.line),
                    hint: "draw before branching (hoist the draw) or prove the condition is per-run constant in a detlint:allow(R2)",
                });
            }
        } else if parse::contains_return(toks, br.then_block) {
            // Early-return branch: its sibling is the rest of the
            // function. Only the cache-hit shape (`if let`) or a branch
            // that itself draws is a hazard; a bare error guard
            // (`if bad { return Err(..) }`) aborts the run path and
            // never desynchronises a surviving stream.
            let rest = (br.then_block.1 + 1, body.1);
            if rest.0 > rest.1 {
                continue;
            }
            let rest_draws = parse::draw_calls(toks, rest);
            let diverges = then_draws != rest_draws
                && (!then_draws.is_empty() || (br.is_if_let && !rest_draws.is_empty()));
            if diverges {
                out.push(Finding {
                    file: rel_path.to_owned(),
                    line: t.line,
                    col: t.col,
                    rule: "R2",
                    message: format!(
                        "early-return branch in `{}` draws {} but the fall-through path draws {}: \
                         a cache hit or early exit changes every later draw",
                        f.name,
                        fmt_draws(&then_draws),
                        fmt_draws(&rest_draws)
                    ),
                    snippet: snippet(t.line),
                    hint: "keep RNG draws outside memoised/early-return paths (see LinkCache::transmit_cached) or justify with detlint:allow(R2)",
                });
            }
        }
    }
}

fn fmt_draws(draws: &[String]) -> String {
    if draws.is_empty() {
        "nothing".to_owned()
    } else {
        format!("[{}]", draws.join(", "))
    }
}

/// Identifiers declared with a hash-ordered collection type within the
/// token range (one fn's signature and body): `name: HashMap<…>`
/// (params, fields) and `let name = HashMap::new()` /
/// `HashSet::from(…)` bindings.
fn hash_typed_names(toks: &[Token], range: (usize, usize)) -> Vec<String> {
    let mut names = Vec::new();
    for i in range.0..=range.1.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || !matches!(t.text.as_str(), "HashMap" | "HashSet") {
            continue;
        }
        // Walk back over path/type noise to the `name :` or `name =`.
        let mut j = i;
        while j > 0 {
            let p = &toks[j - 1];
            let type_noise = p.is_punct("::")
                || p.is_punct("&")
                || p.is_punct("<")
                || p.is_ident("std")
                || p.is_ident("collections")
                || p.is_ident("mut")
                || p.is_ident("dyn");
            if !type_noise {
                break;
            }
            j -= 1;
        }
        if j >= 2
            && (toks[j - 1].is_punct(":") || toks[j - 1].is_punct("="))
            && toks[j - 2].kind == TokenKind::Ident
        {
            names.push(toks[j - 2].text.clone());
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Iterator adapters that take a closure.
const CLOSURE_ADAPTERS: &[&str] = &[
    "for_each",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "fold",
    "retain",
    "any",
    "all",
    "find",
    "position",
    "inspect",
    "scan",
    "max_by",
    "max_by_key",
    "min_by",
    "min_by_key",
    "partition",
    "take_while",
    "skip_while",
];

/// Methods that begin iteration over a collection.
const ITER_STARTERS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "entries",
];

/// R3 — RNG drawn inside a closure iterating a hash-ordered collection.
fn check_closure_draws(
    toks: &[Token],
    f: &FnDef,
    body: (usize, usize),
    rel_path: &str,
    hash_names: &[String],
    snippet: &dyn Fn(u32) -> String,
    out: &mut Vec<Finding>,
) {
    let (lo, hi) = body;
    for i in lo..=hi.min(toks.len().saturating_sub(1)) {
        // Anchor: `.adapter(` with a closure among its arguments.
        let t = &toks[i];
        if !(t.kind == TokenKind::Ident
            && CLOSURE_ADAPTERS.contains(&t.text.as_str())
            && i > 0
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("(")))
        {
            continue;
        }
        // The receiver chain must be rooted in a hash-typed binding and
        // pass through an iteration starter (or be `retain` directly on
        // the map).
        let chain = receiver_chain(toks, i - 1, lo);
        let rooted_in_hash = chain.iter().any(|c| hash_names.iter().any(|h| h == c));
        let iterates =
            t.text == "retain" || chain.iter().any(|c| ITER_STARTERS.contains(&c.as_str()));
        if !(rooted_in_hash && iterates) {
            continue;
        }
        let Some(close) = parse::matching(toks, i + 1, "(", ")") else {
            continue;
        };
        // Find RNG identifiers inside the closure argument(s).
        for j in i + 2..close {
            let a = &toks[j];
            if a.kind == TokenKind::Ident && a.text.to_ascii_lowercase().contains("rng") {
                out.push(Finding {
                    file: rel_path.to_owned(),
                    line: a.line,
                    col: a.col,
                    rule: "R3",
                    message: format!(
                        "RNG `{}` drawn while iterating a hash-ordered collection in `{}`: \
                         draw order follows the process-random hasher",
                        a.text, f.name
                    ),
                    snippet: snippet(a.line),
                    hint: "iterate a BTreeMap/BTreeSet, or collect and sort keys before drawing",
                });
                break; // one finding per closure is enough
            }
        }
    }
}

/// Identifiers along the method chain feeding the `.` at `dot`,
/// walked backwards: `self.links.values().map` yields
/// `[values, links, self]` (order irrelevant to the caller).
fn receiver_chain(toks: &[Token], dot: usize, floor: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut j = dot; // points at the `.` before the adapter
    while j > floor {
        let p = &toks[j - 1];
        if p.is_punct(")") {
            // Skip a call's argument list backwards.
            let Some(open) = matching_back(toks, j - 1, floor) else {
                break;
            };
            j = open;
            continue;
        }
        if p.kind == TokenKind::Ident {
            chain.push(p.text.clone());
            j -= 1;
            // Continue only through `.`/`::` chains.
            if j > floor && (toks[j - 1].is_punct(".") || toks[j - 1].is_punct("::")) {
                j -= 1;
                continue;
            }
            break;
        }
        break;
    }
    chain
}

/// The `(` matching the `)` at `close`, scanning backwards.
fn matching_back(toks: &[Token], close: usize, floor: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = close;
    loop {
        if toks[j].is_punct(")") {
            depth += 1;
        } else if toks[j].is_punct("(") {
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(j);
            }
        }
        if j == floor {
            return None;
        }
        j -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let mut out = Vec::new();
        check_file(path, &lexed, &lines, &mut out);
        out
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|f| f.rule).collect()
    }

    // — R1 —

    #[test]
    fn r1_flags_duplicate_fork_labels_in_one_fn() {
        let src =
            r#"fn build(root: &SimRng) { let a = root.fork("mac"); let b = root.fork("mac"); }"#;
        let f = check("crates/core/src/scenario.rs", src);
        assert_eq!(rules_of(&f), vec!["R1"]);
        assert!(f[0].message.contains("\"mac\""));
    }

    #[test]
    fn r1_permits_distinct_labels_and_cross_fn_repeats() {
        let src = r#"
fn a(root: &SimRng) { let x = root.fork("mac"); let y = root.fork("channel"); }
fn b(root: &SimRng) { let x = root.fork("mac"); }
"#;
        assert!(check("crates/core/src/scenario.rs", src).is_empty());
    }

    #[test]
    fn r1_ignores_dynamic_labels_and_tests() {
        let src = r#"fn a(root: &SimRng, l: &str) { let x = root.fork(l); let y = root.fork(l); }"#;
        assert!(check("crates/core/src/x.rs", src).is_empty());
        let src = "#[cfg(test)]\nmod tests { fn t(r: &SimRng) { r.fork(\"x\"); r.fork(\"x\"); } }";
        assert!(check("crates/core/src/x.rs", src).is_empty());
    }

    // — R2 —

    #[test]
    fn r2_flags_if_else_draw_mismatch() {
        let src = "fn shadow(rng: &mut SimRng, sigma: f64) -> f64 { if sigma > 0.0 { rng.normal(0.0, sigma) } else { 0.0 } }";
        let f = check("crates/phy80211p/src/channel.rs", src);
        assert_eq!(rules_of(&f), vec!["R2"]);
        assert!(f[0].message.contains("[normal]"));
    }

    #[test]
    fn r2_flags_cache_hit_early_return_skipping_draws() {
        let src = "fn fer(&mut self, rng: &mut SimRng, key: K) -> f64 { if let Some(v) = self.memo.get(&key) { return *v; } let x = rng.f64(); x }";
        let f = check("crates/phy80211p/src/channel.rs", src);
        assert_eq!(rules_of(&f), vec!["R2"]);
        assert!(f[0].message.contains("early-return"));
    }

    #[test]
    fn r2_flags_draws_inside_early_return_branch() {
        let src = "fn f(rng: &mut SimRng, hot: bool) -> f64 { if hot { return rng.f64(); } 0.5 }";
        let f = check("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), vec!["R2"]);
    }

    #[test]
    fn r2_permits_balanced_arms_and_plain_error_guards() {
        // Both arms draw the same multiset.
        let src =
            "fn f(rng: &mut SimRng, c: bool) -> f64 { if c { rng.f64() } else { rng.f64() } }";
        assert!(check("crates/core/src/x.rs", src).is_empty());
        // A plain early error-return with no draws is not a hazard.
        let src = "fn g(rng: &mut SimRng, n: u64) -> Result<f64, E> { if n == 0 { return Err(E); } Ok(rng.f64()) }";
        assert!(check("crates/core/src/x.rs", src).is_empty());
        // Draw-free branching is fine.
        let src = "fn h(c: bool) -> u8 { if c { 1 } else { 2 } }";
        assert!(check("crates/core/src/x.rs", src).is_empty());
    }

    // — R3 —

    #[test]
    fn r3_flags_rng_in_closure_over_hash_map() {
        let src = "fn f(rng: &mut SimRng) { let m: HashMap<u32, f64> = make(); m.values().for_each(|v| { sink(v, rng.f64()); }); }";
        let f = check("crates/openc2x/src/x.rs", src);
        assert_eq!(rules_of(&f), vec!["R3"]);
    }

    #[test]
    fn r3_flags_retain_with_rng_on_hash_map() {
        let src = "fn f(node_rng: &mut SimRng) { let mut m = HashMap::new(); m.retain(|_, v| node_rng.bernoulli(0.5)); }";
        let f = check("crates/openc2x/src/x.rs", src);
        assert_eq!(rules_of(&f), vec!["R3"]);
    }

    #[test]
    fn r3_permits_btree_iteration_and_rng_free_closures() {
        let src = "fn f(rng: &mut SimRng) { let m: BTreeMap<u32, f64> = make(); m.values().for_each(|v| sink(v, rng.f64())); }";
        assert!(check("crates/core/src/x.rs", src).is_empty());
        let src = "fn g() { let m: HashMap<u32, f64> = make(); let s: f64 = m.values().map(|v| v + 1.0).sum(); }";
        assert!(check("crates/core/src/x.rs", src).is_empty());
    }
}
