//! Per-crate call graph and the S3 panic-reachability rule.
//!
//! S2 (PR 1) proves named hot-path *files* free of panicking
//! constructs, but a refactor that moves an `unwrap` one call deeper —
//! into a helper in a sibling file — silently escapes it. S3 closes
//! that hole: it builds an intra-crate call graph from `fn` definitions
//! and call sites, walks reachability from configured hot-path entry
//! points (`EventQueue` handlers, EDCA/channel/DCC per-event code,
//! UPER/GeoNet codecs), and requires every transitively callable
//! function to be free of `panic!`-family macros, `.unwrap()`/
//! `.expect()` and `[]`-indexing.
//!
//! The graph is name-based and intra-crate by design: a call edge
//! `a → b` exists when `a`'s body contains a call site named `b` and
//! some non-test `fn b` is defined in the same crate. That
//! over-approximates (same-named methods on different types merge;
//! calls that actually resolve cross-crate still add the local edge),
//! which is the safe direction for a lint — reachability may only grow.
//! Test-region functions neither join the graph nor contribute edges.
//!
//! `assert!`/`debug_assert!` are deliberately *not* flagged: the
//! workspace uses them to turn logic errors into loud failures
//! (schedule-into-past, exhausted seq counters), and S3 targets
//! input-dependent aborts, not invariant checks. `[]`-indexing *is*
//! flagged — a lying length prefix must surface as a typed decode
//! error, never an out-of-bounds panic — with justified
//! `detlint:allow(S3)` as the escape for provably in-bounds access.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::lexer::{Lexed, Token, TokenKind};
use crate::parse;
use crate::rules::Finding;

/// One scanned file handed to the crate-level pass.
pub struct FileTokens<'a> {
    /// Root-relative `/`-separated path.
    pub rel_path: &'a str,
    /// The file's lexed form.
    pub lexed: &'a Lexed,
    /// The file's source lines (for snippets).
    pub lines: Vec<&'a str>,
}

/// The crate a `crates/<name>/…` path belongs to, if any.
pub fn crate_of(rel_path: &str) -> Option<&str> {
    let mut parts = rel_path.split('/');
    if parts.next() != Some("crates") {
        return None;
    }
    parts.next()
}

#[derive(Debug)]
struct FnBody {
    file: usize,
    body: (usize, usize),
}

/// Runs S3 over one crate's files. `entries` holds the entry-point
/// function names configured for this crate. Returned findings are not
/// yet allow-filtered; the caller applies each file's annotations.
pub fn check_crate(cfg: &Config, krate: &str, files: &[FileTokens<'_>], out: &mut Vec<Finding>) {
    let entries: BTreeSet<&str> = cfg
        .s3_entries
        .iter()
        .filter_map(|e| e.split_once("::"))
        .filter(|(c, _)| *c == krate)
        .map(|(_, f)| f)
        .collect();
    if entries.is_empty() {
        return;
    }

    // Collect every non-test fn body in the crate, grouped by name.
    let mut bodies: BTreeMap<String, Vec<FnBody>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for f in parse::parse_fns(&file.lexed.tokens) {
            if f.in_test {
                continue;
            }
            if let Some(body) = f.body {
                bodies
                    .entry(f.name)
                    .or_default()
                    .push(FnBody { file: fi, body });
            }
        }
    }

    // BFS over function names from the entry points, remembering one
    // shortest call path per name for the diagnostic message.
    let mut reached: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut queue: Vec<String> = Vec::new();
    for e in &entries {
        if bodies.contains_key(*e) {
            reached.insert((*e).to_string(), vec![(*e).to_string()]);
            queue.push((*e).to_string());
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let name = queue[head].clone();
        head += 1;
        let path = reached[&name].clone();
        let Some(defs) = bodies.get(&name) else {
            continue;
        };
        let mut callees: BTreeSet<String> = BTreeSet::new();
        for def in defs {
            for (callee, _) in parse::call_sites(&files[def.file].lexed.tokens, def.body) {
                if callee != name && bodies.contains_key(&callee) {
                    callees.insert(callee);
                }
            }
        }
        for callee in callees {
            if !reached.contains_key(&callee) {
                let mut p = path.clone();
                p.push(callee.clone());
                reached.insert(callee.clone(), p);
                queue.push(callee);
            }
        }
    }

    // Flag panicking constructs in every reachable body.
    for (name, path) in &reached {
        let via = if path.len() > 1 {
            format!(" (reachable via {})", path.join(" → "))
        } else {
            String::new()
        };
        for def in &bodies[name] {
            let file = &files[def.file];
            let toks = &file.lexed.tokens;
            let (lo, hi) = def.body;
            for i in lo..=hi.min(toks.len().saturating_sub(1)) {
                let t = &toks[i];
                let hit = panic_construct(toks, i);
                let Some(what) = hit else { continue };
                let snippet = file
                    .lines
                    .get(t.line as usize - 1)
                    .map(|l| l.trim().to_owned())
                    .unwrap_or_default();
                out.push(Finding {
                    file: file.rel_path.to_owned(),
                    line: t.line,
                    col: t.col,
                    rule: "S3",
                    message: format!(
                        "{what} in `{name}`, on the hot path from entry `{krate}::{root}`{via}",
                        root = path.first().map(String::as_str).unwrap_or(name),
                    ),
                    snippet,
                    hint: "return a typed error (or prove bounds and add a justified detlint:allow(S3))",
                });
            }
        }
    }
}

/// If token `i` is a panicking construct, a short description of it.
fn panic_construct(toks: &[Token], i: usize) -> Option<String> {
    let t = &toks[i];
    if t.kind == TokenKind::Ident {
        let method_panic =
            (t.text == "unwrap" || t.text == "expect") && i > 0 && toks[i - 1].is_punct(".");
        if method_panic {
            return Some(format!("`.{}()`", t.text));
        }
        let macro_panic = matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
        if macro_panic {
            return Some(format!("`{}!`", t.text));
        }
        return None;
    }
    // `[`-indexing: `expr[...]` can panic out of bounds. The opener
    // counts when it follows a value (identifier, `)`, or `]`); array
    // literals, types, attributes and macro brackets do not match.
    if t.is_punct("[") && i > 0 {
        let p = &toks[i - 1];
        let after_value =
            (p.kind == TokenKind::Ident && !parse_keyword(p)) || p.is_punct(")") || p.is_punct("]");
        if after_value {
            return Some("`[]`-indexing".to_string());
        }
    }
    None
}

fn parse_keyword(t: &Token) -> bool {
    matches!(
        t.text.as_str(),
        "return"
            | "break"
            | "in"
            | "else"
            | "match"
            | "if"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "as"
            | "use"
            | "where"
            | "dyn"
            | "impl"
            | "loop"
            | "while"
            | "for"
            | "unsafe"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn s3(files: &[(&str, &str)], entries: &[&str]) -> Vec<Finding> {
        let mut cfg = Config::default();
        cfg.s3_entries = entries.iter().map(|e| (*e).to_string()).collect();
        let lexed: Vec<_> = files.iter().map(|(_, src)| lex(src)).collect();
        let file_toks: Vec<FileTokens<'_>> = files
            .iter()
            .zip(&lexed)
            .map(|((path, src), lx)| FileTokens {
                rel_path: path,
                lexed: lx,
                lines: src.lines().collect(),
            })
            .collect();
        let mut out = Vec::new();
        check_crate(&cfg, "demo", &file_toks, &mut out);
        out
    }

    #[test]
    fn panic_in_entry_is_flagged() {
        let f = s3(
            &[(
                "crates/demo/src/lib.rs",
                "fn handle(x: Option<u8>) { x.unwrap(); }",
            )],
            &["demo::handle"],
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "S3");
        assert!(f[0].message.contains("`.unwrap()`"));
    }

    #[test]
    fn panic_two_calls_deep_across_files_is_flagged_with_path() {
        let f = s3(
            &[
                (
                    "crates/demo/src/lib.rs",
                    "fn handle(b: &[u8]) { helper(b); }",
                ),
                (
                    "crates/demo/src/util.rs",
                    "pub fn helper(b: &[u8]) { deep(b); }\nfn deep(b: &[u8]) { let _ = b[0]; }",
                ),
            ],
            &["demo::handle"],
        );
        assert_eq!(f.len(), 1);
        assert!(
            f[0].message.contains("handle → helper → deep"),
            "{}",
            f[0].message
        );
        assert!(f[0].message.contains("`[]`-indexing"));
        assert_eq!(f[0].file, "crates/demo/src/util.rs");
    }

    #[test]
    fn unreachable_fns_are_not_flagged() {
        let f = s3(
            &[(
                "crates/demo/src/lib.rs",
                "fn handle() { safe(); }\nfn safe() {}\nfn cold() { boom.unwrap(); }",
            )],
            &["demo::handle"],
        );
        assert!(f.is_empty());
    }

    #[test]
    fn test_region_fns_neither_flagged_nor_edges() {
        let f = s3(
            &[(
                "crates/demo/src/lib.rs",
                "fn handle() {}\n#[cfg(test)]\nmod tests { fn handle() { x.unwrap(); } }",
            )],
            &["demo::handle"],
        );
        assert!(f.is_empty());
    }

    #[test]
    fn asserts_and_array_literals_are_not_flagged() {
        let f = s3(
            &[(
                "crates/demo/src/lib.rs",
                "fn handle(n: u64) { assert!(n > 0); let a = [1, 2]; let v: [u8; 2] = a; let _ = vec![n]; }",
            )],
            &["demo::handle"],
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn indexing_and_slicing_are_flagged() {
        let f = s3(
            &[(
                "crates/demo/src/lib.rs",
                "fn handle(b: &[u8], i: usize) { let _x = b[i]; let _s = &b[1..]; }",
            )],
            &["demo::handle"],
        );
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.message.contains("`[]`-indexing")));
    }

    #[test]
    fn recursion_terminates() {
        let f = s3(
            &[(
                "crates/demo/src/lib.rs",
                "fn handle(n: u64) { if n > 0 { handle(n - 1); } mutual_a(); }\nfn mutual_a() { mutual_b(); }\nfn mutual_b() { mutual_a(); }",
            )],
            &["demo::handle"],
        );
        assert!(f.is_empty());
    }

    #[test]
    fn entries_scope_to_their_crate() {
        let f = s3(
            &[("crates/demo/src/lib.rs", "fn handle() { x.unwrap(); }")],
            &["other::handle"],
        );
        assert!(f.is_empty());
    }
}
