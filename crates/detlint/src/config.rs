//! `detlint.toml` parsing.
//!
//! detlint is dependency-free, so this is a hand-rolled parser for the
//! small TOML subset the config needs: `[section.sub]` headers, string
//! values, arrays of strings, booleans and comments. Unknown keys are
//! rejected so typos fail loudly instead of silently disabling a rule.

use std::collections::BTreeMap;
use std::path::Path;

/// Scan and rule configuration, usually loaded from `detlint.toml` at
/// the workspace root. [`Config::default`] encodes the workspace's
/// actual invariants, so the binary also works with no config file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Directories (relative to the root) to scan for `.rs` files.
    pub scan: Vec<String>,
    /// Path substrings that are never scanned (e.g. `target`).
    pub skip: Vec<String>,
    /// Files exempt from D1 (wall-clock types), relative to the root.
    pub d1_exempt: Vec<String>,
    /// Files exempt from D2 (ambient RNG), relative to the root.
    pub d2_exempt: Vec<String>,
    /// Crate names whose code must not use hash-ordered collections (D3).
    pub d3_crates: Vec<String>,
    /// Per-event hot-path files that must stay panic-free (S2).
    pub s2_paths: Vec<String>,
    /// Hot-path entry points for the S3 reachability walk, written as
    /// `crate::function` (the crate is the directory under `crates/`).
    pub s3_entries: Vec<String>,
    /// The wire codec module whose encoder W1 pins, relative to the
    /// root.
    pub w1_wire: String,
    /// The committed schema snapshot W1 compares against, relative to
    /// the root.
    pub w1_schema: String,
    /// Rule IDs disabled entirely.
    pub disabled: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scan: vec!["crates".into(), "tests".into()],
            // `fixtures` holds detlint's own deliberately-violating
            // rule fixtures; scanning them would fail the gate.
            skip: vec!["target".into(), "fixtures".into()],
            d1_exempt: vec!["crates/sim-core/src/clock.rs".into()],
            d2_exempt: vec!["crates/sim-core/src/rng.rs".into()],
            d3_crates: vec![
                "sim-core".into(),
                "facilities".into(),
                "geonet".into(),
                "phy80211p".into(),
                "core".into(),
                "vehicle".into(),
                "perception".into(),
                "shard".into(),
                "faults".into(),
                "uper".into(),
                "its-messages".into(),
                "openc2x".into(),
                "runner".into(),
                "bench".into(),
                "detlint".into(),
                "proptest".into(),
                "criterion".into(),
                "campaignd".into(),
            ],
            s2_paths: vec![
                "crates/phy80211p/src/edca.rs".into(),
                "crates/phy80211p/src/channel.rs".into(),
                "crates/phy80211p/src/dcc.rs".into(),
                "crates/phy80211p/src/ofdm.rs".into(),
                "crates/geonet/src/forwarding.rs".into(),
                "crates/geonet/src/headers.rs".into(),
                "crates/geonet/src/btp.rs".into(),
                "crates/geonet/src/bytesio.rs".into(),
                "crates/geonet/src/loctable.rs".into(),
                "crates/uper/src/bits.rs".into(),
                "crates/uper/src/fields.rs".into(),
            ],
            s3_entries: vec![
                // The event-loop dispatch target every handler runs under.
                "core::handle".into(),
                // EDCA / channel / DCC per-event code.
                "phy80211p::transmit".into(),
                "phy80211p::transmit_cached".into(),
                "phy80211p::access_time".into(),
                "phy80211p::draw_slots".into(),
                "phy80211p::on_retry".into(),
                "phy80211p::on_success".into(),
                "phy80211p::observe_busy".into(),
                "phy80211p::update_state".into(),
                "phy80211p::gate".into(),
                "phy80211p::on_transmitted".into(),
                "phy80211p::record_busy".into(),
                "phy80211p::cbr".into(),
                // Codec entry points fed by untrusted bytes.
                "geonet::from_bytes".into(),
                "geonet::gbc_forward_decision".into(),
                "uper::encode".into(),
                "uper::decode".into(),
            ],
            w1_wire: "crates/core/src/wire.rs".into(),
            w1_schema: "wire.schema".into(),
            disabled: Vec::new(),
        }
    }
}

/// A config-file problem, with the offending line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line in the config file.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "detlint.toml:{}: {}", self.line, self.message)
    }
}

impl Config {
    /// Loads the config from `path`, or the defaults if the file does
    /// not exist.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for unreadable files, syntax errors, or
    /// unknown sections/keys.
    pub fn load(path: &Path) -> Result<Config, ConfigError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
            Err(e) => Err(ConfigError {
                line: 0,
                message: format!("cannot read {}: {e}", path.display()),
            }),
        }
    }

    /// Parses config text. See [`Config::load`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] on syntax errors or unknown keys.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut values: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name.strip_suffix(']').ok_or_else(|| ConfigError {
                    line: line_no,
                    message: "unterminated section header".into(),
                })?;
                section = name.trim().to_owned();
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| ConfigError {
                line: line_no,
                message: format!("expected `key = value`, got {line:?}"),
            })?;
            let full_key = if section.is_empty() {
                key.trim().to_owned()
            } else {
                format!("{section}.{}", key.trim())
            };
            let items = parse_value(value.trim(), line_no)?;
            values.insert(full_key, items);
        }

        let mut cfg = Config::default();
        for (key, items) in values {
            match key.as_str() {
                "workspace.scan" => cfg.scan = items,
                "workspace.skip" => cfg.skip = items,
                "rules.disabled" => cfg.disabled = items,
                "rules.D1.exempt" => cfg.d1_exempt = items,
                "rules.D2.exempt" => cfg.d2_exempt = items,
                "rules.D3.crates" => cfg.d3_crates = items,
                "rules.S2.paths" => cfg.s2_paths = items,
                "rules.S3.entries" => cfg.s3_entries = items,
                "rules.W1.wire" => cfg.w1_wire = single(&key, items)?,
                "rules.W1.schema" => cfg.w1_schema = single(&key, items)?,
                other => {
                    return Err(ConfigError {
                        line: 0,
                        message: format!("unknown config key `{other}`"),
                    })
                }
            }
        }
        Ok(cfg)
    }
}

/// Requires a key to hold exactly one string value.
fn single(key: &str, items: Vec<String>) -> Result<String, ConfigError> {
    match <[String; 1]>::try_from(items) {
        Ok([item]) => Ok(item),
        Err(_) => Err(ConfigError {
            line: 0,
            message: format!("`{key}` takes a single string, not an array"),
        }),
    }
}

/// Parses a string or an array of strings.
fn parse_value(value: &str, line: u32) -> Result<Vec<String>, ConfigError> {
    if let Some(inner) = value.strip_prefix('[') {
        // Arrays may span a single line only; that is all the config
        // needs, and it keeps the parser honest about what it accepts.
        let inner = inner
            .trim_end()
            .strip_suffix(']')
            .ok_or_else(|| ConfigError {
                line,
                message: "arrays must open and close on one line".into(),
            })?;
        return inner
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| parse_string(s, line))
            .collect();
    }
    Ok(vec![parse_string(value, line)?])
}

fn parse_string(s: &str, line: u32) -> Result<String, ConfigError> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('"') {
        if let Some(body) = rest.strip_suffix('"') {
            return Ok(body.to_owned());
        }
    }
    Err(ConfigError {
        line,
        message: format!("expected a double-quoted string, got {s:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_used_when_missing() {
        let cfg = Config::load(Path::new("/nonexistent/detlint.toml")).unwrap();
        assert_eq!(cfg, Config::default());
    }

    #[test]
    fn parses_sections_and_arrays() {
        let cfg = Config::parse(
            r#"
# comment
[workspace]
scan = ["crates"]
skip = ["target", "vendor"]

[rules.D3]
crates = ["sim-core"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.scan, vec!["crates"]);
        assert_eq!(cfg.skip, vec!["target", "vendor"]);
        assert_eq!(cfg.d3_crates, vec!["sim-core"]);
        // Untouched keys keep their defaults.
        assert_eq!(cfg.d1_exempt, Config::default().d1_exempt);
    }

    #[test]
    fn parses_s3_and_w1_keys() {
        let cfg = Config::parse(
            r#"
[rules.S3]
entries = ["demo::handle"]

[rules.W1]
wire = "crates/demo/src/wire.rs"
schema = "demo.schema"
"#,
        )
        .unwrap();
        assert_eq!(cfg.s3_entries, vec!["demo::handle"]);
        assert_eq!(cfg.w1_wire, "crates/demo/src/wire.rs");
        assert_eq!(cfg.w1_schema, "demo.schema");
    }

    #[test]
    fn w1_rejects_array_values() {
        let err = Config::parse("[rules.W1]\nwire = [\"a\", \"b\"]\n").unwrap_err();
        assert!(err.message.contains("single string"));
    }

    #[test]
    fn unknown_key_is_rejected() {
        let err = Config::parse("[rules.D9]\nfoo = [\"x\"]\n").unwrap_err();
        assert!(err.message.contains("unknown config key"));
    }

    #[test]
    fn unquoted_string_is_rejected() {
        assert!(Config::parse("[workspace]\nscan = [crates]\n").is_err());
    }

    #[test]
    fn missing_equals_is_rejected() {
        assert!(Config::parse("[workspace]\nscan\n").is_err());
    }
}
