//! detlint CLI.
//!
//! ```text
//! cargo run -p detlint [-- --root <dir>] [--config <file>] [--quiet]
//! ```
//!
//! Scans the workspace and exits nonzero if any determinism or safety
//! invariant is violated. See the crate docs of [`detlint`] for the
//! rule catalogue.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--config" => config = args.next().map(PathBuf::from),
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "detlint — determinism & safety lint for the testbed workspace\n\n\
                     USAGE: detlint [--root <dir>] [--config <file>] [--quiet]\n\n\
                     Exits 0 when the tree is clean, 1 when invariants are violated,\n\
                     2 on configuration errors."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("detlint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    // CARGO_MANIFEST_DIR points at crates/detlint under `cargo run`;
    // the workspace root is two levels up. Fall back to the cwd when
    // invoked as a bare binary.
    let root = root.unwrap_or_else(|| {
        std::env::var_os("CARGO_MANIFEST_DIR")
            .map(|d| PathBuf::from(d).join("../.."))
            .unwrap_or_else(|| PathBuf::from("."))
    });
    let config_path = config.unwrap_or_else(|| root.join("detlint.toml"));

    let cfg = match detlint::Config::load(&config_path) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    };

    // detlint:allow(D1) the linter itself reports real wall-clock scan time
    let started = std::time::Instant::now();
    let report = match detlint::run(&root, &cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("detlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = started.elapsed();

    for finding in &report.findings {
        println!("{finding}\n");
    }
    if !quiet {
        eprintln!(
            "detlint: {} file(s), {} line(s) in {:.0?} — {}",
            report.files_scanned,
            report.lines_scanned,
            elapsed,
            if report.is_clean() {
                "clean".to_owned()
            } else {
                format!("{} finding(s)", report.findings.len())
            }
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
