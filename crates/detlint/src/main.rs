//! detlint CLI.
//!
//! ```text
//! cargo run -p detlint [-- --root <dir>] [--config <file>] [--quiet]
//!                      [--format text|json] [--explain RULE]
//!                      [--update-schema]
//! ```
//!
//! Scans the workspace and exits nonzero if any determinism or safety
//! invariant is violated: 0 clean, 1 findings, 2 usage/configuration
//! errors. `--format json` writes one machine-readable report object to
//! stdout (`scripts/check.sh` tees it into `target/detlint.json`);
//! `--explain RULE` prints the rule catalogue entry for one rule ID;
//! `--update-schema` regenerates the committed `wire.schema` snapshot
//! from the live encoder. See the crate docs of [`detlint`] for the
//! rule catalogue.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut quiet = false;
    let mut json = false;
    let mut explain: Option<String> = None;
    let mut update_schema = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--config" => config = args.next().map(PathBuf::from),
            "--quiet" | "-q" => quiet = true,
            "--update-schema" => update_schema = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!(
                        "detlint: --format takes `text` or `json`, got {:?}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--explain" => match args.next() {
                Some(rule) => explain = Some(rule),
                None => {
                    eprintln!("detlint: --explain needs a rule ID (e.g. --explain R2)");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "detlint — determinism & safety lint for the testbed workspace\n\n\
                     USAGE: detlint [--root <dir>] [--config <file>] [--quiet]\n\
                     \x20               [--format text|json] [--explain RULE] [--update-schema]\n\n\
                     --format json    machine-readable report on stdout\n\
                     --explain RULE   print the catalogue entry for one rule ID and exit\n\
                     --update-schema  regenerate the wire.schema snapshot from the encoder\n\n\
                     Exits 0 when the tree is clean, 1 when invariants are violated,\n\
                     2 on usage or configuration errors."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("detlint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(rule) = explain {
        return match detlint::rules::explain(&rule) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("detlint: unknown rule ID `{rule}` (rules: D1-D4, S1-S3, R1-R3, W1, A1)");
                ExitCode::from(2)
            }
        };
    }

    // CARGO_MANIFEST_DIR points at crates/detlint under `cargo run`;
    // the workspace root is two levels up. Fall back to the cwd when
    // invoked as a bare binary.
    let root = root.unwrap_or_else(|| {
        std::env::var_os("CARGO_MANIFEST_DIR")
            .map(|d| PathBuf::from(d).join("../.."))
            .unwrap_or_else(|| PathBuf::from("."))
    });
    let config_path = config.unwrap_or_else(|| root.join("detlint.toml"));

    let cfg = match detlint::Config::load(&config_path) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    };

    if update_schema {
        return match detlint::update_schema(&root, &cfg) {
            Ok(path) => {
                eprintln!("detlint: wrote {}", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("detlint: {e}");
                ExitCode::from(2)
            }
        };
    }

    // detlint:allow(D1) the linter itself reports real wall-clock scan time
    let started = std::time::Instant::now();
    let report = match detlint::run(&root, &cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("detlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = started.elapsed();

    if json {
        println!("{}", render_json(&report));
    } else {
        for finding in &report.findings {
            println!("{finding}\n");
        }
    }
    if !quiet {
        eprintln!(
            "detlint: {} file(s), {} line(s) in {:.0?} — {}",
            report.files_scanned,
            report.lines_scanned,
            elapsed,
            if report.is_clean() {
                "clean".to_owned()
            } else {
                format!("{} finding(s)", report.findings.len())
            }
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The report as one JSON object. Hand-rolled (the workspace is
/// dependency-free); strings are escaped per RFC 8259.
fn render_json(report: &detlint::Report) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"clean\": {},\n", report.is_clean()));
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"lines_scanned\": {},\n", report.lines_scanned));
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \
             \"message\": {}, \"snippet\": {}, \"hint\": {}}}",
            json_str(&f.file),
            f.line,
            f.col,
            json_str(f.rule),
            json_str(&f.message),
            json_str(&f.snippet),
            json_str(f.hint),
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

/// A JSON string literal, with control characters and `"`/`\` escaped.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_strings_escape_quotes_and_control_chars() {
        assert_eq!(json_str(r#"a"b\c"#), r#""a\"b\\c""#);
        assert_eq!(json_str("x\ny\t"), r#""x\ny\t""#);
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_report_renders_as_clean_json() {
        let s = render_json(&detlint::Report::default());
        assert!(s.contains("\"clean\": true"));
        assert!(s.contains("\"findings\": []"));
    }

    #[test]
    fn findings_render_as_json_objects() {
        let mut report = detlint::Report::default();
        report.findings.push(detlint::Finding {
            file: "crates/x/src/a.rs".into(),
            line: 3,
            col: 7,
            rule: "D1",
            message: "wall-clock \"type\"".into(),
            snippet: "let t = Instant::now();".into(),
            hint: "use SimTime",
        });
        let s = render_json(&report);
        assert!(s.contains("\"clean\": false"));
        assert!(s.contains(r#""rule": "D1""#));
        assert!(s.contains(r#""message": "wall-clock \"type\"""#));
    }
}
