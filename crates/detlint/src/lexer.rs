//! A small hand-rolled Rust lexer.
//!
//! `detlint` must run in offline environments, so it cannot use `syn`
//! or `proc-macro2`; instead this module tokenizes Rust source just
//! accurately enough for lexical rule checking. It understands the
//! constructs that trip naive text search:
//!
//! * string literals (with escapes), byte strings, raw strings with any
//!   number of `#`s — their *content* produces no tokens, so a string
//!   containing `"HashMap"` never triggers a rule,
//! * line comments and arbitrarily nested block comments (comment text
//!   is scanned only for `detlint:allow(...)` annotations),
//! * char literals vs. lifetimes (`'a'` vs `'a`),
//! * numeric literals, classified as integer or float (so `1.0 == x`
//!   is distinguishable from `1 == x`),
//! * multi-char operators detlint rules care about (`==`, `!=`, `::`).
//!
//! Everything else becomes single-character punctuation tokens.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Lifetime such as `'a` (not a char literal).
    Lifetime,
    /// Integer literal.
    Int,
    /// Float literal (has a fractional dot, exponent, or f32/f64 suffix).
    Float,
    /// String, byte-string, raw-string, or char literal.
    Literal,
    /// Operator or punctuation; multi-char for `==`, `!=`, `::`.
    Punct,
}

/// One token with its source location (1-based line and column).
///
/// For string literals (plain, byte, raw), `text` holds the literal's
/// *content* — without quotes, hashes or prefix, escapes unprocessed —
/// so flow rules can inspect short payloads such as `fork("label")`
/// stream names. Char and byte-char literals keep `text` empty; their
/// content never participates in rule matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text of the token (string content for string literals,
    /// empty for char literals).
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in chars).
    pub col: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// A `// detlint:allow(RULE, ...) justification` annotation found in a
/// comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowAnnotation {
    /// Rule IDs being allowed.
    pub rules: Vec<String>,
    /// Free-text justification after the closing parenthesis.
    pub justification: String,
    /// 1-based line the annotation appears on.
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// All allow annotations found in comments.
    pub allows: Vec<AllowAnnotation>,
}

/// Tokenizes `source`, collecting allow annotations from comments.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(line, col),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string_literal(line, col);
                }
                // Byte-char literal `b'x'`: without this arm the `b`
                // would lex as an identifier and the char literal
                // separately, confusing ident-adjacency rules.
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_or_lifetime(line, col);
                }
                'r' | 'b' if self.raw_string_hashes().is_some() => {
                    let hashes = self.raw_string_hashes().unwrap_or(0);
                    self.raw_string_literal(hashes, line, col);
                }
                // Raw identifier `r#ident`: one Ident token carrying the
                // bare name, so `r#fn` cannot masquerade as punctuation
                // and `r#HashMap` still trips D3.
                'r' if self.peek(1) == Some('#')
                    && self
                        .peek(2)
                        .is_some_and(|c| c == '_' || c.is_alphanumeric()) =>
                {
                    self.bump();
                    self.bump();
                    self.ident(line, col);
                }
                '\'' => self.char_or_lifetime(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                c if c == '_' || c.is_alphanumeric() => self.ident(line, col),
                _ => self.punct(line, col),
            }
        }
        self.out
    }

    /// If the cursor sits on `r"`, `r#"`, `br"`, `br#"`, … returns the
    /// number of `#`s; otherwise `None`.
    fn raw_string_hashes(&self) -> Option<usize> {
        let mut i = 0;
        if self.peek(i) == Some('b') {
            i += 1;
        }
        if self.peek(i) != Some('r') {
            return None;
        }
        i += 1;
        let mut hashes = 0;
        while self.peek(i) == Some('#') {
            hashes += 1;
            i += 1;
        }
        (self.peek(i) == Some('"')).then_some(hashes)
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.scan_comment_for_allow(&text, line);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut depth = 0usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.scan_comment_for_allow(&text, line);
    }

    fn scan_comment_for_allow(&mut self, text: &str, line: u32) {
        let Some(start) = text.find("detlint:allow(") else {
            return;
        };
        let after = &text[start + "detlint:allow(".len()..];
        let Some(close) = after.find(')') else {
            // Malformed annotation: record it with no rules so the
            // checker can flag it.
            self.out.allows.push(AllowAnnotation {
                rules: Vec::new(),
                justification: String::new(),
                line,
            });
            return;
        };
        let rules = after[..close]
            .split(',')
            .map(|r| r.trim().to_owned())
            .filter(|r| !r.is_empty())
            .collect();
        let justification = after[close + 1..].trim().to_owned();
        self.out.allows.push(AllowAnnotation {
            rules,
            justification,
            line,
        });
    }

    fn string_literal(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        let mut content = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    content.push(c);
                    if let Some(e) = self.bump() {
                        content.push(e);
                    }
                }
                '"' => break,
                _ => content.push(c),
            }
        }
        self.push(TokenKind::Literal, content, line, col);
    }

    fn raw_string_literal(&mut self, hashes: usize, line: u32, col: u32) {
        // Consume the `b`/`r`/`#`* prefix and opening quote.
        while self.peek(0) != Some('"') {
            self.bump();
        }
        self.bump();
        let mut content = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                let mut terminated = true;
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        terminated = false;
                        break;
                    }
                }
                if terminated {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
                content.push(c);
                continue 'outer;
            }
            content.push(c);
        }
        self.push(TokenKind::Literal, content, line, col);
    }

    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        self.bump(); // the opening '
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume until closing quote.
                self.bump();
                self.bump(); // the escape head (n, u, ', …)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Literal, String::new(), line, col);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                // Could be 'a' (char) or 'a / 'static (lifetime).
                let mut name = String::new();
                let mut i = 0;
                while let Some(c) = self.peek(i) {
                    if c == '_' || c.is_alphanumeric() {
                        name.push(c);
                        i += 1;
                    } else {
                        break;
                    }
                }
                if self.peek(i) == Some('\'') {
                    // Char literal like 'a' or '字'.
                    for _ in 0..=i {
                        self.bump();
                    }
                    self.push(TokenKind::Literal, String::new(), line, col);
                } else {
                    for _ in 0..i {
                        self.bump();
                    }
                    self.push(TokenKind::Lifetime, name, line, col);
                }
            }
            _ => {
                // Punctuation char literal like '(' or ' '.
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Literal, String::new(), line, col);
            }
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut is_float = false;
        let radix_prefix = matches!(
            (self.peek(0), self.peek(1)),
            (Some('0'), Some('x' | 'o' | 'b' | 'X' | 'O' | 'B'))
        );
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                // Decimal exponent (not a hex digit run).
                if !radix_prefix
                    && (c == 'e' || c == 'E')
                    && matches!(self.peek(1), Some(d) if d.is_ascii_digit() || d == '+' || d == '-')
                {
                    is_float = true;
                    text.push(c);
                    self.bump();
                    text.push(self.peek(0).unwrap_or('0'));
                    self.bump();
                    continue;
                }
                text.push(c);
                self.bump();
            } else if c == '.' {
                // A dot continues the number only for `1.5` or trailing
                // `1.` — not for ranges (`1..2`) or methods (`1.max(2)`).
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => {
                        is_float = true;
                        text.push(c);
                        self.bump();
                    }
                    Some(d) if d == '.' || d == '_' || d.is_alphabetic() => break,
                    _ => {
                        is_float = true;
                        text.push(c);
                        self.bump();
                        break;
                    }
                }
            } else {
                break;
            }
        }
        if !radix_prefix && (text.ends_with("f32") || text.ends_with("f64")) {
            is_float = true;
        }
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line, col);
    }

    fn punct(&mut self, line: u32, col: u32) {
        let c = self.bump().unwrap_or(' ');
        let text = match (c, self.peek(0)) {
            ('=', Some('=')) | ('!', Some('=')) | (':', Some(':')) => {
                let n = self.bump().unwrap_or(' ');
                let mut s = String::with_capacity(2);
                s.push(c);
                s.push(n);
                s
            }
            _ => c.to_string(),
        };
        self.push(TokenKind::Punct, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_produce_no_ident_tokens() {
        let src = r#"let x = "HashMap::new() Instant thread_rng";"#;
        assert_eq!(idents(src), vec!["let", "x"]);
    }

    #[test]
    fn raw_strings_with_hashes_are_opaque() {
        let src = "let s = r#\"contains \"quotes\" and HashMap\"#; let y = HashMap;";
        assert_eq!(idents(src), vec!["let", "s", "let", "y", "HashMap"]);
    }

    #[test]
    fn byte_and_raw_byte_strings_are_opaque() {
        let src = "let a = b\"Instant\"; let b2 = br##\"SystemTime \"# \"##; done();";
        assert_eq!(idents(src), vec!["let", "a", "let", "b2", "done"]);
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        let src = "/* outer /* inner HashMap */ still comment */ real_ident";
        assert_eq!(idents(src), vec!["real_ident"]);
    }

    #[test]
    fn line_comments_are_skipped() {
        let src = "// thread_rng() here\nactual";
        assert_eq!(idents(src), vec!["actual"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str, c: char) { let y = 'z'; }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        let chars = toks.iter().filter(|t| t.kind == TokenKind::Literal).count();
        assert_eq!(chars, 1, "the 'z' literal");
    }

    #[test]
    fn escaped_char_literals() {
        let toks = lex(r"let nl = '\n'; let q = '\''; let u = '\u{41}'; next").tokens;
        assert!(toks.iter().any(|t| t.is_ident("next")));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            3
        );
    }

    #[test]
    fn floats_vs_ints_vs_ranges() {
        let toks =
            lex("let a = 1.5; let b = 2; let r = 0..10; let m = 3.max(4); let t = 1.;").tokens;
        let floats: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Float)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(floats, vec!["1.5", "1."]);
        let ints: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Int)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(ints, vec!["2", "0", "10", "3", "4"]);
    }

    #[test]
    fn float_suffix_and_exponent() {
        let toks = lex("let a = 1f64; let b = 2e10; let c = 0x1E; let d = 3.0e-2;").tokens;
        let floats: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Float)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(floats, vec!["1f64", "2e10", "3.0e-2"]);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Int && t.text == "0x1E"));
    }

    #[test]
    fn multi_char_operators() {
        let toks = lex("a == b != c :: d <= e").tokens;
        let puncts: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "<", "="]);
    }

    #[test]
    fn allow_annotations_are_collected_with_justification() {
        let src = "// detlint:allow(D3) this map is never iterated\nlet x = 1;";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].rules, vec!["D3"]);
        assert_eq!(lexed.allows[0].justification, "this map is never iterated");
        assert_eq!(lexed.allows[0].line, 1);
    }

    #[test]
    fn allow_annotation_multiple_rules() {
        let lexed = lex("// detlint:allow(D1, D4) bench timing\n");
        assert_eq!(lexed.allows[0].rules, vec!["D1", "D4"]);
    }

    #[test]
    fn allow_inside_string_is_not_an_annotation() {
        let lexed = lex(r#"let s = "detlint:allow(D3) nope";"#);
        assert!(lexed.allows.is_empty());
    }

    #[test]
    fn token_positions_are_one_based() {
        let toks = lex("a\n  bb").tokens;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    // — edge-case regressions: these constructs must not confuse rule
    //   matching (raw strings, nested comments, lifetimes vs chars,
    //   byte-char literals, raw identifiers) —

    #[test]
    fn string_literals_retain_content() {
        let toks = lex(r#"rng.fork("faults");"#).tokens;
        let lit: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(lit.len(), 1);
        assert_eq!(lit[0].text, "faults");
    }

    #[test]
    fn raw_string_literals_retain_content() {
        let toks = lex("let s = r#\"a\"b\"#;").tokens;
        let lit: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(lit[0].text, "a\"b");
    }

    #[test]
    fn raw_string_with_more_hashes_than_needed_terminates_correctly() {
        // `r##"x "# y"##` — the inner `"#` must not terminate the string.
        let toks = lex("let s = r##\"x \"# y\"##; after").tokens;
        assert!(toks.iter().any(|t| t.is_ident("after")));
        let lit: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(lit[0].text, "x \"# y");
    }

    #[test]
    fn raw_string_content_never_matches_fork_rules() {
        // A raw string *containing* `fork("x")` is opaque to ident rules.
        let src = "let doc = r#\"call fork(\"dup\") then fork(\"dup\")\"#;";
        let idents: Vec<_> = lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(idents, vec!["let", "doc"]);
    }

    #[test]
    fn deeply_nested_block_comments_resolve() {
        let src = "/* 1 /* 2 /* 3 */ 2 */ 1 */ code /* trailing */ more";
        assert_eq!(idents(src), vec!["code", "more"]);
    }

    #[test]
    fn nested_block_comment_with_allow_annotation_still_collected() {
        let src = "/* outer /* detlint:allow(D3) nested justification */ */\nlet x = 1;";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].rules, vec!["D3"]);
    }

    #[test]
    fn unterminated_block_comment_does_not_loop_or_panic() {
        let lexed = lex("before /* never closed");
        assert_eq!(lexed.tokens.len(), 1);
        assert!(lexed.tokens[0].is_ident("before"));
    }

    #[test]
    fn byte_char_literal_is_one_token_not_ident_b() {
        let toks = lex("let x = b'a'; let y = b'\\n'; done").tokens;
        assert!(toks.iter().any(|t| t.is_ident("done")));
        // No stray `b` identifier from the prefix.
        assert!(!toks.iter().any(|t| t.is_ident("b")));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            2
        );
    }

    #[test]
    fn lifetime_char_ambiguity_in_generics_and_matches() {
        // `<'a>` then `'a'` then `&'static str` on one line.
        let toks = lex("fn f<'a>(x: &'a u8) { m('a', &'static str_val); }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "static"]);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            1,
            "exactly the 'a' char literal"
        );
    }

    #[test]
    fn raw_identifiers_lex_as_their_bare_name() {
        let toks = lex("let r#type = r#fn_like; use r#HashMap;").tokens;
        assert!(toks.iter().any(|t| t.is_ident("type")));
        assert!(toks.iter().any(|t| t.is_ident("fn_like")));
        // `r#HashMap` must still trip ident-based rules like D3.
        assert!(toks.iter().any(|t| t.is_ident("HashMap")));
        assert!(!toks.iter().any(|t| t.is_ident("r")));
    }

    #[test]
    fn char_literal_containing_quote_does_not_open_string() {
        let toks = lex("let q = '\"'; let s = \"text\"; end").tokens;
        assert!(toks.iter().any(|t| t.is_ident("end")));
        let lits: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(lits.len(), 2);
        assert_eq!(lits[1].text, "text");
    }
}
