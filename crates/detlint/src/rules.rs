//! The determinism & safety rules.
//!
//! Every rule works on the token stream produced by [`crate::lexer`],
//! so occurrences inside strings, comments and doc examples never
//! count. Rules are lexical by design — no type inference — which keeps
//! the pass dependency-free and fast; where lexical analysis cannot
//! prove a use is safe (say, a `HashMap` that is genuinely never
//! iterated), the escape hatch is an explicit, justified
//! `// detlint:allow(<rule>) <why>` annotation on the same or the
//! preceding line.
//!
//! | ID | Invariant |
//! |----|-----------|
//! | D1 | no `Instant`/`SystemTime` outside `sim-core/src/clock.rs` |
//! | D2 | no `thread_rng`/`rand::random`/`from_entropy` outside `sim-core/src/rng.rs` |
//! | D3 | no hash-ordered collections (`HashMap`/`HashSet`) in simulation crates |
//! | D4 | no `==`/`!=` against float literals |
//! | S1 | crate roots carry the workspace lint header block |
//! | S2 | no `unwrap`/`expect`/`panic!` family in per-event hot paths |
//! | A1 | `detlint:allow` annotations must name rules and a justification |

use crate::config::Config;
use crate::lexer::{lex, Lexed, Token, TokenKind};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File, relative to the scan root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule ID (`D1` … `S2`, `A1`).
    pub rule: &'static str,
    /// What was found.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// How to fix it.
    pub hint: &'static str,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}\n    | {}\n    = hint: {}",
            self.file, self.line, self.col, self.rule, self.message, self.snippet, self.hint
        )
    }
}

/// Checks one file's source text against every enabled rule.
pub fn check_file(cfg: &Config, rel_path: &str, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    let test_regions = test_regions(&lexed.tokens);
    let lines: Vec<&str> = source.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    };
    let enabled = |rule: &str| !cfg.disabled.iter().any(|d| d == rule);
    let in_test = |idx: usize| test_regions.iter().any(|&(lo, hi)| idx >= lo && idx <= hi);

    let mut raw: Vec<Finding> = Vec::new();
    let toks = &lexed.tokens;

    let exempt = |list: &[String]| list.iter().any(|p| p == rel_path);

    for (i, t) in toks.iter().enumerate() {
        // D1 — wall-clock types anywhere outside the simulated clock.
        if enabled("D1")
            && t.kind == TokenKind::Ident
            && (t.text == "Instant" || t.text == "SystemTime")
            && !exempt(&cfg.d1_exempt)
        {
            raw.push(Finding {
                file: rel_path.to_owned(),
                line: t.line,
                col: t.col,
                rule: "D1",
                message: format!("wall-clock type `{}` outside sim-core's clock", t.text),
                snippet: snippet(t.line),
                hint: "route time through sim_core::SimTime / NodeClock so runs replay identically",
            });
        }

        // D2 — ambient randomness outside the seeded SimRng.
        if enabled("D2") && t.kind == TokenKind::Ident && !exempt(&cfg.d2_exempt) {
            let ambient = t.text == "thread_rng"
                || t.text == "from_entropy"
                || (t.text == "rand"
                    && matches!(toks.get(i + 1), Some(p) if p.is_punct("::"))
                    && matches!(toks.get(i + 2), Some(n) if n.is_ident("random")));
            if ambient {
                raw.push(Finding {
                    file: rel_path.to_owned(),
                    line: t.line,
                    col: t.col,
                    rule: "D2",
                    message: format!(
                        "ambient RNG `{}`: randomness must flow from the run seed",
                        t.text
                    ),
                    snippet: snippet(t.line),
                    hint: "draw from a sim_core::SimRng forked from the scenario seed",
                });
            }
        }

        // D3 — hash-ordered collections in simulation crates. Lexical
        // analysis cannot prove a given map is never iterated, so the
        // rule bans the types outright in simulation state; a justified
        // detlint:allow(D3) marks the (rare) legitimate uses.
        if enabled("D3")
            && t.kind == TokenKind::Ident
            && matches!(
                t.text.as_str(),
                "HashMap" | "HashSet" | "RandomState" | "DefaultHasher"
            )
            && in_d3_scope(cfg, rel_path)
            && !in_test(i)
        {
            raw.push(Finding {
                file: rel_path.to_owned(),
                line: t.line,
                col: t.col,
                rule: "D3",
                message: format!(
                    "`{}` in a simulation crate: iteration order depends on the process-random hasher",
                    t.text
                ),
                snippet: snippet(t.line),
                hint: "use BTreeMap/BTreeSet (key-ordered) or sort before iterating",
            });
        }

        // D4 — float equality. Heuristic: an `==`/`!=` whose immediate
        // neighbour token is a float literal.
        if enabled("D4") && t.kind == TokenKind::Punct && (t.text == "==" || t.text == "!=") {
            let prev_float = i > 0 && toks[i - 1].kind == TokenKind::Float;
            let next_float = matches!(toks.get(i + 1), Some(n) if n.kind == TokenKind::Float);
            if prev_float || next_float {
                raw.push(Finding {
                    file: rel_path.to_owned(),
                    line: t.line,
                    col: t.col,
                    rule: "D4",
                    message: format!("float `{}` comparison against a literal", t.text),
                    snippet: snippet(t.line),
                    hint: "compare with an epsilon (`(a - b).abs() < EPS`) or restructure to `<=`/`>=`",
                });
            }
        }

        // S2 — panicking constructs in per-event hot paths.
        if enabled("S2")
            && t.kind == TokenKind::Ident
            && cfg.s2_paths.iter().any(|p| p == rel_path)
            && !in_test(i)
        {
            let method_panic =
                (t.text == "unwrap" || t.text == "expect") && i > 0 && toks[i - 1].is_punct(".");
            let macro_panic = matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) && matches!(toks.get(i + 1), Some(n) if n.is_punct("!"));
            if method_panic || macro_panic {
                raw.push(Finding {
                    file: rel_path.to_owned(),
                    line: t.line,
                    col: t.col,
                    rule: "S2",
                    message: format!("`{}` in a per-event hot path", t.text),
                    snippet: snippet(t.line),
                    hint: "return a typed error; one malformed frame must not abort the simulation",
                });
            }
        }
    }

    // S1 — crate-root lint headers.
    if enabled("S1") {
        if let Some(missing) = missing_crate_header(rel_path, toks) {
            raw.push(Finding {
                file: rel_path.to_owned(),
                line: 1,
                col: 1,
                rule: "S1",
                message: format!("crate root is missing lint header(s): {missing}"),
                snippet: snippet(1),
                hint: "add #![forbid(unsafe_code)], #![deny(rust_2018_idioms)] and #![warn(missing_docs)]",
            });
        }
    }

    apply_allows(cfg, rel_path, &lexed, raw, &snippet)
}

/// Whether `rel_path` is source of one of the configured simulation
/// crates (`crates/<name>/src/...`).
fn in_d3_scope(cfg: &Config, rel_path: &str) -> bool {
    let mut parts = rel_path.split('/');
    if parts.next() != Some("crates") {
        return false;
    }
    match parts.next() {
        Some(krate) => cfg.d3_crates.iter().any(|c| c == krate),
        None => false,
    }
}

/// For crate roots, returns a description of required-but-absent lint
/// headers; `None` when the file is not a crate root or is compliant.
fn missing_crate_header(rel_path: &str, toks: &[Token]) -> Option<String> {
    let mut parts = rel_path.split('/');
    let is_root = parts.next() == Some("crates")
        && parts.next().is_some()
        && parts.next() == Some("src")
        && matches!(parts.next(), Some("lib.rs" | "main.rs"))
        && parts.next().is_none();
    if !is_root {
        return None;
    }
    // Collect inner `#![level(lint, ...)]` attributes.
    let mut have: Vec<(String, String)> = Vec::new(); // (level, lint)
    let mut i = 0;
    while i + 4 < toks.len() {
        if toks[i].is_punct("#")
            && toks[i + 1].is_punct("!")
            && toks[i + 2].is_punct("[")
            && toks[i + 3].kind == TokenKind::Ident
            && matches!(toks[i + 3].text.as_str(), "forbid" | "deny" | "warn")
            && toks[i + 4].is_punct("(")
        {
            let level = toks[i + 3].text.clone();
            let mut j = i + 5;
            while j < toks.len() && !toks[j].is_punct(")") {
                if toks[j].kind == TokenKind::Ident {
                    have.push((level.clone(), toks[j].text.clone()));
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    let level_of = |lint: &str| -> Option<&str> {
        have.iter()
            .find(|(_, l)| l == lint)
            .map(|(level, _)| level.as_str())
    };
    let mut missing = Vec::new();
    if level_of("unsafe_code") != Some("forbid") {
        missing.push("#![forbid(unsafe_code)]");
    }
    if !matches!(level_of("rust_2018_idioms"), Some("deny" | "forbid")) {
        missing.push("#![deny(rust_2018_idioms)]");
    }
    if level_of("missing_docs").is_none() {
        missing.push("#![warn(missing_docs)]");
    }
    if missing.is_empty() {
        None
    } else {
        Some(missing.join(", "))
    }
}

/// Suppresses findings covered by a `detlint:allow` annotation on the
/// same or preceding line, and reports malformed annotations (A1).
fn apply_allows(
    cfg: &Config,
    rel_path: &str,
    lexed: &Lexed,
    raw: Vec<Finding>,
    snippet: &dyn Fn(u32) -> String,
) -> Vec<Finding> {
    let mut out: Vec<Finding> = Vec::new();
    for f in raw {
        let allowed = lexed.allows.iter().any(|a| {
            (a.line == f.line || a.line + 1 == f.line)
                && a.rules.iter().any(|r| r == f.rule)
                && !a.justification.is_empty()
        });
        if !allowed {
            out.push(f);
        }
    }
    if !cfg.disabled.iter().any(|d| d == "A1") {
        for a in &lexed.allows {
            if a.rules.is_empty() || a.justification.is_empty() {
                out.push(Finding {
                    file: rel_path.to_owned(),
                    line: a.line,
                    col: 1,
                    rule: "A1",
                    message: "malformed detlint:allow — needs rule ID(s) and a justification"
                        .to_owned(),
                    snippet: snippet(a.line),
                    hint: "write `// detlint:allow(D3) <why this use is sound>`",
                });
            }
        }
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Token index ranges (inclusive) covered by `#[cfg(test)]` items.
fn test_regions(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            // Find the closing `]` of this attribute.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut saw_cfg_test = false;
            let mut saw_cfg = false;
            while j < toks.len() {
                if toks[j].is_punct("[") {
                    depth += 1;
                } else if toks[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if toks[j].is_ident("cfg") {
                    saw_cfg = true;
                } else if saw_cfg && toks[j].is_ident("test") {
                    saw_cfg_test = true;
                }
                j += 1;
            }
            if saw_cfg_test && j < toks.len() {
                if let Some((lo, hi)) = item_after_attributes(toks, j + 1) {
                    regions.push((lo, hi));
                    i = hi + 1;
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// The token range of the item starting at `start`, skipping further
/// attributes: to the matching `}` if a brace opens first, else to `;`.
fn item_after_attributes(toks: &[Token], mut start: usize) -> Option<(usize, usize)> {
    // Skip subsequent attributes (`#[...]`).
    while toks.get(start)?.is_punct("#") && toks.get(start + 1)?.is_punct("[") {
        let mut depth = 0usize;
        let mut j = start + 1;
        while j < toks.len() {
            if toks[j].is_punct("[") {
                depth += 1;
            } else if toks[j].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        start = j + 1;
    }
    let lo = start;
    let mut k = start;
    while k < toks.len() {
        if toks[k].is_punct(";") {
            return Some((lo, k));
        }
        if toks[k].is_punct("{") {
            let mut depth = 0usize;
            while k < toks.len() {
                if toks[k].is_punct("{") {
                    depth += 1;
                } else if toks[k].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        return Some((lo, k));
                    }
                }
                k += 1;
            }
            return Some((lo, toks.len() - 1));
        }
        k += 1;
    }
    Some((lo, toks.len().saturating_sub(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        check_file(&Config::default(), path, src)
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    // — D1 —

    #[test]
    fn d1_flags_instant_outside_clock() {
        let f = check(
            "crates/facilities/src/ca.rs",
            "use std::time::Instant;\nfn t() { let s = Instant::now(); }",
        );
        assert!(rules_of(&f).contains(&"D1"));
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn d1_permits_clock_rs_and_strings() {
        assert!(check("crates/sim-core/src/clock.rs", "use std::time::Instant;").is_empty());
        assert!(check("crates/facilities/src/ca.rs", r#"let s = "Instant";"#).is_empty());
    }

    // — D2 —

    #[test]
    fn d2_flags_ambient_rng() {
        let f = check("crates/facilities/src/ca.rs", "let x = rand::thread_rng();");
        assert_eq!(rules_of(&f), vec!["D2"]);
        let f = check("crates/core/src/metrics.rs", "let v: f64 = rand::random();");
        assert_eq!(rules_of(&f), vec!["D2"]);
        let f = check(
            "crates/vehicle/src/pid.rs",
            "let r = SmallRng::from_entropy();",
        );
        assert_eq!(rules_of(&f), vec!["D2"]);
    }

    #[test]
    fn d2_permits_rng_rs_and_unrelated_random() {
        assert!(check("crates/sim-core/src/rng.rs", "fn thread_rng() {}").is_empty());
        // `random` not behind `rand::` is some other function.
        assert!(check("crates/vehicle/src/pid.rs", "let x = random();").is_empty());
    }

    // — D3 —

    #[test]
    fn d3_flags_hash_collections_in_sim_crates() {
        let f = check(
            "crates/geonet/src/loctable.rs",
            "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) { for k in m.keys() {} }",
        );
        assert_eq!(rules_of(&f), vec!["D3", "D3"]);
        assert!(f[0].message.contains("iteration order"));
    }

    #[test]
    fn d3_ignores_non_sim_crates_and_tests() {
        assert!(check(
            "crates/openc2x/src/http.rs",
            "use std::collections::HashMap;"
        )
        .is_empty());
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { let s = std::collections::HashSet::new(); }\n}\n";
        assert!(check("crates/perception/src/detector.rs", src).is_empty());
    }

    #[test]
    fn d3_allow_annotation_suppresses_with_justification() {
        let src = "// detlint:allow(D3) single lookup table, never iterated\nuse std::collections::HashMap;\n";
        assert!(check("crates/facilities/src/ldm.rs", src).is_empty());
        // Same line works too.
        let src = "use std::collections::HashMap; // detlint:allow(D3) never iterated\n";
        assert!(check("crates/facilities/src/ldm.rs", src).is_empty());
    }

    #[test]
    fn a1_flags_allow_without_justification() {
        let src = "// detlint:allow(D3)\nuse std::collections::HashMap;\n";
        let f = check("crates/facilities/src/ldm.rs", src);
        assert_eq!(rules_of(&f), vec!["A1", "D3"]);
    }

    // — D4 —

    #[test]
    fn d4_flags_float_literal_equality() {
        let f = check("crates/vehicle/src/pid.rs", "if speed == 0.0 { halt(); }");
        assert_eq!(rules_of(&f), vec!["D4"]);
        let f = check("crates/vehicle/src/pid.rs", "if 1.5 != x { nudge(); }");
        assert_eq!(rules_of(&f), vec!["D4"]);
    }

    #[test]
    fn d4_permits_integer_equality_and_ranges() {
        assert!(check("crates/vehicle/src/pid.rs", "if n == 0 { stop(); }").is_empty());
        assert!(check("crates/vehicle/src/pid.rs", "let r = 0.0..1.0;").is_empty());
    }

    // — S1 —

    #[test]
    fn s1_requires_header_block_on_crate_roots() {
        let f = check("crates/vehicle/src/lib.rs", "//! Docs.\npub mod pid;\n");
        assert_eq!(rules_of(&f), vec!["S1"]);
        assert!(
            f[0].message.contains("forbid(unsafe_code)") || f[0].message.contains("unsafe_code")
        );
    }

    #[test]
    fn s1_satisfied_by_full_header() {
        let src = "//! Docs.\n#![forbid(unsafe_code)]\n#![deny(rust_2018_idioms)]\n#![warn(missing_docs)]\npub mod pid;\n";
        assert!(check("crates/vehicle/src/lib.rs", src).is_empty());
    }

    #[test]
    fn s1_ignores_non_roots() {
        assert!(check("crates/vehicle/src/pid.rs", "pub fn f() {}").is_empty());
    }

    // — S2 —

    #[test]
    fn s2_flags_panics_in_hot_paths_only() {
        let src = "fn rx(b: &[u8]) { let h = parse(b).unwrap(); }";
        assert_eq!(
            rules_of(&check("crates/geonet/src/forwarding.rs", src)),
            vec!["S2"]
        );
        // Same code in a non-hot-path file passes.
        assert!(check("crates/geonet/src/area.rs", src).is_empty());
    }

    #[test]
    fn s2_flags_macro_panics_but_not_tests() {
        let src = "fn rx() { panic!(\"boom\"); }";
        assert_eq!(rules_of(&check("crates/uper/src/bits.rs", src)), vec!["S2"]);
        let src =
            "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { parse(b).unwrap(); panic!(); }\n}\n";
        assert!(check("crates/uper/src/bits.rs", src).is_empty());
    }

    #[test]
    fn s2_permits_unwrap_or_variants() {
        let src =
            "fn rx(x: Option<u8>) -> u8 { x.unwrap_or(0).saturating_add(x.unwrap_or_default()) }";
        assert!(check("crates/uper/src/fields.rs", src).is_empty());
    }

    // — engine behaviour —

    #[test]
    fn disabled_rules_do_not_fire() {
        let mut cfg = Config::default();
        cfg.disabled.push("D4".into());
        let f = check_file(&cfg, "crates/vehicle/src/pid.rs", "if speed == 0.0 {}");
        assert!(f.is_empty());
    }

    #[test]
    fn findings_are_sorted_by_position() {
        let src = "fn rx() { b.unwrap();\n let c = a.expect(\"x\"); }";
        let f = check("crates/uper/src/bits.rs", src);
        assert_eq!(f.len(), 2);
        assert!(f[0].line < f[1].line);
    }

    #[test]
    fn finding_display_has_file_line_col_rule_and_hint() {
        let f = &check("crates/vehicle/src/pid.rs", "if speed == 0.0 {}")[0];
        let s = f.to_string();
        assert!(s.contains("crates/vehicle/src/pid.rs:1:"));
        assert!(s.contains("[D4]"));
        assert!(s.contains("hint:"));
    }
}
