//! The determinism & safety rules.
//!
//! Every rule works on the token stream produced by [`crate::lexer`],
//! so occurrences inside strings, comments and doc examples never
//! count. Rules are lexical by design — no type inference — which keeps
//! the pass dependency-free and fast; where lexical analysis cannot
//! prove a use is safe (say, a `HashMap` that is genuinely never
//! iterated), the escape hatch is an explicit, justified
//! `// detlint:allow(<rule>) <why>` annotation on the same or the
//! preceding line.
//!
//! | ID | Invariant |
//! |----|-----------|
//! | D1 | no `Instant`/`SystemTime` outside `sim-core/src/clock.rs` |
//! | D2 | no `thread_rng`/`rand::random`/`from_entropy` outside `sim-core/src/rng.rs` |
//! | D3 | no hash-ordered collections (`HashMap`/`HashSet`) in simulation crates |
//! | D4 | no `==`/`!=` against float literals |
//! | S1 | crate roots carry the workspace lint header block |
//! | S2 | no `unwrap`/`expect`/`panic!` family in per-event hot paths |
//! | A1 | `detlint:allow` annotations must name rules and a justification |
//!
//! The flow-aware v2 families live in their own modules but share this
//! finding type and allow machinery: [`crate::flow`] (R1/R2/R3,
//! RNG-stream discipline), [`crate::callgraph`] (S3,
//! panic-reachability) and [`crate::schema`] (W1, wire-schema
//! snapshot).

use crate::config::Config;
use crate::flow;
use crate::lexer::{lex, Lexed, Token, TokenKind};
use crate::parse;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File, relative to the scan root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule ID (`D1` … `S2`, `A1`).
    pub rule: &'static str,
    /// What was found.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// How to fix it.
    pub hint: &'static str,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}\n    | {}\n    = hint: {}",
            self.file, self.line, self.col, self.rule, self.message, self.snippet, self.hint
        )
    }
}

/// Checks one file's source text against every enabled per-file rule.
/// The crate- and workspace-level passes (S3, W1) run in
/// [`crate::run`], which lexes each file once and shares the tokens.
pub fn check_file(cfg: &Config, rel_path: &str, source: &str) -> Vec<Finding> {
    check_file_lexed(cfg, rel_path, source, &lex(source))
}

/// [`check_file`] against an already-lexed token stream.
pub fn check_file_lexed(cfg: &Config, rel_path: &str, source: &str, lexed: &Lexed) -> Vec<Finding> {
    let test_regions = parse::test_regions(&lexed.tokens);
    let lines: Vec<&str> = source.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    };
    let enabled = |rule: &str| !cfg.disabled.iter().any(|d| d == rule);
    let in_test = |idx: usize| test_regions.iter().any(|&(lo, hi)| idx >= lo && idx <= hi);

    let mut raw: Vec<Finding> = Vec::new();
    let toks = &lexed.tokens;

    let exempt = |list: &[String]| list.iter().any(|p| p == rel_path);

    for (i, t) in toks.iter().enumerate() {
        // D1 — wall-clock types anywhere outside the simulated clock.
        if enabled("D1")
            && t.kind == TokenKind::Ident
            && (t.text == "Instant" || t.text == "SystemTime")
            && !exempt(&cfg.d1_exempt)
        {
            raw.push(Finding {
                file: rel_path.to_owned(),
                line: t.line,
                col: t.col,
                rule: "D1",
                message: format!("wall-clock type `{}` outside sim-core's clock", t.text),
                snippet: snippet(t.line),
                hint: "route time through sim_core::SimTime / NodeClock so runs replay identically",
            });
        }

        // D2 — ambient randomness outside the seeded SimRng.
        if enabled("D2") && t.kind == TokenKind::Ident && !exempt(&cfg.d2_exempt) {
            let ambient = t.text == "thread_rng"
                || t.text == "from_entropy"
                || (t.text == "rand"
                    && matches!(toks.get(i + 1), Some(p) if p.is_punct("::"))
                    && matches!(toks.get(i + 2), Some(n) if n.is_ident("random")));
            if ambient {
                raw.push(Finding {
                    file: rel_path.to_owned(),
                    line: t.line,
                    col: t.col,
                    rule: "D2",
                    message: format!(
                        "ambient RNG `{}`: randomness must flow from the run seed",
                        t.text
                    ),
                    snippet: snippet(t.line),
                    hint: "draw from a sim_core::SimRng forked from the scenario seed",
                });
            }
        }

        // D3 — hash-ordered collections in simulation crates. Lexical
        // analysis cannot prove a given map is never iterated, so the
        // rule bans the types outright in simulation state; a justified
        // detlint:allow(D3) marks the (rare) legitimate uses.
        if enabled("D3")
            && t.kind == TokenKind::Ident
            && matches!(
                t.text.as_str(),
                "HashMap" | "HashSet" | "RandomState" | "DefaultHasher"
            )
            && in_d3_scope(cfg, rel_path)
            && !in_test(i)
        {
            raw.push(Finding {
                file: rel_path.to_owned(),
                line: t.line,
                col: t.col,
                rule: "D3",
                message: format!(
                    "`{}` in a simulation crate: iteration order depends on the process-random hasher",
                    t.text
                ),
                snippet: snippet(t.line),
                hint: "use BTreeMap/BTreeSet (key-ordered) or sort before iterating",
            });
        }

        // D4 — float equality. Heuristic: an `==`/`!=` whose immediate
        // neighbour token is a float literal.
        if enabled("D4") && t.kind == TokenKind::Punct && (t.text == "==" || t.text == "!=") {
            let prev_float = i > 0 && toks[i - 1].kind == TokenKind::Float;
            let next_float = matches!(toks.get(i + 1), Some(n) if n.kind == TokenKind::Float);
            if prev_float || next_float {
                raw.push(Finding {
                    file: rel_path.to_owned(),
                    line: t.line,
                    col: t.col,
                    rule: "D4",
                    message: format!("float `{}` comparison against a literal", t.text),
                    snippet: snippet(t.line),
                    hint: "compare with an epsilon (`(a - b).abs() < EPS`) or restructure to `<=`/`>=`",
                });
            }
        }

        // S2 — panicking constructs in per-event hot paths.
        if enabled("S2")
            && t.kind == TokenKind::Ident
            && cfg.s2_paths.iter().any(|p| p == rel_path)
            && !in_test(i)
        {
            let method_panic =
                (t.text == "unwrap" || t.text == "expect") && i > 0 && toks[i - 1].is_punct(".");
            let macro_panic = matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) && matches!(toks.get(i + 1), Some(n) if n.is_punct("!"));
            if method_panic || macro_panic {
                raw.push(Finding {
                    file: rel_path.to_owned(),
                    line: t.line,
                    col: t.col,
                    rule: "S2",
                    message: format!("`{}` in a per-event hot path", t.text),
                    snippet: snippet(t.line),
                    hint: "return a typed error; one malformed frame must not abort the simulation",
                });
            }
        }
    }

    // S1 — crate-root lint headers.
    if enabled("S1") {
        if let Some(missing) = missing_crate_header(rel_path, toks) {
            raw.push(Finding {
                file: rel_path.to_owned(),
                line: 1,
                col: 1,
                rule: "S1",
                message: format!("crate root is missing lint header(s): {missing}"),
                snippet: snippet(1),
                hint: "add #![forbid(unsafe_code)], #![deny(rust_2018_idioms)] and #![warn(missing_docs)]",
            });
        }
    }

    // R1/R2/R3 — flow-aware RNG-stream discipline.
    flow::check_file(rel_path, lexed, &lines, &mut raw);
    raw.retain(|f| enabled(f.rule));

    apply_allows(cfg, rel_path, lexed, raw, &snippet)
}

/// Whether a finding of `rule` at `line` is suppressed by a justified
/// allow annotation on the same or the preceding line. Shared by the
/// per-file pass and the crate-level passes (S3, W1) in [`crate::run`].
pub(crate) fn is_allowed(lexed: &Lexed, rule: &str, line: u32) -> bool {
    lexed.allows.iter().any(|a| {
        (a.line == line || a.line + 1 == line)
            && a.rules.iter().any(|r| r == rule)
            && !a.justification.is_empty()
    })
}

/// One-paragraph explanation of a rule ID, for `detlint --explain`.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "D1" => {
            "D1 — wall-clock types.\nInstant/SystemTime read host time, which differs on \
                 every run and machine; a single read in simulation code makes traces \
                 irreproducible. Route all time through sim_core::SimTime / NodeClock. \
                 Exempt: the clock shim itself (rules.D1.exempt)."
        }
        "D2" => {
            "D2 — ambient randomness.\nthread_rng/rand::random/from_entropy seed from the \
                 OS, so two runs with the same scenario seed diverge. Draw from a \
                 sim_core::SimRng forked from the run seed instead."
        }
        "D3" => {
            "D3 — hash-ordered collections.\nHashMap/HashSet iteration order depends on the \
                 process-random hasher, so any iteration leaks nondeterminism into event \
                 order or RNG draw order. Use BTreeMap/BTreeSet in the configured \
                 simulation crates (rules.D3.crates), or justify a never-iterated map \
                 with detlint:allow(D3)."
        }
        "D4" => {
            "D4 — float literal equality.\nComparing floats with ==/!= against a literal is \
                 brittle under reassociation and optimisation differences. Compare with an \
                 epsilon or restructure to <=/>=."
        }
        "S1" => {
            "S1 — crate-root lint headers.\nEvery crate root must carry \
                 #![forbid(unsafe_code)], #![deny(rust_2018_idioms)] and \
                 #![warn(missing_docs)] so the workspace-wide safety floor cannot erode \
                 crate by crate."
        }
        "S2" => {
            "S2 — panic-free hot-path files.\nThe per-event files listed in rules.S2.paths \
                 must not contain unwrap/expect/panic!-family macros: one malformed frame \
                 must surface as a typed error, not abort the simulation."
        }
        "S3" => {
            "S3 — panic reachability.\ndetlint builds an intra-crate call graph from fn \
                 definitions and call sites, then walks every function transitively \
                 callable from the configured hot-path entry points (rules.S3.entries, \
                 `crate::function`). Reachable code must be free of panic!/unwrap/expect \
                 and []-indexing; the finding shows one call path from the entry. \
                 Provably in-bounds access carries a justified detlint:allow(S3)."
        }
        "R1" => {
            "R1 — RNG stream collision.\nTwo fork(\"label\") calls with the same string \
                 literal inside one function yield the same child stream, so two \
                 subsystems consume identical random sequences. Give every consumer its \
                 own label."
        }
        "R2" => {
            "R2 — draw-order divergence.\nA branch whose arms draw different RNG call \
                 multisets (or a cache-hit early return that skips draws the fall-through \
                 path performs) shifts every later draw in the stream, so bitwise \
                 reproducibility silently depends on cache state. Hoist draws out of the \
                 branch, keep them out of memoised paths (see LinkCache::transmit_cached), \
                 or justify a per-run-constant condition with detlint:allow(R2)."
        }
        "R3" => {
            "R3 — RNG under hash iteration.\nDrawing from an RNG inside a closure that \
                 iterates a HashMap/HashSet makes the draw order follow the process-random \
                 hasher. Iterate a BTree collection or sort keys first."
        }
        "W1" => {
            "W1 — wire-schema snapshot.\nThe RunRecord encoder's field order is extracted \
                 from the wire module and compared against the committed wire.schema \
                 snapshot. Reorders, removals and type changes fail; appending fields \
                 passes only together with a WIRE_VERSION bump. Regenerate the snapshot \
                 deliberately with detlint --update-schema."
        }
        "A1" => {
            "A1 — allow hygiene.\ndetlint:allow annotations must name at least one rule ID \
                 and carry a justification: `// detlint:allow(D3) single lookup table, \
                 never iterated`. Bare allows are findings themselves."
        }
        _ => return None,
    })
}

/// Whether `rel_path` is source of one of the configured simulation
/// crates (`crates/<name>/src/...`).
fn in_d3_scope(cfg: &Config, rel_path: &str) -> bool {
    let mut parts = rel_path.split('/');
    if parts.next() != Some("crates") {
        return false;
    }
    match parts.next() {
        Some(krate) => cfg.d3_crates.iter().any(|c| c == krate),
        None => false,
    }
}

/// For crate roots, returns a description of required-but-absent lint
/// headers; `None` when the file is not a crate root or is compliant.
fn missing_crate_header(rel_path: &str, toks: &[Token]) -> Option<String> {
    let mut parts = rel_path.split('/');
    let is_root = parts.next() == Some("crates")
        && parts.next().is_some()
        && parts.next() == Some("src")
        && matches!(parts.next(), Some("lib.rs" | "main.rs"))
        && parts.next().is_none();
    if !is_root {
        return None;
    }
    // Collect inner `#![level(lint, ...)]` attributes.
    let mut have: Vec<(String, String)> = Vec::new(); // (level, lint)
    let mut i = 0;
    while i + 4 < toks.len() {
        if toks[i].is_punct("#")
            && toks[i + 1].is_punct("!")
            && toks[i + 2].is_punct("[")
            && toks[i + 3].kind == TokenKind::Ident
            && matches!(toks[i + 3].text.as_str(), "forbid" | "deny" | "warn")
            && toks[i + 4].is_punct("(")
        {
            let level = toks[i + 3].text.clone();
            let mut j = i + 5;
            while j < toks.len() && !toks[j].is_punct(")") {
                if toks[j].kind == TokenKind::Ident {
                    have.push((level.clone(), toks[j].text.clone()));
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    let level_of = |lint: &str| -> Option<&str> {
        have.iter()
            .find(|(_, l)| l == lint)
            .map(|(level, _)| level.as_str())
    };
    let mut missing = Vec::new();
    if level_of("unsafe_code") != Some("forbid") {
        missing.push("#![forbid(unsafe_code)]");
    }
    if !matches!(level_of("rust_2018_idioms"), Some("deny" | "forbid")) {
        missing.push("#![deny(rust_2018_idioms)]");
    }
    if level_of("missing_docs").is_none() {
        missing.push("#![warn(missing_docs)]");
    }
    if missing.is_empty() {
        None
    } else {
        Some(missing.join(", "))
    }
}

/// Suppresses findings covered by a `detlint:allow` annotation on the
/// same or preceding line, and reports malformed annotations (A1).
fn apply_allows(
    cfg: &Config,
    rel_path: &str,
    lexed: &Lexed,
    raw: Vec<Finding>,
    snippet: &dyn Fn(u32) -> String,
) -> Vec<Finding> {
    let mut out: Vec<Finding> = Vec::new();
    for f in raw {
        let allowed = lexed.allows.iter().any(|a| {
            (a.line == f.line || a.line + 1 == f.line)
                && a.rules.iter().any(|r| r == f.rule)
                && !a.justification.is_empty()
        });
        if !allowed {
            out.push(f);
        }
    }
    if !cfg.disabled.iter().any(|d| d == "A1") {
        for a in &lexed.allows {
            if a.rules.is_empty() || a.justification.is_empty() {
                out.push(Finding {
                    file: rel_path.to_owned(),
                    line: a.line,
                    col: 1,
                    rule: "A1",
                    message: "malformed detlint:allow — needs rule ID(s) and a justification"
                        .to_owned(),
                    snippet: snippet(a.line),
                    hint: "write `// detlint:allow(D3) <why this use is sound>`",
                });
            }
        }
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        check_file(&Config::default(), path, src)
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    // — D1 —

    #[test]
    fn d1_flags_instant_outside_clock() {
        let f = check(
            "crates/facilities/src/ca.rs",
            "use std::time::Instant;\nfn t() { let s = Instant::now(); }",
        );
        assert!(rules_of(&f).contains(&"D1"));
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn d1_permits_clock_rs_and_strings() {
        assert!(check("crates/sim-core/src/clock.rs", "use std::time::Instant;").is_empty());
        assert!(check("crates/facilities/src/ca.rs", r#"let s = "Instant";"#).is_empty());
    }

    // — D2 —

    #[test]
    fn d2_flags_ambient_rng() {
        let f = check("crates/facilities/src/ca.rs", "let x = rand::thread_rng();");
        assert_eq!(rules_of(&f), vec!["D2"]);
        let f = check("crates/core/src/metrics.rs", "let v: f64 = rand::random();");
        assert_eq!(rules_of(&f), vec!["D2"]);
        let f = check(
            "crates/vehicle/src/pid.rs",
            "let r = SmallRng::from_entropy();",
        );
        assert_eq!(rules_of(&f), vec!["D2"]);
    }

    #[test]
    fn d2_permits_rng_rs_and_unrelated_random() {
        assert!(check("crates/sim-core/src/rng.rs", "fn thread_rng() {}").is_empty());
        // `random` not behind `rand::` is some other function.
        assert!(check("crates/vehicle/src/pid.rs", "let x = random();").is_empty());
    }

    // — D3 —

    #[test]
    fn d3_flags_hash_collections_in_sim_crates() {
        let f = check(
            "crates/geonet/src/loctable.rs",
            "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) { for k in m.keys() {} }",
        );
        assert_eq!(rules_of(&f), vec!["D3", "D3"]);
        assert!(f[0].message.contains("iteration order"));
    }

    #[test]
    fn d3_ignores_unlisted_crates_and_tests() {
        // Every workspace crate is covered now; unlisted paths (the
        // integration-test root, out-of-tree crates) are not.
        assert!(check("tests/campaign.rs", "use std::collections::HashMap;").is_empty());
        assert!(check(
            "crates/some-vendored-dep/src/http.rs",
            "use std::collections::HashMap;"
        )
        .is_empty());
        // openc2x joined the D3 scope: its HTTP layer is replayed
        // deterministically too.
        assert_eq!(
            rules_of(&check(
                "crates/openc2x/src/http.rs",
                "use std::collections::HashMap;"
            )),
            vec!["D3"]
        );
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { let s = std::collections::HashSet::new(); }\n}\n";
        assert!(check("crates/perception/src/detector.rs", src).is_empty());
    }

    #[test]
    fn d3_allow_annotation_suppresses_with_justification() {
        let src = "// detlint:allow(D3) single lookup table, never iterated\nuse std::collections::HashMap;\n";
        assert!(check("crates/facilities/src/ldm.rs", src).is_empty());
        // Same line works too.
        let src = "use std::collections::HashMap; // detlint:allow(D3) never iterated\n";
        assert!(check("crates/facilities/src/ldm.rs", src).is_empty());
    }

    #[test]
    fn a1_flags_allow_without_justification() {
        let src = "// detlint:allow(D3)\nuse std::collections::HashMap;\n";
        let f = check("crates/facilities/src/ldm.rs", src);
        assert_eq!(rules_of(&f), vec!["A1", "D3"]);
    }

    // — D4 —

    #[test]
    fn d4_flags_float_literal_equality() {
        let f = check("crates/vehicle/src/pid.rs", "if speed == 0.0 { halt(); }");
        assert_eq!(rules_of(&f), vec!["D4"]);
        let f = check("crates/vehicle/src/pid.rs", "if 1.5 != x { nudge(); }");
        assert_eq!(rules_of(&f), vec!["D4"]);
    }

    #[test]
    fn d4_permits_integer_equality_and_ranges() {
        assert!(check("crates/vehicle/src/pid.rs", "if n == 0 { stop(); }").is_empty());
        assert!(check("crates/vehicle/src/pid.rs", "let r = 0.0..1.0;").is_empty());
    }

    // — S1 —

    #[test]
    fn s1_requires_header_block_on_crate_roots() {
        let f = check("crates/vehicle/src/lib.rs", "//! Docs.\npub mod pid;\n");
        assert_eq!(rules_of(&f), vec!["S1"]);
        assert!(
            f[0].message.contains("forbid(unsafe_code)") || f[0].message.contains("unsafe_code")
        );
    }

    #[test]
    fn s1_satisfied_by_full_header() {
        let src = "//! Docs.\n#![forbid(unsafe_code)]\n#![deny(rust_2018_idioms)]\n#![warn(missing_docs)]\npub mod pid;\n";
        assert!(check("crates/vehicle/src/lib.rs", src).is_empty());
    }

    #[test]
    fn s1_ignores_non_roots() {
        assert!(check("crates/vehicle/src/pid.rs", "pub fn f() {}").is_empty());
    }

    // — S2 —

    #[test]
    fn s2_flags_panics_in_hot_paths_only() {
        let src = "fn rx(b: &[u8]) { let h = parse(b).unwrap(); }";
        assert_eq!(
            rules_of(&check("crates/geonet/src/forwarding.rs", src)),
            vec!["S2"]
        );
        // Same code in a non-hot-path file passes.
        assert!(check("crates/geonet/src/area.rs", src).is_empty());
    }

    #[test]
    fn s2_flags_macro_panics_but_not_tests() {
        let src = "fn rx() { panic!(\"boom\"); }";
        assert_eq!(rules_of(&check("crates/uper/src/bits.rs", src)), vec!["S2"]);
        let src =
            "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { parse(b).unwrap(); panic!(); }\n}\n";
        assert!(check("crates/uper/src/bits.rs", src).is_empty());
    }

    #[test]
    fn s2_permits_unwrap_or_variants() {
        let src =
            "fn rx(x: Option<u8>) -> u8 { x.unwrap_or(0).saturating_add(x.unwrap_or_default()) }";
        assert!(check("crates/uper/src/fields.rs", src).is_empty());
    }

    // — R rules through the per-file pass —

    #[test]
    fn r_rules_run_through_check_file_and_respect_allows() {
        let src = "fn f(rng: &mut SimRng, c: bool) -> f64 { if c { rng.f64() } else { 0.0 } }";
        assert_eq!(rules_of(&check("crates/core/src/x.rs", src)), vec!["R2"]);
        let src = "fn f(rng: &mut SimRng, c: bool) -> f64 {\n    // detlint:allow(R2) c is fixed per run by the scenario config\n    if c { rng.f64() } else { 0.0 }\n}";
        assert!(check("crates/core/src/x.rs", src).is_empty());
        let mut cfg = Config::default();
        cfg.disabled.push("R2".into());
        let src = "fn f(rng: &mut SimRng, c: bool) -> f64 { if c { rng.f64() } else { 0.0 } }";
        assert!(check_file(&cfg, "crates/core/src/x.rs", src).is_empty());
    }

    // — explain —

    #[test]
    fn explain_covers_every_rule_id() {
        for id in [
            "D1", "D2", "D3", "D4", "S1", "S2", "S3", "R1", "R2", "R3", "W1", "A1",
        ] {
            assert!(explain(id).is_some(), "missing explanation for {id}");
        }
        assert!(explain("Z9").is_none());
    }

    // — engine behaviour —

    #[test]
    fn disabled_rules_do_not_fire() {
        let mut cfg = Config::default();
        cfg.disabled.push("D4".into());
        let f = check_file(&cfg, "crates/vehicle/src/pid.rs", "if speed == 0.0 {}");
        assert!(f.is_empty());
    }

    #[test]
    fn findings_are_sorted_by_position() {
        let src = "fn rx() { b.unwrap();\n let c = a.expect(\"x\"); }";
        let f = check("crates/uper/src/bits.rs", src);
        assert_eq!(f.len(), 2);
        assert!(f[0].line < f[1].line);
    }

    #[test]
    fn finding_display_has_file_line_col_rule_and_hint() {
        let f = &check("crates/vehicle/src/pid.rs", "if speed == 0.0 {}")[0];
        let s = f.to_string();
        assert!(s.contains("crates/vehicle/src/pid.rs:1:"));
        assert!(s.contains("[D4]"));
        assert!(s.contains("hint:"));
    }
}
