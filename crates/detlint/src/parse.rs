//! Item/function structure recovered from the token stream.
//!
//! The flow-aware rule families (R, S3) need more than a flat token
//! list: which function a token belongs to, where an `if`'s branches
//! start and end, which closures sit inside which iterator call. This
//! module recovers exactly that much structure — functions with body
//! ranges, matched delimiters, branch extents — while staying a
//! zero-dependency pass over [`crate::lexer`] tokens. It is not a Rust
//! parser; it is the smallest structural layer the rules need, and it
//! must never panic on arbitrary byte soup (a proptest pins this).

use crate::lexer::{Token, TokenKind};

/// One `fn` item recovered from the token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Token index of the name identifier.
    pub name_idx: usize,
    /// Token range of the body, inclusive of both braces, when the
    /// function has one (trait method declarations do not).
    pub body: Option<(usize, usize)>,
    /// Whether the definition sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Token index of the delimiter matching the opener at `open`, or
/// `None` when the stream ends unbalanced. `open_t`/`close_t` are the
/// punctuation texts (e.g. `"{"`/`"}"`).
pub fn matching(toks: &[Token], open: usize, open_t: &str, close_t: &str) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct(open_t) {
            depth += 1;
        } else if toks[i].is_punct(close_t) {
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// Token index ranges (inclusive) covered by `#[cfg(test)]` items.
pub fn test_regions(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            // Find the closing `]` of this attribute.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut saw_cfg_test = false;
            let mut saw_cfg = false;
            while j < toks.len() {
                if toks[j].is_punct("[") {
                    depth += 1;
                } else if toks[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if toks[j].is_ident("cfg") {
                    saw_cfg = true;
                } else if saw_cfg && toks[j].is_ident("test") {
                    saw_cfg_test = true;
                }
                j += 1;
            }
            if saw_cfg_test && j < toks.len() {
                if let Some((lo, hi)) = item_after_attributes(toks, j + 1) {
                    regions.push((lo, hi));
                    i = hi + 1;
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// The token range of the item starting at `start`, skipping further
/// attributes: to the matching `}` if a brace opens first, else to `;`.
fn item_after_attributes(toks: &[Token], mut start: usize) -> Option<(usize, usize)> {
    // Skip subsequent attributes (`#[...]`).
    while toks.get(start)?.is_punct("#") && toks.get(start + 1)?.is_punct("[") {
        let mut depth = 0usize;
        let mut j = start + 1;
        while j < toks.len() {
            if toks[j].is_punct("[") {
                depth += 1;
            } else if toks[j].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        start = j + 1;
    }
    let lo = start;
    let mut k = start;
    while k < toks.len() {
        if toks[k].is_punct(";") {
            return Some((lo, k));
        }
        if toks[k].is_punct("{") {
            let hi = matching(toks, k, "{", "}").unwrap_or(toks.len().saturating_sub(1));
            return Some((lo, hi));
        }
        k += 1;
    }
    Some((lo, toks.len().saturating_sub(1)))
}

/// Recovers every `fn` definition in the token stream, at any nesting
/// depth (free functions, inherent and trait impls, functions inside
/// functions). Closures are not functions and are not returned.
pub fn parse_fns(toks: &[Token]) -> Vec<FnDef> {
    let regions = test_regions(toks);
    let in_test = |idx: usize| regions.iter().any(|&(lo, hi)| idx >= lo && idx <= hi);
    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // `fn` must be the keyword (lowercase ident), followed by the
        // name; `fn(u8)` pointer types and `Fn(...)` bounds don't match.
        if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident) {
            let name_idx = i + 1;
            let name = toks[name_idx].text.clone();
            // Scan past generics / params / return type to the body `{`
            // or a terminating `;` (trait method declaration). Braces
            // inside parens or brackets (closures in default exprs,
            // const-generic blocks) do not start the body.
            let mut j = name_idx + 1;
            let mut paren = 0i64;
            let mut bracket = 0i64;
            let mut body = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("(") {
                    paren += 1;
                } else if t.is_punct(")") {
                    paren -= 1;
                } else if t.is_punct("[") {
                    bracket += 1;
                } else if t.is_punct("]") {
                    bracket -= 1;
                } else if paren <= 0 && bracket <= 0 {
                    if t.is_punct(";") {
                        break;
                    }
                    if t.is_punct("{") {
                        let close =
                            matching(toks, j, "{", "}").unwrap_or(toks.len().saturating_sub(1));
                        body = Some((j, close));
                        break;
                    }
                }
                j += 1;
            }
            fns.push(FnDef {
                name,
                name_idx,
                body,
                in_test: in_test(name_idx),
            });
            // Continue scanning *inside* the body too (nested fns), so
            // only step past the signature.
            i = name_idx + 1;
            continue;
        }
        i += 1;
    }
    fns
}

/// An `if` (or `if let`) with its branch extents, found inside a
/// function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfBranches {
    /// Token index of the `if` keyword.
    pub if_idx: usize,
    /// Whether this is an `if let` (the cache-hit lookup shape).
    pub is_if_let: bool,
    /// Then-block token range, inclusive of braces.
    pub then_block: (usize, usize),
    /// Else-part token range (a block, or a nested `if` chain),
    /// inclusive, when present.
    pub else_part: Option<(usize, usize)>,
}

/// Finds every `if` whose then-block opens inside `range` (an inclusive
/// token range, normally a function body).
pub fn find_ifs(toks: &[Token], range: (usize, usize)) -> Vec<IfBranches> {
    let (lo, hi) = range;
    let mut out = Vec::new();
    let mut i = lo;
    while i <= hi.min(toks.len().saturating_sub(1)) {
        if toks[i].is_ident("if") {
            let is_if_let = toks.get(i + 1).is_some_and(|t| t.is_ident("let"));
            // The then-block is the first `{` at paren depth 0 after the
            // condition (struct literals are illegal in if conditions).
            let mut j = i + 1;
            let mut paren = 0i64;
            let mut open = None;
            while j <= hi {
                let t = &toks[j];
                if t.is_punct("(") || t.is_punct("[") {
                    paren += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    paren -= 1;
                } else if paren <= 0 && t.is_punct("{") {
                    open = Some(j);
                    break;
                } else if paren <= 0 && t.is_punct(";") {
                    break; // malformed / `if` inside a macro fragment
                }
                j += 1;
            }
            let Some(open) = open else {
                i += 1;
                continue;
            };
            let Some(close) = matching(toks, open, "{", "}") else {
                i += 1;
                continue;
            };
            let mut else_part = None;
            if toks.get(close + 1).is_some_and(|t| t.is_ident("else")) {
                let e = close + 2;
                if toks.get(e).is_some_and(|t| t.is_punct("{")) {
                    if let Some(ec) = matching(toks, e, "{", "}") {
                        else_part = Some((e, ec));
                    }
                } else if toks.get(e).is_some_and(|t| t.is_ident("if")) {
                    // `else if …`: the else-part extends to the end of
                    // the entire chain.
                    if let Some(end) = if_chain_end(toks, e, hi) {
                        else_part = Some((e, end));
                    }
                }
            }
            out.push(IfBranches {
                if_idx: i,
                is_if_let,
                then_block: (open, close),
                else_part,
            });
            // Nested ifs inside the branches are found too: keep
            // scanning from just inside the then-block.
            i = open + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// The inclusive end of the `if`/`else if`/`else` chain starting at the
/// `if` token `start`.
fn if_chain_end(toks: &[Token], start: usize, hi: usize) -> Option<usize> {
    let mut j = start + 1;
    let mut paren = 0i64;
    while j <= hi {
        let t = &toks[j];
        if t.is_punct("(") || t.is_punct("[") {
            paren += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            paren -= 1;
        } else if paren <= 0 && t.is_punct("{") {
            let close = matching(toks, j, "{", "}")?;
            return if toks.get(close + 1).is_some_and(|t| t.is_ident("else")) {
                if toks.get(close + 2).is_some_and(|t| t.is_punct("{")) {
                    matching(toks, close + 2, "{", "}")
                } else if toks.get(close + 2).is_some_and(|t| t.is_ident("if")) {
                    if_chain_end(toks, close + 2, hi)
                } else {
                    Some(close)
                }
            } else {
                Some(close)
            };
        }
        j += 1;
    }
    None
}

/// Rust keywords that look like call names when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "mut", "ref", "move", "in", "as", "use", "pub", "impl", "trait", "struct", "enum", "mod",
    "where", "unsafe", "dyn", "self", "Self", "super", "crate", "true", "false", "async", "await",
    "static", "const", "type",
];

/// Call sites inside an inclusive token range: `(name, token index)`
/// for both free calls `name(...)` and method calls `.name(...)`.
/// Macro invocations (`name!(...)`) are excluded; struct construction
/// and tuple-variant construction are indistinguishable from calls and
/// included (a harmless over-approximation for reachability).
pub fn call_sites(toks: &[Token], range: (usize, usize)) -> Vec<(String, usize)> {
    let (lo, hi) = range;
    let mut out = Vec::new();
    for i in lo..=hi.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        // `name (` or `name ::< … > (` — the common turbofish shape.
        let next = match toks.get(i + 1) {
            Some(n) => n,
            None => continue,
        };
        if next.is_punct("(") {
            out.push((t.text.clone(), i));
        } else if next.is_punct("::") && toks.get(i + 2).is_some_and(|t| t.is_punct("<")) {
            if let Some(gt) = close_angle(toks, i + 2, hi) {
                if toks.get(gt + 1).is_some_and(|t| t.is_punct("(")) {
                    out.push((t.text.clone(), i));
                }
            }
        }
    }
    out
}

/// The index of the `>` closing the `<` at `open`, scanning shallowly.
fn close_angle(toks: &[Token], open: usize, hi: usize) -> Option<usize> {
    let mut depth = 0i64;
    for j in open..=hi.min(toks.len().saturating_sub(1)) {
        if toks[j].is_punct("<") {
            depth += 1;
        } else if toks[j].is_punct(">") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// SimRng methods that consume randomness; calling one advances the
/// stream, so branch-dependent call counts are draw-order hazards.
pub const DRAW_METHODS: &[&str] = &[
    "next_u64",
    "next_u32",
    "fill_bytes",
    "f64",
    "uniform",
    "below",
    "bernoulli",
    "standard_normal",
    "normal",
    "exponential",
];

/// The multiset of RNG draw calls (sorted method names) inside an
/// inclusive token range. Only method-call syntax counts (`.normal(`):
/// every draw in the tree goes through a `&mut SimRng` receiver.
pub fn draw_calls(toks: &[Token], range: (usize, usize)) -> Vec<String> {
    let (lo, hi) = range;
    let mut out: Vec<String> = Vec::new();
    for i in lo..=hi.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if t.kind == TokenKind::Ident
            && DRAW_METHODS.contains(&t.text.as_str())
            && i > 0
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            out.push(t.text.clone());
        }
    }
    out.sort();
    out
}

/// Whether the inclusive range contains a `return` token at any depth.
pub fn contains_return(toks: &[Token], range: (usize, usize)) -> bool {
    let (lo, hi) = range;
    toks[lo..=hi.min(toks.len().saturating_sub(1))]
        .iter()
        .any(|t| t.is_ident("return"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns_of(src: &str) -> Vec<FnDef> {
        parse_fns(&lex(src).tokens)
    }

    #[test]
    fn finds_free_and_impl_fns() {
        let src =
            "fn a() { b(); }\nimpl X { pub fn c(&self) -> u8 { 1 } }\ntrait T { fn d(&self); }";
        let fns = fns_of(src);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "c", "d"]);
        assert!(fns[0].body.is_some());
        assert!(fns[1].body.is_some());
        assert!(fns[2].body.is_none(), "trait declaration has no body");
    }

    #[test]
    fn nested_fns_and_test_marking() {
        let src = "fn outer() { fn inner() {} }\n#[cfg(test)]\nmod tests { fn helper() {} }";
        let fns = fns_of(src);
        let names: Vec<(&str, bool)> = fns.iter().map(|f| (f.name.as_str(), f.in_test)).collect();
        assert_eq!(
            names,
            vec![("outer", false), ("inner", false), ("helper", true)]
        );
    }

    #[test]
    fn fn_pointer_types_are_not_defs() {
        let fns = fns_of("fn real(cb: fn(u8) -> u8, f: impl Fn(u8)) { cb(1); }");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn where_clause_and_generics_do_not_confuse_body() {
        let src = "fn g<T: Ord>(x: T) -> Vec<T> where T: Clone { vec![x] }";
        let fns = fns_of(src);
        assert_eq!(fns.len(), 1);
        let toks = lex(src).tokens;
        let (open, close) = fns[0].body.unwrap();
        assert!(toks[open].is_punct("{"));
        assert!(toks[close].is_punct("}"));
        assert_eq!(close, toks.len() - 1);
    }

    #[test]
    fn call_sites_include_methods_and_turbofish() {
        let src = "fn f() { helper(); self.method(1); parse::<u8>(x); mac!(no); }";
        let toks = lex(src).tokens;
        let body = parse_fns(&toks)[0].body.unwrap();
        let names: Vec<String> = call_sites(&toks, body).into_iter().map(|c| c.0).collect();
        assert!(names.contains(&"helper".into()));
        assert!(names.contains(&"method".into()));
        assert!(names.contains(&"parse".into()));
        assert!(!names.contains(&"mac".into()), "macros are not calls");
    }

    #[test]
    fn if_else_branches_are_recovered() {
        let src = "fn f(c: bool) { if c { a(); } else { b(); } tail(); }";
        let toks = lex(src).tokens;
        let body = parse_fns(&toks)[0].body.unwrap();
        let ifs = find_ifs(&toks, body);
        assert_eq!(ifs.len(), 1);
        assert!(!ifs[0].is_if_let);
        assert!(ifs[0].else_part.is_some());
    }

    #[test]
    fn else_if_chain_extends_else_part() {
        let src = "fn f(x: u8) { if x == 0 { a(); } else if x == 1 { b(); } else { c(); } }";
        let toks = lex(src).tokens;
        let body = parse_fns(&toks)[0].body.unwrap();
        let ifs = find_ifs(&toks, body);
        // Outer if plus the else-if (found as its own if).
        assert_eq!(ifs.len(), 2);
        let (_, end) = ifs[0].else_part.unwrap();
        // The chain's else-part ends at the final `}` of the last block.
        assert!(toks[end].is_punct("}"));
        assert_eq!(end, body.1 - 1);
    }

    #[test]
    fn if_let_is_flagged() {
        let src = "fn f(m: &M) { if let Some(v) = m.get(k) { return v; } }";
        let toks = lex(src).tokens;
        let body = parse_fns(&toks)[0].body.unwrap();
        let ifs = find_ifs(&toks, body);
        assert!(ifs[0].is_if_let);
        assert!(contains_return(&toks, ifs[0].then_block));
    }

    #[test]
    fn draw_calls_are_counted_as_multisets() {
        let src = "fn f(rng: &mut SimRng) { let a = rng.normal(0.0, 1.0); let b = rng.f64(); }";
        let toks = lex(src).tokens;
        let body = parse_fns(&toks)[0].body.unwrap();
        assert_eq!(draw_calls(&toks, body), vec!["f64", "normal"]);
    }

    #[test]
    fn unbalanced_input_does_not_panic() {
        for src in ["fn f() {", "fn f(", "if {", "}}}", "fn f() { if x { }"] {
            let toks = lex(src).tokens;
            let fns = parse_fns(&toks);
            for f in &fns {
                if let Some(body) = f.body {
                    let _ = find_ifs(&toks, body);
                    let _ = call_sites(&toks, body);
                    let _ = draw_calls(&toks, body);
                }
            }
        }
    }
}
