//! detlint — workspace static analysis proving determinism & safety
//! invariants at build time.
//!
//! The testbed's headline claim is *reproducibility*: the same scenario
//! seed must yield the same CAM/DENM traces, the same collision
//! outcomes, the same metrics, on every run and every machine. That
//! property is easy to destroy with one stray `Instant::now()`,
//! `thread_rng()` or `HashMap` iteration deep inside an event handler —
//! and such regressions are invisible to ordinary tests until a CI run
//! flakes weeks later.
//!
//! detlint makes the invariants mechanical. It tokenizes every `.rs`
//! file in the workspace with a small hand-rolled lexer (no `syn`, no
//! external dependencies) and enforces the rules described in
//! [`rules`]. It runs two ways:
//!
//! * `cargo run -p detlint` — the CLI, used by `scripts/check.sh`;
//! * `tests/detlint_gate.rs` — a tier-1 test asserting zero findings,
//!   so `cargo test` alone proves the tree is clean.
//!
//! Violations that are genuinely sound carry an inline annotation with
//! a mandatory justification:
//!
//! ```text
//! // detlint:allow(D1) benchmarks measure real host time by definition
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod config;
pub mod flow;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod schema;

pub use config::{Config, ConfigError};
pub use rules::Finding;

use std::path::{Path, PathBuf};

/// The result of scanning a tree: every finding plus scan statistics.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All unsuppressed findings, sorted by file then position.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Total source lines scanned.
    pub lines_scanned: usize,
}

impl Report {
    /// True when the tree satisfies every invariant.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Scans `root` (a workspace checkout) with `cfg` and returns the
/// report. Files are visited in sorted path order, so output — and the
/// report itself — is deterministic.
///
/// # Errors
///
/// Returns an [`std::io::Error`] if a configured scan directory cannot
/// be read or a source file disappears mid-scan.
pub fn run(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    for dir in &cfg.scan {
        let base = root.join(dir);
        if base.is_dir() {
            collect_rs_files(&base, cfg, &mut files)?;
        }
    }
    files.sort();

    // Lex every file exactly once; the per-file rules, the crate-level
    // S3 walk and the W1 wire pass all share the token streams.
    let mut scanned: Vec<(String, String, lexer::Lexed)> = Vec::new();
    for path in files {
        let source = std::fs::read_to_string(&path)?;
        let rel = rel_unix_path(root, &path);
        let lexed = lexer::lex(&source);
        scanned.push((rel, source, lexed));
    }

    let mut report = Report::default();
    for (rel, source, lexed) in &scanned {
        report.files_scanned += 1;
        report.lines_scanned += source.lines().count();
        report
            .findings
            .extend(rules::check_file_lexed(cfg, rel, source, lexed));
    }
    let enabled = |rule: &str| !cfg.disabled.iter().any(|d| d == rule);

    // S3 — per-crate panic reachability.
    if enabled("S3") {
        let mut by_crate: std::collections::BTreeMap<&str, Vec<callgraph::FileTokens<'_>>> =
            std::collections::BTreeMap::new();
        for (rel, source, lexed) in &scanned {
            if let Some(krate) = callgraph::crate_of(rel) {
                by_crate
                    .entry(krate)
                    .or_default()
                    .push(callgraph::FileTokens {
                        rel_path: rel,
                        lexed,
                        lines: source.lines().collect(),
                    });
            }
        }
        let mut s3 = Vec::new();
        for (krate, crate_files) in &by_crate {
            callgraph::check_crate(cfg, krate, crate_files, &mut s3);
        }
        report.findings.extend(s3.into_iter().filter(|f| {
            !scanned
                .iter()
                .find(|(rel, _, _)| *rel == f.file)
                .is_some_and(|(_, _, lexed)| rules::is_allowed(lexed, f.rule, f.line))
        }));
    }

    // W1 — wire-schema snapshot.
    if enabled("W1") {
        check_wire(root, cfg, &scanned, &mut report.findings);
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(report)
}

/// Compares the wire module's encoder against the committed schema
/// snapshot. Silently a no-op when the configured wire file is not in
/// the scanned tree (planted test fixtures have no wire codec).
fn check_wire(
    root: &Path,
    cfg: &Config,
    scanned: &[(String, String, lexer::Lexed)],
    out: &mut Vec<Finding>,
) {
    let Some((rel, source, lexed)) = scanned.iter().find(|(rel, _, _)| *rel == cfg.w1_wire) else {
        return;
    };
    let fn_line = |name: &str| -> u32 {
        parse::parse_fns(&lexed.tokens)
            .iter()
            .find(|f| !f.in_test && f.name == name)
            .map(|f| lexed.tokens[f.name_idx].line)
            .unwrap_or(1)
    };
    let mk = |line: u32, message: String| {
        Finding {
        file: rel.clone(),
        line,
        col: 1,
        rule: "W1",
        message,
        snippet: source
            .lines()
            .nth(line as usize - 1)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default(),
        hint: "the wire layout is append-only; after review, regenerate the snapshot with `detlint --update-schema`",
    }
    };
    let mut raw = Vec::new();
    match schema::extract(&lexed.tokens) {
        Err(e) => raw.push(mk(1, e)),
        Ok(live) => {
            match std::fs::read_to_string(root.join(&cfg.w1_schema)) {
                Err(_) => raw.push(mk(
                    1,
                    format!(
                        "wire-schema snapshot `{}` is missing — generate and commit it with `detlint --update-schema`",
                        cfg.w1_schema
                    ),
                )),
                Ok(text) => match schema::parse_snapshot(&text) {
                    Err(e) => raw.push(mk(1, e)),
                    Ok(snap) => {
                        if let Some(msg) = schema::compare(&snap, &live) {
                            raw.push(mk(fn_line("encode"), msg));
                        }
                    }
                },
            }
            if let Some(msg) = schema::decode_consistency(&lexed.tokens, &live) {
                raw.push(mk(fn_line("decode_from"), msg));
            }
        }
    }
    out.extend(
        raw.into_iter()
            .filter(|f| !rules::is_allowed(lexed, f.rule, f.line)),
    );
}

/// Regenerates the committed wire-schema snapshot from the live
/// encoder — the deliberate path for landing a reviewed layout change.
///
/// # Errors
///
/// Returns a description when the wire module cannot be read, its
/// encoder cannot be extracted, or the snapshot cannot be written.
pub fn update_schema(root: &Path, cfg: &Config) -> Result<PathBuf, String> {
    let wire_path = root.join(&cfg.w1_wire);
    let source = std::fs::read_to_string(&wire_path)
        .map_err(|e| format!("cannot read {}: {e}", wire_path.display()))?;
    let live = schema::extract(&lexer::lex(&source).tokens)?;
    let snap_path = root.join(&cfg.w1_schema);
    std::fs::write(&snap_path, schema::render(&live))
        .map_err(|e| format!("cannot write {}: {e}", snap_path.display()))?;
    Ok(snap_path)
}

/// Recursively collects `.rs` files under `dir`, honouring `cfg.skip`.
fn collect_rs_files(dir: &Path, cfg: &Config, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if cfg.skip.iter().any(|s| *s == name) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, cfg, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `root`-relative path with `/` separators, for stable cross-platform
/// rule matching and output.
fn rel_unix_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_of_tempdir_fixture_finds_planted_violations() {
        let dir = std::env::temp_dir().join(format!("detlint-selftest-{}", std::process::id()));
        let src = dir.join("crates/demo/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(
            src.join("lib.rs"),
            "#![forbid(unsafe_code)]\n#![deny(rust_2018_idioms)]\n#![warn(missing_docs)]\nuse std::time::Instant;\n",
        )
        .unwrap();
        // A skipped directory must not be scanned.
        let skipped = dir.join("crates/target");
        std::fs::create_dir_all(&skipped).unwrap();
        std::fs::write(skipped.join("junk.rs"), "use std::time::SystemTime;").unwrap();

        let report = run(&dir, &Config::default()).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(report.files_scanned, 1);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "D1");
        assert_eq!(report.findings[0].file, "crates/demo/src/lib.rs");
        assert_eq!(report.findings[0].line, 4);
    }

    #[test]
    fn w1_snapshot_lifecycle_via_run_and_update_schema() {
        let dir = std::env::temp_dir().join(format!("detlint-w1test-{}", std::process::id()));
        let src = dir.join("crates/demo/src");
        std::fs::create_dir_all(&src).unwrap();
        let codec = "pub const WIRE_VERSION: u8 = 2;\n\
                     pub const MIN_WIRE_VERSION: u8 = 1;\n\
                     impl R {\n\
                     pub fn encode(&self) -> Vec<u8> {\n\
                     let mut p = Vec::new();\n\
                     p.put_u8(WIRE_VERSION);\n\
                     put_opt_u64(&mut p, self.wall_ms);\n\
                     put_bool(&mut p, self.delivered);\n\
                     p\n\
                     }\n\
                     }\n";
        std::fs::write(src.join("wire.rs"), codec).unwrap();
        let mut cfg = Config::default();
        cfg.w1_wire = "crates/demo/src/wire.rs".into();
        cfg.w1_schema = "wire.schema".into();

        // No snapshot committed yet: exactly one W1 finding.
        let report = run(&dir, &cfg).unwrap();
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].rule, "W1");
        assert!(report.findings[0].message.contains("missing"));

        // --update-schema regenerates the snapshot; the tree is clean.
        update_schema(&dir, &cfg).unwrap();
        assert!(run(&dir, &cfg).unwrap().is_clean());

        // Reordering the encoder's fields must fail the lint.
        let swapped = codec.replace(
            "put_opt_u64(&mut p, self.wall_ms);\nput_bool(&mut p, self.delivered);",
            "put_bool(&mut p, self.delivered);\nput_opt_u64(&mut p, self.wall_ms);",
        );
        assert_ne!(swapped, codec);
        std::fs::write(src.join("wire.rs"), swapped).unwrap();
        let report = run(&dir, &cfg).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert!(!report.is_clean());
        assert!(report.findings.iter().all(|f| f.rule == "W1"));
    }

    #[test]
    fn rel_unix_path_uses_forward_slashes() {
        let root = Path::new("/a/b");
        let p = Path::new("/a/b/crates/core/src/lib.rs");
        assert_eq!(rel_unix_path(root, p), "crates/core/src/lib.rs");
    }
}
