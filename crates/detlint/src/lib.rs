//! detlint — workspace static analysis proving determinism & safety
//! invariants at build time.
//!
//! The testbed's headline claim is *reproducibility*: the same scenario
//! seed must yield the same CAM/DENM traces, the same collision
//! outcomes, the same metrics, on every run and every machine. That
//! property is easy to destroy with one stray `Instant::now()`,
//! `thread_rng()` or `HashMap` iteration deep inside an event handler —
//! and such regressions are invisible to ordinary tests until a CI run
//! flakes weeks later.
//!
//! detlint makes the invariants mechanical. It tokenizes every `.rs`
//! file in the workspace with a small hand-rolled lexer (no `syn`, no
//! external dependencies) and enforces the rules described in
//! [`rules`]. It runs two ways:
//!
//! * `cargo run -p detlint` — the CLI, used by `scripts/check.sh`;
//! * `tests/detlint_gate.rs` — a tier-1 test asserting zero findings,
//!   so `cargo test` alone proves the tree is clean.
//!
//! Violations that are genuinely sound carry an inline annotation with
//! a mandatory justification:
//!
//! ```text
//! // detlint:allow(D1) benchmarks measure real host time by definition
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::{Config, ConfigError};
pub use rules::Finding;

use std::path::{Path, PathBuf};

/// The result of scanning a tree: every finding plus scan statistics.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All unsuppressed findings, sorted by file then position.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Total source lines scanned.
    pub lines_scanned: usize,
}

impl Report {
    /// True when the tree satisfies every invariant.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Scans `root` (a workspace checkout) with `cfg` and returns the
/// report. Files are visited in sorted path order, so output — and the
/// report itself — is deterministic.
///
/// # Errors
///
/// Returns an [`std::io::Error`] if a configured scan directory cannot
/// be read or a source file disappears mid-scan.
pub fn run(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    for dir in &cfg.scan {
        let base = root.join(dir);
        if base.is_dir() {
            collect_rs_files(&base, cfg, &mut files)?;
        }
    }
    files.sort();

    let mut report = Report::default();
    for path in files {
        let source = std::fs::read_to_string(&path)?;
        let rel = rel_unix_path(root, &path);
        report.files_scanned += 1;
        report.lines_scanned += source.lines().count();
        report
            .findings
            .extend(rules::check_file(cfg, &rel, &source));
    }
    // check_file sorts within a file and files were visited in sorted
    // order, so the report is already position-sorted per file.
    Ok(report)
}

/// Recursively collects `.rs` files under `dir`, honouring `cfg.skip`.
fn collect_rs_files(dir: &Path, cfg: &Config, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if cfg.skip.iter().any(|s| *s == name) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, cfg, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `root`-relative path with `/` separators, for stable cross-platform
/// rule matching and output.
fn rel_unix_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_of_tempdir_fixture_finds_planted_violations() {
        let dir = std::env::temp_dir().join(format!("detlint-selftest-{}", std::process::id()));
        let src = dir.join("crates/demo/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(
            src.join("lib.rs"),
            "#![forbid(unsafe_code)]\n#![deny(rust_2018_idioms)]\n#![warn(missing_docs)]\nuse std::time::Instant;\n",
        )
        .unwrap();
        // A skipped directory must not be scanned.
        let skipped = dir.join("crates/target");
        std::fs::create_dir_all(&skipped).unwrap();
        std::fs::write(skipped.join("junk.rs"), "use std::time::SystemTime;").unwrap();

        let report = run(&dir, &Config::default()).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(report.files_scanned, 1);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "D1");
        assert_eq!(report.findings[0].file, "crates/demo/src/lib.rs");
        assert_eq!(report.findings[0].line, 4);
    }

    #[test]
    fn rel_unix_path_uses_forward_slashes() {
        let root = Path::new("/a/b");
        let p = Path::new("/a/b/crates/core/src/lib.rs");
        assert_eq!(rel_unix_path(root, p), "crates/core/src/lib.rs");
    }
}
