//! The W1 rule: wire-schema snapshot lint.
//!
//! `crates/core/src/wire.rs` carries the testbed's only cross-process
//! contract: the versioned `RunRecord` frame the shard coordinator
//! reads off worker pipes. The v1→v2 transition established the
//! compatibility rule — *layout changes only ever append fields, and
//! every append bumps `WIRE_VERSION`* — but until now the rule lived in
//! a doc comment and a captured-frame test. W1 makes it machine
//! enforced: the linter extracts the encoder's field order into a
//! [`WireSchema`] and compares it against the committed `wire.schema`
//! snapshot. Reorders, removals and type changes fail the lint;
//! appends pass only together with a version bump. The snapshot is
//! regenerated deliberately with `detlint --update-schema`, so the
//! diff review of `wire.schema` *is* the schema review.
//!
//! Extraction is token-based, matching the codec's fixed idiom: one
//! `put_*` helper call per field with a `self.<field>` argument
//! (`p.put_u64(self.x.to_bits())` is an `f64`, `p.put_u64(self.x)` a
//! `u64`, `p.put_u32(self.trace…)` the trace aggregate). A secondary
//! check walks `decode_from` and requires its `let`-bound field names
//! to mirror the encoder's order, so encoder and decoder cannot drift
//! apart unnoticed.

use crate::lexer::{Token, TokenKind};
use crate::parse;

/// The wire layout as the linter sees it: version pair plus the
/// ordered `(type, field)` list the encoder writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSchema {
    /// Value of the `WIRE_VERSION` const.
    pub version: u64,
    /// Value of the `MIN_WIRE_VERSION` const.
    pub min_version: u64,
    /// Encoded fields in write order, as `(type, name)` pairs.
    pub fields: Vec<(String, String)>,
}

/// Helpers whose name alone determines the field type.
const NAMED_HELPERS: &[(&str, &str)] = &[
    ("put_opt_time", "opt_time"),
    ("put_opt_u64", "opt_u64"),
    ("put_opt_f64", "opt_f64"),
    ("put_bool", "bool"),
    ("put_str", "str"),
    ("put_fault_stats", "fault_stats"),
    ("put_coop_stats", "coop_stats"),
];

/// Extracts the live schema from the wire module's token stream:
/// the two version consts plus the field writes inside `fn encode`.
pub fn extract(toks: &[Token]) -> Result<WireSchema, String> {
    let version = find_const(toks, "WIRE_VERSION")
        .ok_or("no `const WIRE_VERSION: u8 = <int>` found in wire module")?;
    let min_version = find_const(toks, "MIN_WIRE_VERSION")
        .ok_or("no `const MIN_WIRE_VERSION: u8 = <int>` found in wire module")?;
    let encode = parse::parse_fns(toks)
        .into_iter()
        .find(|f| !f.in_test && f.name == "encode" && f.body.is_some())
        .ok_or("no `fn encode` with a body found in wire module")?;
    let (lo, hi) = encode.body.unwrap_or((0, 0));

    let mut fields = Vec::new();
    let mut i = lo;
    while i <= hi.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        let is_call =
            t.kind == TokenKind::Ident && toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        if !is_call {
            i += 1;
            continue;
        }
        let Some(close) = parse::matching(toks, i + 1, "(", ")") else {
            i += 1;
            continue;
        };
        let named = NAMED_HELPERS.iter().find(|(h, _)| t.text == *h);
        let raw_put = matches!(t.text.as_str(), "put_u64" | "put_u32" | "put_u8")
            && i > 0
            && toks[i - 1].is_punct(".");
        if named.is_none() && !raw_put {
            i += 1; // descend: the argument list may hold the real call
            continue;
        }
        let Some((field, fidx)) = first_self_field(toks, i + 2, close) else {
            i = close + 1; // version byte, loop-local writes — not a field
            continue;
        };
        let ty = if let Some((_, ty)) = named {
            (*ty).to_owned()
        } else if field == "trace" {
            "trace".to_owned()
        } else if t.text == "put_u64" {
            let to_bits = toks.get(fidx + 1).is_some_and(|a| a.is_punct("."))
                && toks.get(fidx + 2).is_some_and(|b| b.is_ident("to_bits"));
            if to_bits {
                "f64".to_owned()
            } else {
                "u64".to_owned()
            }
        } else {
            t.text.trim_start_matches("put_").to_owned()
        };
        fields.push((ty, field));
        i = close + 1;
    }
    if fields.is_empty() {
        return Err("`fn encode` writes no `self.<field>` values".to_owned());
    }
    Ok(WireSchema {
        version,
        min_version,
        fields,
    })
}

/// The integer bound to `const NAME: … = <int>;`, if present.
fn find_const(toks: &[Token], name: &str) -> Option<u64> {
    for i in 0..toks.len() {
        if !(toks[i].is_ident("const") && toks.get(i + 1).is_some_and(|n| n.is_ident(name))) {
            continue;
        }
        for t in toks.iter().skip(i + 2).take(6) {
            if t.kind == TokenKind::Int {
                return t.text.replace('_', "").parse().ok();
            }
        }
    }
    None
}

/// First `self.<ident>` inside `toks[lo..hi]`, with the field's index.
fn first_self_field(toks: &[Token], lo: usize, hi: usize) -> Option<(String, usize)> {
    for i in lo..hi.min(toks.len()) {
        if toks[i].is_ident("self")
            && toks.get(i + 1).is_some_and(|d| d.is_punct("."))
            && toks.get(i + 2).is_some_and(|f| f.kind == TokenKind::Ident)
        {
            return Some((toks[i + 2].text.clone(), i + 2));
        }
    }
    None
}

/// Renders a schema as the committed `wire.schema` text.
pub fn render(s: &WireSchema) -> String {
    let mut out = String::new();
    out.push_str("# detlint W1 wire-schema snapshot — regenerate with `detlint --update-schema`\n");
    out.push_str("# Layout contract: reorder/removal/type change fails the lint;\n");
    out.push_str("# appends pass only together with a WIRE_VERSION bump.\n");
    out.push_str(&format!("version {}\n", s.version));
    out.push_str(&format!("min_version {}\n", s.min_version));
    for (ty, name) in &s.fields {
        out.push_str(&format!("{ty} {name}\n"));
    }
    out
}

/// Parses a committed snapshot. Unknown lines are errors, so the
/// snapshot cannot silently rot.
pub fn parse_snapshot(text: &str) -> Result<WireSchema, String> {
    let mut version = None;
    let mut min_version = None;
    let mut fields = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, val)) = line.split_once(' ') else {
            return Err(format!(
                "wire.schema line {}: expected `<key> <value>`",
                n + 1
            ));
        };
        let val = val.trim();
        match key {
            "version" => {
                version = Some(
                    val.parse()
                        .map_err(|_| format!("wire.schema line {}: bad version {val:?}", n + 1))?,
                );
            }
            "min_version" => {
                min_version =
                    Some(val.parse().map_err(|_| {
                        format!("wire.schema line {}: bad min_version {val:?}", n + 1)
                    })?);
            }
            ty => {
                if val.is_empty() || val.contains(' ') {
                    return Err(format!(
                        "wire.schema line {}: bad field name {val:?}",
                        n + 1
                    ));
                }
                fields.push((ty.to_owned(), val.to_owned()));
            }
        }
    }
    Ok(WireSchema {
        version: version.ok_or("wire.schema: missing `version` line")?,
        min_version: min_version.ok_or("wire.schema: missing `min_version` line")?,
        fields,
    })
}

/// Compares the committed snapshot against the live encoder. `None`
/// means the contract holds; `Some(why)` is the finding message.
pub fn compare(snapshot: &WireSchema, live: &WireSchema) -> Option<String> {
    if snapshot.fields == live.fields {
        if live.version != snapshot.version {
            return Some(format!(
                "WIRE_VERSION changed {} → {} with an unchanged field layout; \
                 bump the version only when appending fields (then run --update-schema)",
                snapshot.version, live.version
            ));
        }
        if live.min_version != snapshot.min_version {
            return Some(format!(
                "MIN_WIRE_VERSION changed {} → {}: dropping support for shipped \
                 frame versions is a breaking change (run --update-schema if deliberate)",
                snapshot.min_version, live.min_version
            ));
        }
        return None;
    }
    if live.fields.len() > snapshot.fields.len()
        && live.fields[..snapshot.fields.len()] == snapshot.fields[..]
    {
        // Pure append — legal iff the version was bumped.
        if live.version <= snapshot.version {
            let added: Vec<&str> = live.fields[snapshot.fields.len()..]
                .iter()
                .map(|(_, n)| n.as_str())
                .collect();
            return Some(format!(
                "field(s) [{}] appended without bumping WIRE_VERSION (still {}): \
                 old decoders would misread the longer frame",
                added.join(", "),
                live.version
            ));
        }
        if live.min_version != snapshot.min_version {
            return Some(format!(
                "append also changed MIN_WIRE_VERSION {} → {}: appends must keep \
                 accepting every shipped version",
                snapshot.min_version, live.min_version
            ));
        }
        return None;
    }
    // Anything else breaks decode of shipped frames. Name the first
    // divergence so the message points at the culprit.
    for (i, snap) in snapshot.fields.iter().enumerate() {
        match live.fields.get(i) {
            None => {
                return Some(format!(
                    "field `{}` ({}) removed from the encoder at position {}: \
                     the wire format is append-only",
                    snap.1,
                    snap.0,
                    i + 1
                ));
            }
            Some(l) if l != snap => {
                return Some(format!(
                    "encoder position {} changed from `{} {}` to `{} {}`: \
                     reorders and type changes break every shipped frame",
                    i + 1,
                    snap.0,
                    snap.1,
                    l.0,
                    l.1
                ));
            }
            Some(_) => {}
        }
    }
    // Snapshot is a prefix of live but the append branch above did not
    // accept it (unreachable in practice; keep a defensive message).
    Some("encoder layout diverged from wire.schema".to_owned())
}

/// Checks that `decode_from` reads the schema's fields in encoder
/// order: its `let`-bound names, filtered to schema field names, must
/// equal the schema's name sequence. `None` means consistent.
pub fn decode_consistency(toks: &[Token], live: &WireSchema) -> Option<String> {
    let decode = parse::parse_fns(toks)
        .into_iter()
        .find(|f| !f.in_test && f.name == "decode_from" && f.body.is_some())?;
    let (lo, hi) = decode.body.unwrap_or((0, 0));
    let mut seen: Vec<&str> = Vec::new();
    let mut i = lo;
    while i + 1 <= hi.min(toks.len().saturating_sub(1)) {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = toks.get(j).filter(|t| t.kind == TokenKind::Ident) {
                if live.fields.iter().any(|(_, f)| *f == name.text)
                    && !seen.contains(&name.text.as_str())
                {
                    seen.push(name.text.as_str());
                }
            }
        }
        i += 1;
    }
    let expected: Vec<&str> = live.fields.iter().map(|(_, f)| f.as_str()).collect();
    if seen != expected {
        return Some(format!(
            "decode_from reads fields as [{}] but the encoder writes [{}]: \
             encoder and decoder must agree on order",
            seen.join(", "),
            expected.join(", ")
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// A miniature codec in the real wire.rs idiom.
    const MINI: &str = r#"
pub const WIRE_VERSION: u8 = 2;
pub const MIN_WIRE_VERSION: u8 = 1;
impl RunRecord {
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        p.put_u8(WIRE_VERSION);
        put_opt_time(&mut p, self.step2_detection);
        put_opt_f64(&mut p, self.odometer_at_halt_m);
        p.put_u64(self.speed_at_detection_mps.to_bits());
        put_bool(&mut p, self.denm_delivered);
        p.put_u64(self.cams_received);
        p.put_u32(self.trace.events().len() as u32);
        for e in self.trace.events() {
            p.put_u64(e.time.as_nanos());
            put_str(&mut p, &e.node);
        }
        put_fault_stats(&mut p, &self.fault);
        put_coop_stats(&mut p, &self.coop);
        p
    }
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let version = p.u8()?;
        let step2_detection = get_opt_time(&mut p)?;
        let odometer_at_halt_m = get_opt_f64(&mut p)?;
        let speed_at_detection_mps = f64::from_bits(p.u64()?);
        let denm_delivered = get_bool(&mut p)?;
        let cams_received = p.u64()?;
        let n_events = p.u32()? as usize;
        let mut trace = Trace::new();
        for _ in 0..n_events {
            let time = SimTime::from_nanos(p.u64()?);
            let node = get_str(&mut p)?;
        }
        let fault = if version >= 2 { get_fault_stats(&mut p)? } else { FaultStats::default() };
        let coop = if version >= 3 { get_coop_stats(&mut p)? } else { CoopStats::default() };
        Ok(RunRecord { step2_detection })
    }
}
"#;

    fn mini_schema() -> WireSchema {
        extract(&lex(MINI).tokens).expect("mini codec extracts")
    }

    #[test]
    fn extracts_versions_and_typed_field_order() {
        let s = mini_schema();
        assert_eq!(s.version, 2);
        assert_eq!(s.min_version, 1);
        let want = [
            ("opt_time", "step2_detection"),
            ("opt_f64", "odometer_at_halt_m"),
            ("f64", "speed_at_detection_mps"),
            ("bool", "denm_delivered"),
            ("u64", "cams_received"),
            ("trace", "trace"),
            ("fault_stats", "fault"),
            ("coop_stats", "coop"),
        ];
        let got: Vec<(&str, &str)> = s
            .fields
            .iter()
            .map(|(t, n)| (t.as_str(), n.as_str()))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn render_parse_roundtrips() {
        let s = mini_schema();
        assert_eq!(parse_snapshot(&render(&s)).unwrap(), s);
    }

    #[test]
    fn identical_schemas_are_clean() {
        let s = mini_schema();
        assert_eq!(compare(&s, &s), None);
        assert_eq!(decode_consistency(&lex(MINI).tokens, &s), None);
    }

    #[test]
    fn append_with_bump_passes_without_bump_fails() {
        let snap = mini_schema();
        let mut live = snap.clone();
        live.fields.push(("u64".into(), "retries".into()));
        let msg = compare(&snap, &live).expect("append without bump must fail");
        assert!(msg.contains("retries"), "{msg}");
        live.version = 3;
        assert_eq!(compare(&snap, &live), None);
    }

    #[test]
    fn reorder_removal_and_type_change_fail() {
        let snap = mini_schema();

        let mut reordered = snap.clone();
        reordered.fields.swap(0, 1);
        reordered.version = 3; // a bump does not launder a reorder
        let msg = compare(&snap, &reordered).expect("reorder must fail");
        assert!(msg.contains("position 1"), "{msg}");

        let mut removed = snap.clone();
        removed.fields.pop();
        let msg = compare(&snap, &removed).expect("removal must fail");
        assert!(msg.contains("removed"), "{msg}");

        let mut retyped = snap.clone();
        retyped.fields[3] = ("u64".into(), "denm_delivered".into());
        let msg = compare(&snap, &retyped).expect("type change must fail");
        assert!(msg.contains("`bool denm_delivered`"), "{msg}");
    }

    #[test]
    fn version_bump_without_layout_change_fails() {
        let snap = mini_schema();
        let mut live = snap.clone();
        live.version = 3;
        assert!(compare(&snap, &live).is_some());
        let mut live = snap.clone();
        live.min_version = 2;
        assert!(compare(&snap, &live).unwrap().contains("MIN_WIRE_VERSION"));
    }

    #[test]
    fn decoder_reorder_is_caught() {
        let swapped = MINI.replace(
            "let step2_detection = get_opt_time(&mut p)?;\n        let odometer_at_halt_m = get_opt_f64(&mut p)?;",
            "let odometer_at_halt_m = get_opt_f64(&mut p)?;\n        let step2_detection = get_opt_time(&mut p)?;",
        );
        assert_ne!(swapped, MINI);
        let s = mini_schema();
        let msg = decode_consistency(&lex(&swapped).tokens, &s)
            .expect("decoder order drift must be caught");
        assert!(msg.contains("decode_from"), "{msg}");
    }

    #[test]
    fn snapshot_parse_rejects_garbage() {
        assert!(parse_snapshot("version 2\n").is_err()); // missing min_version
        assert!(parse_snapshot("version x\nmin_version 1\n").is_err());
        assert!(parse_snapshot("version 2\nmin_version 1\nopt_u64 two words\n").is_err());
    }

    #[test]
    fn extract_errors_on_missing_pieces() {
        assert!(extract(&lex("fn encode(&self) { }").tokens)
            .unwrap_err()
            .contains("WIRE_VERSION"));
        let no_encode = "const WIRE_VERSION: u8 = 2; const MIN_WIRE_VERSION: u8 = 1;";
        assert!(extract(&lex(no_encode).tokens)
            .unwrap_err()
            .contains("fn encode"));
    }
}
